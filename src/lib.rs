//! # Eleos-rs — ExitLess OS Services for SGX Enclaves
//!
//! A from-scratch Rust reproduction of *Eleos: ExitLess OS Services for
//! SGX Enclaves* (Orenbach, Lifshits, Minkin, Silberstein — EuroSys
//! 2017), including every substrate the paper depends on: a
//! cycle-accounting SGX machine model (EPC, driver, LLC with CAT, TLBs,
//! host OS), exit-less RPC, Secure User-managed Virtual Memory (SUVM)
//! with spointers, and the paper's three evaluation servers.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! - [`sim`] — machine model: cost model, LLC+CAT, TLBs, buddy
//!   allocator, stats;
//! - [`crypto`] — AES-128/256, CTR, GHASH, GCM (NIST-vector tested);
//! - [`enclave`] — EPC, enclaves, the SGX driver, EENTER/EEXIT/OCALL
//!   thread contexts, host OS with sockets;
//! - [`rpc`] — the exit-less RPC service (§3.1);
//! - [`suvm`] — SUVM: in-enclave paging with spointers, clean-page
//!   elision, direct sub-page access, ballooning (§3.2–3.3);
//! - [`apps`] — the parameter server, memcached-style KVS and LBP
//!   face-verification server of the evaluation (§2, §5).
//!
//! # Examples
//!
//! Secure memory far beyond the page cache, paged without a single
//! enclave exit:
//!
//! ```
//! use eleos::enclave::machine::{MachineConfig, SgxMachine};
//! use eleos::enclave::thread::ThreadCtx;
//! use eleos::suvm::{Suvm, SuvmConfig};
//!
//! let machine = SgxMachine::new(MachineConfig::tiny());
//! let enclave = machine.driver.create_enclave(&machine, 4 << 20);
//! let mut t = ThreadCtx::for_enclave(&machine, &enclave, 0);
//! let suvm = Suvm::new(&t, SuvmConfig::tiny());
//!
//! t.enter();
//! let buf = suvm.malloc(1 << 20); // 16x the tiny EPC++ cache
//! suvm.write(&mut t, buf + 777_000, b"sealed when evicted");
//! let mut out = [0u8; 19];
//! suvm.read(&mut t, buf + 777_000, &mut out);
//! assert_eq!(&out, b"sealed when evicted");
//! assert_eq!(machine.stats.snapshot().enclave_exits, 0);
//! t.exit();
//! ```
//!
//! See `examples/` for runnable end-to-end servers, and
//! `crates/bench/src/bin/repro.rs` for the per-figure reproduction
//! harness (`cargo run --release -p eleos-bench --bin repro -- all`).

pub use eleos_apps as apps;
pub use eleos_core as suvm;
pub use eleos_crypto as crypto;
pub use eleos_enclave as enclave;
pub use eleos_rpc as rpc;
pub use eleos_sim as sim;
