//! Security properties of the full stack (paper §3.2.5): privacy,
//! integrity and freshness of everything that leaves the enclave.

use std::sync::Arc;

use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::suvm::{Suvm, SuvmConfig};

/// A recognizable 32-byte secret marker.
const SECRET: &[u8; 32] = b"TOP-SECRET-MARKER-0123456789abcd";

fn small_machine() -> Arc<SgxMachine> {
    SgxMachine::new(MachineConfig {
        epc_bytes: 2 << 20,
        untrusted_bytes: 64 << 20,
        ..MachineConfig::tiny()
    })
}

/// Scans all untrusted memory for `needle`; returns true if found.
/// Chunks overlap by 64 bytes so boundary-straddling matches are seen.
fn untrusted_contains(m: &SgxMachine, needle: &[u8]) -> bool {
    assert!(needle.len() <= 64);
    let size = m.untrusted.size();
    let step = 64 << 10;
    let mut buf = vec![0u8; step + 64];
    let mut addr = 0usize;
    while addr < size {
        let n = (step + 64).min(size - addr);
        m.untrusted.read(addr as u64, &mut buf[..n]);
        if buf[..n].windows(needle.len()).any(|w| w == needle) {
            return true;
        }
        addr += step;
    }
    false
}

#[test]
fn suvm_data_never_appears_in_untrusted_memory() {
    let m = small_machine();
    let e = m.driver.create_enclave(&m, 16 << 20);
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let suvm = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 256 << 10,
            backing_bytes: 8 << 20,
            ..SuvmConfig::tiny()
        },
    );
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    let sva = suvm.malloc(4 << 20);
    // Write the marker into many pages, then force everything out to
    // the (untrusted) backing store.
    for page in 0..1024u64 {
        suvm.write(&mut t, sva + page * 4096 + 100, SECRET);
    }
    while suvm.evict_one(&mut t) {}
    assert_eq!(suvm.resident_pages(), 0);
    assert!(
        !untrusted_contains(&m, SECRET),
        "plaintext leaked into untrusted memory"
    );
    // And it still reads back correctly (sealed, not lost).
    let mut buf = [0u8; 32];
    suvm.read(&mut t, sva + 500 * 4096 + 100, &mut buf);
    assert_eq!(&buf, SECRET);
    t.exit();
}

#[test]
fn hw_paged_enclave_data_never_appears_in_untrusted_memory() {
    let m = small_machine();
    let e = m.driver.create_enclave(&m, 16 << 20);
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    let base = e.alloc(8 << 20);
    // 8 MiB through a 2 MiB EPC: most pages get EWB'd out.
    for page in 0..2048u64 {
        t.write_enclave(base + page * 4096 + 64, SECRET);
    }
    assert!(
        m.stats.snapshot().hw_evictions > 0,
        "working set must exceed the EPC"
    );
    assert!(
        !untrusted_contains(&m, SECRET),
        "EWB leaked plaintext into untrusted memory"
    );
    let mut buf = [0u8; 32];
    t.read_enclave(base + 7 * 4096 + 64, &mut buf);
    assert_eq!(&buf, SECRET);
    t.exit();
}

#[test]
fn wire_messages_are_confidential() {
    let w = eleos::apps::wire::Session::established([3u8; 16]);
    let msg = w.encrypt(SECRET);
    assert!(
        !msg.windows(8).any(|s| SECRET.windows(8).any(|p| p == s)),
        "request plaintext visible on the wire"
    );
    assert_eq!(w.decrypt(&msg), SECRET);
}

// ---------------------------------------------------------------------
// Session lifecycle: attestation, replay, revocation
// ---------------------------------------------------------------------

#[test]
fn handshake_replay_is_rejected() {
    use eleos::apps::wire::{Session, SessionState};
    let m = small_machine();
    let mut ut = ThreadCtx::untrusted(&m, 0);
    let s = Session::handshake([7u8; 16], [0x11u8; 16]);
    let nonce = s.fresh_nonce();
    let report = s.evidence(&mut ut, nonce);
    s.verify(&mut ut, &[0x11u8; 16], nonce, &report)
        .expect("a fresh report verifies");
    assert_eq!(s.state(), SessionState::Established(0));
    // An eavesdropper replays the same (nonce, report) pair: the
    // freshness floor must refuse it even though the MAC is genuine.
    let replayed = s.verify(&mut ut, &[0x11u8; 16], nonce, &report);
    assert!(replayed.is_err(), "replayed evidence must not verify");
    assert_eq!(m.stats.snapshot().auth_failures, 1, "the replay is counted");
}

#[test]
fn wrong_identity_evidence_fails_verification() {
    use eleos::apps::wire::{Session, SessionState};
    let m = small_machine();
    let mut ut = ThreadCtx::untrusted(&m, 0);
    let s = Session::handshake([7u8; 16], [0x11u8; 16]);
    let nonce = s.fresh_nonce();
    let report = s.evidence(&mut ut, nonce);
    // The verifier expected a different enclave identity: the report's
    // MAC covers the identity, so it cannot be transplanted.
    let err = s.verify(&mut ut, &[0x22u8; 16], nonce, &report);
    assert!(err.is_err(), "evidence must bind the enclave identity");
    assert_eq!(s.state(), SessionState::Handshake, "no session forms");
    assert_eq!(m.stats.snapshot().auth_failures, 1);
}

#[test]
fn revoked_session_drops_queued_messages() {
    use eleos::apps::io::{IoPath, ServerIoConfig};
    use eleos::apps::wire::Session;
    let m = small_machine();
    let mut ut = ThreadCtx::untrusted(&m, 0);
    let session = Arc::new(Session::established([5u8; 16]));
    let fd = m.host.socket(&ut, 64 << 10);
    let io =
        ServerIoConfig::with_buf_len(4096).build(&ut, &[fd], IoPath::Native, Arc::clone(&session));
    for i in 0..4u8 {
        m.host.push_request(&ut, fd, &session.encrypt(&[i; 16]));
    }
    let dropped = io.revoke(&mut ut);
    assert_eq!(dropped, 4, "revocation reports the traffic it dropped");
    assert_eq!(m.host.rx_pending(fd), 0, "the shard slot is drained");
    let st = m.stats.snapshot();
    assert_eq!(st.revocations, 1);
    assert_eq!(st.auth_failures, 4, "each dropped message is counted");
    assert!(
        io.recv_msg_blocking(&mut ut).is_none(),
        "a revoked session stops yielding messages"
    );
}

#[test]
fn suvm_backing_store_tamper_detected() {
    let m = small_machine();
    let e = m.driver.create_enclave(&m, 16 << 20);
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let suvm = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 64 << 10,
            backing_bytes: 2 << 20,
            ..SuvmConfig::tiny()
        },
    );
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    let sva = suvm.malloc(1 << 20);
    for page in 0..256u64 {
        suvm.write(&mut t, sva + page * 4096, &[0xabu8; 128]);
    }
    while suvm.evict_one(&mut t) {}
    // An adversary with control of untrusted memory flips bits across
    // a wide region (the backing store lives somewhere inside it).
    for addr in (0..(16 << 20u64)).step_by(100_000) {
        let mut b = [0u8; 1];
        m.untrusted.read(addr, &mut b);
        if b[0] != 0 {
            m.untrusted.write(addr, &[b[0] ^ 0x55]);
        }
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut buf = [0u8; 128];
        for page in 0..256u64 {
            suvm.read(&mut t, sva + page * 4096, &mut buf);
            assert_eq!(buf, [0xabu8; 128], "silent corruption on page {page}");
        }
    }));
    // Either every read was served intact (the flips missed the
    // ciphertext) or authentication caught the tampering — silent
    // corruption is the one outcome the assert above forbids.
    if let Err(p) = result {
        let msg = p
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("authentication"),
            "must fail closed on tampering, got: {msg}"
        );
    }
}

#[test]
fn replayed_backing_store_page_is_rejected() {
    // Freshness: an attacker restores an older sealed image of a page.
    let m = small_machine();
    let e = m.driver.create_enclave(&m, 16 << 20);
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let suvm = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 32 << 10, // 8 frames
            backing_bytes: 1 << 20,
            ..SuvmConfig::tiny()
        },
    );
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    let sva = suvm.malloc(256 << 10);
    // Version 1 of page 0, sealed out.
    suvm.write(&mut t, sva, b"version-1");
    while suvm.evict_one(&mut t) {}
    // Snapshot the whole untrusted memory region that could hold it.
    let span = 4 << 20usize;
    let mut snapshot = vec![0u8; span];
    m.untrusted.read(0, &mut snapshot);
    // Version 2, sealed out.
    suvm.write(&mut t, sva, b"version-2");
    while suvm.evict_one(&mut t) {}
    // Replay the old bytes.
    m.untrusted.write(0, &snapshot);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut buf = [0u8; 9];
        suvm.read(&mut t, sva, &mut buf);
        buf
    }));
    match result {
        Ok(buf) => panic!(
            "replay went undetected, read back {:?}",
            String::from_utf8_lossy(&buf)
        ),
        Err(p) => {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(msg.contains("authentication"), "unexpected panic: {msg}");
        }
    }
}

#[test]
fn untrusted_thread_cannot_touch_enclave_memory() {
    let m = small_machine();
    let e = m.driver.create_enclave(&m, 1 << 20);
    let addr = e.alloc(64);
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    t.write_enclave(addr, b"private");
    t.exit();
    // Outside the enclave, the same thread is denied.
    let denied = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut b = [0u8; 7];
        t.read_enclave(addr, &mut b);
    }));
    assert!(
        denied.is_err(),
        "untrusted read of enclave memory succeeded"
    );
}
