//! Equivalence suite for the multi-worker scatter-gather I/O path and
//! the unified `Sealer` key management:
//!
//! - a multi-worker scatter-gather reap (one `recv_mmsg` sub-batch per
//!   worker) yields byte-identical decrypted payloads in identical
//!   order to the single-worker per-message path;
//! - SUVM write-back through a shared [`eleos::crypto::Sealer`]
//!   round-trips (seal -> evict -> fault -> open) identically to the
//!   per-domain key path, and the clean-never-resealed /
//!   pinned-never-evicted invariants hold either way;
//! - `async_send` double-buffering composes with multi-worker
//!   sub-batches (the pending batch is fully reaped before the
//!   transmit buffer is reused), and a sub-batch that fills the ring
//!   falls back without dropping or reordering;
//! - cost accounting: exactly one syscall trap and one kernel-metadata
//!   charge per sub-batch, and `crypto_setup_cycles` only ever charged
//!   through the unified `ThreadCtx::charge_crypto_batch` path.

use std::sync::Arc;

use eleos::apps::io::{IoPath, ServerIo, ServerIoConfig};
use eleos::apps::wire::Session;
use eleos::crypto::gcm::AesGcm128;
use eleos::crypto::Sealer;
use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{with_syscalls, RpcService};
use eleos::suvm::spointer::SPtr;
use eleos::suvm::{SealerConfig, Suvm, SuvmConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Shared server-side harness
// ---------------------------------------------------------------------

/// One wired echo server: machine, enclave, socket, RPC service with
/// `workers` worker threads, and a `ServerIo` built from `cfg`.
struct EchoRig {
    m: Arc<SgxMachine>,
    e: Arc<eleos::enclave::enclave::Enclave>,
    wire: Arc<Session>,
    fd: eleos::enclave::host::Fd,
    io: ServerIo,
}

impl EchoRig {
    fn new(workers: usize, cfg: ServerIoConfig) -> EchoRig {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Session::established([9u8; 16]));
        let ut = ThreadCtx::untrusted(&m, 1);
        let fd = m.host.socket(&ut, 256 << 10);
        // The tiny machine has four cores; workers share 2 and 3 (the
        // core clocks are atomic, and none of these tests assert
        // per-core cycle counts for shared cores).
        let svc = with_syscalls(RpcService::builder(&m), &m)
            .workers(workers, &[2, 3])
            .build();
        let io = cfg.build(&ut, &[fd], IoPath::Rpc(Arc::new(svc)), Arc::clone(&wire));
        EchoRig { m, e, wire, fd, io }
    }

    fn push(&self, plain: &[u8]) {
        let ut = ThreadCtx::untrusted(&self.m, 1);
        self.m
            .host
            .push_request(&ut, self.fd, &self.wire.encrypt(plain));
    }

    fn thread(&self) -> ThreadCtx {
        let mut t = ThreadCtx::for_enclave(&self.m, &self.e, 0);
        t.enter();
        t
    }
}

/// Pushes `payloads`, reaps them in one `recv_batch`, and returns the
/// decrypted plaintexts in reap order.
fn reap_once(payloads: &[Vec<u8>], workers: usize, sg: bool) -> Vec<Vec<u8>> {
    let rig = EchoRig::new(
        workers,
        ServerIoConfig::with_buf_len(16 << 10)
            .batch(payloads.len().max(1))
            .scatter_gather(sg),
    );
    for p in payloads {
        rig.push(p);
    }
    let mut t = rig.thread();
    let out = rig.io.recv_batch(&mut t);
    t.exit();
    out
}

// ---------------------------------------------------------------------
// Satellite 1: multi-worker scatter-gather reap == per-message path
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For every worker count x batch depth, the scatter-gather
    /// sub-batch reap returns byte-identical decrypted payloads in
    /// identical order to the single-worker per-message reference.
    #[test]
    fn scatter_gather_reap_matches_per_message_reference(
        seed in prop::collection::vec(any::<u8>(), 64..65),
    ) {
        for workers in 1usize..=4 {
            for depth in [1usize, 2, 8, 64] {
                // Distinct, random-looking payloads of varying length,
                // derived from the proptest seed bytes.
                let payloads: Vec<Vec<u8>> = (0..depth)
                    .map(|i| {
                        let len = 1 + (seed[i % 64] as usize + i) % 180;
                        (0..len)
                            .map(|j| seed[(i + j) % 64].wrapping_add((i * 31 + j) as u8))
                            .collect()
                    })
                    .collect();
                let reference = reap_once(&payloads, 1, false);
                prop_assert_eq!(&reference, &payloads, "reference path must echo the queue");
                let got = reap_once(&payloads, workers, true);
                prop_assert_eq!(
                    &got, &reference,
                    "scatter-gather reap diverged (workers={}, depth={})",
                    workers, depth
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Satellite 2: SUVM write-back through a shared Sealer
// ---------------------------------------------------------------------

/// Working-set span: 16 pages through an 8-frame EPC++.
const SPAN: usize = 64 << 10;

fn suvm_rig(sealer: SealerConfig) -> (Arc<SgxMachine>, Arc<Suvm>, ThreadCtx) {
    let m = SgxMachine::new(MachineConfig {
        epc_bytes: 2 << 20,
        ..MachineConfig::tiny()
    });
    let e = m.driver.create_enclave(&m, 16 << 20);
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let s = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 8 * 4096,
            backing_bytes: 1 << 20,
            wb_batch: 8,
            sealer,
            ..SuvmConfig::tiny()
        },
    );
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    (m, s, t)
}

/// Runs a write/read/evict/drain workload and returns
/// `(final contents, sealed entry count)` after a full quiesce.
fn run_suvm_workload(sealer: SealerConfig, ops: &[(usize, Vec<u8>)]) -> (Vec<u8>, usize) {
    let (m, s, mut t) = suvm_rig(sealer);
    let sva = s.malloc(SPAN);
    let fill = vec![0x5au8; SPAN];
    s.write(&mut t, sva, &fill);
    let mut shadow = fill;
    for (i, (at, data)) in ops.iter().enumerate() {
        let at = (*at).min(SPAN - data.len());
        s.write(&mut t, sva + at as u64, data);
        shadow[at..at + data.len()].copy_from_slice(data);
        match i % 3 {
            0 => {
                s.evict_one(&mut t);
            }
            1 => {
                s.drain_writeback(&mut t, 4);
            }
            _ => {
                let mut buf = vec![0u8; data.len()];
                s.read(&mut t, sva + at as u64, &mut buf);
                prop_assert_eq!(&buf, &shadow[at..at + data.len()]);
            }
        }
        s.check_consistency();
    }
    // Pinned pages must survive a full eviction sweep un-evicted.
    let pin_at = 0usize;
    let p = SPtr::<u64>::new(&s, sva + pin_at as u64);
    let want = u64::from_le_bytes(shadow[pin_at..pin_at + 8].try_into().unwrap());
    prop_assert_eq!(p.get(&mut t), want);
    let faults_before = s.local_stats().major_faults;
    while s.evict_one(&mut t) {}
    while s.writeback_queue_len() > 0 {
        s.drain_writeback(&mut t, 8);
    }
    prop_assert_eq!(p.get(&mut t), want, "pinned page corrupted");
    prop_assert_eq!(
        s.local_stats().major_faults,
        faults_before,
        "pinned page was evicted"
    );
    drop(p);
    // Quiesce everything and fault it all back in: seal -> evict ->
    // fault -> open for every page.
    while s.evict_one(&mut t) {}
    while s.writeback_queue_len() > 0 {
        s.drain_writeback(&mut t, 8);
    }
    s.check_consistency();
    let mut back = vec![0u8; SPAN];
    s.read(&mut t, sva, &mut back);
    prop_assert_eq!(&back, &shadow, "sealed round-trip corrupted the contents");
    // Everything is clean with a valid sealed copy now: a second full
    // eviction must elide every re-seal, shared key or not.
    let s0 = m.stats.snapshot();
    while s.evict_one(&mut t) {}
    let d = m.stats.snapshot() - s0;
    prop_assert_eq!(
        d.suvm_evictions,
        d.suvm_clean_skips,
        "clean pages must never be re-sealed"
    );
    prop_assert_eq!(d.suvm_wb_pages, 0, "clean pages must never be queued");
    (back, s.debug_seal_entries())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same workload through a per-domain sealer and through a
    /// shared `Sealer` leaves identical contents and an identical
    /// sealed population, and both uphold the paging invariants.
    #[test]
    fn shared_sealer_roundtrips_like_per_domain(
        ops in prop::collection::vec(
            (0..SPAN, prop::collection::vec(any::<u8>(), 1..200)),
            4..20,
        ),
    ) {
        let per_domain = run_suvm_workload(SealerConfig::PerDomain, &ops);
        let shared: Arc<dyn Sealer> = Arc::new(AesGcm128::new(&[0x77u8; 16]));
        let via_shared = run_suvm_workload(SealerConfig::Shared(shared), &ops);
        prop_assert_eq!(per_domain.0, via_shared.0, "contents diverge across key management");
        prop_assert_eq!(
            per_domain.1, via_shared.1,
            "sealed population diverges across key management"
        );
    }
}

/// The configured sealer is observable: per-domain builds a private
/// GCM, shared uses the caller's instance.
#[test]
fn sealer_config_selects_the_instance() {
    let (_m, s, mut t) = suvm_rig(SealerConfig::PerDomain);
    assert_eq!(s.sealer_name(), "aes128-gcm");
    let shared: Arc<dyn Sealer> = Arc::new(eleos::crypto::ctr::Ctr128::new(&[1u8; 16]));
    let (_m2, s2, mut t2) = suvm_rig(SealerConfig::Shared(shared));
    assert_eq!(s2.sealer_name(), "aes128-ctr");
    // Both still page correctly.
    for (s, t) in [(&s, &mut t), (&s2, &mut t2)] {
        let sva = s.malloc(SPAN);
        s.write(t, sva + 40_000, b"keyed either way");
        while s.evict_one(t) {}
        let mut buf = [0u8; 16];
        s.read(t, sva + 40_000, &mut buf);
        assert_eq!(&buf, b"keyed either way");
    }
}

// ---------------------------------------------------------------------
// Satellite 3: async_send composition and ring-full fallback
// ---------------------------------------------------------------------

/// Deferred sends with multi-worker sub-batches: every response
/// reaches the socket in order, and the pending batch is fully reaped
/// before the transmit buffer is reused for the next round.
#[test]
fn deferred_multi_worker_sends_stay_in_order() {
    let rig = EchoRig::new(
        2,
        ServerIoConfig::with_buf_len(8192).batch(4).async_send(true),
    );
    let mut t = rig.thread();
    for round in 0..6u8 {
        for i in 0..4u8 {
            rig.push(&[round * 4 + i; 24]);
        }
        let msgs = rig.io.recv_batch(&mut t);
        assert_eq!(msgs.len(), 4);
        rig.io.send_batch(&mut t, &msgs);
    }
    rig.io.flush(&mut t);
    t.exit();
    let mut echoed = Vec::new();
    while let Some(resp) = rig.m.host.pop_response(rig.fd) {
        echoed.push(rig.wire.decrypt(&resp));
    }
    assert_eq!(echoed.len(), 24, "every echo must reach the socket");
    for (i, msg) in echoed.iter().enumerate() {
        assert_eq!(msg, &vec![i as u8; 24], "response {i} out of order");
    }
}

/// Sub-batches that fill the ring back off and retry without dropping
/// or reordering messages: a one-slot ring forces `rpc_ring_full` on
/// every multi-job submission, yet the echo stream stays intact.
#[test]
fn ring_full_sub_batches_fall_back_without_reordering() {
    let m = SgxMachine::new(MachineConfig::tiny());
    let e = m.driver.create_enclave(&m, 1 << 20);
    let wire = Arc::new(Session::established([3u8; 16]));
    let ut = ThreadCtx::untrusted(&m, 1);
    let fd = m.host.socket(&ut, 256 << 10);
    let svc = with_syscalls(RpcService::builder(&m), &m)
        .workers(2, &[2, 3])
        .slots(1)
        .build();
    let io = ServerIoConfig::with_buf_len(8192).batch(8).build(
        &ut,
        &[fd],
        IoPath::Rpc(Arc::new(svc)),
        Arc::clone(&wire),
    );
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    for round in 0..3u8 {
        for i in 0..8u8 {
            m.host
                .push_request(&ut, fd, &wire.encrypt(&[round * 8 + i; 20]));
        }
        let msgs = io.recv_batch(&mut t);
        assert_eq!(msgs.len(), 8, "ring pressure must not drop messages");
        for (i, msg) in msgs.iter().enumerate() {
            assert_eq!(
                msg,
                &vec![round * 8 + i as u8; 20],
                "ring pressure must not reorder messages"
            );
        }
        io.send_batch(&mut t, &msgs);
    }
    t.exit();
    let d = m.stats.snapshot();
    assert!(
        d.rpc_ring_full > 0,
        "a one-slot ring must report back-pressure"
    );
    let mut echoed = 0usize;
    let mut next = 0u8;
    while let Some(resp) = m.host.pop_response(fd) {
        assert_eq!(wire.decrypt(&resp), vec![next; 20]);
        next += 1;
        echoed += 1;
    }
    assert_eq!(echoed, 24, "ring pressure must not drop responses");
}

// ---------------------------------------------------------------------
// Satellite 4: cost accounting
// ---------------------------------------------------------------------

/// Each scatter-gather sub-batch costs exactly one syscall trap and
/// one kernel-metadata charge, for 1, 2 and 4 workers, on both the
/// receive and the transmit leg.
#[test]
fn one_trap_and_one_meta_charge_per_sub_batch() {
    for workers in [1usize, 2, 4] {
        let rig = EchoRig::new(workers, ServerIoConfig::with_buf_len(8192).batch(8));
        let mut t = rig.thread();
        for i in 0..8u8 {
            rig.push(&[i; 24]);
        }
        let s0 = rig.m.stats.snapshot();
        let msgs = rig.io.recv_batch(&mut t);
        assert_eq!(msgs.len(), 8);
        let d = rig.m.stats.snapshot() - s0;
        assert_eq!(d.syscalls, workers as u64, "one trap per recv sub-batch");
        assert_eq!(
            d.kernel_meta_reads, workers as u64,
            "one kernel-metadata walk per recv sub-batch"
        );
        let s0 = rig.m.stats.snapshot();
        rig.io.send_batch(&mut t, &msgs);
        let d = rig.m.stats.snapshot() - s0;
        assert_eq!(d.syscalls, workers as u64, "one trap per send sub-batch");
        assert_eq!(
            d.kernel_meta_reads, workers as u64,
            "one kernel-metadata walk per send sub-batch"
        );
        t.exit();
    }
}

/// Wire crypto setup is charged through the one unified
/// `charge_crypto_batch` site: a batch-of-8 amortized decrypt bills
/// the leader the full setup and each follow-on a quarter.
#[test]
fn wire_setup_cycles_follow_the_unified_formula() {
    let rig = EchoRig::new(2, ServerIoConfig::with_buf_len(8192).batch(8));
    let mut t = rig.thread();
    for i in 0..8u8 {
        rig.push(&[i; 24]);
    }
    let s0 = rig.m.stats.snapshot();
    let msgs = rig.io.recv_batch(&mut t);
    assert_eq!(msgs.len(), 8);
    let d = rig.m.stats.snapshot() - s0;
    let full = MachineConfig::tiny().costs.crypto_fixed;
    assert_eq!(d.crypto_batches, 1);
    assert_eq!(d.crypto_msgs, 8);
    assert_eq!(d.crypto_setup_cycles, full + 7 * (full / 4));
    t.exit();
}

/// SUVM write-back drains charge their setup through the same unified
/// path: one crypto batch per drain, leader at full setup, follow-ons
/// at a quarter — no private amortization in `writeback.rs`.
#[test]
fn drain_setup_cycles_follow_the_unified_formula() {
    let (m, s, mut t) = suvm_rig(SealerConfig::PerDomain);
    let sva = s.malloc(SPAN);
    let fill = vec![0xa1u8; SPAN];
    s.write(&mut t, sva, &fill);
    // Quiesce: every page sealed, cache empty.
    while s.evict_one(&mut t) {}
    while s.writeback_queue_len() > 0 {
        s.drain_writeback(&mut t, 8);
    }
    // Fault eight pages back in (clean, valid sealed copies), then
    // dirty half of them.
    let mut probe = [0u8; 1];
    for page in 0..8u64 {
        s.read(&mut t, sva + page * 4096, &mut probe);
    }
    for page in 0..4u64 {
        s.write(&mut t, sva + page * 4096 + 9, &[0x33; 8]);
    }
    // Three more faults: the detach pass frees clean victims outright
    // and parks the dirty ones on the write-back queue, so the queue
    // fills without a synchronous fallback drain.
    for page in 8..11u64 {
        s.read(&mut t, sva + page * 4096, &mut probe);
    }
    assert!(
        s.writeback_queue_len() >= 2,
        "the workload must queue at least one drainable batch"
    );
    let full = m.cfg.costs.crypto_fixed;
    let s0 = m.stats.snapshot();
    let sealed = s.drain_writeback(&mut t, 4);
    let d = m.stats.snapshot() - s0;
    assert!(sealed >= 2, "the drain must seal a batch");
    assert_eq!(d.crypto_batches, 1, "one unified charge per drain");
    assert_eq!(d.crypto_msgs, sealed as u64);
    assert_eq!(
        d.crypto_setup_cycles,
        full + (sealed as u64 - 1) * (full / 4),
        "drain leader pays full setup, follow-ons a quarter"
    );
    t.exit();
}

// ---------------------------------------------------------------------
// Satellite 5: epoch rotation mid-run is invisible in the plaintext
// ---------------------------------------------------------------------

/// Serves `payloads` through an echo server over `shards` sockets,
/// rekeying every `rekey_every` served requests (never, when `None`),
/// and returns the decrypted replies in push order. The client drains
/// each round's replies while their epoch is still inside the session's
/// two-slot key buffer — the contract a real client keeps by following
/// the server's epoch announcements.
fn run_echo_with_rekey(
    shards: usize,
    rekey_every: Option<u64>,
    payloads: &[Vec<u8>],
) -> (Vec<Vec<u8>>, u64, u64) {
    let m = SgxMachine::new(MachineConfig::tiny());
    let e = m.driver.create_enclave(&m, 1 << 20);
    let session = Arc::new(Session::established([9u8; 16]));
    let ut = ThreadCtx::untrusted(&m, 1);
    let fds: Vec<_> = (0..shards).map(|_| m.host.socket(&ut, 256 << 10)).collect();
    let svc = with_syscalls(RpcService::builder(&m), &m)
        .workers(2, &[2, 3])
        .build();
    let mut cfg = ServerIoConfig::with_buf_len(16 << 10)
        .batch(4)
        .shards(shards);
    if let Some(n) = rekey_every {
        cfg = cfg.rekey_every(n);
    }
    let io = cfg.build(&ut, &fds, IoPath::Rpc(Arc::new(svc)), Arc::clone(&session));
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    let mut out = Vec::new();
    for (round, chunk) in payloads.chunks(4).enumerate() {
        for (i, p) in chunk.iter().enumerate() {
            m.host
                .push_request(&ut, fds[(round + i) % shards], &session.encrypt(p));
        }
        let mut done = 0usize;
        while done < chunk.len() {
            let msgs = io.recv_batch(&mut t);
            assert!(!msgs.is_empty(), "queued requests must be served");
            done += msgs.len();
            io.send_batch(&mut t, &msgs);
        }
        io.flush(&mut t);
        for &fd in &fds {
            while let Some(resp) = m.host.pop_response(fd) {
                out.push(session.decrypt(&resp));
            }
        }
    }
    t.exit();
    let d = m.stats.snapshot();
    (out, d.rekeys, d.auth_failures)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// A server that rotates its session key mid-run returns byte-
    /// identical decrypted replies to one that never rekeys, across
    /// 1-3 shards and rekey intervals that fire at every fence or
    /// every other fence — and no message is ever dropped to a key
    /// mismatch while the old epoch drains.
    #[test]
    fn rekeying_server_matches_static_key_replies(
        seed in prop::collection::vec(any::<u8>(), 32..33),
    ) {
        let payloads: Vec<Vec<u8>> = (0..16usize)
            .map(|i| {
                let len = 1 + (seed[i % 32] as usize + i) % 120;
                (0..len)
                    .map(|j| seed[(i + j) % 32].wrapping_add((i * 13 + j) as u8))
                    .collect()
            })
            .collect();
        for shards in 1usize..=3 {
            let (reference, rk, af) = run_echo_with_rekey(shards, None, &payloads);
            // Replies drain shard 0..n each round, so multi-shard runs
            // see a fixed by-shard permutation of push order; the echo
            // *set* must match exactly, and on one shard the order too.
            let mut sorted = reference.clone();
            sorted.sort();
            let mut expect = payloads.clone();
            expect.sort();
            prop_assert_eq!(&sorted, &expect, "static-key path must echo the queue");
            if shards == 1 {
                prop_assert_eq!(&reference, &payloads, "single-shard echo must keep order");
            }
            prop_assert_eq!((rk, af), (0, 0), "static-key leg must not rotate");
            for interval in [4u64, 8] {
                let (got, rk, af) = run_echo_with_rekey(shards, Some(interval), &payloads);
                prop_assert_eq!(
                    &got, &reference,
                    "rekeying replies diverged (shards={}, interval={})", shards, interval
                );
                prop_assert!(rk > 0, "the rekeying leg must actually rotate");
                prop_assert_eq!(af, 0, "rotation must not drop in-flight messages");
            }
        }
    }
}
