//! Property and equivalence tests for the pluggable SUVM paging
//! architecture: every eviction policy x backing store x write-back
//! mode must satisfy the same invariants —
//!
//! - SUVM contents always match a flat shadow memory;
//! - a pinned (spointer-linked) page is never evicted;
//! - clean pages with a valid sealed copy are never re-sealed;
//! - the inverse page table and the frame metadata stay consistent
//!   (`Suvm::check_consistency`);
//! - batched asynchronous write-back is observationally equivalent to
//!   inline eviction.

use std::sync::Arc;

use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::suvm::spointer::SPtr;
use eleos::suvm::{EvictPolicy, StoreKind, Suvm, SuvmConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Working-set span: 16 pages through an 8-frame EPC++, so eviction is
/// constant.
const SPAN: usize = 64 << 10;

fn rig(
    policy: EvictPolicy,
    store: StoreKind,
    wb_batch: usize,
) -> (Arc<SgxMachine>, Arc<Suvm>, ThreadCtx) {
    let m = SgxMachine::new(MachineConfig {
        epc_bytes: 2 << 20,
        ..MachineConfig::tiny()
    });
    let e = m.driver.create_enclave(&m, 16 << 20);
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let s = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 8 * 4096,
            backing_bytes: 1 << 20,
            policy,
            store,
            wb_batch,
            ..SuvmConfig::tiny()
        },
    );
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    (m, s, t)
}

/// One step of the random paging workload.
#[derive(Debug, Clone)]
enum Op {
    Write { at: usize, data: Vec<u8> },
    Read { at: usize, len: usize },
    Pin { at: usize },
    Unpin,
    EvictOne,
    Drain,
    Resize { frames: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..SPAN, prop::collection::vec(any::<u8>(), 1..300))
            .prop_map(|(at, data)| Op::Write { at, data }),
        (0..SPAN, 1usize..300).prop_map(|(at, len)| Op::Read { at, len }),
        (0..SPAN).prop_map(|at| Op::Pin { at }),
        Just(Op::Unpin),
        Just(Op::EvictOne),
        Just(Op::Drain),
        (4usize..9).prop_map(|frames| Op::Resize { frames }),
    ]
}

/// Runs `ops` against one configuration, checking every invariant the
/// paging architecture promises independent of policy and store.
fn run_model(policy: EvictPolicy, store: StoreKind, wb_batch: usize, ops: &[Op]) {
    let (m, s, mut t) = rig(policy, store, wb_batch);
    let sva = s.malloc(SPAN);
    // Populate every page so each one has real content and, once
    // evicted, a sealed copy (a never-written zero-fill page has
    // nothing to elide).
    let fill = vec![0x5au8; SPAN];
    s.write(&mut t, sva, &fill);
    let mut shadow = fill;
    let mut pinned: Option<(SPtr<u64>, usize)> = None;
    for op in ops {
        match op {
            Op::Write { at, data } => {
                let at = (*at).min(SPAN - data.len());
                s.write(&mut t, sva + at as u64, data);
                shadow[at..at + data.len()].copy_from_slice(data);
            }
            Op::Read { at, len } => {
                let at = (*at).min(SPAN - len);
                let mut buf = vec![0u8; *len];
                s.read(&mut t, sva + at as u64, &mut buf);
                prop_assert_eq!(&buf, &shadow[at..at + len]);
            }
            Op::Pin { at } => {
                let at = (at / 8 * 8).min(SPAN - 8);
                let p = SPtr::<u64>::new(&s, sva + at as u64);
                let want = u64::from_le_bytes(shadow[at..at + 8].try_into().unwrap());
                prop_assert_eq!(p.get(&mut t), want);
                pinned = Some((p, at));
            }
            Op::Unpin => pinned = None,
            Op::EvictOne => {
                s.evict_one(&mut t);
            }
            Op::Drain => {
                s.drain_writeback(&mut t, 4);
            }
            Op::Resize { frames } => s.resize(&mut t, *frames),
        }
        if let Some((p, at)) = &pinned {
            // The linked page must still be resident: re-reading through
            // the spointer may not take a major fault.
            let before = s.local_stats().major_faults;
            let want = u64::from_le_bytes(shadow[*at..*at + 8].try_into().unwrap());
            prop_assert_eq!(p.get(&mut t), want, "pinned page corrupted");
            prop_assert_eq!(
                s.local_stats().major_faults,
                before,
                "pinned page was evicted"
            );
        }
        s.check_consistency();
    }
    drop(pinned);
    // Quiesce: push everything out, then verify the whole span against
    // the shadow through the sealed path.
    while s.writeback_queue_len() > 0 {
        s.drain_writeback(&mut t, 8);
    }
    while s.evict_one(&mut t) {}
    s.check_consistency();
    let mut back = vec![0u8; SPAN];
    s.read(&mut t, sva, &mut back);
    prop_assert_eq!(&back, &shadow);
    // Everything is now clean with a valid sealed copy, so a second
    // full eviction must elide every write-back (§3.2.4) regardless of
    // policy, store, or write-back mode.
    while s.writeback_queue_len() > 0 {
        s.drain_writeback(&mut t, 8);
    }
    let s0 = m.stats.snapshot();
    while s.evict_one(&mut t) {}
    let d = m.stats.snapshot() - s0;
    prop_assert!(d.suvm_evictions > 0, "quiesced cache should have pages");
    prop_assert_eq!(
        d.suvm_evictions,
        d.suvm_clean_skips,
        "clean pages must never be re-sealed"
    );
    prop_assert_eq!(d.suvm_wb_pages, 0, "clean pages must never be queued");
    s.check_consistency();
}

const POLICIES: [EvictPolicy; 6] = [
    EvictPolicy::Clock,
    EvictPolicy::Fifo,
    EvictPolicy::Random(3),
    EvictPolicy::LruApprox(11),
    EvictPolicy::Slru,
    EvictPolicy::SlruTuned,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The policy-independent invariants hold under arbitrary
    /// fault/evict/pin/drain/resize interleavings, for every eviction
    /// policy, both backing stores, and both write-back modes.
    #[test]
    fn paging_invariants_hold_across_policies(
        ops in prop::collection::vec(op_strategy(), 1..28),
    ) {
        for policy in POLICIES {
            for (store, wb_batch) in [
                (StoreKind::Buddy, 0),
                (StoreKind::Buddy, 8),
                (StoreKind::Striped { stripes: 4 }, 8),
            ] {
                run_model(policy, store, wb_batch, &ops);
            }
        }
    }
}

/// The same deterministic workload under inline eviction (`wb_batch =
/// 0`) and under batched asynchronous write-back (`wb_batch = 8` with
/// periodic drains) must leave the backing store with the same sealed
/// population and the same plaintext contents. (The ciphertexts differ
/// byte-for-byte because every seal draws a fresh GCM nonce; plaintext
/// equality plus an equal entry count is the store-level equivalence.)
#[test]
fn batched_writeback_equals_inline_eviction() {
    for store in [StoreKind::Buddy, StoreKind::Striped { stripes: 4 }] {
        let mut contents: Vec<Vec<u8>> = Vec::new();
        let mut seal_entries = Vec::new();
        for wb_batch in [0usize, 8] {
            let (_m, s, mut t) = rig(EvictPolicy::Clock, store, wb_batch);
            let sva = s.malloc(SPAN);
            let mut shadow = vec![0u8; SPAN];
            let mut rng = StdRng::seed_from_u64(77);
            for i in 0..400u64 {
                let at = rng.random_range(0..(SPAN as u64 - 64)) as usize;
                if rng.random_range(0..10) < 7 {
                    let data: Vec<u8> = (0..48).map(|j| (i as usize + j) as u8).collect();
                    s.write(&mut t, sva + at as u64, &data);
                    shadow[at..at + 48].copy_from_slice(&data);
                } else {
                    let mut buf = [0u8; 48];
                    s.read(&mut t, sva + at as u64, &mut buf);
                    assert_eq!(buf, shadow[at..at + 48]);
                }
                if wb_batch > 0 && i % 16 == 15 {
                    s.drain_writeback(&mut t, 8);
                }
            }
            while s.writeback_queue_len() > 0 {
                s.drain_writeback(&mut t, 8);
            }
            while s.evict_one(&mut t) {}
            s.check_consistency();
            seal_entries.push(s.debug_seal_entries());
            let mut back = vec![0u8; SPAN];
            s.read(&mut t, sva, &mut back);
            assert_eq!(back, shadow, "sealed contents diverge from shadow");
            contents.push(back);
        }
        assert_eq!(
            contents[0],
            contents[1],
            "batched write-back changed the stored plaintext ({})",
            store.label()
        );
        assert_eq!(
            seal_entries[0],
            seal_entries[1],
            "batched write-back changed the sealed population ({})",
            store.label()
        );
    }
}
