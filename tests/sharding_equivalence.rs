//! Equivalence suite for sharded multi-socket serving:
//!
//! - a sharded server (one reap→decrypt→serve→seal→send pipeline per
//!   socket, connections pinned to shards by [`shard_for`]) returns
//!   byte-identical replies *per connection* to the single-socket
//!   baseline, for 1–4 shards, fixed and adaptive sub-batch depths,
//!   and all four protocol servers (binary KVS, memcached-text KVS,
//!   parameter server, face verification);
//! - commutative updates land identically whatever the shard
//!   interleaving (the parameter-server probe);
//! - the balance layer (hot-connection re-pinning through a
//!   [`ShardMap`] plus sub-batch work stealing) returns byte-identical
//!   per-connection replies to the static sharded path — replies are
//!   regrouped by the shard each request was *pushed* to, so a
//!   mid-run migration or a steal that broke per-connection order
//!   fails the byte comparison;
//! - cost accounting: exactly one syscall trap and one
//!   kernel-metadata charge per shard sub-batch on both legs, an
//!   empty shard's poll costs a trap but no metadata walk, and a
//!   steal adds exactly one extra trap and one extra walk.

use std::collections::VecDeque;
use std::sync::Arc;

use eleos::apps::face::{
    build_verify_request, chi_square, lbp_histogram, synth_capture, synth_image, FaceDb, FaceServer,
};
use eleos::apps::io::{BalanceConfig, IoPath, ServerIo, ServerIoConfig};
use eleos::apps::kvs::{build_get, Kvs};
use eleos::apps::loadgen::attest_session;
use eleos::apps::loadgen::{shard_for, KvsLoad, ShardMap};
use eleos::apps::param_server::{build_read_request, build_update_request, ParamServer, TableKind};
use eleos::apps::space::DataSpace;
use eleos::apps::text_protocol::{format_get, handle_text_batch};
use eleos::apps::wire::Session;
use eleos::enclave::host::Fd;
use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{with_syscalls, RpcService};
use proptest::prelude::*;

/// Client connections the request streams multiplex.
const N_CONNS: usize = 8;
/// Requests per run.
const N_REQS: usize = 24;

// ---------------------------------------------------------------------
// Shared sharded-server harness
// ---------------------------------------------------------------------

/// One wired server over a shard set: machine, enclave, `shards`
/// sockets and a [`ServerIo`] with one pipeline per socket.
struct ShardRig {
    m: Arc<SgxMachine>,
    e: Arc<eleos::enclave::enclave::Enclave>,
    wire: Arc<Session>,
    fds: Vec<Fd>,
    io: ServerIo,
    /// The balance layer's connection map, `None` on the static path.
    map: Option<Arc<ShardMap>>,
}

impl ShardRig {
    /// `balanced` layers an aggressive rebalancer (period 2, steal on)
    /// over the sharded pipeline so short proptest runs still cross
    /// migration fences and steal waves.
    fn new(shards: usize, workers: usize, cfg: ServerIoConfig, balanced: bool) -> ShardRig {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let wire = Arc::new(Session::handshake([9u8; 16], [0x62u8; 16]));
        let mut ut = ThreadCtx::untrusted(&m, 1);
        attest_session(&mut ut, &wire);
        let fds: Vec<Fd> = (0..shards).map(|_| m.host.socket(&ut, 256 << 10)).collect();
        let svc = with_syscalls(RpcService::builder(&m), &m)
            .workers(workers, &[2, 3])
            .build();
        let path = IoPath::Rpc(Arc::new(svc));
        let (io, map) = if balanced {
            let map = ShardMap::new(shards);
            let cfg = cfg.balanced(BalanceConfig {
                repin: true,
                steal: true,
                period: 2,
                max_moves: 2,
            });
            let io = cfg
                .routed(Arc::clone(&map))
                .build(&ut, &fds, path, Arc::clone(&wire));
            (io, Some(map))
        } else {
            (cfg.build(&ut, &fds, path, Arc::clone(&wire)), None)
        };
        ShardRig {
            m,
            e,
            wire,
            fds,
            io,
            map,
        }
    }

    /// Pushes one encrypted request from `conn`, landing on the shard
    /// the load generator pins (or the shard map currently routes)
    /// that connection to, and returns that shard — the push-time
    /// routing decision the reply regrouping keys on.
    fn push(&self, conn: u64, plain: &[u8]) -> usize {
        let ut = ThreadCtx::untrusted(&self.m, 1);
        let s = match &self.map {
            Some(map) => map.route(conn),
            None => shard_for(conn, self.fds.len()),
        };
        self.m
            .host
            .push_request(&ut, self.fds[s], &self.wire.encrypt(plain));
        s
    }

    fn thread(&self) -> ThreadCtx {
        let mut t = ThreadCtx::for_enclave(&self.m, &self.e, 0);
        t.enter();
        t
    }
}

/// Keeps calling `step` until `n` requests have been served.
fn serve_to_completion(t: &mut ThreadCtx, n: usize, mut step: impl FnMut(&mut ThreadCtx) -> usize) {
    let mut done = 0usize;
    while done < n {
        let got = step(t);
        assert!(got > 0, "queued requests must be served");
        done += got;
    }
}

/// Drains every shard's response queue and re-groups the decrypted
/// replies by connection: per-shard FIFO order is per-connection
/// order, so the `i`-th reply on a shard answers the `i`-th request
/// that `pushed` recorded landing there. The log carries the
/// *push-time* routing decision, which is what makes this regrouping
/// valid across migration fences (queued requests answer on the old
/// socket; re-pinned ones on the new) and steals (stolen replies
/// still leave the victim's socket, after its own run). A server
/// that reorders within a shard mis-assigns replies here and fails
/// the byte comparison.
fn replies_by_conn(rig: &ShardRig, pushed: &[(u64, usize)]) -> Vec<Vec<Vec<u8>>> {
    let mut streams: Vec<VecDeque<Vec<u8>>> = rig
        .fds
        .iter()
        .map(|&fd| {
            let mut v = VecDeque::new();
            while let Some(r) = rig.m.host.pop_response(fd) {
                v.push_back(rig.wire.decrypt(&r));
            }
            v
        })
        .collect();
    let mut out = vec![Vec::new(); N_CONNS];
    for &(conn, s) in pushed {
        let r = streams[s].pop_front().expect("a reply per request");
        out[conn as usize].push(r);
    }
    assert!(
        streams.iter().all(VecDeque::is_empty),
        "no surplus replies on any shard"
    );
    out
}

/// The two sub-batch sizing policies the sweep crosses with the shard
/// counts.
fn policies() -> [ServerIoConfig; 2] {
    [
        ServerIoConfig::with_buf_len(16 << 10).batch(4),
        ServerIoConfig::with_buf_len(16 << 10).adaptive(1, 8),
    ]
}

/// Derives a connection id and a key id per request from proptest
/// seed bytes.
fn request_stream(seed: &[u8]) -> (Vec<u64>, Vec<u64>) {
    let conns = (0..N_REQS)
        .map(|i| (seed[i % seed.len()] as u64 + i as u64 * 5) % N_CONNS as u64)
        .collect();
    let keys = (0..N_REQS)
        .map(|i| seed[(i * 7) % seed.len()] as u64 + i as u64)
        .collect();
    (conns, keys)
}

// ---------------------------------------------------------------------
// Per-server runs
// ---------------------------------------------------------------------

/// The two push→serve rounds every run takes: a balanced rig may
/// re-pin a hot connection at the round boundary, so the second
/// round's pushes exercise routing *across* a migration fence.
fn rounds(n: usize) -> [(usize, usize); 2] {
    [(0, n / 2), (n / 2, n)]
}

/// Serves `N_REQS` KVS GETs (binary or memcached-text protocol) on a
/// `shards`-wide socket set; returns the per-connection reply streams.
fn run_kvs(
    shards: usize,
    cfg: ServerIoConfig,
    conns: &[u64],
    keys: &[u64],
    text: bool,
    balanced: bool,
) -> Vec<Vec<Vec<u8>>> {
    let rig = ShardRig::new(shards, 2, cfg, balanced);
    let mut t = rig.thread();
    let space = DataSpace::Untrusted(Arc::clone(&rig.m));
    let mut kvs = Kvs::new(space.clone(), space, 8 << 20, 256);
    kvs.init(&mut t);
    let load = KvsLoad::new(7, 64, 16, 48);
    for i in 0..load.n_items {
        kvs.set(&mut t, &load.key(i), &load.value(i));
    }
    let mut pushed = Vec::with_capacity(conns.len());
    for (lo, hi) in rounds(conns.len()) {
        for (&c, &k) in conns[lo..hi].iter().zip(&keys[lo..hi]) {
            let key = load.key(k % load.n_items);
            let plain = if text {
                format_get(&key)
            } else {
                build_get(&key)
            };
            pushed.push((c, rig.push(c, &plain)));
        }
        let io = &rig.io;
        let kvs = &mut kvs;
        serve_to_completion(&mut t, hi - lo, |t| {
            if text {
                handle_text_batch(kvs, t, io)
            } else {
                kvs.handle_batch(t, io)
            }
        });
    }
    rig.io.flush(&mut t);
    t.exit();
    replies_by_conn(&rig, &pushed)
}

/// Serves a mixed read/update parameter-server stream; returns the
/// per-connection reply streams plus a probe of each connection's
/// private counter (updates are commutative, so the final counters
/// must not depend on the shard interleaving).
fn run_param(
    shards: usize,
    cfg: ServerIoConfig,
    conns: &[u64],
    keys: &[u64],
    balanced: bool,
) -> (Vec<Vec<Vec<u8>>>, Vec<u64>) {
    const TABLE: u64 = 4096;
    let rig = ShardRig::new(shards, 2, cfg, balanced);
    let mut t = rig.thread();
    let space = DataSpace::Untrusted(Arc::clone(&rig.m));
    let mut srv = ParamServer::new(space, TableKind::OpenAddressing, TABLE);
    srv.init(&mut t);
    srv.populate_bulk(&mut t, TABLE);
    let mut pushed = Vec::with_capacity(conns.len());
    for (lo, hi) in rounds(conns.len()) {
        for (i, (&c, &k)) in conns[lo..hi].iter().zip(&keys[lo..hi]).enumerate() {
            // Even requests read populated (never-updated) keys; odd
            // requests bump the connection's private counter.
            let plain = if (lo + i) % 2 == 0 {
                build_read_request(&[N_CONNS as u64 + 1 + k % (TABLE - N_CONNS as u64 - 1)])
            } else {
                build_update_request(&[(1 + c, 1 + k % 9)])
            };
            pushed.push((c, rig.push(c, &plain)));
        }
        let io = &rig.io;
        let srv = &mut srv;
        serve_to_completion(&mut t, hi - lo, |t| srv.handle_batch(t, io).0);
    }
    rig.io.flush(&mut t);
    let probes = (0..N_CONNS as u64)
        .map(|c| srv.get(&mut t, 1 + c).expect("populated key"))
        .collect();
    t.exit();
    (replies_by_conn(&rig, &pushed), probes)
}

/// Serves a genuine/impostor/unknown face-verification stream;
/// returns the per-connection reply streams.
fn run_face(
    shards: usize,
    cfg: ServerIoConfig,
    conns: &[u64],
    keys: &[u64],
    balanced: bool,
) -> Vec<Vec<Vec<u8>>> {
    const SIDE: usize = 32;
    let rig = ShardRig::new(shards, 2, cfg, balanced);
    let mut t = rig.thread();
    let space = DataSpace::Untrusted(Arc::clone(&rig.m));
    let mut db = FaceDb::new(space, SIDE, 4);
    db.init(&mut t);
    for id in 1..=4u64 {
        db.enroll(&mut t, id, &lbp_histogram(&synth_image(id, SIDE), SIDE));
    }
    let enrolled = db.fetch(&mut t, 2).expect("enrolled");
    let genuine = chi_square(&lbp_histogram(&synth_capture(2, SIDE, 9), SIDE), &enrolled);
    let impostor = chi_square(&lbp_histogram(&synth_image(4, SIDE), SIDE), &enrolled);
    let mut srv = FaceServer::new(db, (genuine + impostor) / 2.0);
    let mut pushed = Vec::with_capacity(conns.len());
    for (lo, hi) in rounds(conns.len()) {
        for (i, (&c, &k)) in conns[lo..hi].iter().zip(&keys[lo..hi]).enumerate() {
            let id = 1 + k % 4;
            let plain = match (lo + i) % 3 {
                0 => build_verify_request(id, SIDE, &synth_capture(id, SIDE, (lo + i) as u64)),
                1 => build_verify_request(id, SIDE, &synth_image(1 + (id % 4), SIDE)),
                _ => build_verify_request(99, SIDE, &synth_image(id, SIDE)),
            };
            pushed.push((c, rig.push(c, &plain)));
        }
        let io = &rig.io;
        let srv = &mut srv;
        serve_to_completion(&mut t, hi - lo, |t| srv.handle_batch(t, io));
    }
    rig.io.flush(&mut t);
    t.exit();
    replies_by_conn(&rig, &pushed)
}

// ---------------------------------------------------------------------
// Satellite: sharded == single-socket, per connection
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Binary-KVS GET replies are byte-identical per connection across
    /// 1–4 shards and both sub-batch policies.
    #[test]
    fn sharded_kvs_matches_single_socket_per_connection(
        seed in prop::collection::vec(any::<u8>(), 32..33),
    ) {
        let (conns, keys) = request_stream(&seed);
        let reference = run_kvs(1, policies()[0].clone(), &conns, &keys, false, false);
        for cfg in policies() {
            for shards in 1..=4usize {
                let got = run_kvs(shards, cfg.clone(), &conns, &keys, false, false);
                prop_assert_eq!(
                    &got, &reference,
                    "binary KVS diverged (shards={}, {})", shards, cfg.policy_label()
                );
            }
        }
    }

    /// memcached-text GET replies are byte-identical per connection
    /// across 1–4 shards and both sub-batch policies.
    #[test]
    fn sharded_text_kvs_matches_single_socket_per_connection(
        seed in prop::collection::vec(any::<u8>(), 32..33),
    ) {
        let (conns, keys) = request_stream(&seed);
        let reference = run_kvs(1, policies()[0].clone(), &conns, &keys, true, false);
        for cfg in policies() {
            for shards in 1..=4usize {
                let got = run_kvs(shards, cfg.clone(), &conns, &keys, true, false);
                prop_assert_eq!(
                    &got, &reference,
                    "text KVS diverged (shards={}, {})", shards, cfg.policy_label()
                );
            }
        }
    }

    /// Parameter-server read replies and the post-run counters are
    /// identical across 1–4 shards and both sub-batch policies: reads
    /// never race updates, and the updates commute.
    #[test]
    fn sharded_param_server_matches_single_socket_per_connection(
        seed in prop::collection::vec(any::<u8>(), 32..33),
    ) {
        let (conns, keys) = request_stream(&seed);
        let (ref_replies, ref_probes) = run_param(1, policies()[0].clone(), &conns, &keys, false);
        for cfg in policies() {
            for shards in 1..=4usize {
                let (replies, probes) = run_param(shards, cfg.clone(), &conns, &keys, false);
                prop_assert_eq!(
                    &replies, &ref_replies,
                    "param server replies diverged (shards={}, {})", shards, cfg.policy_label()
                );
                prop_assert_eq!(
                    &probes, &ref_probes,
                    "param server state diverged (shards={}, {})", shards, cfg.policy_label()
                );
            }
        }
    }

    /// Face-verification verdicts are byte-identical per connection
    /// across 1–4 shards and both sub-batch policies.
    #[test]
    fn sharded_face_server_matches_single_socket_per_connection(
        seed in prop::collection::vec(any::<u8>(), 32..33),
    ) {
        let (conns, keys) = request_stream(&seed);
        let reference = run_face(1, policies()[0].clone(), &conns, &keys, false);
        for cfg in policies() {
            for shards in 1..=4usize {
                let got = run_face(shards, cfg.clone(), &conns, &keys, false);
                prop_assert_eq!(
                    &got, &reference,
                    "face server diverged (shards={}, {})", shards, cfg.policy_label()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Satellite: the balance layer preserves per-connection bytes
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Re-pinning + stealing (aggressive: period 2, two moves) return
    /// byte-identical per-connection binary-KVS replies to the static
    /// sharded path, across 1–4 shards and both sub-batch policies.
    #[test]
    fn balanced_kvs_matches_the_static_sharded_path(
        seed in prop::collection::vec(any::<u8>(), 32..33),
    ) {
        let (conns, keys) = request_stream(&seed);
        for cfg in policies() {
            for shards in 1..=4usize {
                let stat = run_kvs(shards, cfg.clone(), &conns, &keys, false, false);
                let bal = run_kvs(shards, cfg.clone(), &conns, &keys, false, true);
                prop_assert_eq!(
                    &bal, &stat,
                    "balanced binary KVS diverged (shards={}, {})", shards, cfg.policy_label()
                );
            }
        }
    }

    /// Same for the memcached-text protocol.
    #[test]
    fn balanced_text_kvs_matches_the_static_sharded_path(
        seed in prop::collection::vec(any::<u8>(), 32..33),
    ) {
        let (conns, keys) = request_stream(&seed);
        for cfg in policies() {
            for shards in 1..=4usize {
                let stat = run_kvs(shards, cfg.clone(), &conns, &keys, true, false);
                let bal = run_kvs(shards, cfg.clone(), &conns, &keys, true, true);
                prop_assert_eq!(
                    &bal, &stat,
                    "balanced text KVS diverged (shards={}, {})", shards, cfg.policy_label()
                );
            }
        }
    }

    /// Same for the parameter server, replies *and* post-run state.
    #[test]
    fn balanced_param_server_matches_the_static_sharded_path(
        seed in prop::collection::vec(any::<u8>(), 32..33),
    ) {
        let (conns, keys) = request_stream(&seed);
        for cfg in policies() {
            for shards in 1..=4usize {
                let (stat_replies, stat_probes) =
                    run_param(shards, cfg.clone(), &conns, &keys, false);
                let (bal_replies, bal_probes) =
                    run_param(shards, cfg.clone(), &conns, &keys, true);
                prop_assert_eq!(
                    &bal_replies, &stat_replies,
                    "balanced param replies diverged (shards={}, {})", shards, cfg.policy_label()
                );
                prop_assert_eq!(
                    &bal_probes, &stat_probes,
                    "balanced param state diverged (shards={}, {})", shards, cfg.policy_label()
                );
            }
        }
    }

    /// Same for the face-verification server.
    #[test]
    fn balanced_face_server_matches_the_static_sharded_path(
        seed in prop::collection::vec(any::<u8>(), 32..33),
    ) {
        let (conns, keys) = request_stream(&seed);
        for cfg in policies() {
            for shards in 1..=4usize {
                let stat = run_face(shards, cfg.clone(), &conns, &keys, false);
                let bal = run_face(shards, cfg.clone(), &conns, &keys, true);
                prop_assert_eq!(
                    &bal, &stat,
                    "balanced face server diverged (shards={}, {})", shards, cfg.policy_label()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Satellite: cost accounting on the sharded path
// ---------------------------------------------------------------------

/// With every shard non-empty, a sharded reap costs exactly one
/// syscall trap and one kernel-metadata walk per shard on the receive
/// leg, and the unsequenced send leg matches — independent of the RPC
/// worker count (one sub-batch per *shard*, not per worker).
#[test]
fn one_trap_and_one_meta_charge_per_shard_sub_batch() {
    for shards in [2usize, 4] {
        let rig = ShardRig::new(
            shards,
            2,
            ServerIoConfig::with_buf_len(8192).batch(8),
            false,
        );
        let mut t = rig.thread();
        for s in 0..shards {
            let conn = (0..64u64)
                .find(|&c| shard_for(c, shards) == s)
                .expect("a connection for every shard");
            for i in 0..2u8 {
                rig.push(conn, &[s as u8 * 8 + i; 24]);
            }
        }
        let s0 = rig.m.stats.snapshot();
        let msgs = rig.io.recv_batch(&mut t);
        assert_eq!(msgs.len(), 2 * shards, "every queued message reaped");
        let d = rig.m.stats.snapshot() - s0;
        assert_eq!(d.syscalls, shards as u64, "one trap per shard sub-batch");
        assert_eq!(
            d.kernel_meta_reads, shards as u64,
            "one kernel-metadata walk per shard sub-batch"
        );
        let s0 = rig.m.stats.snapshot();
        rig.io.send_batch(&mut t, &msgs);
        let d = rig.m.stats.snapshot() - s0;
        assert_eq!(d.syscalls, shards as u64, "one trap per send sub-batch");
        assert_eq!(
            d.kernel_meta_reads, shards as u64,
            "one kernel-metadata walk per send sub-batch"
        );
        t.exit();
    }
}

/// An empty shard's poll pays the trap but skips the metadata walk
/// (the queue check comes first), and the send leg skips the empty
/// shard entirely.
#[test]
fn empty_shard_poll_costs_a_trap_but_no_meta_walk() {
    let rig = ShardRig::new(2, 2, ServerIoConfig::with_buf_len(8192).batch(8), false);
    let mut t = rig.thread();
    let conn = (0..64u64)
        .find(|&c| shard_for(c, 2) == 0)
        .expect("a connection for shard 0");
    for i in 0..3u8 {
        rig.push(conn, &[i; 24]);
    }
    let s0 = rig.m.stats.snapshot();
    let msgs = rig.io.recv_batch(&mut t);
    assert_eq!(msgs.len(), 3, "shard 0's queue fully reaped");
    let d = rig.m.stats.snapshot() - s0;
    assert_eq!(d.syscalls, 2, "both shards were polled");
    assert_eq!(
        d.kernel_meta_reads, 1,
        "the empty shard must skip the kernel-metadata walk"
    );
    let s0 = rig.m.stats.snapshot();
    rig.io.send_batch(&mut t, &msgs);
    let d = rig.m.stats.snapshot() - s0;
    assert_eq!(d.syscalls, 1, "the empty shard sends nothing");
    assert_eq!(d.kernel_meta_reads, 1);
    t.exit();
}

/// A steal is one extra `recv_mmsg` sub-batch: one more trap and one
/// more metadata walk on the receive leg, and one extra unsequenced
/// send sub-batch (second wave) on the victim's socket — the whole
/// stolen run still amortizes like any other sub-batch instead of
/// costing per message.
#[test]
fn a_steal_costs_one_extra_trap_and_meta_walk() {
    let cfg = ServerIoConfig::with_buf_len(8192)
        .batch(2)
        .balanced(BalanceConfig {
            repin: false,
            steal: true,
            ..BalanceConfig::default()
        });
    let rig = ShardRig::new(2, 2, cfg, false);
    let mut t = rig.thread();
    let conn = (0..64u64)
        .find(|&c| shard_for(c, 2) == 0)
        .expect("a connection for shard 0");
    for i in 0..6u8 {
        rig.push(conn, &[i; 24]);
    }
    let s0 = rig.m.stats.snapshot();
    let msgs = rig.io.recv_batch(&mut t);
    // Primary reap takes 2; the idle sibling steals half the 4-deep
    // residue, capped at its 2-slot staging capacity.
    assert_eq!(msgs.len(), 4, "shard 0's run plus the stolen run");
    let d = rig.m.stats.snapshot() - s0;
    assert_eq!(
        d.syscalls, 3,
        "two shard polls plus one steal sub-batch on the receive leg"
    );
    assert_eq!(
        d.kernel_meta_reads, 2,
        "the victim's reap and the steal each walk the metadata once"
    );
    assert_eq!(d.shard.replica[0].steals_taken[1], 1);
    assert_eq!(d.shard.replica[0].steals_given[0], 1);
    let s0 = rig.m.stats.snapshot();
    rig.io.send_batch(&mut t, &msgs);
    let d = rig.m.stats.snapshot() - s0;
    assert_eq!(d.syscalls, 2, "victim-socket send plus the second wave");
    assert_eq!(d.kernel_meta_reads, 2);
    t.exit();
}
