//! Property-based tests across the stack: SUVM against a shadow
//! memory model, spointer semantics, direct/cached consistency.

use std::sync::Arc;

use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::suvm::spointer::SPtr;
use eleos::suvm::{Suvm, SuvmConfig};
use proptest::prelude::*;

fn rig(seal_sub_pages: bool) -> (Arc<SgxMachine>, Arc<Suvm>, ThreadCtx) {
    let m = SgxMachine::new(MachineConfig {
        epc_bytes: 2 << 20,
        ..MachineConfig::tiny()
    });
    let e = m.driver.create_enclave(&m, 16 << 20);
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let s = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 8 * 4096, // tiny cache: constant eviction
            backing_bytes: 1 << 20,
            seal_sub_pages,
            ..SuvmConfig::tiny()
        },
    );
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    (m, s, t)
}

/// One step of the random workload.
#[derive(Debug, Clone)]
enum Op {
    Write { at: usize, data: Vec<u8> },
    Read { at: usize, len: usize },
    ReadDirect { at: usize, len: usize },
    WriteDirect { at: usize, data: Vec<u8> },
    EvictAll,
}

fn op_strategy(span: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..span, prop::collection::vec(any::<u8>(), 1..300))
            .prop_map(|(at, data)| Op::Write { at, data }),
        (0..span, 1usize..300).prop_map(|(at, len)| Op::Read { at, len }),
        (0..span, 1usize..300).prop_map(|(at, len)| Op::ReadDirect { at, len }),
        (0..span, prop::collection::vec(any::<u8>(), 1..200))
            .prop_map(|(at, data)| Op::WriteDirect { at, data }),
        Just(Op::EvictAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SUVM behaves exactly like flat memory under arbitrary
    /// interleavings of cached/direct reads/writes and full evictions.
    #[test]
    fn suvm_matches_shadow_memory(ops in prop::collection::vec(op_strategy(60_000), 1..50)) {
        let (_m, s, mut t) = rig(true);
        let span = 64 << 10;
        let sva = s.malloc(span);
        let mut shadow = vec![0u8; span];
        for op in ops {
            match op {
                Op::Write { at, data } => {
                    let at = at.min(span - data.len());
                    s.write(&mut t, sva + at as u64, &data);
                    shadow[at..at + data.len()].copy_from_slice(&data);
                }
                Op::WriteDirect { at, data } => {
                    let at = at.min(span - data.len());
                    s.write_direct(&mut t, sva + at as u64, &data);
                    shadow[at..at + data.len()].copy_from_slice(&data);
                }
                Op::Read { at, len } => {
                    let at = at.min(span - len);
                    let mut buf = vec![0u8; len];
                    s.read(&mut t, sva + at as u64, &mut buf);
                    prop_assert_eq!(&buf, &shadow[at..at + len]);
                }
                Op::ReadDirect { at, len } => {
                    let at = at.min(span - len);
                    let mut buf = vec![0u8; len];
                    s.read_direct(&mut t, sva + at as u64, &mut buf);
                    prop_assert_eq!(&buf, &shadow[at..at + len]);
                }
                Op::EvictAll => {
                    while s.evict_one(&mut t) {}
                    prop_assert_eq!(s.resident_pages(), 0);
                }
            }
        }
        t.exit();
    }

    /// Typed spointers round-trip arbitrary values at arbitrary
    /// (aligned) offsets, across evictions.
    #[test]
    fn spointer_typed_roundtrip(values in prop::collection::vec((0usize..8000, any::<u64>()), 1..60)) {
        let (_m, s, mut t) = rig(false);
        let sva = s.malloc(64 << 10);
        let mut shadow = std::collections::HashMap::new();
        for (slot, v) in values {
            let p: SPtr<u64> = SPtr::new(&s, sva + (slot * 8) as u64);
            p.set(&mut t, v);
            shadow.insert(slot, v);
        }
        while s.evict_one(&mut t) {}
        for (slot, v) in shadow {
            let p: SPtr<u64> = SPtr::new(&s, sva + (slot * 8) as u64);
            prop_assert_eq!(p.get(&mut t), v, "slot {}", slot);
        }
        t.exit();
    }

    /// Spointer arithmetic (add/sub/offset) always lands on the right
    /// element, and cross-page moves unlink.
    #[test]
    fn spointer_arithmetic(steps in prop::collection::vec((any::<bool>(), 1u64..2000), 1..40)) {
        let (_m, s, mut t) = rig(false);
        let n = 8192u64;
        let sva = s.malloc((n * 8) as usize);
        // Identity contents.
        let mut p: SPtr<u64> = SPtr::new(&s, sva);
        for i in 0..n {
            p.set(&mut t, i * 3);
            p.add(1);
        }
        let mut pos = 0u64;
        let mut p: SPtr<u64> = SPtr::new(&s, sva);
        for (fwd, by) in steps {
            if fwd {
                let by = by.min(n - 1 - pos);
                p.add(by);
                pos += by;
            } else {
                let by = by.min(pos);
                p.sub(by);
                pos -= by;
            }
            prop_assert_eq!(p.get(&mut t), pos * 3, "pos {}", pos);
            let peek = p.offset(0);
            prop_assert!(!peek.is_linked(), "derived spointers start unlinked");
        }
        t.exit();
    }

    /// The memcached-style KVS behaves like a `HashMap` under random
    /// SET/GET/DELETE sequences, with the kv pool in SUVM behind a tiny
    /// page cache.
    #[test]
    fn kvs_matches_hashmap_model(ops in prop::collection::vec(
        (0u8..3, 0u16..40, 1usize..400), 1..120)) {
        use eleos::apps::kvs::Kvs;
        use eleos::apps::space::DataSpace;
        // A roomier backing store: the slab allocator carves 1 MiB
        // slabs, but the page cache stays tiny (8 frames).
        let m = SgxMachine::new(MachineConfig {
            epc_bytes: 2 << 20,
            untrusted_bytes: 64 << 20,
            ..MachineConfig::tiny()
        });
        let e = m.driver.create_enclave(&m, 32 << 20);
        let t0 = ThreadCtx::for_enclave(&m, &e, 0);
        let s = Suvm::new(
            &t0,
            SuvmConfig {
                epcpp_bytes: 8 * 4096,
                backing_bytes: 16 << 20,
                ..SuvmConfig::tiny()
            },
        );
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let machine = Arc::clone(&m);
        let mut kvs = Kvs::new(
            DataSpace::Untrusted(Arc::clone(&machine)),
            DataSpace::suvm(&s),
            8 << 20,
            256,
        );
        kvs.init(&mut t);
        let mut model: std::collections::HashMap<Vec<u8>, Vec<u8>> =
            std::collections::HashMap::new();
        for (op, key_id, vlen) in ops {
            let key = format!("k{key_id}").into_bytes();
            match op {
                0 => {
                    let value = vec![(key_id % 251) as u8; vlen];
                    kvs.set(&mut t, &key, &value);
                    model.insert(key, value);
                }
                1 => {
                    prop_assert_eq!(kvs.get(&mut t, &key), model.get(&key).cloned());
                }
                _ => {
                    prop_assert_eq!(kvs.delete(&mut t, &key), model.remove(&key).is_some());
                }
            }
            prop_assert_eq!(kvs.len(), model.len() as u64);
        }
        // Final sweep: every model entry is present and correct.
        for (k, v) in &model {
            let got = kvs.get(&mut t, k);
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        t.exit();
    }

    /// Ballooning to any size keeps data intact and respects limits.
    #[test]
    fn resize_preserves_contents(sizes in prop::collection::vec(2usize..16, 1..8)) {
        let (_m, s, mut t) = rig(false);
        let sva = s.malloc(32 * 4096);
        for page in 0..32u64 {
            s.write(&mut t, sva + page * 4096, &[page as u8 + 1; 32]);
        }
        for target in sizes {
            s.resize(&mut t, target);
            prop_assert!(s.frame_limit() <= 8.max(target));
            for page in (0..32u64).step_by(5) {
                let mut b = [0u8; 32];
                s.read(&mut t, sva + page * 4096, &mut b);
                prop_assert_eq!(b, [page as u8 + 1; 32]);
            }
        }
        t.exit();
    }
}
