//! Concurrency stress across the stack: application threads, the
//! background swapper, driver pressure from a second enclave, and the
//! exit-less RPC pool, all at once.

use std::sync::Arc;
use std::time::Duration;

use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{RpcService, UntrustedFn};
use eleos::suvm::{Suvm, SuvmConfig, Swapper};

#[test]
fn suvm_under_full_pressure() {
    // Tight EPC so the driver, the SUVM evictor and the swapper are
    // all active while four app threads hammer disjoint regions.
    let m = SgxMachine::new(MachineConfig {
        epc_bytes: 6 << 20,
        cores: 8,
        ..MachineConfig::tiny()
    });
    let e = m.driver.create_enclave(&m, 64 << 20);
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let suvm = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 2 << 20,
            backing_bytes: 32 << 20,
            ..SuvmConfig::tiny()
        },
    );
    // A second enclave churns hardware paging in the background.
    let e2 = m.driver.create_enclave(&m, 16 << 20);
    let churn = {
        let m = Arc::clone(&m);
        let e2 = Arc::clone(&e2);
        std::thread::spawn(move || {
            let mut t = ThreadCtx::for_enclave(&m, &e2, 5);
            t.enter();
            let base = e2.alloc(8 << 20);
            for round in 0..4u64 {
                for page in 0..2048u64 {
                    t.write_enclave(base + page * 4096, &[round as u8; 16]);
                }
            }
            t.exit();
        })
    };
    let swapper = Swapper::spawn(&m, &suvm, 6, Duration::from_millis(1));

    let region = suvm.malloc(16 << 20);
    let mut handles = Vec::new();
    for th in 0..4u64 {
        let m = Arc::clone(&m);
        let e = Arc::clone(&e);
        let s = Arc::clone(&suvm);
        handles.push(std::thread::spawn(move || {
            let mut t = ThreadCtx::for_enclave(&m, &e, th as usize);
            t.enter();
            let base = region + th * (4 << 20);
            for round in 0..6u64 {
                for page in 0..1024u64 {
                    let tag = [(th * 100 + page % 90 + round) as u8; 24];
                    s.write(&mut t, base + page * 4096, &tag);
                }
                for page in 0..1024u64 {
                    let mut b = [0u8; 24];
                    s.read(&mut t, base + page * 4096, &mut b);
                    assert_eq!(
                        b,
                        [(th * 100 + page % 90 + round) as u8; 24],
                        "thread {th} round {round} page {page}"
                    );
                }
            }
            t.exit();
        }));
    }
    for h in handles {
        h.join().expect("app thread");
    }
    churn.join().expect("churn thread");
    swapper.stop();

    let s = m.stats.snapshot();
    assert!(s.suvm_evictions > 0);
    assert!(s.hw_faults > 0, "the churn enclave must have paged");
}

#[test]
fn rpc_pool_saturated_from_many_threads() {
    let m = SgxMachine::new(MachineConfig::tiny());
    let svc = Arc::new(
        RpcService::builder(&m)
            .register(
                1,
                UntrustedFn::new(|ctx, a| {
                    // A worker that also touches untrusted memory.
                    let scratch = ctx.machine.alloc_untrusted(256);
                    ctx.write_untrusted(scratch, &a[0].to_le_bytes());
                    let mut b = [0u8; 8];
                    ctx.read_untrusted(scratch, &mut b);
                    ctx.machine.free_untrusted(scratch);
                    u64::from_le_bytes(b).wrapping_mul(3)
                }),
            )
            .workers(2, &[2, 3])
            .slots(4)
            .build(),
    );
    let e = m.driver.create_enclave(&m, 8 << 20);
    let mut handles = Vec::new();
    for th in 0..2usize {
        let m = Arc::clone(&m);
        let e = Arc::clone(&e);
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            let mut t = ThreadCtx::for_enclave(&m, &e, th);
            t.enter();
            for i in 0..500u64 {
                assert_eq!(svc.call(&mut t, 1, [i, 0, 0, 0]), i.wrapping_mul(3));
            }
            t.exit();
        }));
    }
    for h in handles {
        h.join().expect("caller thread");
    }
    assert_eq!(m.stats.snapshot().rpc_calls, 1000);
}

#[test]
fn ballooning_between_two_live_suvm_enclaves() {
    let m = SgxMachine::new(MachineConfig {
        epc_bytes: 8 << 20,
        ..MachineConfig::tiny()
    });
    let mk = |core: usize| {
        let e = m.driver.create_enclave(&m, 32 << 20);
        let t0 = ThreadCtx::for_enclave(&m, &e, core);
        let s = Suvm::new(
            &t0,
            SuvmConfig {
                epcpp_bytes: 6 << 20, // oversubscribed once both exist
                backing_bytes: 16 << 20,
                headroom_bytes: 512 << 10,
                ..SuvmConfig::tiny()
            },
        );
        (e, s)
    };
    let (e1, s1) = mk(0);
    let (e2, s2) = mk(1);
    let mut handles = Vec::new();
    for (idx, (e, s)) in [(0usize, (e1, s1)), (1, (e2, s2))] {
        let m = Arc::clone(&m);
        handles.push(std::thread::spawn(move || {
            let mut t = ThreadCtx::for_enclave(&m, &e, idx);
            t.enter();
            let a = s.malloc(8 << 20);
            for round in 0..3u64 {
                for page in 0..2048u64 {
                    s.write(&mut t, a + page * 4096, &[(idx as u8 + 1) * 7; 16]);
                    if page % 256 == 0 {
                        s.swapper_tick(&mut t);
                    }
                }
                for page in (0..2048u64).step_by(3) {
                    let mut b = [0u8; 16];
                    s.read(&mut t, a + page * 4096, &mut b);
                    assert_eq!(b, [(idx as u8 + 1) * 7; 16], "enclave {idx} round {round}");
                }
            }
            // After ballooning, each EPC++ respects its share.
            let share_bytes = m.driver.available_epc_for(e.id) * 4096;
            assert!(
                s.frame_limit() * 4096 <= share_bytes,
                "EPC++ {} frames exceeds share {} bytes",
                s.frame_limit(),
                share_bytes
            );
            t.exit();
        }));
    }
    for h in handles {
        h.join().expect("enclave thread");
    }
}
