//! Equivalence suite for the replicated enclave fleet:
//!
//! - a fleet of N replicas (each running the per-shard reap→decrypt→
//!   serve→seal→send pipeline over its owned slice of the socket set)
//!   returns byte-identical replies *per connection* to the
//!   single-replica baseline, across kill/respawn schedules that cross
//!   fence after fence — including the stale-reimport schedule
//!   (kill A → respawn A → kill B) that only the versioned restore
//!   merge survives;
//! - a sealed snapshot round-trips SUVM-backed KVS state exactly into
//!   a different enclave with its own SUVM instance, and the per-item
//!   write stamps survive so a re-import stays last-writer-wins;
//! - the global EPC allocator under multi-enclave contention: two
//!   fleet replicas faulting concurrently each keep their EPC++ within
//!   the driver's fair share, the over-share transient stays bounded
//!   by the write-back batch plus headroom, and a killed replica's
//!   resident frames are reclaimed immediately (survivor share grows).

use std::collections::VecDeque;
use std::sync::Arc;

use eleos::apps::fleet_io::{FleetConfig, FleetKvs, MaintenanceConfig};
use eleos::apps::io::{IoPath, ServerIoConfig};
use eleos::apps::kvs::{build_get, build_set, Kvs};
use eleos::apps::loadgen::attest_session;
use eleos::apps::space::DataSpace;
use eleos::apps::storage::{EngineConfig, SegmentConfig};
use eleos::apps::wire::Session;
use eleos::crypto::gcm::AesGcm128;
use eleos::crypto::Sealer;
use eleos::enclave::fleet::{Fleet, ReplicaState};
use eleos::enclave::host::Fd;
use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{with_syscalls, RpcService};
use eleos::suvm::{Suvm, SuvmConfig};
use proptest::prelude::*;

/// Sockets (= shards) the fleet serves.
const SHARDS: usize = 4;
/// Client connections the request streams multiplex.
const N_CONNS: usize = 8;
/// Rounds per run; a fence (kill or respawn) may fire after any
/// non-final round.
const ROUNDS: usize = 4;
/// Requests per round.
const PER_ROUND: usize = 8;
/// Seeded items every replica starts with.
const N_ITEMS: u64 = 24;

// ---------------------------------------------------------------------
// Fleet harness
// ---------------------------------------------------------------------

struct FleetRig {
    m: Arc<SgxMachine>,
    wire: Arc<Session>,
    fds: Vec<Fd>,
    fk: FleetKvs,
}

fn rig(replicas: usize) -> FleetRig {
    rig_with(replicas, EngineConfig::default())
}

/// Like [`rig`], but on an explicit storage engine. A third of the
/// seeded items carry a (long) TTL, so every snapshot/restore cycle in
/// the chaos schedules must carry expiry metadata intact for replies
/// to stay byte-identical.
fn rig_with(replicas: usize, engine: EngineConfig) -> FleetRig {
    rig_full(replicas, engine, None)
}

/// Like [`rig_with`], optionally running the background maintenance
/// plane.
fn rig_full(replicas: usize, engine: EngineConfig, maint: Option<MaintenanceConfig>) -> FleetRig {
    let m = SgxMachine::new(MachineConfig::tiny());
    let ut = ThreadCtx::untrusted(&m, 1);
    let fds: Vec<Fd> = (0..SHARDS).map(|_| m.host.socket(&ut, 256 << 10)).collect();
    let svc = with_syscalls(RpcService::builder(&m), &m)
        .workers(2, &[2, 3])
        .build();
    let wire = Arc::new(Session::handshake([9u8; 16], [0x63u8; 16]));
    {
        let mut hs = ThreadCtx::untrusted(&m, 1);
        attest_session(&mut hs, &wire);
    }
    let sealer: Arc<dyn Sealer> = Arc::new(AesGcm128::new(&[0x2au8; 16]));
    let fk = FleetKvs::new(
        &m,
        &fds,
        ServerIoConfig::with_buf_len(16 << 10)
            .batch(4)
            .shards(SHARDS),
        IoPath::Rpc(Arc::new(svc)),
        Arc::clone(&wire),
        sealer,
        FleetConfig {
            engine,
            maintenance: maint,
            ..FleetConfig::small(replicas)
        },
        |ctx, kvs| {
            for i in 0..N_ITEMS {
                if i % 3 == 0 {
                    kvs.set_with_ttl(ctx, format!("seed-{i}").as_bytes(), &[i as u8; 40], 3600);
                } else {
                    kvs.set(ctx, format!("seed-{i}").as_bytes(), &[i as u8; 40]);
                }
            }
        },
    );
    FleetRig { m, wire, fds, fk }
}

/// One request in the generated stream. Writes stay connection-local
/// (`own-{conn}-{slot}` keys): a conn's shard has exactly one owner
/// per fence interval, so conn-local state is the coherent part of the
/// store — exactly the regime the fence protocol must preserve.
#[derive(Clone, Copy, Debug)]
enum Req {
    /// GET of a seeded (never-written) global key.
    GetSeed(u64),
    /// SET of this connection's own key slot to a derived value.
    SetOwn(u8, u8),
    /// GET of this connection's own key slot (a deterministic miss
    /// until that slot's first SET).
    GetOwn(u8),
}

/// Derives `(conn, request)` pairs from proptest seed bytes.
fn request_stream(seed: &[u8]) -> Vec<(u64, Req)> {
    (0..ROUNDS * PER_ROUND)
        .map(|i| {
            let b = seed[i % seed.len()];
            let conn = (u64::from(b) + i as u64 * 3) % N_CONNS as u64;
            let slot = (b >> 3) % 3;
            let req = match b % 3 {
                0 => Req::GetSeed(u64::from(b) + i as u64),
                1 => Req::SetOwn(slot, b ^ (i as u8)),
                _ => Req::GetOwn(slot),
            };
            (conn, req)
        })
        .collect()
}

fn encode(conn: u64, req: Req) -> Vec<u8> {
    match req {
        Req::GetSeed(i) => build_get(format!("seed-{}", i % N_ITEMS).as_bytes()),
        Req::SetOwn(slot, v) => build_set(format!("own-{conn}-{slot}").as_bytes(), &[v; 24]),
        Req::GetOwn(slot) => build_get(format!("own-{conn}-{slot}").as_bytes()),
    }
}

/// A lifecycle action fired at the fence after round `.0`.
#[derive(Clone, Copy, Debug)]
enum Fence {
    Kill(usize),
    Respawn(usize),
    /// Epoch key rotation initiated by the given (serving) replica.
    Rekey(usize),
}

/// Runs the request stream through a `replicas`-wide fleet, firing
/// `schedule` actions at round fences, and returns the decrypted
/// replies regrouped per connection (per-shard FIFO order is
/// per-connection order; replies are drained every round so the
/// host's bounded response log never overflows).
fn run_fleet(
    replicas: usize,
    schedule: &[(usize, Fence)],
    reqs: &[(u64, Req)],
) -> Vec<Vec<Vec<u8>>> {
    run_fleet_with(replicas, schedule, reqs, EngineConfig::default())
}

/// [`run_fleet`] on an explicit storage engine.
fn run_fleet_with(
    replicas: usize,
    schedule: &[(usize, Fence)],
    reqs: &[(u64, Req)],
    engine: EngineConfig,
) -> Vec<Vec<Vec<u8>>> {
    run_fleet_full(replicas, schedule, reqs, engine, None)
}

/// [`run_fleet_with`] with the background maintenance plane when
/// `maint` is set: kills and respawns take the background path, and a
/// maintenance tick (engine byte-work + a delta round) runs after
/// every round — exactly the interleaving the serving bench drives.
fn run_fleet_full(
    replicas: usize,
    schedule: &[(usize, Fence)],
    reqs: &[(u64, Req)],
    engine: EngineConfig,
    maint: Option<MaintenanceConfig>,
) -> Vec<Vec<Vec<u8>>> {
    let ticking = maint.is_some();
    let r = rig_full(replicas, engine, maint);
    let ut = ThreadCtx::untrusted(&r.m, 1);
    let mut streams: Vec<VecDeque<Vec<u8>>> = vec![VecDeque::new(); SHARDS];
    let mut pushed: Vec<(u64, usize)> = Vec::with_capacity(reqs.len());
    for (round, slice) in reqs.chunks(PER_ROUND).enumerate() {
        for &(conn, req) in slice {
            let (s, _owner) = r.fk.map().route_replica(conn);
            r.m.host
                .push_request(&ut, r.fds[s], &r.wire.encrypt(&encode(conn, req)));
            pushed.push((conn, s));
        }
        let mut done = 0usize;
        while done < slice.len() {
            let got = r.fk.pump();
            assert!(got > 0, "queued requests must be served");
            done += got;
        }
        r.fk.flush();
        for (s, q) in streams.iter_mut().enumerate() {
            while let Some(resp) = r.m.host.pop_response(r.fds[s]) {
                q.push_back(r.wire.decrypt(&resp));
            }
        }
        for &(at, fence) in schedule {
            if at == round {
                match fence {
                    Fence::Kill(v) => {
                        r.fk.kill(v);
                    }
                    Fence::Respawn(v) => {
                        r.fk.respawn(v);
                    }
                    Fence::Rekey(v) => {
                        r.fk.rekey_wire(v);
                    }
                }
            }
        }
        if ticking {
            r.fk.maintenance_tick();
        }
    }
    let mut out = vec![Vec::new(); N_CONNS];
    for (conn, s) in pushed {
        let reply = streams[s].pop_front().expect("a reply per request");
        out[conn as usize].push(reply);
    }
    assert!(
        streams.iter().all(VecDeque::is_empty),
        "no surplus replies on any shard"
    );
    out
}

/// Kill/respawn schedules valid for a `replicas`-wide fleet. The last
/// two-replica schedule (kill 1 → respawn 1 → kill 0) is the stale
/// re-import regression: replica 0's snapshot at the final fence still
/// carries copies of shard-1/3 keys from the first failover, and only
/// the versioned merge keeps them from clobbering replica 1's fresher
/// writes.
fn schedules(replicas: usize) -> Vec<Vec<(usize, Fence)>> {
    let mut v = vec![vec![]];
    if replicas >= 2 {
        v.push(vec![(0, Fence::Kill(replicas - 1))]);
        v.push(vec![(0, Fence::Kill(1)), (1, Fence::Respawn(1))]);
        v.push(vec![
            (0, Fence::Kill(1)),
            (1, Fence::Respawn(1)),
            (2, Fence::Kill(0)),
        ]);
    }
    if replicas >= 3 {
        v.push(vec![
            (0, Fence::Kill(1)),
            (1, Fence::Kill(2)),
            (2, Fence::Respawn(1)),
        ]);
    }
    // Epoch rotations compose with the chaos schedules: a rekey at
    // every fence, and a rekey interleaved with a kill/respawn pair
    // (the announcement only reaches serving peers).
    v.push(vec![
        (0, Fence::Rekey(0)),
        (1, Fence::Rekey(0)),
        (2, Fence::Rekey(0)),
    ]);
    if replicas >= 2 {
        v.push(vec![
            (0, Fence::Kill(1)),
            (1, Fence::Rekey(0)),
            (2, Fence::Respawn(1)),
        ]);
    }
    v
}

// ---------------------------------------------------------------------
// Tentpole: replicas=N == replicas=1, across kill/respawn schedules
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// A fleet of 2 or 3 replicas returns byte-identical per-connection
    /// replies to the single-replica baseline for every valid
    /// kill/respawn schedule: failover loses nothing, preserves FIFO,
    /// and restores state before the heir serves.
    #[test]
    fn fleet_matches_single_replica_across_chaos_schedules(
        seed in prop::collection::vec(any::<u8>(), 16..17),
    ) {
        let reqs = request_stream(&seed);
        let reference = run_fleet(1, &[], &reqs);
        for replicas in 2..=3usize {
            for schedule in schedules(replicas) {
                let got = run_fleet(replicas, &schedule, &reqs);
                prop_assert_eq!(
                    &got, &reference,
                    "fleet diverged (replicas={}, schedule={:?})", replicas, &schedule
                );
            }
        }
    }
}

/// The stale re-import schedule, deterministically: a key written
/// before the first failover, rewritten by its rejoined owner, must
/// survive the *other* replica's later death — replica 0's snapshot
/// still carries the pre-rejoin copy, and the versioned merge must
/// refuse it.
#[test]
fn reimported_stale_snapshot_never_clobbers_fresher_writes() {
    let r = rig(2);
    let ut = ThreadCtx::untrusted(&r.m, 1);
    // A connection whose shard starts on replica 1.
    let conn = (0..64u64)
        .find(|&c| {
            let (s, _) = r.fk.map().route_replica(c);
            s % 2 == 1
        })
        .expect("a replica-1 connection");
    let (s, _) = r.fk.map().route_replica(conn);
    let do_req = |plain: &[u8]| -> Vec<u8> {
        r.m.host.push_request(&ut, r.fds[s], &r.wire.encrypt(plain));
        while r.fk.pump() == 0 {}
        r.fk.flush();
        r.wire
            .decrypt(&r.m.host.pop_response(r.fds[s]).expect("a reply"))
    };
    assert_eq!(do_req(&build_set(b"bounce", &[1u8; 16])), [1u8]);
    r.fk.kill(1); // heir 0 imports bounce=v1
    assert_eq!(do_req(&build_set(b"bounce", &[2u8; 16])), [1u8]);
    r.fk.respawn(1); // rejoiner imports bounce=v2 from donor 0
    assert_eq!(do_req(&build_set(b"bounce", &[3u8; 16])), [1u8]);
    r.fk.kill(0); // victim 0's snapshot still holds bounce=v2 — stale
    let reply = do_req(&build_get(b"bounce"));
    assert_eq!(reply[0], 1, "key must survive the schedule");
    assert_eq!(&reply[5..], [3u8; 16], "stale re-import must not win");
    let st = r.m.stats.snapshot();
    assert_eq!(st.fleet_failovers, 2);
    assert_eq!(st.fleet_snapshots, 3);
    assert_eq!(st.fleet_restores, 3);
}

// ---------------------------------------------------------------------
// Satellite: snapshot → restore round-trips SUVM-backed state
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// A quiesce-at-fence snapshot of a SUVM-backed store restores
    /// byte-exactly into a different enclave with its own SUVM
    /// instance, through the serialized byte form a cross-enclave
    /// channel carries — and per-item write stamps survive, so a
    /// second import applies nothing.
    #[test]
    fn snapshot_roundtrips_suvm_backed_state_exactly(
        seed in prop::collection::vec(any::<u8>(), 16..17),
    ) {
        let m = SgxMachine::new(MachineConfig::tiny());
        let suvm_cfg = SuvmConfig {
            epcpp_bytes: 16 * 4096,
            backing_bytes: 8 << 20,
            ..SuvmConfig::tiny()
        };
        let mk = |core: usize| {
            let e = m.driver.create_enclave(&m, 16 << 20);
            let t0 = ThreadCtx::for_enclave(&m, &e, core);
            let suvm = Suvm::new(&t0, suvm_cfg.clone());
            let kvs = Kvs::new(
                DataSpace::Untrusted(Arc::clone(&m)),
                DataSpace::suvm(&suvm),
                8 << 20,
                256,
            );
            let mut t = ThreadCtx::for_enclave(&m, &e, core);
            t.enter();
            kvs.init(&mut t);
            (suvm, kvs, t)
        };
        let (suvm_a, mut a, mut ta) = mk(0);
        // Working set larger than the 16-frame EPC++ cache: SUVM pages
        // while the store is built.
        let n = 160u32;
        let value = |i: u32| {
            let b = seed[i as usize % seed.len()];
            vec![b ^ i as u8; 512 + (b as usize % 512)]
        };
        for i in 0..n {
            a.set(&mut ta, format!("it-{i}").as_bytes(), &value(i));
        }
        // A second write interval rewrites some items at a newer stamp.
        a.set_write_version(3);
        for i in (0..n).step_by(5) {
            a.set(&mut ta, format!("it-{i}").as_bytes(), &value(i + 1000));
        }
        prop_assert!(
            m.stats.snapshot().suvm_evictions > 0,
            "the working set must overflow EPC++"
        );
        // The fence: quiesce (every dirty page sealed home), then seal.
        suvm_a.quiesce(&mut ta);
        let sealer = AesGcm128::new(&[0x77u8; 16]);
        let snap = a.snapshot(&mut ta, &sealer, 1, 7);
        prop_assert_eq!(snap.epoch(), 7);
        let bytes = snap.to_bytes();
        prop_assert!(!bytes.windows(4).any(|w| w == b"it-1"), "sealed bytes leak keys");
        let reread = eleos::suvm::Snapshot::from_bytes(&bytes);

        let (_suvm_b, mut b, mut tb) = mk(1);
        prop_assert_eq!(b.restore(&mut tb, &sealer, &reread), u64::from(n));
        for i in 0..n {
            let expect = if i % 5 == 0 { value(i + 1000) } else { value(i) };
            prop_assert_eq!(
                b.get(&mut tb, format!("it-{i}").as_bytes()).expect("restored key"),
                expect,
                "item {} diverged after restore", i
            );
        }
        // Write stamps survived the round-trip: re-importing the same
        // snapshot is a no-op, and an interval-3 write in B supersedes
        // the snapshot's interval-3 copy only by being applied later.
        prop_assert_eq!(b.restore(&mut tb, &sealer, &reread), 0);
        ta.exit();
        tb.exit();
    }
}

// ---------------------------------------------------------------------
// Satellite: the global EPC allocator under fleet contention
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Two fleet replicas faulting SUVM pages concurrently: each
    /// EPC++ balloons to within its driver fair share, the over-share
    /// transient stays bounded by one write-back batch plus the
    /// configured headroom, and killing one replica reclaims its
    /// frames immediately — the survivor's share doubles and it keeps
    /// serving its data.
    #[test]
    fn epc_stays_fair_shared_under_concurrent_replica_faulting(
        seed in prop::collection::vec(any::<u8>(), 8..9),
    ) {
        const PAGE: usize = 4096;
        let m = SgxMachine::new(MachineConfig {
            epc_bytes: 8 << 20,
            ..MachineConfig::tiny()
        });
        let wb_batch = usize::from(seed[0] % 2) * 4; // inline and batched write-back
        let suvm_cfg = SuvmConfig {
            epcpp_bytes: 6 << 20, // oversubscribed once both replicas exist
            backing_bytes: 16 << 20,
            headroom_bytes: 512 << 10,
            wb_batch,
            ..SuvmConfig::tiny()
        };
        let fleet = Arc::new(Fleet::new(&m, 2, 32 << 20));
        fleet.mark_serving(0);
        fleet.mark_serving(1);
        let mut handles = Vec::new();
        for idx in 0..2usize {
            let m = Arc::clone(&m);
            let fleet = Arc::clone(&fleet);
            let cfg = suvm_cfg.clone();
            let seed = seed.clone();
            handles.push(std::thread::spawn(move || {
                let e = fleet.enclave(idx);
                let t0 = ThreadCtx::for_enclave(&m, &e, idx);
                let s = Suvm::new(&t0, cfg.clone());
                let mut t = ThreadCtx::for_enclave(&m, &e, idx);
                t.enter();
                let a = s.malloc(8 << 20);
                let stride = 1 + u64::from(seed[(idx + 1) % seed.len()] % 4);
                for round in 0..2u64 {
                    for page in (0..1536u64).step_by(stride as usize) {
                        s.write(&mut t, a + page * PAGE as u64, &[idx as u8 + 1; 32]);
                        if page % 192 == 0 {
                            s.swapper_tick(&mut t);
                        }
                    }
                    let _ = round;
                }
                s.swapper_tick(&mut t);
                // Fair share while both replicas are live.
                let share = m.driver.available_epc_for(e.id);
                assert!(
                    s.frame_limit() * cfg.page_size <= share * PAGE,
                    "EPC++ {} frames exceeds the fair share of {} frames",
                    s.frame_limit(),
                    share
                );
                // Spot-check the data survived the ballooning churn.
                let mut b = [0u8; 32];
                s.read(&mut t, a + 7 * stride * PAGE as u64, &mut b);
                assert_eq!(b, [idx as u8 + 1; 32]);
                t.exit();
                (s, a)
            }));
        }
        let done: Vec<_> = handles.into_iter().map(|h| h.join().expect("replica thread")).collect();
        // The allocator never let one enclave run away: the over-share
        // peak is bounded by one write-back batch (detach lag) plus the
        // per-enclave headroom the balloon target reserves.
        let slack = (wb_batch.max(1) * suvm_cfg.page_size + suvm_cfg.headroom_bytes) / PAGE;
        let peak = m.stats.snapshot().epc_over_share_peak;
        prop_assert!(
            peak <= slack as u64,
            "over-share peak {} frames exceeds wb_batch+headroom slack {}",
            peak, slack
        );
        // Teardown: the dead replica's frames (pinned by its resident
        // EPC++ cache) are reclaimed immediately.
        let dead = fleet.enclave(0);
        let dead_id = dead.id;
        prop_assert!(m.driver.resident_frames(dead_id) > 0);
        let free_before = m.driver.free_frames();
        fleet.kill(0);
        prop_assert_eq!(m.driver.resident_frames(dead_id), 0, "dead replica keeps frames");
        prop_assert!(m.driver.free_frames() > free_before, "kill must free frames");
        prop_assert_eq!(fleet.state(0), ReplicaState::Dead);
        // The survivor's share doubles and its store still reads back.
        let live = fleet.enclave(1);
        prop_assert_eq!(m.driver.available_epc_for(live.id), m.driver.total_frames());
        let (s1, a1) = &done[1];
        let mut t = ThreadCtx::for_enclave(&m, &live, 1);
        t.enter();
        s1.swapper_tick(&mut t);
        let mut b = [0u8; 32];
        s1.read(&mut t, *a1, &mut b);
        assert_eq!(b, [2u8; 32], "survivor data intact after sibling death");
        t.exit();
    }
}

// ---------------------------------------------------------------------
// Satellite: the segment engine behind the fleet
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// A fleet whose replicas run the TTL-bucketed segment store
    /// matches its own single-replica baseline across every chaos
    /// schedule: the engine-neutral item-log snapshot (now carrying
    /// per-item expiry and the storage-meta section) loses nothing on
    /// failover, so replies stay byte-identical — including GETs of
    /// the TTL'd third of the seeded items.
    #[test]
    fn segment_fleet_matches_single_replica_across_chaos_schedules(
        seed in prop::collection::vec(any::<u8>(), 16..17),
    ) {
        let engine = EngineConfig::Segment(SegmentConfig::default());
        let reqs = request_stream(&seed);
        let reference = run_fleet_with(1, &[], &reqs, engine.clone());
        for schedule in schedules(2) {
            let got = run_fleet_with(2, &schedule, &reqs, engine.clone());
            prop_assert_eq!(
                &got, &reference,
                "segment fleet diverged (schedule={:?})", &schedule
            );
        }
    }
}

/// Kill/respawn a replica running the segment engine,
/// deterministically: a TTL'd seed item must survive two failovers
/// (its expiry travels in the snapshot item log), and the versioned
/// restore merge must still refuse the stale re-import — on a store
/// whose internals (append-only segments, TTL buckets) share nothing
/// with the slab engine the fleet was built against.
#[test]
fn segment_replica_failover_preserves_ttl_items() {
    let r = rig_with(2, EngineConfig::Segment(SegmentConfig::default()));
    let ut = ThreadCtx::untrusted(&r.m, 1);
    let conn = (0..64u64)
        .find(|&c| {
            let (s, _) = r.fk.map().route_replica(c);
            s % 2 == 1
        })
        .expect("a replica-1 connection");
    let (s, _) = r.fk.map().route_replica(conn);
    let do_req = |plain: &[u8]| -> Vec<u8> {
        r.m.host.push_request(&ut, r.fds[s], &r.wire.encrypt(plain));
        while r.fk.pump() == 0 {}
        r.fk.flush();
        r.wire
            .decrypt(&r.m.host.pop_response(r.fds[s]).expect("a reply"))
    };
    // seed-0 was seeded with a 3600 s TTL on every replica.
    let ttl_get = build_get(b"seed-0");
    let reply = do_req(&ttl_get);
    assert_eq!(reply[0], 1);
    assert_eq!(&reply[5..], [0u8; 40]);
    assert_eq!(do_req(&build_set(b"bounce", &[1u8; 16])), [1u8]);
    r.fk.kill(1); // heir 0 imports the segment store's item log
    let reply = do_req(&ttl_get);
    assert_eq!(reply[0], 1, "TTL'd item lost on failover");
    assert_eq!(&reply[5..], [0u8; 40]);
    assert_eq!(do_req(&build_set(b"bounce", &[2u8; 16])), [1u8]);
    r.fk.respawn(1); // rejoiner restores from donor 0's snapshot
    assert_eq!(do_req(&build_set(b"bounce", &[3u8; 16])), [1u8]);
    r.fk.kill(0); // stale re-import: replica 0 still holds bounce=v2
    let reply = do_req(&ttl_get);
    assert_eq!(reply[0], 1, "TTL'd item lost on second failover");
    assert_eq!(&reply[5..], [0u8; 40]);
    let reply = do_req(&build_get(b"bounce"));
    assert_eq!(reply[0], 1, "key must survive the schedule");
    assert_eq!(&reply[5..], [3u8; 16], "stale re-import must not win");
    let st = r.m.stats.snapshot();
    assert_eq!(st.fleet_failovers, 2);
    assert_eq!(st.fleet_restores, 3);
}

// ---------------------------------------------------------------------
// Tentpole: the background maintenance plane is reply-transparent
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// A fleet running the background maintenance plane — delta
    /// snapshots streaming between rounds, background kill/respawn,
    /// engine byte-work on the maintenance core — returns
    /// byte-identical per-connection replies to the fence-synchronous
    /// single-replica baseline, on both engines, across every chaos
    /// schedule. The maintenance plane may move *when and where* the
    /// byte-work runs; it must never change what any client reads.
    #[test]
    fn background_maintenance_plane_is_reply_transparent(
        seed in prop::collection::vec(any::<u8>(), 16..17),
    ) {
        let maint = MaintenanceConfig {
            core: 1,
            hb_miss_threshold: 1000, // schedules drive kills explicitly
            chunk_bytes: 4 << 10,
        };
        let segment = EngineConfig::Segment(SegmentConfig::default());
        for (engine, replicas) in [
            (EngineConfig::default(), 2usize),
            (EngineConfig::default(), 3),
            (segment, 2),
        ] {
            let reqs = request_stream(&seed);
            let reference = run_fleet_with(1, &[], &reqs, engine.clone());
            for schedule in schedules(replicas) {
                let got = run_fleet_full(
                    replicas,
                    &schedule,
                    &reqs,
                    engine.clone(),
                    Some(maint.clone()),
                );
                prop_assert_eq!(
                    &got, &reference,
                    "background plane diverged (replicas={}, schedule={:?})",
                    replicas, &schedule
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Satellite: incremental == monolithic snapshot restore
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Restoring a base snapshot plus the delta since it lands a fresh
    /// store in exactly the state a monolithic snapshot restores —
    /// per-key byte equality, with the delta deterministically
    /// non-empty (at least one second-interval write is forced), so
    /// the incremental path the maintenance plane streams is provably
    /// exercised.
    #[test]
    fn incremental_restore_equals_monolithic_restore(
        seed in prop::collection::vec(any::<u8>(), 16..17),
    ) {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 1 << 20);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let space = DataSpace::Untrusted(Arc::clone(&m));
        let mk = |t: &mut ThreadCtx| {
            let kvs = Kvs::new(space.clone(), space.clone(), 8 << 20, 256);
            kvs.init(t);
            kvs
        };
        let mut src = mk(&mut t);
        // Phase 1 (interval 1): the base state.
        src.set_write_version(1);
        let n1 = 20 + (seed[0] as usize % 20);
        for i in 0..n1 {
            let b = seed[i % seed.len()];
            src.set(&mut t, format!("k-{i}").as_bytes(), &vec![b ^ i as u8; 16 + (b as usize % 48)]);
        }
        let sealer = AesGcm128::new(&[0x2au8; 16]);
        let base_snap = src.snapshot(&mut t, &sealer, 1, 1);
        // Phase 2 (interval 2): overwrites and fresh keys; at least
        // one write always happens, so the delta is never vacuous.
        src.set_write_version(2);
        src.set(&mut t, b"k-0", b"forced second-interval write");
        for (i, &b) in seed.iter().enumerate().filter(|&(_, &b)| b % 3 == 0) {
            src.set(&mut t, format!("k-{}", b as usize % n1).as_bytes(), &vec![b; 24 + i]);
            src.set(&mut t, format!("fresh-{i}").as_bytes(), &[b ^ 0x55; 24]);
        }
        let mono_snap = src.snapshot(&mut t, &sealer, 1, 2);
        let delta_snap = src.snapshot_since(&mut t, &sealer, 1, 2, 2);
        prop_assert!(
            m.stats.snapshot().snapshot_delta_items >= 1,
            "the delta must carry the forced write"
        );

        let mut mono = mk(&mut t);
        mono.restore(&mut t, &sealer, &mono_snap);
        let mut incr = mk(&mut t);
        incr.restore(&mut t, &sealer, &base_snap);
        incr.restore(&mut t, &sealer, &delta_snap);

        prop_assert_eq!(incr.len(), mono.len(), "store sizes diverged");
        let mut keys = Vec::new();
        mono.for_each_item(&mut t, |k, _| keys.push(k.to_vec()));
        for k in keys {
            prop_assert_eq!(
                incr.get(&mut t, &k),
                mono.get(&mut t, &k),
                "key {:?} diverged between incremental and monolithic restore",
                String::from_utf8_lossy(&k)
            );
        }
        t.exit();
    }
}
