//! Cross-crate integration tests: the full server stack (wire crypto →
//! sockets → syscall path → data space) behaves identically in every
//! configuration the paper compares.

use std::sync::Arc;

use eleos::apps::io::{IoPath, ServerIoConfig};
use eleos::apps::kvs::{build_get, build_set, Kvs};
use eleos::apps::loadgen::{attest_session, KvsLoad, ParamLoad};
use eleos::apps::param_server::{ParamServer, TableKind};
use eleos::apps::space::DataSpace;
use eleos::apps::wire::Session;
use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{with_syscalls, RpcService};
use eleos::suvm::{Suvm, SuvmConfig};

struct Stack {
    machine: Arc<SgxMachine>,
    space: DataSpace,
    path: IoPath,
    ctx: ThreadCtx,
    session: Arc<Session>,
    fd: eleos::enclave::host::Fd,
    _rpc: Option<Arc<RpcService>>,
}

fn stack(mode: &str) -> Stack {
    let machine = SgxMachine::new(MachineConfig {
        epc_bytes: 8 << 20,
        untrusted_bytes: 256 << 20,
        ..MachineConfig::tiny()
    });
    let session = Arc::new(Session::handshake([1u8; 16], [0x61u8; 16]));
    let mut ut = ThreadCtx::untrusted(&machine, 0);
    attest_session(&mut ut, &session);
    let fd = machine.host.socket(&ut, 1 << 20);
    match mode {
        "native" => Stack {
            space: DataSpace::Untrusted(Arc::clone(&machine)),
            path: IoPath::Native,
            ctx: ThreadCtx::untrusted(&machine, 0),
            machine,
            session,
            fd,
            _rpc: None,
        },
        "sgx" => {
            let e = machine.driver.create_enclave(&machine, 64 << 20);
            let mut ctx = ThreadCtx::for_enclave(&machine, &e, 0);
            ctx.enter();
            Stack {
                space: DataSpace::Enclave(e),
                path: IoPath::Ocall,
                ctx,
                machine,
                session,
                fd,
                _rpc: None,
            }
        }
        "eleos" | "eleos-direct" => {
            let e = machine.driver.create_enclave(&machine, 64 << 20);
            let rpc = Arc::new(
                with_syscalls(RpcService::builder(&machine), &machine)
                    .workers(1, &[3])
                    .build(),
            );
            let t0 = ThreadCtx::for_enclave(&machine, &e, 0);
            let suvm = Suvm::new(
                &t0,
                SuvmConfig {
                    epcpp_bytes: 1 << 20,
                    backing_bytes: 32 << 20,
                    seal_sub_pages: mode == "eleos-direct",
                    ..SuvmConfig::default()
                },
            );
            let mut ctx = ThreadCtx::for_enclave(&machine, &e, 0);
            ctx.enter();
            Stack {
                space: if mode == "eleos-direct" {
                    DataSpace::suvm_direct(&suvm)
                } else {
                    DataSpace::suvm(&suvm)
                },
                path: IoPath::Rpc(Arc::clone(&rpc)),
                ctx,
                machine,
                session,
                fd,
                _rpc: Some(rpc),
            }
        }
        other => panic!("unknown mode {other}"),
    }
}

/// Runs the parameter server through the wire in one mode and returns
/// the final values of a set of probe keys.
fn param_server_run(mode: &str) -> Vec<u64> {
    let mut s = stack(mode);
    let n_keys = 50_000u64;
    let mut server = ParamServer::new(s.space.clone(), TableKind::OpenAddressing, n_keys);
    server.init(&mut s.ctx);
    server.populate_bulk(&mut s.ctx, n_keys);
    let io = ServerIoConfig::with_buf_len(64 << 10).build(
        &s.ctx,
        &[s.fd],
        s.path.clone(),
        Arc::clone(&s.session),
    );
    let ut = ThreadCtx::untrusted(&s.machine, 1);
    let mut load = ParamLoad::new(42, n_keys, 8, None);
    for _ in 0..200 {
        s.machine
            .host
            .push_request(&ut, s.fd, &s.session.encrypt(&load.next_plain()));
        server.handle_request(&mut s.ctx, &io).expect("queued");
    }
    let out = (1..=32u64)
        .map(|k| server.get(&mut s.ctx, k * 997).expect("populated key"))
        .collect();
    if s.ctx.in_enclave() {
        s.ctx.exit();
    }
    out
}

#[test]
fn param_server_agrees_across_all_modes() {
    let native = param_server_run("native");
    for mode in ["sgx", "eleos", "eleos-direct"] {
        assert_eq!(param_server_run(mode), native, "mode {mode} diverged");
    }
}

#[test]
fn eleos_mode_never_exits_the_enclave() {
    let mut s = stack("eleos");
    let mut server = ParamServer::new(s.space.clone(), TableKind::OpenAddressing, 10_000);
    server.init(&mut s.ctx);
    server.populate_bulk(&mut s.ctx, 10_000);
    let io = ServerIoConfig::with_buf_len(64 << 10).build(
        &s.ctx,
        &[s.fd],
        s.path.clone(),
        Arc::clone(&s.session),
    );
    let ut = ThreadCtx::untrusted(&s.machine, 1);
    s.machine.reset_counters();
    let mut load = ParamLoad::new(1, 10_000, 4, None);
    for _ in 0..100 {
        s.machine
            .host
            .push_request(&ut, s.fd, &s.session.encrypt(&load.next_plain()));
        server.handle_request(&mut s.ctx, &io).expect("queued");
    }
    let st = s.machine.stats.snapshot();
    assert_eq!(st.enclave_exits, 0, "request handling must be exit-less");
    assert_eq!(st.ocalls, 0);
    assert!(st.rpc_calls >= 200, "recv+send per request over RPC");
    s.ctx.exit();
}

#[test]
fn sgx_mode_pays_exits_and_faults() {
    let mut s = stack("sgx");
    // 16 MiB of parameters on an 8 MiB-EPC machine.
    let n_keys = (16 << 20) / 32u64;
    let mut server = ParamServer::new(s.space.clone(), TableKind::OpenAddressing, n_keys);
    server.init(&mut s.ctx);
    server.populate_bulk(&mut s.ctx, n_keys);
    let io = ServerIoConfig::with_buf_len(64 << 10).build(
        &s.ctx,
        &[s.fd],
        s.path.clone(),
        Arc::clone(&s.session),
    );
    let ut = ThreadCtx::untrusted(&s.machine, 1);
    s.machine.reset_counters();
    let mut load = ParamLoad::new(1, n_keys, 4, None);
    for _ in 0..100 {
        s.machine
            .host
            .push_request(&ut, s.fd, &s.session.encrypt(&load.next_plain()));
        server.handle_request(&mut s.ctx, &io).expect("queued");
    }
    let st = s.machine.stats.snapshot();
    assert_eq!(st.enclave_exits, 200, "one OCALL per recv and per send");
    assert!(st.hw_faults > 50, "out-of-EPC table must fault");
    assert!(st.tlb_flushes >= 200, "every exit flushes the TLB");
    s.ctx.exit();
}

#[test]
fn kvs_full_protocol_all_modes() {
    for mode in ["native", "sgx", "eleos", "eleos-direct"] {
        let mut s = stack(mode);
        let meta_space = DataSpace::Untrusted(Arc::clone(&s.machine));
        let mut kvs = Kvs::new(meta_space, s.space.clone(), 16 << 20, 2048);
        kvs.init(&mut s.ctx);
        let io = ServerIoConfig::with_buf_len(64 << 10).build(
            &s.ctx,
            &[s.fd],
            s.path.clone(),
            Arc::clone(&s.session),
        );
        let ut = ThreadCtx::untrusted(&s.machine, 1);
        let load = KvsLoad::new(5, 500, 20, 800);
        for i in 0..load.n_items {
            s.machine
                .host
                .push_request(&ut, s.fd, &s.session.encrypt(&load.set_plain(i)));
            assert!(kvs.handle_request(&mut s.ctx, &io), "{mode}: SET {i}");
            let resp = s
                .session
                .decrypt(&s.machine.host.pop_response(s.fd).expect("ack"));
            assert_eq!(resp, &[1u8], "{mode}: SET ack");
        }
        for i in (0..load.n_items).step_by(17) {
            s.machine
                .host
                .push_request(&ut, s.fd, &s.session.encrypt(&build_get(&load.key(i))));
            assert!(kvs.handle_request(&mut s.ctx, &io));
            let resp = s
                .session
                .decrypt(&s.machine.host.pop_response(s.fd).expect("value"));
            assert_eq!(resp[0], 1, "{mode}: GET {i} hit");
            assert_eq!(&resp[5..], load.value(i), "{mode}: GET {i} value");
        }
        // Overwrite and delete through the protocol.
        s.machine.host.push_request(
            &ut,
            s.fd,
            &s.session.encrypt(&build_set(&load.key(3), b"tiny")),
        );
        assert!(kvs.handle_request(&mut s.ctx, &io));
        let _ = s.machine.host.pop_response(s.fd);
        s.machine
            .host
            .push_request(&ut, s.fd, &s.session.encrypt(&build_get(&load.key(3))));
        assert!(kvs.handle_request(&mut s.ctx, &io));
        let resp = s
            .session
            .decrypt(&s.machine.host.pop_response(s.fd).expect("value"));
        assert_eq!(&resp[5..], b"tiny", "{mode}: overwrite");
        if s.ctx.in_enclave() {
            s.ctx.exit();
        }
    }
}

#[test]
fn face_pipeline_in_enclave() {
    use eleos::apps::face::{
        build_verify_request, lbp_histogram, synth_capture, synth_image, FaceDb, FaceServer,
    };
    let mut s = stack("eleos");
    let side = 64usize;
    let mut db = FaceDb::new(s.space.clone(), side, 8);
    db.init(&mut s.ctx);
    for id in 1..=8u64 {
        db.enroll(&mut s.ctx, id, &lbp_histogram(&synth_image(id, side), side));
    }
    let enrolled = db.fetch(&mut s.ctx, 2).expect("enrolled");
    let genuine =
        eleos::apps::face::chi_square(&lbp_histogram(&synth_capture(2, side, 9), side), &enrolled);
    let impostor =
        eleos::apps::face::chi_square(&lbp_histogram(&synth_image(7, side), side), &enrolled);
    let mut server = FaceServer::new(db, (genuine + impostor) / 2.0);
    let io = ServerIoConfig::with_buf_len(side * side + 4096).build(
        &s.ctx,
        &[s.fd],
        s.path.clone(),
        Arc::clone(&s.session),
    );
    let ut = ThreadCtx::untrusted(&s.machine, 1);

    // Genuine accepted.
    let img = synth_capture(2, side, 33);
    s.machine.host.push_request(
        &ut,
        s.fd,
        &s.session.encrypt(&build_verify_request(2, side, &img)),
    );
    assert!(server.handle_request(&mut s.ctx, &io));
    assert_eq!(
        s.session
            .decrypt(&s.machine.host.pop_response(s.fd).expect("resp")),
        &[1u8]
    );
    // Impostor rejected.
    let img = synth_image(5, side);
    s.machine.host.push_request(
        &ut,
        s.fd,
        &s.session.encrypt(&build_verify_request(2, side, &img)),
    );
    assert!(server.handle_request(&mut s.ctx, &io));
    assert_eq!(
        s.session
            .decrypt(&s.machine.host.pop_response(s.fd).expect("resp")),
        &[0u8]
    );
    // Unknown identity.
    s.machine.host.push_request(
        &ut,
        s.fd,
        &s.session
            .encrypt(&build_verify_request(99, side, &synth_image(1, side))),
    );
    assert!(server.handle_request(&mut s.ctx, &io));
    assert_eq!(
        s.session
            .decrypt(&s.machine.host.pop_response(s.fd).expect("resp")),
        &[2u8]
    );
    s.ctx.exit();
}
