//! The paper's headline claims, as executable assertions.
//!
//! Each test reconstructs one quantitative claim from Eleos (EuroSys
//! 2017) on a scaled-down machine and asserts the *shape* (ordering /
//! direction / rough magnitude). These are the guardrails that keep
//! the reproduction honest as the code evolves.

use std::sync::Arc;

use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::sim::costs::PAGE_SIZE;
use eleos::sim::llc::LlcConfig;
use eleos::suvm::{Suvm, SuvmConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A 1/16-scale paper machine.
fn machine() -> Arc<SgxMachine> {
    SgxMachine::new(MachineConfig {
        epc_bytes: 93 << 16, // 93 MiB / 16
        untrusted_bytes: 512 << 20,
        llc: LlcConfig {
            size: 8 << 16,
            ways: 16,
        },
        ..MachineConfig::default()
    })
}

fn suvm_on(m: &Arc<SgxMachine>, epcpp: usize, backing: usize) -> (Arc<Suvm>, ThreadCtx) {
    let epcpp = (epcpp / PAGE_SIZE).max(2) * PAGE_SIZE;
    let e = m.driver.create_enclave(m, epcpp * 2 + (4 << 20));
    let t0 = ThreadCtx::for_enclave(m, &e, 0);
    let s = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: epcpp,
            backing_bytes: backing.next_power_of_two(),
            headroom_bytes: 1 << 20,
            ..SuvmConfig::default()
        },
    );
    let mut t = ThreadCtx::for_enclave(m, &e, 0);
    t.enter();
    (s, t)
}

/// Random 4 KiB reads over `buf` pages; returns cycles per access.
fn random_reads_suvm(s: &Arc<Suvm>, t: &mut ThreadCtx, base: u64, pages: u64, ops: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(5);
    let mut buf = vec![0u8; PAGE_SIZE];
    let c0 = t.now();
    for _ in 0..ops {
        let p = rng.random_range(0..pages);
        s.read(t, base + p * PAGE_SIZE as u64, &mut buf);
    }
    (t.now() - c0) as f64 / ops as f64
}

fn random_reads_hw(m: &Arc<SgxMachine>, pages: u64, ops: usize) -> f64 {
    let e = m
        .driver
        .create_enclave(m, (pages as usize) * PAGE_SIZE + (4 << 20));
    let mut t = ThreadCtx::for_enclave(m, &e, 1);
    t.enter();
    let base = e.alloc((pages as usize) * PAGE_SIZE);
    for p in 0..pages {
        t.write_enclave(base + p * PAGE_SIZE as u64, &[1u8; PAGE_SIZE]);
    }
    let mut rng = StdRng::seed_from_u64(5);
    let mut buf = vec![0u8; PAGE_SIZE];
    let c0 = t.now();
    for _ in 0..ops {
        let p = rng.random_range(0..pages);
        t.read_enclave(base + p * PAGE_SIZE as u64, &mut buf);
    }
    let per = (t.now() - c0) as f64 / ops as f64;
    t.exit();
    // Release this enclave's PRM share so later phases are not
    // throttled by a dead tenant.
    m.driver.destroy_enclave(m, &e);
    per
}

/// §1/§6.1.2: "handling EPC page faults in software inside the enclave
/// is 3× to 4× faster than SGX hardware-implemented page faults" —
/// end to end, SUVM beats hardware paging by >2× out of core.
#[test]
fn claim_suvm_beats_hardware_paging_out_of_core() {
    let m = machine();
    // Working set ~3.4x the EPC.
    let pages = (m.cfg.epc_bytes / PAGE_SIZE) as u64 * 17 / 5;
    let hw = random_reads_hw(&m, pages, 1500);

    let (s, mut t) = suvm_on(
        &m,
        m.cfg.epc_bytes * 6 / 10,
        (pages as usize) * PAGE_SIZE * 2,
    );
    let base = s.malloc((pages as usize) * PAGE_SIZE);
    for p in 0..pages {
        s.write(&mut t, base + p * PAGE_SIZE as u64, &[1u8; PAGE_SIZE]);
    }
    let sw = random_reads_suvm(&s, &mut t, base, pages, 1500);
    t.exit();
    assert!(
        hw > 2.0 * sw,
        "software paging must win by >2x out of core: hw {hw:.0} vs suvm {sw:.0} cycles/access"
    );
}

/// §2.2/§3.1: an exit-less call is several times cheaper than an
/// OCALL, whose direct cost is ~8k cycles.
#[test]
fn claim_rpc_is_several_times_cheaper_than_ocall() {
    let m = machine();
    let svc = eleos::rpc::RpcService::builder(&m)
        .register(1, eleos::rpc::UntrustedFn::new(|_c, _a| 0))
        .workers(1, &[7])
        .build();
    let e = m.driver.create_enclave(&m, 1 << 20);
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    svc.call(&mut t, 1, [0; 4]);
    let c0 = t.now();
    for _ in 0..50 {
        svc.call(&mut t, 1, [0; 4]);
    }
    let rpc = (t.now() - c0) / 50;
    let c0 = t.now();
    for _ in 0..50 {
        t.ocall(|_| ());
    }
    let ocall = (t.now() - c0) / 50;
    t.exit();
    assert!((7_000..=9_000).contains(&ocall), "OCALL ~8k: {ocall}");
    assert!(ocall >= 4 * rpc, "rpc {rpc} vs ocall {ocall}");
}

/// Table 1: EPC LLC misses cost several times more than untrusted
/// ones, and random writes are the worst case.
#[test]
fn claim_epc_miss_premium_ordering() {
    use eleos::sim::costs::{AccessKind, CostModel, Domain};
    let c = CostModel::default();
    let u_r = c.miss_cost(Domain::Untrusted, AccessKind::Read, false);
    let e_r = c.miss_cost(Domain::Epc, AccessKind::Read, false);
    let e_ws = c.miss_cost(Domain::Epc, AccessKind::Write, true);
    let e_wr = c.miss_cost(Domain::Epc, AccessKind::Write, false);
    assert!(e_r as f64 >= 5.0 * u_r as f64);
    assert!(e_wr > e_ws, "random writes are the worst case");
    assert!(e_wr as f64 / u_r as f64 >= 8.0);
}

/// §3.2.4: clean pages skip the write-back, making read-dominated
/// paging measurably faster than with forced write-back.
#[test]
fn claim_clean_page_elision_helps_reads() {
    let m = machine();
    let pages = 1024u64;
    let run = |clean_skip: bool| {
        let e = m.driver.create_enclave(&m, 8 << 20);
        let t0 = ThreadCtx::for_enclave(&m, &e, 2);
        let s = Suvm::new(
            &t0,
            SuvmConfig {
                epcpp_bytes: 256 * PAGE_SIZE,
                backing_bytes: 16 << 20,
                clean_skip,
                ..SuvmConfig::default()
            },
        );
        let mut t = ThreadCtx::for_enclave(&m, &e, 2);
        t.enter();
        let base = s.malloc((pages as usize) * PAGE_SIZE);
        for p in 0..pages {
            s.write(&mut t, base + p * PAGE_SIZE as u64, &[1u8; 64]);
        }
        let per = random_reads_suvm(&s, &mut t, base, pages, 1200);
        t.exit();
        per
    };
    let with = run(true);
    let without = run(false);
    assert!(
        without > 1.15 * with,
        "elision must help: {with:.0} vs {without:.0} cycles/access"
    );
}

/// §3.2.2/Fig 8: fault-free spointer accesses cost at most ~30% over
/// plain enclave accesses.
#[test]
fn claim_spointer_overhead_is_bounded() {
    use eleos::suvm::spointer::SPtr;
    let m = machine();
    let (s, mut t) = suvm_on(&m, 512 * PAGE_SIZE, 8 << 20);
    let sva = s.malloc(256 * PAGE_SIZE);
    for p in 0..256u64 {
        s.write(&mut t, sva + p * PAGE_SIZE as u64, &[1u8; PAGE_SIZE]);
    }
    let (plain_base, _) = s.epcpp_span();
    let mut buf = [0u8; 64];
    // Warm + measure spointer walk.
    for lap in 0..2 {
        let mut p: SPtr<u8> = SPtr::new(&s, sva);
        let c0 = t.now();
        for _ in 0..(256 * PAGE_SIZE / 64) {
            p.get_bytes(&mut t, &mut buf);
            p.add(64);
            if p.sva() + 64 > sva + (256 * PAGE_SIZE) as u64 {
                p = SPtr::new(&s, sva);
            }
        }
        if lap == 1 {
            let sptr = (t.now() - c0) as f64;
            // Plain pass over the same physical pages.
            let mut off = 0u64;
            let c0 = t.now();
            for _ in 0..(256 * PAGE_SIZE / 64) {
                t.read_enclave(plain_base + off, &mut buf);
                off = (off + 64) % (256 * PAGE_SIZE) as u64;
            }
            let plain = (t.now() - c0) as f64;
            let overhead = (sptr - plain) / plain;
            assert!(
                overhead < 0.30 && overhead > -0.05,
                "spointer overhead {:.1}% out of Fig 8's envelope",
                100.0 * overhead
            );
        }
    }
    t.exit();
}

/// §6.1.2/Fig 9: oversubscribing EPC++ across enclaves causes hardware
/// thrashing that correct sizing avoids.
#[test]
fn claim_epcpp_overcommit_thrashes() {
    let m = machine();
    let epc = m.cfg.epc_bytes;
    let run = |epcpp: usize| {
        let mut handles = Vec::new();
        for idx in 0..2 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let epcpp = (epcpp / PAGE_SIZE).max(2) * PAGE_SIZE;
                let e = m.driver.create_enclave(&m, epcpp * 2 + (2 << 20));
                let t0 = ThreadCtx::for_enclave(&m, &e, idx);
                let s = Suvm::new(
                    &t0,
                    SuvmConfig {
                        epcpp_bytes: epcpp,
                        backing_bytes: 32 << 20,
                        headroom_bytes: 1 << 20,
                        ..SuvmConfig::default()
                    },
                );
                let mut t = ThreadCtx::for_enclave(&m, &e, idx);
                t.enter();
                let pages = (epcpp / PAGE_SIZE) as u64 + 512;
                let base = s.malloc((pages as usize) * PAGE_SIZE);
                let per = random_reads_suvm(&s, &mut t, base, pages, 1000);
                t.exit();
                per
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("enclave thread"))
            .sum::<f64>()
            / 2.0
    };
    let correct = run(epc / 3);
    let overcommitted = run(epc * 7 / 10); // 2 x 0.7 = 1.4x the PRM
    assert!(
        overcommitted > 1.2 * correct,
        "overcommit must thrash: correct {correct:.0} vs over {overcommitted:.0}"
    );
}

/// Security corollary of §3.2.5, end to end: no plaintext byte of a
/// SUVM working set larger than EPC++ is ever observable in untrusted
/// memory.
#[test]
fn claim_out_of_core_data_stays_sealed() {
    let m = SgxMachine::new(MachineConfig {
        epc_bytes: 4 << 20,
        untrusted_bytes: 64 << 20,
        ..MachineConfig::tiny()
    });
    let (s, mut t) = suvm_on(&m, 1 << 20, 16 << 20);
    let marker = b"CLAIM-MARKER-abcdefgh-01234567";
    let base = s.malloc(8 << 20);
    for p in 0..2048u64 {
        s.write(&mut t, base + p * PAGE_SIZE as u64 + 17, marker);
    }
    while s.evict_one(&mut t) {}
    let mut raw = vec![0u8; 32 << 20];
    m.untrusted.read(0, &mut raw);
    assert!(
        !raw.windows(marker.len()).any(|w| w == marker),
        "plaintext leaked to untrusted memory"
    );
    t.exit();
}
