//! Shadow-model suite for the pluggable storage engines:
//!
//! - every engine (static slab, slab + rebalancer, segment store)
//!   behaves exactly like a plain `HashMap` with TTL deadlines under
//!   random SET/SET_TTL/GET/DELETE/ADVANCE/FENCE sequences — with the
//!   kv pool in plain untrusted memory and again behind a tiny SUVM
//!   page cache (constant paging pressure);
//! - the slab rebalancer is reply-transparent: for any fence schedule
//!   and delete pattern, a rebalancing store returns byte-identical
//!   GET results to a static one, even while whole slabs (and the live
//!   items on them) migrate between classes;
//! - plus a deterministic non-vacuity check that the transparency
//!   scaffold really does move slabs.

use std::collections::HashMap;
use std::sync::Arc;

use eleos::apps::kvs::Kvs;
use eleos::apps::space::DataSpace;
use eleos::apps::storage::{EngineConfig, RebalanceConfig, SegmentConfig};
use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::sim::costs::CPU_HZ;
use eleos::suvm::{Suvm, SuvmConfig};
use proptest::prelude::*;

/// Mirrors the engines' second clock (`storage::now_secs`).
fn now_secs(t: &ThreadCtx) -> u32 {
    (t.now() as f64 / CPU_HZ) as u32
}

fn engines() -> Vec<EngineConfig> {
    vec![
        EngineConfig::Slab { rebalance: None },
        EngineConfig::Slab {
            rebalance: Some(RebalanceConfig::default()),
        },
        EngineConfig::Segment(SegmentConfig::default()),
    ]
}

/// One step of the random workload against the shadow model.
#[derive(Clone, Copy, Debug)]
enum Op {
    Set {
        k: u16,
        vlen: usize,
    },
    SetTtl {
        k: u16,
        vlen: usize,
        ttl: u32,
    },
    Get {
        k: u16,
    },
    Delete {
        k: u16,
    },
    /// Advance the clock by whole seconds (lets deadlines lapse).
    Advance {
        secs: u32,
    },
    /// A sub-batch fence: engine maintenance may run here.
    Fence,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest has no weighted oneof: duplicate entries
    // approximate a 3:3:3:2:1:1 set/set_ttl/get/delete/advance/fence
    // mix.
    prop_oneof![
        (0u16..40, 1usize..400).prop_map(|(k, vlen)| Op::Set { k, vlen }),
        (0u16..40, 1usize..400).prop_map(|(k, vlen)| Op::Set { k, vlen }),
        (0u16..40, 1usize..400).prop_map(|(k, vlen)| Op::Set { k, vlen }),
        (0u16..40, 1usize..400, 1u32..6).prop_map(|(k, vlen, ttl)| Op::SetTtl { k, vlen, ttl }),
        (0u16..40, 1usize..400, 1u32..6).prop_map(|(k, vlen, ttl)| Op::SetTtl { k, vlen, ttl }),
        (0u16..40, 1usize..400, 1u32..6).prop_map(|(k, vlen, ttl)| Op::SetTtl { k, vlen, ttl }),
        (0u16..40).prop_map(|k| Op::Get { k }),
        (0u16..40).prop_map(|k| Op::Get { k }),
        (0u16..40).prop_map(|k| Op::Get { k }),
        (0u16..40).prop_map(|k| Op::Delete { k }),
        (0u16..40).prop_map(|k| Op::Delete { k }),
        (1u32..4).prop_map(|secs| Op::Advance { secs }),
        Just(Op::Fence),
    ]
}

/// Runs `ops` against a store built on `cfg` and checks every reply
/// against a `HashMap` shadow carrying `(value, deadline_secs)`.
///
/// The working set (≤ 40 keys x ≤ 400 B) stays far below the 8 MiB
/// pool, so evictions never fire and the model is exact. Expiry is the
/// one engine freedom: a GET of a lapsed item must miss (and both
/// sides drop it), while a DELETE of a lapsed-but-unobserved item may
/// report either outcome (the slab store still holds it; the segment
/// store may have reclaimed its whole segment at a fence).
fn check_engine(cfg: &EngineConfig, paging: bool, ops: &[Op]) {
    let m = SgxMachine::new(MachineConfig {
        epc_bytes: 2 << 20,
        untrusted_bytes: 64 << 20,
        ..MachineConfig::tiny()
    });
    let e = m.driver.create_enclave(&m, 32 << 20);
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let suvm = paging.then(|| {
        Suvm::new(
            &t0,
            SuvmConfig {
                epcpp_bytes: 8 * 4096, // tiny cache: constant eviction
                backing_bytes: 16 << 20,
                ..SuvmConfig::tiny()
            },
        )
    });
    let data = match &suvm {
        Some(s) => DataSpace::suvm(s),
        None => DataSpace::Untrusted(Arc::clone(&m)),
    };
    let mut kvs = Kvs::with_engine(
        DataSpace::Untrusted(Arc::clone(&m)),
        data,
        8 << 20,
        256,
        cfg,
    );
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    kvs.init(&mut t);

    let mut shadow: HashMap<Vec<u8>, (Vec<u8>, u32)> = HashMap::new();
    for &op in ops {
        match op {
            Op::Set { k, vlen } => {
                let key = format!("k{k}").into_bytes();
                let value = vec![(k % 251) as u8; vlen];
                kvs.set(&mut t, &key, &value);
                shadow.insert(key, (value, 0));
            }
            Op::SetTtl { k, vlen, ttl } => {
                let key = format!("k{k}").into_bytes();
                let value = vec![(k % 251) as u8 ^ 0x5a; vlen];
                let deadline = now_secs(&t) + ttl;
                kvs.set_with_ttl(&mut t, &key, &value, ttl);
                shadow.insert(key, (value, deadline));
            }
            Op::Get { k } => {
                let key = format!("k{k}").into_bytes();
                let now = now_secs(&t);
                let got = kvs.get(&mut t, &key);
                match shadow.get(&key) {
                    Some((_, d)) if *d != 0 && now >= *d => {
                        prop_assert_eq!(got, None, "lapsed item served ({:?})", cfg.label());
                        shadow.remove(&key);
                    }
                    Some((v, _)) => {
                        prop_assert_eq!(got.as_ref(), Some(v), "wrong value ({:?})", cfg.label());
                    }
                    None => {
                        prop_assert_eq!(got, None, "ghost item ({:?})", cfg.label());
                    }
                }
            }
            Op::Delete { k } => {
                let key = format!("k{k}").into_bytes();
                let now = now_secs(&t);
                let got = kvs.delete(&mut t, &key);
                match shadow.remove(&key) {
                    Some((_, d)) if d != 0 && now >= d => {} // either outcome is fine
                    Some(_) => prop_assert!(got, "live item not deleted ({:?})", cfg.label()),
                    None => prop_assert!(!got, "phantom delete ({:?})", cfg.label()),
                }
            }
            Op::Advance { secs } => {
                t.compute((secs as f64 * CPU_HZ) as u64);
            }
            Op::Fence => {
                kvs.fence(&mut t);
            }
        }
    }
    // Final sweep: every shadow entry still unexpired reads back
    // exactly; every lapsed one misses.
    let keys: Vec<Vec<u8>> = shadow.keys().cloned().collect();
    for key in keys {
        let now = now_secs(&t);
        let got = kvs.get(&mut t, &key);
        let (v, d) = &shadow[&key];
        if *d != 0 && now >= *d {
            prop_assert_eq!(got, None, "lapsed item served at sweep ({:?})", cfg.label());
        } else {
            prop_assert_eq!(got.as_ref(), Some(v), "sweep diverged ({:?})", cfg.label());
        }
    }
    t.exit();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Every engine matches the TTL'd `HashMap` shadow, with the kv
    /// pool in untrusted memory and again behind a thrashing SUVM
    /// page cache.
    #[test]
    fn engines_match_shadow_model(ops in prop::collection::vec(op_strategy(), 1..100)) {
        for cfg in engines() {
            for paging in [false, true] {
                check_engine(&cfg, paging, &ops);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rebalancer transparency
// ---------------------------------------------------------------------

/// Builds a store whose small class is mostly free (fill then delete
/// by `del_seed`) — the donor — then writes large items with fences at
/// the positions `fence_at` selects. Returns every GET result: small
/// survivors first, then all large keys.
///
/// The working set stays below the 32 MiB limit, so no evictions fire
/// and any divergence is the rebalancer's fault alone.
fn run_transparency(
    rebalance: Option<RebalanceConfig>,
    background: bool,
    del_seed: u64,
    fence_at: &[bool],
) -> (Arc<SgxMachine>, Vec<Option<Vec<u8>>>) {
    const SMALL: u64 = 9_000;
    const LARGE: u64 = 1_600;
    let m = SgxMachine::new(MachineConfig::scaled(8));
    let space = DataSpace::Untrusted(Arc::clone(&m));
    let mut kvs = Kvs::with_engine(
        space.clone(),
        space,
        32 << 20,
        4096,
        &EngineConfig::Slab { rebalance },
    );
    let e = m.driver.create_enclave(&m, 1 << 20);
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    kvs.init(&mut t);
    // Background mode: fences only publish; the relocation byte-work
    // runs in maintenance ticks on a second core, interleaved at the
    // same fence points the synchronous engine would have used.
    let mut mt = background.then(|| {
        kvs.set_background(true);
        let mut mt = ThreadCtx::for_enclave(&m, &e, 1);
        mt.enter();
        mt
    });
    for i in 0..SMALL {
        kvs.set(
            &mut t,
            format!("sm-{i}").as_bytes(),
            &[(i % 251) as u8; 180],
        );
    }
    // Scatter deletes: ~85% of the small class becomes free chunks,
    // leaving feasible donor slabs with a few live items to relocate.
    let mut x = del_seed | 1;
    let mut survivors = Vec::new();
    for i in 0..SMALL {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if x % 100 < 85 {
            kvs.delete(&mut t, format!("sm-{i}").as_bytes());
        } else {
            survivors.push(i);
        }
    }
    for i in 0..LARGE {
        kvs.set(
            &mut t,
            format!("lg-{i}").as_bytes(),
            &[(i % 251) as u8; 1200],
        );
        if *fence_at
            .get(i as usize % fence_at.len().max(1))
            .unwrap_or(&false)
            || (i + 1).is_multiple_of(64)
        {
            kvs.fence(&mut t);
            if let Some(mt) = mt.as_mut() {
                kvs.maintenance_tick(mt);
            }
        }
    }
    let mut replies = Vec::new();
    for &i in &survivors {
        replies.push(kvs.get(&mut t, format!("sm-{i}").as_bytes()));
    }
    for i in 0..LARGE {
        replies.push(kvs.get(&mut t, format!("lg-{i}").as_bytes()));
    }
    if let Some(mut mt) = mt {
        mt.exit();
    }
    t.exit();
    (m, replies)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any fence schedule and delete pattern, the rebalancing
    /// store returns byte-identical GET results to the static one —
    /// slab migration is invisible to clients.
    #[test]
    fn rebalancer_is_reply_transparent(
        del_seed in any::<u64>(),
        fence_at in prop::collection::vec(any::<bool>(), 1..48),
    ) {
        let (_m0, baseline) = run_transparency(None, false, del_seed, &fence_at);
        let (_m1, rebal) =
            run_transparency(Some(RebalanceConfig::default()), false, del_seed, &fence_at);
        prop_assert_eq!(baseline, rebal);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Background maintenance is reply-transparent too: relocations
    /// driven from maintenance ticks on another core return
    /// byte-identical GET results to the static baseline for any
    /// fence schedule and delete pattern.
    #[test]
    fn background_rebalancer_is_reply_transparent(
        del_seed in any::<u64>(),
        fence_at in prop::collection::vec(any::<bool>(), 1..48),
    ) {
        let (_m0, baseline) = run_transparency(None, false, del_seed, &fence_at);
        let (m1, rebal) =
            run_transparency(Some(RebalanceConfig::default()), true, del_seed, &fence_at);
        prop_assert_eq!(baseline, rebal);
        prop_assert_eq!(
            m1.stats.snapshot().maint_stall_cycles, 0,
            "background relocation stalled a serving fence"
        );
    }
}

/// Non-vacuity: the transparency scaffold actually migrates slabs
/// (live small items relocate, the freed slab is adopted by the large
/// class), so the proptest above exercises relocation, not a no-op.
#[test]
fn transparency_scaffold_moves_slabs() {
    let (m, _) = run_transparency(Some(RebalanceConfig::default()), false, 0x5eed, &[true]);
    let st = m.stats.snapshot();
    assert!(st.slab_moves > 0, "no slab moves: the proptest is vacuous");
    assert!(
        st.slab_items_relocated > 0,
        "no live items relocated: donor slabs were already empty"
    );
    assert!(
        st.maint_stall_cycles > 0,
        "synchronous rebalance fences must record their stall"
    );
}

/// Non-vacuity for the background leg: the maintenance ticks really
/// relocate slabs, and none of that work lands on the serving fence.
#[test]
fn background_transparency_scaffold_moves_slabs_off_the_fence() {
    let (m, _) = run_transparency(Some(RebalanceConfig::default()), true, 0x5eed, &[true]);
    let st = m.stats.snapshot();
    assert!(st.slab_moves > 0, "background ticks moved no slabs");
    assert!(st.slab_items_relocated > 0, "no live items relocated");
    assert_eq!(
        st.maint_stall_cycles, 0,
        "background relocation must not stall serving fences"
    );
}
