//! The event trace reflects what actually happened across the stack.

use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{RpcService, UntrustedFn};
use eleos::sim::trace::Event;
use eleos::suvm::{Suvm, SuvmConfig};

#[test]
fn trace_matches_stats_across_a_workload() {
    let m = SgxMachine::new(MachineConfig {
        epc_bytes: 2 << 20,
        ..MachineConfig::tiny()
    });
    let e = m.driver.create_enclave(&m, 16 << 20);
    let svc = RpcService::builder(&m)
        .register(9, UntrustedFn::new(|_c, a| a[0]))
        .workers(1, &[3])
        .build();
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let suvm = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 64 << 10,
            backing_bytes: 4 << 20,
            ..SuvmConfig::tiny()
        },
    );
    m.trace.enable();
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    let a = suvm.malloc(1 << 20);
    for page in 0..256u64 {
        suvm.write(&mut t, a + page * 4096, &[1u8; 16]);
    }
    for _ in 0..5 {
        svc.call(&mut t, 9, [1, 0, 0, 0]);
    }
    // Hardware paging pressure from plain enclave memory.
    let hw = e.alloc(4 << 20);
    for page in 0..1024u64 {
        t.write_enclave(hw + page * 4096, &[2u8; 8]);
    }
    t.exit();
    m.trace.disable();

    let stats = m.stats.snapshot();
    let hist = m.trace.histogram();
    assert_eq!(hist.rpc_calls, 5);
    assert_eq!(hist.enters, stats.enclave_enters);
    assert_eq!(hist.exits, stats.enclave_exits);
    assert!(hist.suvm_faults > 0);
    assert!(hist.hw_faults > 0);
    // Ring may have wrapped; histogram counts only retained records.
    assert!(hist.hw_faults <= stats.hw_faults);

    // Records are time-ordered per core and carry plausible payloads.
    let records = m.trace.take();
    assert!(!records.is_empty());
    let mut last_core0 = 0u64;
    for (cycles, ev) in &records {
        if let Event::EnclaveEnter { core: 0, .. }
        | Event::EnclaveExit { core: 0, .. }
        | Event::HwFault { core: 0, .. }
        | Event::SuvmFault { core: 0, .. } = ev
        {
            assert!(*cycles >= last_core0, "core-0 records out of order");
            last_core0 = *cycles;
        }
    }
    assert!(m.trace.take().is_empty(), "take drains the ring");
}
