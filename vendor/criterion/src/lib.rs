//! Offline drop-in subset of `criterion`.
//!
//! The build container has no crates.io access, so the workspace
//! vendors the slice of criterion its benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`throughput`/`bench_function`/`finish`,
//! [`Bencher::iter`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (the benches run
//! with `harness = false`, so `criterion_main!` supplies `fn main`).
//!
//! Statistics are intentionally simple: each benchmark runs a short
//! warmup, then a fixed number of timed samples, and reports the
//! median per-iteration time (plus derived throughput when set).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a benchmarked value away.
pub fn black_box<T>(v: T) -> T {
    std_black_box(v)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Times a closure over a batch of iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the sample's iteration count, timing the whole batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets per-iteration throughput for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warmup + calibration: grow the batch until one sample takes ~2ms,
    // so per-iteration noise stays bounded without criterion's full
    // linear-regression machinery.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            format!(
                "  {:>10.1} MiB/s",
                bytes as f64 / median * 1e9 / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.1} Melem/s", n as f64 / median * 1e3)
        }
        None => String::new(),
    };
    println!("bench {name:<48} {median:>12.1} ns/iter{rate}");
}

/// Bundles benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `fn main` running the listed groups (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("noop_add", |b| b.iter(|| black_box(1u64) + 1));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(64));
        g.bench_function("memcpy64", |b| {
            let src = [7u8; 64];
            b.iter(|| src)
        });
        g.finish();
    }

    criterion_group!(smoke, tiny);

    #[test]
    fn group_runs_to_completion() {
        smoke();
    }
}
