//! Offline drop-in subset of `proptest`.
//!
//! The build container has no crates.io access, so the workspace
//! vendors the slice of proptest its tests actually use: the
//! [`proptest!`] macro, integer/float range strategies, `any::<T>()`,
//! tuples, [`collection::vec`], [`array::uniform16`]-style arrays,
//! [`strategy::Just`], `prop_map`, [`prop_oneof!`] and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with the sampled inputs
//!   Debug-printed by the assertion itself; it is not minimized.
//! - **Deterministic sampling.** Each test's RNG is seeded from the
//!   test's module path and name, so runs are reproducible and
//!   `proptest-regressions` files are not consulted.
//! - `prop_assert*` panic immediately instead of returning `Err`.

/// Deterministic test-case RNG (splitmix64 over an FNV-1a name hash).
pub mod test_runner {
    /// Per-test deterministic generator.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test's fully qualified name.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h }
        }

        /// Next 64 random bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty draw");
            self.next_u64() % n
        }
    }

    /// Test-runner configuration (subset of proptest's `Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adaptor.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among same-valued strategies ([`prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V: Debug> Union<V> {
        /// Builds a union over `options`.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))+) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

/// `any::<T>()` whole-domain strategies.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait ArbitraryValue: Debug {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    /// A strategy producing any value of `T`.
    #[must_use]
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl ArbitraryValue for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A vector of values from `element`, sized within `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; N]`.
    pub struct ArrayStrategy<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N>
    where
        S::Value: Sized,
    {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident $n:literal),+ $(,)?) => {$(
            /// An array of independently drawn elements.
            pub fn $name<S: Strategy>(element: S) -> ArrayStrategy<S, $n> {
                ArrayStrategy(element)
            }
        )+};
    }
    uniform_fns!(uniform4 4, uniform8 8, uniform12 12, uniform16 16, uniform24 24, uniform32 32);
}

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
    }
}

/// Defines deterministic property tests; see crate docs for the
/// supported subset.
#[macro_export]
macro_rules! proptest {
    // Internal: config captured, emit one #[test] fn per item.
    (@gen ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
    // Entry with a config attribute.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@gen ($config) $($rest)*);
    };
    // Entry with the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@gen ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot,
        Line(u8),
    }

    proptest! {
        #[test]
        fn ranges_and_vecs(v in prop::collection::vec(any::<u8>(), 1..40), n in 3u64..9) {
            prop_assert!((1..40).contains(&v.len()));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn tuples_and_arrays(pair in (0usize..10, any::<bool>()),
                             key in prop::array::uniform16(any::<u8>())) {
            prop_assert!(pair.0 < 10);
            prop_assert_eq!(key.len(), 16);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn oneof_and_map(shape in prop_oneof![
            Just(Shape::Dot),
            (1u8..5).prop_map(Shape::Line),
        ]) {
            match shape {
                Shape::Dot => {}
                Shape::Line(w) => prop_assert!((1..5).contains(&w)),
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x::y");
        let mut b = crate::test_runner::TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
