//! Offline drop-in subset of `parking_lot`.
//!
//! The build container has no crates.io access, so the workspace
//! vendors the tiny API surface it actually uses: [`Mutex`] and
//! [`RwLock`] with parking_lot's non-poisoning `lock()`/`read()`/
//! `write()` signatures, implemented over `std::sync`. A panicked
//! holder does not poison the lock — matching parking_lot semantics —
//! because poisoning is stripped with `PoisonError::into_inner`.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after holder panicked");
    }
}
