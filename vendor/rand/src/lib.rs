//! Offline drop-in subset of `rand`.
//!
//! The build container has no crates.io access, so the workspace
//! vendors the API surface it uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`RngExt::random_range`] over
//! integer and float ranges. The generator is xoshiro256++ seeded via
//! splitmix64 — deterministic for a given seed, which is all the
//! seeded load generators and property tests rely on.

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers (subset of rand 0.9+'s `Rng`/`RngExt` surface).
pub trait RngExt {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: RngExt>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngExt>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )+};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngExt>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: RngExt>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// xoshiro256++, seeded via splitmix64 — a fast, high-quality
    /// stand-in for rand's `StdRng` (which makes no reproducibility
    /// promise across versions anyway).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, per Vigna's reference seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(3u64..17);
            assert!((3..17).contains(&v));
            let v = r.random_range(1u64..=5);
            assert!((1..=5).contains(&v));
            let v: i16 = r.random_range(-2..=2);
            assert!((-2..=2).contains(&v));
            let f = r.random_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut r = StdRng::seed_from_u64(42);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {c}");
        }
    }
}
