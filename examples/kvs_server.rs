//! A memcached-style key-value store in an enclave, the paper's §5.1
//! port: clear metadata in untrusted memory, keys/values in SUVM,
//! syscalls over exit-less RPC.
//!
//! Run with: `cargo run --release --example kvs_server`

use std::sync::Arc;

use eleos::apps::io::{IoPath, ServerIoConfig};
use eleos::apps::kvs::Kvs;
use eleos::apps::loadgen::attest_session;
use eleos::apps::space::DataSpace;
use eleos::apps::text_protocol::{format_get, format_set, handle_text_request};
use eleos::apps::wire::Session;
use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{with_syscalls, RpcService};
use eleos::suvm::{Suvm, SuvmConfig};

fn main() {
    let machine = SgxMachine::new(MachineConfig {
        epc_bytes: 16 << 20,
        ..MachineConfig::default()
    });
    machine.enable_cat();
    let enclave = machine.driver.create_enclave(&machine, 128 << 20);
    let rpc = Arc::new(
        with_syscalls(RpcService::builder(&machine), &machine)
            .workers(1, &[7])
            .build(),
    );
    let t0 = ThreadCtx::for_enclave(&machine, &enclave, 0);
    let suvm = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 8 << 20,
            backing_bytes: 128 << 20,
            ..SuvmConfig::default()
        },
    );

    // The §5.1 split: hash chains and LRU links in clear untrusted
    // memory; keys, values and sizes sealed in SUVM.
    let mut kvs = Kvs::new(
        DataSpace::Untrusted(Arc::clone(&machine)),
        DataSpace::suvm(&suvm),
        64 << 20,
        1 << 15,
    );

    let session = Arc::new(Session::handshake([9u8; 16], [0x52u8; 16]));
    let mut ut = ThreadCtx::untrusted(&machine, 0);
    attest_session(&mut ut, &session);
    let fd = machine.host.socket(&ut, 1 << 20);
    let mut ctx = ThreadCtx::for_enclave(&machine, &enclave, 0);
    ctx.enter();
    kvs.init(&mut ctx);
    let io = ServerIoConfig::with_buf_len(64 << 10).build(
        &ctx,
        &[fd],
        IoPath::Rpc(Arc::clone(&rpc)),
        Arc::clone(&session),
    );

    // "memaslap" session: SETs filling 32 MiB (4x the EPC++), then GETs.
    let n_items = 32_000u32;
    println!("filling {n_items} items of 1 KiB over the memcached ASCII protocol...");
    for i in 0..n_items {
        let key = format!("user:{i:08}");
        let value = vec![(i % 251) as u8; 1024];
        machine.host.push_request(
            &ut,
            fd,
            &session.encrypt(&format_set(key.as_bytes(), 0, 0, &value)),
        );
        assert!(handle_text_request(&mut kvs, &mut ctx, &io));
        let ack = session.decrypt(&machine.host.pop_response(fd).expect("ack"));
        assert_eq!(ack, b"STORED\r\n");
    }
    println!(
        "store: {} items, {} MiB secure pool, {} LRU evictions",
        kvs.len(),
        kvs.pool_bytes() >> 20,
        kvs.evictions()
    );

    machine.reset_counters();
    let c0 = ctx.now();
    let gets = 5_000u32;
    for i in 0..gets {
        let key = format!("user:{:08}", (i * 6151) % n_items);
        machine
            .host
            .push_request(&ut, fd, &session.encrypt(&format_get(key.as_bytes())));
        assert!(handle_text_request(&mut kvs, &mut ctx, &io));
        let resp = session.decrypt(&machine.host.pop_response(fd).expect("response sent"));
        assert!(resp.starts_with(b"VALUE "), "GET must hit");
    }
    let s = machine.stats.snapshot();
    println!(
        "{gets} GETs: {:.0} cycles/op | enclave exits {} | SUVM faults {} (clean-skipped {})",
        (ctx.now() - c0) as f64 / gets as f64,
        s.enclave_exits,
        s.suvm_major_faults,
        s.suvm_clean_skips,
    );
    ctx.exit();
}
