//! The paper's §2 motivation, end to end: a parameter server handling
//! encrypted update requests, run untrusted, under vanilla SGX
//! (OCALLs + hardware paging) and under Eleos (exit-less RPC + SUVM).
//!
//! Run with: `cargo run --release --example param_server`

use std::sync::Arc;

use eleos::apps::io::{IoPath, ServerIoConfig};
use eleos::apps::loadgen::{attest_session, ParamLoad};
use eleos::apps::param_server::{ParamServer, TableKind};
use eleos::apps::space::DataSpace;
use eleos::apps::wire::Session;
use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{with_syscalls, RpcService};
use eleos::suvm::{Suvm, SuvmConfig};

const DATA_BYTES: usize = 24 << 20; // exceeds the 16 MiB EPC below
const REQUESTS: usize = 3_000;

fn run(mode: &str) -> f64 {
    let machine = SgxMachine::new(MachineConfig {
        epc_bytes: 16 << 20,
        ..MachineConfig::default()
    });
    let session = Arc::new(Session::handshake([7u8; 16], [0x51u8; 16]));
    let mut ut = ThreadCtx::untrusted(&machine, 0);
    attest_session(&mut ut, &session);
    let fd = machine.host.socket(&ut, 1 << 20);

    let enclave = (mode != "native").then(|| machine.driver.create_enclave(&machine, 256 << 20));
    let (space, path, mut ctx) = match mode {
        "native" => (
            DataSpace::Untrusted(Arc::clone(&machine)),
            IoPath::Native,
            ThreadCtx::untrusted(&machine, 0),
        ),
        "sgx" => {
            let e = enclave.as_ref().expect("enclave built");
            let mut ctx = ThreadCtx::for_enclave(&machine, e, 0);
            ctx.enter();
            (DataSpace::Enclave(Arc::clone(e)), IoPath::Ocall, ctx)
        }
        "eleos" => {
            let e = enclave.as_ref().expect("enclave built");
            machine.enable_cat();
            let rpc = Arc::new(
                with_syscalls(RpcService::builder(&machine), &machine)
                    .workers(1, &[7])
                    .build(),
            );
            let t0 = ThreadCtx::for_enclave(&machine, e, 0);
            let suvm = Suvm::new(
                &t0,
                SuvmConfig {
                    epcpp_bytes: 8 << 20,
                    backing_bytes: 64 << 20,
                    ..SuvmConfig::default()
                },
            );
            let mut ctx = ThreadCtx::for_enclave(&machine, e, 0);
            ctx.enter();
            (DataSpace::suvm(&suvm), IoPath::Rpc(rpc), ctx)
        }
        other => panic!("unknown mode {other}"),
    };

    let n_keys = (DATA_BYTES / 32) as u64;
    let mut server = ParamServer::new(space, TableKind::OpenAddressing, n_keys);
    server.init(&mut ctx);
    server.populate_bulk(&mut ctx, n_keys);

    let io = ServerIoConfig::with_buf_len(64 << 10).build(&ctx, &[fd], path, Arc::clone(&session));
    let mut load = ParamLoad::new(3, n_keys, 4, None);
    machine.reset_counters();
    let c0 = ctx.now();
    let mut served = 0;
    while served < REQUESTS {
        let batch = (REQUESTS - served).min(256);
        for _ in 0..batch {
            machine
                .host
                .push_request(&ut, fd, &session.encrypt(&load.next_plain()));
        }
        for _ in 0..batch {
            server
                .handle_request(&mut ctx, &io)
                .expect("request queued");
        }
        served += batch;
    }
    let per_req = (ctx.now() - c0) as f64 / REQUESTS as f64;
    let s = machine.stats.snapshot();
    println!(
        "{mode:<8} {per_req:>9.0} cycles/request | exits {:>6} | hw faults {:>6} | suvm faults {:>6}",
        s.enclave_exits, s.hw_faults, s.suvm_major_faults
    );
    if ctx.in_enclave() {
        ctx.exit();
    }
    per_req
}

fn main() {
    println!("parameter server: 24 MiB of parameters on a 16 MiB-EPC machine, {REQUESTS} requests");
    let native = run("native");
    let sgx = run("sgx");
    let eleos = run("eleos");
    println!(
        "slowdown vs native: sgx {:.1}x, eleos {:.1}x",
        sgx / native,
        eleos / native
    );
}
