//! Quickstart: an enclave with exit-less OS services.
//!
//! Builds a simulated SGX machine, creates an enclave, and contrasts
//! the two ways of obtaining OS services the paper compares: OCALLs
//! (which exit the enclave) and Eleos's exit-less RPC. Then allocates
//! secure memory through SUVM and shows that paging a working set far
//! larger than the page cache never exits the enclave either.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{RpcService, UntrustedFn};
use eleos::suvm::spointer::SPtr;
use eleos::suvm::{Suvm, SuvmConfig};

fn main() {
    // A machine with 16 MiB of EPC — small enough to watch paging.
    let machine = SgxMachine::new(MachineConfig {
        epc_bytes: 16 << 20,
        ..MachineConfig::default()
    });
    let enclave = machine.driver.create_enclave(&machine, 64 << 20);

    // An RPC service with one worker on the last core.
    let rpc = RpcService::builder(&machine)
        .register(100, UntrustedFn::new(|_ctx, args| args[0] * args[1]))
        .workers(1, &[machine.core_count() - 1])
        .build();

    let mut t = ThreadCtx::for_enclave(&machine, &enclave, 0);
    t.enter();

    // 1. OCALL vs exit-less RPC.
    let c0 = t.now();
    let via_ocall = t.ocall(|_untrusted| 6 * 7);
    let ocall_cycles = t.now() - c0;
    let c0 = t.now();
    let via_rpc = rpc.call(&mut t, 100, [6, 7, 0, 0]);
    let rpc_cycles = t.now() - c0;
    assert_eq!(via_ocall, 42);
    assert_eq!(via_rpc, 42);
    println!("untrusted call:  OCALL {ocall_cycles} cycles | exit-less RPC {rpc_cycles} cycles");

    // 2. SUVM: secure memory beyond the page cache, paged in-enclave.
    let suvm = Suvm::new(
        &t,
        SuvmConfig {
            epcpp_bytes: 2 << 20, // 2 MiB page cache...
            backing_bytes: 64 << 20,
            ..SuvmConfig::default()
        },
    );
    let sva = suvm.malloc(16 << 20); // ...serving a 16 MiB buffer.
    let exits_before = machine.stats.snapshot().enclave_exits;
    for page in 0..4096u64 {
        let p: SPtr<u64> = SPtr::new(&suvm, sva + page * 4096);
        p.set(&mut t, page * 31);
    }
    let mut sum = 0u64;
    for page in 0..4096u64 {
        let p: SPtr<u64> = SPtr::new(&suvm, sva + page * 4096);
        sum += p.get(&mut t);
    }
    let stats = machine.stats.snapshot();
    assert_eq!(sum, (0..4096u64).map(|p| p * 31).sum::<u64>());
    println!(
        "SUVM paged a 16 MiB working set through a 2 MiB cache: \
         {} software faults, {} evictions, {} enclave exits",
        stats.suvm_major_faults,
        stats.suvm_evictions,
        stats.enclave_exits - exits_before
    );
    assert_eq!(
        stats.enclave_exits, exits_before,
        "SUVM paging is exit-less"
    );

    t.exit();
    drop(rpc);
    let _ = Arc::strong_count(&machine);
    println!("done.");
}
