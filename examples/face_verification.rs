//! The §5.2 biometric identity-checking server: LBP histograms in
//! SUVM, genuine captures accepted, impostors rejected — all behind
//! encrypted requests with the database paged exit-lessly.
//!
//! Run with: `cargo run --release --example face_verification`

use std::sync::Arc;

use eleos::apps::face::{
    build_verify_request, chi_square, lbp_histogram, synth_capture, synth_image, FaceDb, FaceServer,
};
use eleos::apps::io::{IoPath, ServerIoConfig};
use eleos::apps::loadgen::attest_session;
use eleos::apps::space::DataSpace;
use eleos::apps::wire::Session;
use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{with_syscalls, RpcService};
use eleos::suvm::{Suvm, SuvmConfig};

const SIDE: usize = 128;
const IDS: u64 = 64;

fn main() {
    let machine = SgxMachine::new(MachineConfig {
        epc_bytes: 16 << 20,
        ..MachineConfig::default()
    });
    let enclave = machine.driver.create_enclave(&machine, 64 << 20);
    let rpc = Arc::new(
        with_syscalls(RpcService::builder(&machine), &machine)
            .workers(1, &[7])
            .build(),
    );
    let t0 = ThreadCtx::for_enclave(&machine, &enclave, 0);
    let suvm = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 4 << 20,
            backing_bytes: 32 << 20,
            ..SuvmConfig::default()
        },
    );

    let mut ctx = ThreadCtx::for_enclave(&machine, &enclave, 0);
    ctx.enter();
    let mut db = FaceDb::new(DataSpace::suvm(&suvm), SIDE, IDS);
    db.init(&mut ctx);
    println!(
        "enrolling {IDS} identities ({} KiB of histograms each)...",
        eleos::apps::face::hist_bytes(SIDE) / 1024
    );
    for id in 1..=IDS {
        db.enroll(&mut ctx, id, &lbp_histogram(&synth_image(id, SIDE), SIDE));
    }

    // Pick a decision threshold from genuine/impostor score samples.
    let enrolled = db.fetch(&mut ctx, 1).expect("id 1 enrolled");
    let genuine = chi_square(
        &lbp_histogram(&synth_capture(1, SIDE, 1000), SIDE),
        &enrolled,
    );
    let impostor = chi_square(&lbp_histogram(&synth_image(2, SIDE), SIDE), &enrolled);
    println!("score calibration: genuine {genuine:.0} vs impostor {impostor:.0}");
    let mut server = FaceServer::new(db, (genuine + impostor) / 2.0);

    let session = Arc::new(Session::handshake([5u8; 16], [0x53u8; 16]));
    let mut ut = ThreadCtx::untrusted(&machine, 0);
    attest_session(&mut ut, &session);
    let fd = machine.host.socket(&ut, 4 << 20);
    let io = ServerIoConfig::with_buf_len((SIDE * SIDE) + 4096).build(
        &ctx,
        &[fd],
        IoPath::Rpc(rpc),
        Arc::clone(&session),
    );

    // A mixed request stream: genuine captures and impostor attempts.
    let mut correct = 0;
    let total = 60;
    for i in 0..total as u64 {
        let claimed = 1 + i % IDS;
        let genuine_attempt = i % 3 != 0;
        let img = if genuine_attempt {
            synth_capture(claimed, SIDE, 7000 + i)
        } else {
            synth_image(claimed % IDS + 1, SIDE) // someone else's face
        };
        machine.host.push_request(
            &ut,
            fd,
            &session.encrypt(&build_verify_request(claimed, SIDE, &img)),
        );
        assert!(server.handle_request(&mut ctx, &io));
        let resp = session.decrypt(&machine.host.pop_response(fd).expect("response"));
        let accepted = resp[0] == 1;
        if accepted == genuine_attempt {
            correct += 1;
        }
    }
    let (acc, rej) = server.decisions();
    println!(
        "{total} verifications: {correct} correct decisions ({acc} accepted / {rej} rejected)"
    );
    let s = machine.stats.snapshot();
    println!(
        "database reads paged exit-lessly: {} SUVM faults, {} enclave exits total",
        s.suvm_major_faults, s.enclave_exits
    );
    ctx.exit();
}
