//! Inter-enclave shared secure memory (the paper's §8 extension): two
//! enclaves exchange a stream of sealed records through untrusted
//! memory, with the host unable to read, modify, or replay them.
//!
//! Run with: `cargo run --release --example shared_memory`

use std::sync::Arc;

use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::suvm::shared::SharedRegion;

fn main() {
    let machine = SgxMachine::new(MachineConfig {
        epc_bytes: 16 << 20,
        ..MachineConfig::default()
    });
    let producer_enclave = machine.driver.create_enclave(&machine, 8 << 20);
    let consumer_enclave = machine.driver.create_enclave(&machine, 8 << 20);
    // The region key would come from local attestation between the two
    // enclaves; the host never sees it.
    let region = SharedRegion::establish(&machine, 8 << 20, [0xAA; 16]);
    let tok_p = region.join(&producer_enclave);
    let tok_c = region.join(&consumer_enclave);

    // Ring protocol in shared memory: [head u64][records 64 x 128B].
    let ring = tok_p.alloc(8 + 64 * 128);
    let n_records = 200u64;

    let producer = {
        let machine = Arc::clone(&machine);
        let e = Arc::clone(&producer_enclave);
        std::thread::spawn(move || {
            let mut t = ThreadCtx::for_enclave(&machine, &e, 0);
            t.enter();
            for i in 1..=n_records {
                let mut record = [0u8; 120];
                record[..8].copy_from_slice(&(i * 1000).to_le_bytes());
                record[8..16].copy_from_slice(&i.to_le_bytes());
                let slot = ring + 8 + (i % 64) * 128;
                tok_p.write(&mut t, slot, &record);
                tok_p.write_u64(&mut t, ring, i); // publish head
                std::thread::yield_now(); // let the consumer keep pace
            }
            t.exit();
        })
    };
    let consumer = {
        let machine = Arc::clone(&machine);
        let e = Arc::clone(&consumer_enclave);
        std::thread::spawn(move || {
            let mut t = ThreadCtx::for_enclave(&machine, &e, 1);
            t.enter();
            let mut seen = 0u64;
            let mut checked = 0u32;
            while seen < n_records {
                let head = tok_c.read_u64(&mut t, ring);
                if head > seen {
                    seen = head;
                    let mut record = [0u8; 120];
                    tok_c.read(&mut t, ring + 8 + (seen % 64) * 128, &mut record);
                    let value = u64::from_le_bytes(record[..8].try_into().unwrap());
                    let idx = u64::from_le_bytes(record[8..16].try_into().unwrap());
                    assert_eq!(value, idx * 1000, "record integrity");
                    checked += 1;
                } else {
                    std::thread::yield_now();
                }
            }
            t.exit();
            checked
        })
    };
    producer.join().unwrap();
    let checked = consumer.join().unwrap();
    println!("consumer verified {checked} of {n_records} sealed records (lossy latest-value ring)");

    // The host sees only ciphertext: scan untrusted memory for a known
    // record payload.
    let marker = (7u64 * 1000).to_le_bytes();
    let mut raw = vec![0u8; 16 << 20];
    machine.untrusted.read(0, &mut raw);
    let leaked = raw
        .windows(16)
        .any(|w| w[..8] == marker && w[8..16] == 7u64.to_le_bytes());
    println!("plaintext visible to the host: {leaked}");
    assert!(!leaked);
    println!(
        "sealed traffic: {} KiB moved through the shared region",
        machine.stats.snapshot().sealed_bytes / 1024
    );
}
