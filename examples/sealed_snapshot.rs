//! Warm restarts with sealed snapshots: a KVS running in one enclave
//! captures a portable [`Snapshot`] (the same library type fleet
//! failover ships over the cross-enclave channel), writes its framed
//! ciphertext to the untrusted host filesystem through exit-less file
//! syscalls, and a second enclave "process" restores it. Tampering
//! with the file is detected.
//!
//! Run with: `cargo run --release --example sealed_snapshot`

use std::sync::Arc;

use eleos::apps::kvs::Kvs;
use eleos::apps::space::DataSpace;
use eleos::crypto::gcm::AesGcm128;
use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{funcs, with_fs, RpcService};
use eleos::suvm::{Snapshot, Suvm, SuvmConfig};

/// Nonce domain for this application's snapshots (would be the sealing
/// enclave's id in a fleet; any fixed scope works for a single writer).
const DOMAIN: u32 = 1;

fn main() {
    let machine = SgxMachine::new(MachineConfig {
        epc_bytes: 16 << 20,
        ..MachineConfig::default()
    });
    let svc = Arc::new(
        with_fs(RpcService::builder(&machine), &machine)
            .workers(1, &[7])
            .build(),
    );
    // The sealing key would come from SGX sealing (EGETKEY); it is the
    // same for both "runs" of the application.
    let seal_key = AesGcm128::new(&[0x5e; 16]);
    let suvm_cfg = SuvmConfig {
        epcpp_bytes: 4 << 20,
        backing_bytes: 64 << 20,
        ..SuvmConfig::default()
    };

    // ---- Run 1: build state and snapshot it. ----
    let e1 = machine.driver.create_enclave(&machine, 64 << 20);
    let mut t1 = ThreadCtx::for_enclave(&machine, &e1, 0);
    t1.enter();
    let suvm1 = Suvm::new(&t1, suvm_cfg.clone());
    let mut kvs = Kvs::new(
        DataSpace::Untrusted(Arc::clone(&machine)),
        DataSpace::suvm(&suvm1),
        32 << 20,
        4096,
    );
    kvs.init(&mut t1);
    for i in 0..5_000u32 {
        kvs.set(
            &mut t1,
            format!("session:{i}").as_bytes(),
            &vec![(i % 251) as u8; 256],
        );
    }
    println!("run 1: stored {} items in SUVM", kvs.len());

    // Quiesce, then capture: the snapshot's sections are sealed in one
    // amortized batch and the frame stays ciphertext end-to-end.
    suvm1.quiesce(&mut t1);
    let snap = kvs.snapshot(&mut t1, &seal_key, DOMAIN, 1);
    let blob = snap.to_bytes();
    println!(
        "snapshot sealed at epoch {}: sections {:?}, {} KiB framed",
        snap.epoch(),
        snap.section_names(),
        blob.len() / 1024
    );

    // Write it to /var/kvs.img through exit-less file syscalls.
    let staging = machine.alloc_untrusted(blob.len().next_power_of_two());
    t1.write_untrusted(staging, &blob);
    let path = machine.alloc_untrusted(64);
    t1.write_untrusted(path, b"/var/kvs.img");
    let exits_before = machine.stats.snapshot().enclave_exits;
    let fd = svc.call(&mut t1, funcs::OPEN, [path, 12, 0, 0]);
    let wrote = svc.call(&mut t1, funcs::WRITE, [fd, staging, blob.len() as u64, 0]);
    svc.call(&mut t1, funcs::CLOSE, [fd, 0, 0, 0]);
    assert_eq!(wrote as usize, blob.len());
    println!(
        "snapshot written to the host FS without an enclave exit: {}",
        machine.stats.snapshot().enclave_exits == exits_before
    );
    t1.exit();
    drop(kvs);
    machine.driver.destroy_enclave(&machine, &e1);

    // ---- Run 2: a fresh enclave restores it. ----
    let e2 = machine.driver.create_enclave(&machine, 64 << 20);
    let mut t2 = ThreadCtx::for_enclave(&machine, &e2, 0);
    t2.enter();
    let suvm2 = Suvm::new(&t2, suvm_cfg);
    let fd = svc.call(&mut t2, funcs::OPEN, [path, 12, 0, 0]);
    let size = svc.call(&mut t2, funcs::FSIZE, [fd, 0, 0, 0]) as usize;
    let n = svc.call(&mut t2, funcs::READ, [fd, staging, size as u64, 0]) as usize;
    assert_eq!(n, size);
    let mut reread = vec![0u8; n];
    t2.read_untrusted(staging, &mut reread);

    let mut kvs2 = Kvs::new(
        DataSpace::Untrusted(Arc::clone(&machine)),
        DataSpace::suvm(&suvm2),
        32 << 20,
        4096,
    );
    kvs2.init(&mut t2);
    let restored = kvs2.restore(&mut t2, &seal_key, &Snapshot::from_bytes(&reread));
    println!("run 2: restored {restored} items");
    assert_eq!(
        kvs2.get(&mut t2, b"session:1234").as_deref(),
        Some(&vec![(1234 % 251) as u8; 256][..])
    );

    // ---- An attacker edits the file: restore fails closed. ----
    // Framing parses (the frame travels through untrusted memory), but
    // opening the tampered section fails authentication.
    let mut bad = reread.clone();
    bad[1000] ^= 0xff;
    let mut kvs3 = Kvs::new(
        DataSpace::Untrusted(Arc::clone(&machine)),
        DataSpace::suvm(&suvm2),
        32 << 20,
        4096,
    );
    kvs3.init(&mut t2);
    let quiet: Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Send + Sync> = Box::new(|_| {});
    let prev = std::panic::take_hook();
    std::panic::set_hook(quiet);
    let tampered = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        kvs3.restore(&mut t2, &seal_key, &Snapshot::from_bytes(&bad))
    }));
    std::panic::set_hook(prev);
    println!("tampered snapshot rejected: {}", tampered.is_err());
    t2.exit();
}
