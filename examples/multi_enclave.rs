//! A replicated enclave fleet behind the shard router: two SUVM-backed
//! replicas serve one KVS through the sharded exit-less pipeline
//! (connection → shard → owning replica), each paging its slice of the
//! store through its own EPC++ while the SGX driver fair-shares the
//! physical EPC between them (§3.3). Mid-run a replica is killed at a
//! fence — its sealed snapshot crosses the exit-less cross-enclave
//! channel, the heir restores it before reaping the inherited shards,
//! and no reply is lost — then respawned from the shard-owner's
//! donated snapshot.
//!
//! Run with: `cargo run --release --example multi_enclave`

use std::sync::Arc;

use eleos::apps::fleet_io::{FleetConfig, FleetKvs};
use eleos::apps::io::ServerIoConfig;
use eleos::apps::kvs::{build_get, build_set};
use eleos::apps::loadgen::attest_session;
use eleos::apps::{IoPath, Session};
use eleos::crypto::gcm::AesGcm128;
use eleos::crypto::Sealer;
use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::rpc::{with_syscalls, RpcService};
use eleos::suvm::SuvmConfig;

const SHARDS: usize = 4;
const REPLICAS: usize = 2;
const N_CONNS: u64 = 8;
const N_ITEMS: u32 = 2048;
const VAL: usize = 1024;
const ROUNDS: usize = 32;
const KILL_AT: usize = 16;
const RESPAWN_AT: usize = 24;

fn main() {
    let machine = SgxMachine::new(MachineConfig {
        epc_bytes: 24 << 20,
        ..MachineConfig::default()
    });
    let ut = ThreadCtx::untrusted(&machine, 2);
    let fds: Vec<_> = (0..SHARDS)
        .map(|_| machine.host.socket(&ut, 256 << 10))
        .collect();
    let svc = with_syscalls(RpcService::builder(&machine), &machine)
        .workers(2, &[6, 7])
        .build();
    let session = Arc::new(Session::handshake([9u8; 16], [0x54u8; 16]));
    {
        let mut hs = ThreadCtx::untrusted(&machine, 2);
        attest_session(&mut hs, &session);
    }
    // The fleet key is shared across replicas (a per-enclave sealing
    // identity dies with its enclave, so snapshots must not use it).
    let sealer: Arc<dyn Sealer> = Arc::new(AesGcm128::new(&[0x2au8; 16]));

    // Each replica's kv data lives in its own 1 MiB EPC++ over a 2 MiB
    // store, so both page continuously and contend on the shared EPC.
    let fk = FleetKvs::new(
        &machine,
        &fds,
        ServerIoConfig::with_buf_len(16 << 10)
            .batch(8)
            .shards(SHARDS),
        IoPath::Rpc(Arc::new(svc)),
        Arc::clone(&session),
        sealer,
        FleetConfig {
            suvm: Some(SuvmConfig {
                epcpp_bytes: 1 << 20,
                backing_bytes: 16 << 20,
                headroom_bytes: 256 << 10,
                ..SuvmConfig::default()
            }),
            cores: vec![0, 1],
            ..FleetConfig::small(REPLICAS)
        },
        |ctx, kvs| {
            for i in 0..N_ITEMS {
                kvs.set(ctx, format!("item-{i}").as_bytes(), &[(i % 251) as u8; VAL]);
            }
        },
    );
    for r in 0..REPLICAS {
        let id = fk.fleet().enclave(r).id;
        println!(
            "replica {r}: enclave {id}, driver fair share {} MiB of {} MiB EPC",
            (machine.driver.available_epc_for(id) * 4096) >> 20,
            machine.cfg.epc_bytes >> 20
        );
    }

    // A conn pinned to a replica-1 shard: its pre-kill SET must survive
    // the failover (the heir restores the victim's snapshot first).
    let map = Arc::clone(fk.map());
    let marked = (0..N_CONNS)
        .find(|&c| map.route_replica(c).1 == 1)
        .expect("some connection lands on replica 1");

    let reap = |pushed_minus_reaped: &mut u64| {
        for &fd in &fds {
            while let Some(resp) = machine.host.pop_response(fd) {
                let plain = session.decrypt(&resp);
                assert_eq!(plain[0], 1, "every request hits (found / stored)");
                *pushed_minus_reaped -= 1;
            }
        }
    };

    let mut outstanding = 0u64;
    let mut pushed = 0u64;
    for round in 0..ROUNDS {
        let now = fk.sync_clocks();
        for conn in 0..N_CONNS {
            let (s, _owner) = map.route_replica(conn);
            let plain = if conn == marked && round < KILL_AT {
                build_set(format!("round-{round}").as_bytes(), &[round as u8; 64])
            } else {
                build_get(
                    format!("item-{}", (round as u32 * 37 + conn as u32) % N_ITEMS).as_bytes(),
                )
            };
            machine
                .host
                .push_request_at(&ut, fds[s], &session.encrypt(&plain), now);
            outstanding += 1;
            pushed += 1;
        }
        let mut done = 0;
        while done < N_CONNS as usize {
            let got = fk.pump();
            assert!(got > 0, "queued requests must be served");
            done += got;
            reap(&mut outstanding);
        }
        fk.flush();
        reap(&mut outstanding);

        if round + 1 == KILL_AT {
            let rep = fk.kill(1);
            println!(
                "kill replica 1 at a fence: heir {} takes {} shards, {} KiB snapshot over the \
                 channel, {} cycles; survivor's fair share now {} MiB",
                rep.heir,
                rep.shards_moved,
                rep.snapshot_bytes >> 10,
                rep.cycles,
                (machine
                    .driver
                    .available_epc_for(fk.fleet().enclave(rep.heir).id)
                    * 4096)
                    >> 20
            );
        }
        if round + 1 == RESPAWN_AT {
            let rep = fk.respawn(1);
            println!(
                "respawn replica 1: owner {} donates {} KiB, {} shards taken back, {} cycles",
                rep.donor,
                rep.snapshot_bytes >> 10,
                rep.shards_taken,
                rep.cycles
            );
        }
    }
    fk.flush();
    reap(&mut outstanding);
    assert_eq!(outstanding, 0, "every pushed request was answered");

    // The heir still serves the marked connection's pre-kill writes.
    let (s, owner) = map.route_replica(marked);
    let probe = format!("round-{}", KILL_AT - 1);
    machine
        .host
        .push_request(&ut, fds[s], &session.encrypt(&build_get(probe.as_bytes())));
    while fk.pump() == 0 {}
    fk.flush();
    let plain = session.decrypt(&machine.host.pop_response(fds[s]).unwrap());
    assert_eq!(plain[0], 1, "pre-kill write must survive the failover");
    assert_eq!(&plain[5..], [(KILL_AT - 1) as u8; 64]);
    println!("pre-kill write served by replica {owner} after the kill/respawn cycle");

    let st = machine.stats.snapshot();
    for r in 0..REPLICAS {
        let handled: u64 = (0..SHARDS)
            .map(|s| st.shard.replica[r].sojourn[s].count())
            .sum();
        println!("replica {r} reaped {handled} requests across its shard slices");
    }
    println!(
        "{pushed} replies, 0 lost; {} failovers, {} snapshots, {} restores; {} channel msgs \
         ({} KiB, all ciphertext); {} SUVM faults, {} evictions under the shared EPC",
        st.fleet_failovers,
        st.fleet_snapshots,
        st.fleet_restores,
        st.xchan_msgs,
        st.xchan_bytes >> 10,
        st.suvm_major_faults,
        st.suvm_evictions
    );
}
