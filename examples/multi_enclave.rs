//! Multi-enclave ballooning (§3.3): two enclaves share the PRM, and
//! the SUVM swapper coordinates each one's EPC++ size with the SGX
//! driver so neither thrashes the other.
//!
//! Run with: `cargo run --release --example multi_enclave`

use std::sync::Arc;

use eleos::enclave::machine::{MachineConfig, SgxMachine};
use eleos::enclave::thread::ThreadCtx;
use eleos::suvm::{Suvm, SuvmConfig};

fn main() {
    let machine = SgxMachine::new(MachineConfig {
        epc_bytes: 24 << 20,
        ..MachineConfig::default()
    });
    println!(
        "machine: {} MiB EPC shared by whoever comes",
        machine.cfg.epc_bytes >> 20
    );

    // Enclave A starts alone and sizes its EPC++ greedily.
    let e1 = machine.driver.create_enclave(&machine, 64 << 20);
    let t0 = ThreadCtx::for_enclave(&machine, &e1, 0);
    let suvm1 = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 16 << 20,
            backing_bytes: 64 << 20,
            headroom_bytes: 2 << 20,
            ..SuvmConfig::default()
        },
    );
    let mut t1 = ThreadCtx::for_enclave(&machine, &e1, 0);
    t1.enter();
    let a = suvm1.malloc(16 << 20);
    for page in 0..4096u64 {
        suvm1.write(&mut t1, a + page * 4096, &[1u8; 64]);
    }
    println!(
        "enclave A alone: driver share {} frames, EPC++ {} frames resident {}",
        machine.driver.available_epc_for(e1.id),
        suvm1.frame_limit(),
        suvm1.resident_pages()
    );

    // Enclave B arrives: the fair share halves.
    let e2 = machine.driver.create_enclave(&machine, 64 << 20);
    println!(
        "enclave B arrives: driver share drops to {} frames each",
        machine.driver.available_epc_for(e1.id)
    );

    // A's swapper tick applies the new share (what the background
    // `Swapper` thread does periodically).
    suvm1.swapper_tick(&mut t1);
    println!(
        "after A's swapper tick: EPC++ limit {} frames ({} MiB), resident {}",
        suvm1.frame_limit(),
        (suvm1.frame_limit() * 4096) >> 20,
        suvm1.resident_pages()
    );

    // B can now run its own working set without evicting A's EPC++
    // through the hardware.
    let t0b = ThreadCtx::for_enclave(&machine, &e2, 1);
    let suvm2 = Suvm::new(
        &t0b,
        SuvmConfig {
            epcpp_bytes: 8 << 20,
            backing_bytes: 64 << 20,
            headroom_bytes: 2 << 20,
            ..SuvmConfig::default()
        },
    );
    let mut t2 = ThreadCtx::for_enclave(&machine, &e2, 1);
    t2.enter();
    let b = suvm2.malloc(16 << 20);
    let before = machine.stats.snapshot();
    for page in 0..4096u64 {
        suvm2.write(&mut t2, b + page * 4096, &[2u8; 64]);
    }
    suvm2.swapper_tick(&mut t2);
    let delta = machine.stats.snapshot() - before;
    println!(
        "enclave B worked through 16 MiB: {} SUVM faults, {} hardware faults",
        delta.suvm_major_faults, delta.hw_faults
    );

    // Data both sides is intact.
    let mut buf = [0u8; 64];
    suvm1.read(&mut t1, a + 1234 * 4096, &mut buf);
    assert_eq!(buf, [1u8; 64]);
    suvm2.read(&mut t2, b + 1234 * 4096, &mut buf);
    assert_eq!(buf, [2u8; 64]);
    println!("both enclaves' data intact under shared PRM.");

    t1.exit();
    t2.exit();
    machine.driver.destroy_enclave(&machine, &e1);
    machine.driver.destroy_enclave(&machine, &e2);
    let _ = Arc::strong_count(&machine);
}
