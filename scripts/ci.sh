#!/usr/bin/env bash
# Tier-1 gate plus style/lint checks, fully offline (all dependencies
# are vendored under vendor/). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release --workspace --offline

echo "== tests"
cargo test --workspace --offline -q

echo "== suvm paging proptests"
cargo test --test suvm_paging --offline -q

echo "== paging_bench smoke"
cargo run --release -p eleos-bench --bin repro --offline -- paging_bench --quick --scale 16
for label in clock fifo random lru slru buddy striped; do
    grep -q "\"$label\"" BENCH_paging.json \
        || { echo "BENCH_paging.json missing $label cells"; exit 1; }
done

echo "== fmt"
cargo fmt --all --check

echo "== clippy"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
