#!/usr/bin/env bash
# Tier-1 gate plus style/lint checks, fully offline (all dependencies
# are vendored under vendor/). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release --workspace --offline

echo "== tests"
cargo test --workspace --offline -q

echo "== suvm paging proptests"
cargo test --test suvm_paging --offline -q

echo "== paging_bench smoke"
cargo run --release -p eleos-bench --bin repro --offline -- paging_bench --quick --scale 16
for label in clock fifo random lru slru buddy striped; do
    grep -q "\"$label\"" BENCH_paging.json \
        || { echo "BENCH_paging.json missing $label cells"; exit 1; }
done

echo "== crypto batch-equivalence proptests"
cargo test -p eleos-crypto --offline -q

echo "== scatter-gather / unified-sealer equivalence suite"
cargo test --test batch_equivalence --offline -q

echo "== crypto_bench smoke"
cargo run --release -p eleos-bench --bin repro --offline -- crypto_bench --quick --scale 16
python3 - <<'EOF'
import itertools, json, sys

cells = json.load(open("BENCH_crypto.json"))["cells"]
by_series = {}
for c in cells:
    key = (c["server"], c["crypto"], c["workers"], c["io"])
    by_series.setdefault(key, {})[c["batch"]] = c["cycles_per_op"]

# Single-worker sweep: batched crypto beats or matches per-message at
# every depth, monotone nonincreasing in batch.
for server, crypto in itertools.product(
    ("kvs", "text", "param"), ("per-msg", "batched")
):
    series = by_series.get((server, crypto, 1, "sg"))
    if not series or sorted(series) != [1, 8]:
        sys.exit(f"BENCH_crypto.json missing cells for ({server}, {crypto})")
    if series[8] > series[1]:
        sys.exit(
            f"({server}, {crypto}) cycles/op not monotone nonincreasing: "
            f"batch 1 = {series[1]}, batch 8 = {series[8]}"
        )

# Multi-worker sweep: with two workers, scatter-gather sub-batches must
# beat the per-message I/O baseline at batch 8 and stay monotone.
for server in ("kvs", "text"):
    sg = by_series.get((server, "batched", 2, "sg"))
    per_msg = by_series.get((server, "batched", 2, "per-msg"))
    if not sg or not per_msg or sorted(sg) != [1, 8] or sorted(per_msg) != [1, 8]:
        sys.exit(f"BENCH_crypto.json missing workers=2 cells for {server}")
    if sg[8] >= per_msg[8]:
        sys.exit(
            f"({server}, workers=2) sub-batches must beat per-message at "
            f"batch 8: sg = {sg[8]}, per-msg = {per_msg[8]}"
        )
    if sg[8] > sg[1]:
        sys.exit(
            f"({server}, workers=2, sg) cycles/op not monotone nonincreasing: "
            f"batch 1 = {sg[1]}, batch 8 = {sg[8]}"
        )
print(f"   {len(cells)} cells, workers=2 sub-batches beat per-message")
EOF

echo "== sharded-serving equivalence suite"
cargo test --test sharding_equivalence --offline -q

echo "== serving_bench smoke"
cargo run --release -p eleos-bench --bin repro --offline -- serving_bench --quick --scale 16
python3 - <<'EOF'
import itertools, json, sys

cells = json.load(open("BENCH_serving.json"))["cells"]
by_cell = {(c["load"], c["policy"], c["shards"]): c for c in cells}

# Every (load, policy, shards) cell must be present, with percentiles.
for load, policy, shards in itertools.product(
    ("steady", "bursty", "trickle"),
    ("fixed-1", "fixed-8", "fixed-32", "adaptive"),
    (1, 2, 4),
):
    c = by_cell.get((load, policy, shards))
    if c is None:
        sys.exit(f"BENCH_serving.json missing cell ({load}, {policy}, {shards})")
    if not (c["sojourn_p50"] <= c["sojourn_p95"] <= c["sojourn_p99"]):
        sys.exit(f"({load}, {policy}, {shards}) percentiles not ordered")
    if c["sojourn_count"] == 0:
        sys.exit(f"({load}, {policy}, {shards}) recorded no sojourn samples")

for shards in (1, 2, 4):
    # Bursty load: the adaptive depth must grow into the burst and at
    # least match the shallow fixed policy's throughput.
    ad = by_cell[("bursty", "adaptive", shards)]
    f1 = by_cell[("bursty", "fixed-1", shards)]
    if ad["throughput_ops_s"] < f1["throughput_ops_s"]:
        sys.exit(
            f"bursty shards={shards}: adaptive throughput "
            f"{ad['throughput_ops_s']:.0f} below fixed-1 {f1['throughput_ops_s']:.0f}"
        )
    # Trickle load: adaptive serves each arrival instead of waiting
    # out a full fixed-32 batch, so its tail latency must not exceed
    # the deep fixed policy's.
    ad = by_cell[("trickle", "adaptive", shards)]
    f32 = by_cell[("trickle", "fixed-32", shards)]
    if ad["sojourn_p99"] > f32["sojourn_p99"]:
        sys.exit(
            f"trickle shards={shards}: adaptive p99 {ad['sojourn_p99']} "
            f"exceeds fixed-32 p99 {f32['sojourn_p99']}"
        )
print(f"   {len(cells)} cells, adaptive rides burst throughput and trickle tail latency")
EOF

echo "== fmt"
cargo fmt --all --check

echo "== clippy"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
