#!/usr/bin/env bash
# Tier-1 gate plus style/lint checks, fully offline (all dependencies
# are vendored under vendor/). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release --workspace --offline

echo "== tests"
cargo test --workspace --offline -q

echo "== fmt"
cargo fmt --all --check

echo "== clippy"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
