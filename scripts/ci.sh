#!/usr/bin/env bash
# Tier-1 gate plus style/lint checks, fully offline (all dependencies
# are vendored under vendor/). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release --workspace --offline

echo "== tests"
cargo test --workspace --offline -q

echo "== suvm paging proptests"
cargo test --test suvm_paging --offline -q

echo "== paging_bench smoke"
cargo run --release -p eleos-bench --bin repro --offline -- paging_bench --quick --scale 16
for label in clock fifo random lru slru buddy striped; do
    grep -q "\"$label\"" BENCH_paging.json \
        || { echo "BENCH_paging.json missing $label cells"; exit 1; }
done

echo "== crypto batch-equivalence proptests"
cargo test -p eleos-crypto --offline -q

echo "== crypto_bench smoke"
cargo run --release -p eleos-bench --bin repro --offline -- crypto_bench --quick --scale 16
python3 - <<'EOF'
import itertools, json, sys

cells = json.load(open("BENCH_crypto.json"))["cells"]
by_series = {}
for c in cells:
    by_series.setdefault((c["server"], c["crypto"]), {})[c["batch"]] = c["cycles_per_op"]
for server, crypto in itertools.product(
    ("kvs", "text", "param"), ("per-msg", "batched")
):
    series = by_series.get((server, crypto))
    if not series or sorted(series) != [1, 8]:
        sys.exit(f"BENCH_crypto.json missing cells for ({server}, {crypto})")
    if series[8] > series[1]:
        sys.exit(
            f"({server}, {crypto}) cycles/op not monotone nonincreasing: "
            f"batch 1 = {series[1]}, batch 8 = {series[8]}"
        )
print(f"   {len(cells)} cells, every series monotone nonincreasing")
EOF

echo "== fmt"
cargo fmt --all --check

echo "== clippy"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
