#!/usr/bin/env bash
# Tier-1 gate plus style/lint checks, fully offline (all dependencies
# are vendored under vendor/). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release --workspace --offline

echo "== tests"
cargo test --workspace --offline -q

echo "== suvm paging proptests"
cargo test --test suvm_paging --offline -q

echo "== paging_bench smoke"
cargo run --release -p eleos-bench --bin repro --offline -- paging_bench --quick --scale 16
for label in clock fifo random lru slru buddy striped; do
    grep -q "\"$label\"" BENCH_paging.json \
        || { echo "BENCH_paging.json missing $label cells"; exit 1; }
done

echo "== crypto batch-equivalence proptests"
cargo test -p eleos-crypto --offline -q

echo "== scatter-gather / unified-sealer equivalence suite"
cargo test --test batch_equivalence --offline -q

echo "== crypto_bench smoke"
cargo run --release -p eleos-bench --bin repro --offline -- crypto_bench --quick --scale 16
python3 - <<'EOF'
import itertools, json, sys

cells = json.load(open("BENCH_crypto.json"))["cells"]
by_series = {}
for c in cells:
    key = (c["server"], c["crypto"], c["workers"], c["io"])
    by_series.setdefault(key, {})[c["batch"]] = c["cycles_per_op"]

# Single-worker sweep: batched crypto beats or matches per-message at
# every depth, monotone nonincreasing in batch.
for server, crypto in itertools.product(
    ("kvs", "text", "param"), ("per-msg", "batched")
):
    series = by_series.get((server, crypto, 1, "sg"))
    if not series or sorted(series) != [1, 8]:
        sys.exit(f"BENCH_crypto.json missing cells for ({server}, {crypto})")
    if series[8] > series[1]:
        sys.exit(
            f"({server}, {crypto}) cycles/op not monotone nonincreasing: "
            f"batch 1 = {series[1]}, batch 8 = {series[8]}"
        )

# Multi-worker sweep: with two workers, scatter-gather sub-batches must
# beat the per-message I/O baseline at batch 8 and stay monotone.
for server in ("kvs", "text"):
    sg = by_series.get((server, "batched", 2, "sg"))
    per_msg = by_series.get((server, "batched", 2, "per-msg"))
    if not sg or not per_msg or sorted(sg) != [1, 8] or sorted(per_msg) != [1, 8]:
        sys.exit(f"BENCH_crypto.json missing workers=2 cells for {server}")
    if sg[8] >= per_msg[8]:
        sys.exit(
            f"({server}, workers=2) sub-batches must beat per-message at "
            f"batch 8: sg = {sg[8]}, per-msg = {per_msg[8]}"
        )
    if sg[8] > sg[1]:
        sys.exit(
            f"({server}, workers=2, sg) cycles/op not monotone nonincreasing: "
            f"batch 1 = {sg[1]}, batch 8 = {sg[8]}"
        )
print(f"   {len(cells)} cells, workers=2 sub-batches beat per-message")
EOF

echo "== sharded-serving equivalence suite"
cargo test --test sharding_equivalence --offline -q

echo "== fleet equivalence suite (chaos schedules, byte-identical replies)"
cargo test --test fleet_equivalence --offline -q

echo "== session lifecycle suite (handshake, rekey, revocation)"
cargo test --test security --offline -q

echo "== storage shadow-model suite (both engines, rebalancer transparency)"
cargo test --test storage_equivalence --offline -q

echo "== storage_bench smoke"
cargo run --release -p eleos-bench --bin repro --offline -- storage_bench --quick --scale 8
python3 - <<'EOF'
import itertools, json, sys

cells = json.load(open("BENCH_storage.json"))["cells"]
by = {(c["cell"], c["engine"]): c for c in cells}
for key in itertools.product(
    ("shifting", "skewed", "ttl"),
    ("slab-static", "slab-rebal", "slab-rebal-bg", "segment", "segment-bg"),
):
    if key not in by:
        sys.exit(f"BENCH_storage.json missing cell {key}")

# Shifting size mix: the rebalancer reassigns whole slabs to the
# starved class, so it must beat static slabs on busy cycles/op and
# must actually have moved slabs to do it.
static = by[("shifting", "slab-static")]
rebal = by[("shifting", "slab-rebal")]
if rebal["busy_cpo"] >= static["busy_cpo"]:
    sys.exit(
        f"shifting: rebalancer busy c/op {rebal['busy_cpo']:.0f} does not "
        f"beat static {static['busy_cpo']:.0f}"
    )
if rebal["slab_moves"] == 0:
    sys.exit("shifting: the rebalancer never moved a slab")
if static["slab_moves"] != 0:
    sys.exit("shifting: the static engine moved slabs")

# Background maintenance: the fence-synchronous rebalancer stalls the
# serving core for its relocation byte-work; the background engine
# does the same moves from maintenance ticks on another core, so its
# serving-path stall is zero and its busy cycles/op match the
# synchronous engine's within noise.
bg = by[("shifting", "slab-rebal-bg")]
if rebal["maint_stall_cycles"] == 0:
    sys.exit("shifting: the synchronous rebalancer recorded no fence stall")
if bg["maint_stall_cycles"] != 0:
    sys.exit(
        f"shifting: background rebalancer stalled the serving path "
        f"{bg['maint_stall_cycles']} cycles"
    )
if bg["slab_moves"] == 0:
    sys.exit("shifting: the background rebalancer never moved a slab")
if bg["busy_cpo"] > rebal["busy_cpo"] * 1.02:
    sys.exit(
        f"shifting: background rebalancer busy c/op {bg['busy_cpo']:.0f} more "
        f"than 2% over the synchronous engine {rebal['busy_cpo']:.0f}"
    )
segbg = by[("shifting", "segment-bg")]
seg_sync = by[("shifting", "segment")]
if segbg["maint_stall_cycles"] != 0:
    sys.exit(
        f"shifting: background segment store stalled the serving path "
        f"{segbg['maint_stall_cycles']} cycles"
    )
if segbg["bg_merges"] == 0:
    sys.exit("shifting: the background segment store never merged proactively")
if segbg["busy_cpo"] >= seg_sync["busy_cpo"]:
    sys.exit(
        f"shifting: background segment busy c/op {segbg['busy_cpo']:.0f} does "
        f"not beat the fence-synchronous store {seg_sync['busy_cpo']:.0f}"
    )

# TTL-heavy traffic: the segment store reclaims whole expired segments
# at fences and must beat the static slab engine on busy cycles/op.
seg = by[("ttl", "segment")]
slab = by[("ttl", "slab-static")]
if seg["busy_cpo"] >= slab["busy_cpo"]:
    sys.exit(
        f"ttl: segment busy c/op {seg['busy_cpo']:.0f} does not beat "
        f"slab-static {slab['busy_cpo']:.0f}"
    )
if seg["expired"] == 0 or slab["expired"] == 0:
    sys.exit("ttl: no expiry activity — the cell is not exercising TTLs")
print(
    f"   {len(cells)} cells, rebalancer beats static slabs under the size "
    f"shift ({rebal['busy_cpo']:.0f} vs {static['busy_cpo']:.0f} c/op), "
    f"segment store beats slabs under TTL churn "
    f"({seg['busy_cpo']:.0f} vs {slab['busy_cpo']:.0f} c/op), background "
    f"maintenance keeps the serving-path stall at 0 "
    f"(sync rebalance stalled {rebal['maint_stall_cycles']} cycles)"
)
EOF

echo "== serving_bench smoke"
# Scale 8, not 16: at 1/16 the LLC is barely larger than four shards'
# staging buffers, and the balance layer's extra buffer traffic
# (stolen runs land in the thief's stripes) drowns the round savings
# it exists to demonstrate.
cargo run --release -p eleos-bench --bin repro --offline -- serving_bench --quick --scale 8
python3 - <<'EOF'
import itertools, json, sys

cells = json.load(open("BENCH_serving.json"))["cells"]
# Cells are keyed by (load, policy, shards, balance, replicas, chaos).
# Fleet cells (the ones with per-replica op counts) re-run the
# replicas=1 configuration through the fleet harness, so they are kept
# apart from the single-enclave sweep.
sweep = [c for c in cells if not c["replica_ops"]]
by_cell = {
    (c["load"], c["policy"], c["shards"], c["balance"], c["replicas"], c["chaos"]): c
    for c in sweep
}
fleet = {
    (c["policy"], c["replicas"], c["chaos"]): c for c in cells if c["replica_ops"]
}

# Every (load, policy, shards, balance) sweep cell must be present,
# with percentiles; the skewed and churn shapes add balanced cells at
# 2 and 4 shards.
expected = [
    (load, policy, shards, "static", 1, "none")
    for load, policy, shards in itertools.product(
        ("steady", "bursty", "trickle", "skewed", "churn"),
        ("fixed-1", "fixed-8", "fixed-32", "adaptive"),
        (1, 2, 4),
    )
] + [
    (load, policy, shards, "balanced", 1, "none")
    for load, policy, shards in itertools.product(
        ("skewed", "churn"),
        ("fixed-1", "fixed-8", "fixed-32", "adaptive"),
        (2, 4),
    )
]
for key in expected:
    c = by_cell.get(key)
    if c is None:
        sys.exit(f"BENCH_serving.json missing cell {key}")
    if not (c["sojourn_p50"] <= c["sojourn_p95"] <= c["sojourn_p99"]):
        sys.exit(f"{key} percentiles not ordered")
    if c["sojourn_count"] == 0:
        sys.exit(f"{key} recorded no sojourn samples")
    for gauge in (
        "shard_backlog",
        "shard_depth",
        "steals_taken",
        "steals_given",
        "migrations",
        "shard_sojourn_p99",
    ):
        if len(c[gauge]) != c["shards"]:
            sys.exit(f"{key} gauge {gauge} has {len(c[gauge])} entries, want {c['shards']}")

for shards in (1, 2, 4):
    # Bursty load: the adaptive depth must grow into the burst and at
    # least match the shallow fixed policy's throughput.
    ad = by_cell[("bursty", "adaptive", shards, "static", 1, "none")]
    f1 = by_cell[("bursty", "fixed-1", shards, "static", 1, "none")]
    if ad["throughput_ops_s"] < f1["throughput_ops_s"]:
        sys.exit(
            f"bursty shards={shards}: adaptive throughput "
            f"{ad['throughput_ops_s']:.0f} below fixed-1 {f1['throughput_ops_s']:.0f}"
        )
    # Trickle load: adaptive serves each arrival instead of waiting
    # out a full fixed-32 batch, so its tail latency must not exceed
    # the deep fixed policy's.
    ad = by_cell[("trickle", "adaptive", shards, "static", 1, "none")]
    f32 = by_cell[("trickle", "fixed-32", shards, "static", 1, "none")]
    if ad["sojourn_p99"] > f32["sojourn_p99"]:
        sys.exit(
            f"trickle shards={shards}: adaptive p99 {ad['sojourn_p99']} "
            f"exceeds fixed-32 p99 {f32['sojourn_p99']}"
        )

# Skewed and churning load: the balance layer (re-pinning + stealing)
# must beat or match static pinning on busy cycles/op for the adaptive
# policy, and must not worsen its p99 sojourn.
for load, shards in itertools.product(("skewed", "churn"), (2, 4)):
    bal = by_cell[(load, "adaptive", shards, "balanced", 1, "none")]
    st = by_cell[(load, "adaptive", shards, "static", 1, "none")]
    if bal["busy_cycles_per_op"] > st["busy_cycles_per_op"]:
        sys.exit(
            f"{load} shards={shards}: balanced busy cycles/op "
            f"{bal['busy_cycles_per_op']:.0f} exceeds static {st['busy_cycles_per_op']:.0f}"
        )
    if bal["sojourn_p99"] > st["sojourn_p99"]:
        sys.exit(
            f"{load} shards={shards}: balanced p99 {bal['sojourn_p99']} "
            f"exceeds static p99 {st['sojourn_p99']}"
        )
# Fleet cells: the replicas axis on steady load plus the two chaos
# cells (kill 1 of 3 mid-backlog at 50% of the run, respawn at 75% —
# synchronous fence vs the background maintenance plane).
for key in [
    ("fixed-8", 1, "none"),
    ("fixed-8", 2, "none"),
    ("adaptive", 1, "none"),
    ("adaptive", 2, "none"),
    ("adaptive", 3, "kill-respawn"),
    ("adaptive", 3, "kill-respawn-bg"),
]:
    c = fleet.get(key)
    if c is None:
        sys.exit(f"BENCH_serving.json missing fleet cell {key}")
    # Zero lost replies, chaos or not: host socket queues outlive the
    # enclave and the heir restores before reaping inherited shards.
    if c["lost_replies"] != 0:
        sys.exit(f"fleet cell {key} lost {c['lost_replies']} replies")
    if len(c["replica_ops"]) != c["replicas"]:
        sys.exit(f"fleet cell {key} gauges {len(c['replica_ops'])} replicas")
    if sum(c["replica_ops"]) != c["ops"] or min(c["replica_ops"]) == 0:
        sys.exit(f"fleet cell {key} replica_ops {c['replica_ops']} != ops {c['ops']}")

# Steady state: adding a replica must not tax the pipeline — replicas=2
# (each replica serving its shard slice on its own core) stays within
# 5% busy cycles/op of the single-enclave baseline.
for policy in ("fixed-8", "adaptive"):
    one = fleet[(policy, 1, "none")]["busy_cycles_per_op"]
    two = fleet[(policy, 2, "none")]["busy_cycles_per_op"]
    if two > one * 1.05:
        sys.exit(
            f"fleet {policy}: replicas=2 busy cycles/op {two:.0f} more than "
            f"5% over the single-enclave baseline {one:.0f}"
        )

# Chaos cells: the fence protocols ran, and each stayed under the
# recovery budget. The budget is the *synchronous* cell's busy span
# for both labels: the sync fences run inside that span by
# construction, and the background plane's maintenance-core cycles
# replace that on-path work, so they must stay the same magnitude —
# the bg cell's own (smaller, that is the win) span is not the bound.
budget = (
    fleet[("adaptive", 3, "kill-respawn")]["busy_cycles_per_op"]
    * fleet[("adaptive", 3, "kill-respawn")]["ops"]
)
for label in ("kill-respawn", "kill-respawn-bg"):
    chaos = fleet[("adaptive", 3, label)]
    for fence in ("failover_cycles", "recovery_cycles"):
        if not 0 < chaos[fence] < budget:
            sys.exit(
                f"{label} cell {fence} {chaos[fence]} outside (0, {budget:.0f}) budget"
            )

# Background maintenance plane: the kill/respawn byte-work runs on the
# maintenance core, so the stranded backlog's failover-window p99
# collapses (at least 2x lower than the synchronous fence) while busy
# cycles/op stays at or below the synchronous cell's. The plane must
# actually have run: delta chunks streamed, heartbeat misses observed.
sync_chaos = fleet[("adaptive", 3, "kill-respawn")]
bg_chaos = fleet[("adaptive", 3, "kill-respawn-bg")]
if bg_chaos["maint_chunks"] == 0:
    sys.exit("kill-respawn-bg streamed no delta chunks")
if bg_chaos["hb_misses"] == 0:
    sys.exit("kill-respawn-bg observed no heartbeat misses")
if bg_chaos["sojourn_p99"] > sync_chaos["sojourn_p99"] * 0.5:
    sys.exit(
        f"background chaos p99 {bg_chaos['sojourn_p99']} not at least 2x below "
        f"the synchronous fence's {sync_chaos['sojourn_p99']}"
    )
if bg_chaos["busy_cycles_per_op"] > sync_chaos["busy_cycles_per_op"]:
    sys.exit(
        f"background chaos busy cycles/op {bg_chaos['busy_cycles_per_op']:.0f} "
        f"exceeds the synchronous cell's {sync_chaos['busy_cycles_per_op']:.0f}"
    )

# Session cells: the rekey sweep on the steady/adaptive/1-shard
# baseline plus the two-session revocation chaos cell.
session = {
    c["chaos"]: c
    for c in cells
    if c["chaos"].startswith("rekey-") or c["chaos"] == "revoke"
}
for label in ("rekey-inf", "rekey-4096", "rekey-1024", "rekey-256"):
    c = session.get(label)
    if c is None:
        sys.exit(f"BENCH_serving.json missing session cell {label}")
    # Epoch rotation is double-buffered: the old epoch drains while the
    # new one serves, so nothing is ever dropped or rejected.
    if c["lost_replies"] != 0:
        sys.exit(f"session cell {label} lost {c['lost_replies']} replies")
    if c["auth_failures"] != 0:
        sys.exit(f"session cell {label} had {c['auth_failures']} auth failures")
if session["rekey-inf"]["rekeys"] != 0:
    sys.exit("rekey-inf cell rotated keys")
if session["rekey-256"]["rekeys"] == 0:
    sys.exit("rekey-256 cell never rotated keys")

# A session that never rotates must cost what the static-key pipeline
# cost before the lifecycle existed (within 2% of the PR 7 baseline
# cell), and rotating every 4096 requests stays within 5% of it.
baseline = by_cell[("steady", "adaptive", 1, "static", 1, "none")][
    "busy_cycles_per_op"
]
inf = session["rekey-inf"]["busy_cycles_per_op"]
if inf > baseline * 1.02:
    sys.exit(
        f"rekey-inf busy cycles/op {inf:.0f} more than 2% over the "
        f"static-key baseline {baseline:.0f}"
    )
rk = session["rekey-4096"]["busy_cycles_per_op"]
if rk > baseline * 1.05:
    sys.exit(
        f"rekey-4096 busy cycles/op {rk:.0f} more than 5% over the "
        f"static-key baseline {baseline:.0f}"
    )

# Revocation chaos: the revoked session's queued traffic is dropped and
# counted; the surviving session loses nothing.
rv = session.get("revoke")
if rv is None:
    sys.exit("BENCH_serving.json missing the revoke cell")
if rv["lost_replies"] != 0:
    sys.exit(f"revoke cell: surviving session lost {rv['lost_replies']} replies")
if rv["auth_failures"] == 0:
    sys.exit("revoke cell dropped no traffic")
print(
    f"   {len(cells)} cells, adaptive rides burst throughput and trickle tail "
    f"latency, balance beats static pinning under skew, replicas=2 within 5% "
    f"of single-enclave, chaos cells lost 0 replies, background maintenance "
    f"cuts the failover-window p99 {sync_chaos['sojourn_p99'] / max(bg_chaos['sojourn_p99'], 1):.1f}x, "
    f"rekey-inf within 2% of the static-key baseline, revocation spares the "
    f"surviving session"
)
EOF

echo "== fmt"
cargo fmt --all --check

echo "== clippy"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
