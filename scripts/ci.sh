#!/usr/bin/env bash
# Tier-1 gate plus style/lint checks, fully offline (all dependencies
# are vendored under vendor/). Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release)"
cargo build --release --workspace --offline

echo "== tests"
cargo test --workspace --offline -q

echo "== suvm paging proptests"
cargo test --test suvm_paging --offline -q

echo "== paging_bench smoke"
cargo run --release -p eleos-bench --bin repro --offline -- paging_bench --quick --scale 16
for label in clock fifo random lru slru buddy striped; do
    grep -q "\"$label\"" BENCH_paging.json \
        || { echo "BENCH_paging.json missing $label cells"; exit 1; }
done

echo "== crypto batch-equivalence proptests"
cargo test -p eleos-crypto --offline -q

echo "== scatter-gather / unified-sealer equivalence suite"
cargo test --test batch_equivalence --offline -q

echo "== crypto_bench smoke"
cargo run --release -p eleos-bench --bin repro --offline -- crypto_bench --quick --scale 16
python3 - <<'EOF'
import itertools, json, sys

cells = json.load(open("BENCH_crypto.json"))["cells"]
by_series = {}
for c in cells:
    key = (c["server"], c["crypto"], c["workers"], c["io"])
    by_series.setdefault(key, {})[c["batch"]] = c["cycles_per_op"]

# Single-worker sweep: batched crypto beats or matches per-message at
# every depth, monotone nonincreasing in batch.
for server, crypto in itertools.product(
    ("kvs", "text", "param"), ("per-msg", "batched")
):
    series = by_series.get((server, crypto, 1, "sg"))
    if not series or sorted(series) != [1, 8]:
        sys.exit(f"BENCH_crypto.json missing cells for ({server}, {crypto})")
    if series[8] > series[1]:
        sys.exit(
            f"({server}, {crypto}) cycles/op not monotone nonincreasing: "
            f"batch 1 = {series[1]}, batch 8 = {series[8]}"
        )

# Multi-worker sweep: with two workers, scatter-gather sub-batches must
# beat the per-message I/O baseline at batch 8 and stay monotone.
for server in ("kvs", "text"):
    sg = by_series.get((server, "batched", 2, "sg"))
    per_msg = by_series.get((server, "batched", 2, "per-msg"))
    if not sg or not per_msg or sorted(sg) != [1, 8] or sorted(per_msg) != [1, 8]:
        sys.exit(f"BENCH_crypto.json missing workers=2 cells for {server}")
    if sg[8] >= per_msg[8]:
        sys.exit(
            f"({server}, workers=2) sub-batches must beat per-message at "
            f"batch 8: sg = {sg[8]}, per-msg = {per_msg[8]}"
        )
    if sg[8] > sg[1]:
        sys.exit(
            f"({server}, workers=2, sg) cycles/op not monotone nonincreasing: "
            f"batch 1 = {sg[1]}, batch 8 = {sg[8]}"
        )
print(f"   {len(cells)} cells, workers=2 sub-batches beat per-message")
EOF

echo "== fmt"
cargo fmt --all --check

echo "== clippy"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "CI OK"
