//! Property-based tests for the machine-model substrate.

use eleos_sim::alloc::BuddyAllocator;
use eleos_sim::costs::{AccessKind, PAGE_SIZE};
use eleos_sim::llc::{CacheCtx, Llc, LlcConfig};
use eleos_sim::mem::PagedMem;
use eleos_sim::tlb::Tlb;
use proptest::prelude::*;

proptest! {
    /// Live buddy allocations never overlap and never exceed capacity,
    /// under an arbitrary interleaving of allocs and frees.
    #[test]
    fn buddy_no_overlap(ops in prop::collection::vec((any::<bool>(), 1usize..600), 1..120)) {
        let mut a = BuddyAllocator::new(8192, 16);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (is_alloc, len) in ops {
            if is_alloc || live.is_empty() {
                if let Ok(off) = a.alloc(len) {
                    let size = a.size_of(off).unwrap();
                    prop_assert!(off + size <= a.capacity());
                    for &(o, s) in &live {
                        prop_assert!(off + size <= o || o + s <= off,
                                     "overlap: [{off},+{size}) vs [{o},+{s})");
                    }
                    live.push((off, size));
                }
            } else {
                let idx = len % live.len();
                let (off, size) = live.swap_remove(idx);
                prop_assert_eq!(a.free(off).unwrap(), size);
            }
        }
        prop_assert_eq!(a.live_allocations(), live.len());
    }

    /// Freeing everything restores a fully coalesced region.
    #[test]
    fn buddy_full_coalesce(lens in prop::collection::vec(1usize..700, 1..60)) {
        let mut a = BuddyAllocator::new(16384, 16);
        let offs: Vec<u64> = lens.iter().filter_map(|&l| a.alloc(l).ok()).collect();
        for off in offs {
            a.free(off).unwrap();
        }
        prop_assert_eq!(a.used(), 0);
        prop_assert_eq!(a.alloc(16384).unwrap(), 0);
    }

    /// PagedMem read-after-write returns what was written, even with
    /// overlapping writes (last write wins).
    #[test]
    fn pagedmem_last_write_wins(writes in prop::collection::vec(
        (0u64..(3 * PAGE_SIZE as u64), prop::collection::vec(any::<u8>(), 1..300)), 1..20)) {
        let m = PagedMem::new(4 * PAGE_SIZE);
        let mut shadow = vec![0u8; 4 * PAGE_SIZE];
        for (addr, data) in &writes {
            let addr = (*addr).min((4 * PAGE_SIZE - data.len()) as u64);
            m.write(addr, data);
            shadow[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        }
        let mut out = vec![0u8; 4 * PAGE_SIZE];
        m.read(0, &mut out);
        prop_assert_eq!(out, shadow);
    }

    /// Immediately re-accessing any line after an access always hits.
    #[test]
    fn llc_immediate_reaccess_hits(addrs in prop::collection::vec(0u64..(1 << 22), 1..200)) {
        let mut c = Llc::new(&LlcConfig { size: 64 << 10, ways: 4 });
        for addr in addrs {
            c.access_line(CacheCtx::Other, addr, AccessKind::Read);
            let again = c.access_line(CacheCtx::Other, addr, AccessKind::Read);
            prop_assert!(again.hit);
        }
    }

    /// A working set that fits within one context's partition never
    /// misses after the first pass, regardless of other-context traffic.
    #[test]
    fn llc_partition_protects_working_set(noise in prop::collection::vec(0u64..(1 << 24), 0..400)) {
        let mut c = Llc::new(&LlcConfig { size: 64 << 10, ways: 8 });
        c.set_partition(CacheCtx::Enclave, 0b0000_1111);
        c.set_partition(CacheCtx::Rpc, 0b1111_0000);
        // Enclave working set: 2 lines per set in a 4-way slice.
        let sets = c.sets() as u64;
        let ws: Vec<u64> = (0..2 * sets).map(|i| i * 64).collect();
        for &a in &ws {
            c.access_line(CacheCtx::Enclave, a, AccessKind::Write);
        }
        for a in noise {
            c.access_line(CacheCtx::Rpc, a, AccessKind::Write);
        }
        for &a in &ws {
            prop_assert!(c.access_line(CacheCtx::Enclave, a, AccessKind::Read).hit);
        }
    }

    /// The TLB never exceeds its capacity and a flush empties it.
    #[test]
    fn tlb_capacity_and_flush(vpns in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut t = Tlb::new(64);
        for &v in &vpns {
            t.access(1, v);
            prop_assert!(t.len() <= 64);
            prop_assert!(t.contains(1, v), "just-inserted entry present");
        }
        t.flush();
        prop_assert!(t.is_empty());
    }
}
