//! Cycle-accounting machine model underlying the Eleos reproduction.
//!
//! No SGX hardware is available in this environment, so the entire SGX
//! substrate is simulated (see `DESIGN.md` §1 for the substitution
//! argument). This crate provides the hardware-neutral pieces:
//!
//! - [`costs`]: the cost model, calibrated from the measurements in
//!   Eleos §2 (exit latencies, EPC paging costs, Table-1 LLC factors);
//! - [`clock`]: per-core cycle counters that other threads can charge
//!   remotely (IPIs), and core-set tracking for shootdowns;
//! - [`llc`]: a set-associative LLC with CAT way partitioning and MEE
//!   integrity-tree pollution;
//! - [`tlb`]: per-core TLBs that enclave exits flush;
//! - [`mem`]: lock-sharded byte storage backing simulated regions;
//! - [`alloc`]: the memsys5-style buddy allocator used by the SUVM
//!   backing store;
//! - [`stats`]: machine-wide event counters the experiments report.
//!
//! The SGX-specific composition (EPC, enclaves, driver, host OS) lives
//! in `eleos-enclave`; the Eleos runtime (RPC + SUVM) in `eleos-rpc`
//! and `eleos-core`.

pub mod alloc;
pub mod clock;
pub mod costs;
pub mod llc;
pub mod mem;
pub mod stats;
pub mod tlb;
pub mod trace;

pub use alloc::{AllocError, BuddyAllocator};
pub use clock::{CoreClock, CoreSet};
pub use costs::{domain_of, AccessKind, CostModel, Domain, CPU_HZ, EPC_BASE, LINE, PAGE_SIZE};
pub use llc::{CacheCtx, Llc, LlcConfig};
pub use mem::PagedMem;
pub use stats::{Stats, StatsSnapshot};
pub use tlb::Tlb;
pub use trace::{Event, Trace, TraceHistogram};
