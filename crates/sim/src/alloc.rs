//! A buddy allocator in the style of SQLite's memsys5.
//!
//! The paper's backing store uses "a slab memory allocator from the
//! SQLite project \[which\] implements the standard buddy system to
//! reduce fragmentation, with a minimum allocation of 16 bytes" (§4.1).
//! This is that allocator, managing *offsets* into a region whose bytes
//! live elsewhere (a [`crate::mem::PagedMem`] in practice).
//!
//! Allocation picks the lowest-addressed free block of the smallest
//! sufficient order, so placement is deterministic — important for
//! reproducible simulation results.

use std::collections::{BTreeSet, HashMap};

/// Errors from [`BuddyAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free block large enough.
    OutOfMemory,
    /// `free` called with an address that is not an allocation start.
    BadFree(u64),
    /// Requested size zero or larger than the region.
    BadSize(usize),
}

impl core::fmt::Display for AllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "out of backing-store memory"),
            AllocError::BadFree(a) => write!(f, "free of non-allocated address {a:#x}"),
            AllocError::BadSize(s) => write!(f, "invalid allocation size {s}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A binary-buddy allocator over `[0, capacity)`.
pub struct BuddyAllocator {
    min_block: u64,
    capacity: u64,
    /// Free blocks per order (block size = `min_block << order`).
    free: Vec<BTreeSet<u64>>,
    /// Live allocations: start offset -> order.
    live: HashMap<u64, u8>,
    used: u64,
}

impl BuddyAllocator {
    /// Creates an allocator over a power-of-two `capacity` with
    /// power-of-two `min_block` (the paper uses 16 bytes).
    ///
    /// # Panics
    /// Panics if either argument is not a power of two or if
    /// `capacity < min_block`.
    #[must_use]
    pub fn new(capacity: u64, min_block: u64) -> Self {
        assert!(
            capacity.is_power_of_two(),
            "capacity must be a power of two"
        );
        assert!(
            min_block.is_power_of_two(),
            "min_block must be a power of two"
        );
        assert!(capacity >= min_block);
        let max_order = (capacity / min_block).trailing_zeros() as usize;
        let mut free = vec![BTreeSet::new(); max_order + 1];
        free[max_order].insert(0);
        Self {
            min_block,
            capacity,
            free,
            live: HashMap::new(),
            used: 0,
        }
    }

    /// Total managed bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently handed out (rounded to block sizes).
    #[must_use]
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Number of live allocations.
    #[must_use]
    pub fn live_allocations(&self) -> usize {
        self.live.len()
    }

    fn order_for(&self, len: usize) -> Result<u8, AllocError> {
        if len == 0 || len as u64 > self.capacity {
            return Err(AllocError::BadSize(len));
        }
        let blocks = (len as u64).div_ceil(self.min_block);
        Ok(blocks.next_power_of_two().trailing_zeros() as u8)
    }

    /// Size in bytes of the block that would serve a request of `len`.
    #[must_use]
    pub fn block_size(&self, len: usize) -> usize {
        match self.order_for(len) {
            Ok(o) => (self.min_block << o) as usize,
            Err(_) => 0,
        }
    }

    /// Allocates at least `len` bytes, returning the region offset.
    pub fn alloc(&mut self, len: usize) -> Result<u64, AllocError> {
        let order = self.order_for(len)? as usize;
        // Find the smallest order with a free block.
        let mut o = order;
        while o < self.free.len() && self.free[o].is_empty() {
            o += 1;
        }
        if o >= self.free.len() {
            return Err(AllocError::OutOfMemory);
        }
        let offset = *self.free[o].iter().next().expect("non-empty");
        self.free[o].remove(&offset);
        // Split down to the target order, returning high halves to the
        // free lists.
        while o > order {
            o -= 1;
            let half = self.min_block << o;
            self.free[o].insert(offset + half);
        }
        self.live.insert(offset, order as u8);
        self.used += self.min_block << order;
        Ok(offset)
    }

    /// Frees an allocation made by [`Self::alloc`], returning the block
    /// size released.
    pub fn free(&mut self, offset: u64) -> Result<u64, AllocError> {
        let order = self
            .live
            .remove(&offset)
            .ok_or(AllocError::BadFree(offset))?;
        let mut order = order as usize;
        let size = self.min_block << order;
        self.used -= size;
        let mut offset = offset;
        // Coalesce with the buddy while it is free.
        while order + 1 < self.free.len() {
            let block = self.min_block << order;
            let buddy = offset ^ block;
            if !self.free[order].remove(&buddy) {
                break;
            }
            offset = offset.min(buddy);
            order += 1;
        }
        self.free[order].insert(offset);
        Ok(size)
    }

    /// Size of the block backing the live allocation at `offset`.
    #[must_use]
    pub fn size_of(&self, offset: u64) -> Option<u64> {
        self.live.get(&offset).map(|&o| self.min_block << o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut a = BuddyAllocator::new(1024, 16);
        let x = a.alloc(100).unwrap();
        assert_eq!(a.size_of(x), Some(128));
        assert_eq!(a.used(), 128);
        assert_eq!(a.free(x).unwrap(), 128);
        assert_eq!(a.used(), 0);
        // After freeing everything the full region coalesces back.
        let whole = a.alloc(1024).unwrap();
        assert_eq!(whole, 0);
    }

    #[test]
    fn min_block_rounding() {
        let mut a = BuddyAllocator::new(1024, 16);
        let x = a.alloc(1).unwrap();
        assert_eq!(a.size_of(x), Some(16));
        assert_eq!(a.block_size(17), 32);
        assert_eq!(a.block_size(16), 16);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let mut a = BuddyAllocator::new(4096, 16);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for len in [100usize, 16, 700, 32, 48, 1024, 20] {
            let off = a.alloc(len).unwrap();
            let size = a.size_of(off).unwrap();
            for &(o, s) in &spans {
                assert!(off + size <= o || o + s <= off, "overlap at {off:#x}");
            }
            spans.push((off, size));
        }
    }

    #[test]
    fn out_of_memory() {
        let mut a = BuddyAllocator::new(256, 16);
        let _x = a.alloc(256).unwrap();
        assert_eq!(a.alloc(16), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn bad_free_detected() {
        let mut a = BuddyAllocator::new(256, 16);
        let x = a.alloc(64).unwrap();
        assert_eq!(a.free(x + 16), Err(AllocError::BadFree(x + 16)));
        a.free(x).unwrap();
        assert_eq!(a.free(x), Err(AllocError::BadFree(x)));
    }

    #[test]
    fn bad_sizes_rejected() {
        let mut a = BuddyAllocator::new(256, 16);
        assert_eq!(a.alloc(0), Err(AllocError::BadSize(0)));
        assert_eq!(a.alloc(512), Err(AllocError::BadSize(512)));
    }

    #[test]
    fn coalescing_survives_interleaved_frees() {
        let mut a = BuddyAllocator::new(1024, 16);
        let offs: Vec<u64> = (0..64).map(|_| a.alloc(16).unwrap()).collect();
        assert_eq!(a.alloc(16), Err(AllocError::OutOfMemory));
        // Free in a scrambled order.
        for i in (0..64).step_by(2) {
            a.free(offs[i]).unwrap();
        }
        for i in (1..64).step_by(2) {
            a.free(offs[i]).unwrap();
        }
        assert_eq!(a.used(), 0);
        assert_eq!(a.alloc(1024).unwrap(), 0, "region fully coalesced");
    }

    #[test]
    fn deterministic_lowest_address_first() {
        let mut a = BuddyAllocator::new(1024, 16);
        let x = a.alloc(16).unwrap();
        let y = a.alloc(16).unwrap();
        assert_eq!(x, 0);
        assert_eq!(y, 16);
        a.free(x).unwrap();
        assert_eq!(a.alloc(16).unwrap(), 0, "reuses the lowest free block");
    }
}
