//! A per-core TLB model.
//!
//! SGX flushes the TLB on every enclave exit (synchronous or AEX), which
//! is one of the two indirect costs the paper quantifies (§2.2.1,
//! Fig 2b): pointer-chasing workloads re-walk the page tables after
//! every exit. The TLB is owned by its core's thread — the driver never
//! touches it directly; shootdowns arrive as interrupts via
//! [`crate::clock::CoreClock::post_interrupt`].

/// A fully associative, LRU-replaced translation cache.
#[derive(Debug)]
pub struct Tlb {
    /// `(asid, vpn, tick)` triples.
    entries: Vec<(u32, u64, u64)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    flushes: u64,
}

/// Default number of entries (Skylake L2 STLB order of magnitude is
/// 1536; we default lower so flush effects show at microbench scale
/// while remaining configurable).
pub const DEFAULT_TLB_ENTRIES: usize = 512;

impl Default for Tlb {
    fn default() -> Self {
        Self::new(DEFAULT_TLB_ENTRIES)
    }
}

impl Tlb {
    /// Creates an empty TLB with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// Looks up `(asid, vpn)`; on a miss the translation is inserted
    /// (the page walk is assumed to succeed — residency faults are
    /// raised by the page-table layer before the walk completes).
    /// Returns `true` on a hit.
    pub fn access(&mut self, asid: u32, vpn: u64) -> bool {
        self.tick += 1;
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|(a, v, _)| *a == asid && *v == vpn)
        {
            e.2 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .expect("non-empty");
            self.entries.swap_remove(idx);
        }
        self.entries.push((asid, vpn, self.tick));
        false
    }

    /// Checks membership without altering LRU state.
    #[must_use]
    pub fn contains(&self, asid: u32, vpn: u64) -> bool {
        self.entries.iter().any(|(a, v, _)| *a == asid && *v == vpn)
    }

    /// Drops everything (enclave exit, AEX).
    pub fn flush(&mut self) {
        self.entries.clear();
        self.flushes += 1;
    }

    /// Drops one translation (single-page shootdown).
    pub fn flush_page(&mut self, asid: u32, vpn: u64) {
        self.entries.retain(|(a, v, _)| !(*a == asid && *v == vpn));
    }

    /// Drops all translations of one address space — what `EEXIT`/AEX do
    /// to the enclave's mappings while untrusted mappings survive.
    pub fn flush_asid(&mut self, asid: u32) {
        self.entries.retain(|(a, _, _)| *a != asid);
        self.flushes += 1;
    }

    /// Current number of cached translations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, flushes)` counters for this core.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.flushes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4);
        assert!(!t.access(1, 100));
        assert!(t.access(1, 100));
        assert!(!t.access(2, 100), "asid must disambiguate");
        assert_eq!(t.counters(), (1, 2, 0));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(0, 1);
        t.access(0, 2);
        t.access(0, 1); // refresh 1; LRU is now 2
        t.access(0, 3); // evicts 2
        assert!(t.contains(0, 1));
        assert!(!t.contains(0, 2));
        assert!(t.contains(0, 3));
    }

    #[test]
    fn flush_empties() {
        let mut t = Tlb::new(8);
        t.access(0, 1);
        t.access(0, 2);
        t.flush();
        assert!(t.is_empty());
        assert!(!t.access(0, 1), "post-flush access misses");
        assert_eq!(t.counters().2, 1);
    }

    #[test]
    fn flush_asid_is_selective() {
        let mut t = Tlb::new(8);
        t.access(1, 10);
        t.access(2, 20);
        t.access(1, 30);
        t.flush_asid(1);
        assert!(!t.contains(1, 10));
        assert!(!t.contains(1, 30));
        assert!(t.contains(2, 20));
    }

    #[test]
    fn flush_single_page() {
        let mut t = Tlb::new(8);
        t.access(7, 1);
        t.access(7, 2);
        t.flush_page(7, 1);
        assert!(!t.contains(7, 1));
        assert!(t.contains(7, 2));
        assert_eq!(t.len(), 1);
    }
}
