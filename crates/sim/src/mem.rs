//! Backing byte storage for simulated memory regions.
//!
//! [`PagedMem`] holds the *contents* of a memory region (untrusted RAM,
//! or an enclave's swap area) in lazily allocated 4 KiB chunks, each
//! behind its own `RwLock` so concurrent threads touching different
//! pages do not serialize. This layer moves bytes only; cycle accounting
//! happens in the access layers that call it.

use parking_lot::RwLock;

use crate::costs::PAGE_SIZE;

/// Lazily allocated, lock-sharded byte storage.
pub struct PagedMem {
    chunks: Vec<RwLock<Option<Box<[u8; PAGE_SIZE]>>>>,
    size: usize,
}

impl PagedMem {
    /// Creates a zero-initialized region of `size` bytes (rounded up to
    /// whole pages). Chunks materialize on first write.
    #[must_use]
    pub fn new(size: usize) -> Self {
        let pages = size.div_ceil(PAGE_SIZE);
        let mut chunks = Vec::with_capacity(pages);
        chunks.resize_with(pages, || RwLock::new(None));
        Self {
            chunks,
            size: pages * PAGE_SIZE,
        }
    }

    /// Region size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    fn check(&self, addr: u64, len: usize) {
        let end = addr
            .checked_add(len as u64)
            .unwrap_or_else(|| panic!("simulated access overflows: {addr:#x}+{len}"));
        assert!(
            end <= self.size as u64,
            "simulated segfault: [{addr:#x}, {end:#x}) beyond region of {} bytes",
            self.size
        );
    }

    /// Copies `buf.len()` bytes starting at `addr` into `buf`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access (a simulation bug, analogous to a
    /// segfault).
    pub fn read(&self, addr: u64, buf: &mut [u8]) {
        self.check(addr, buf.len());
        let mut off = 0usize;
        while off < buf.len() {
            let cur = addr as usize + off;
            let page = cur / PAGE_SIZE;
            let in_page = cur % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(buf.len() - off);
            let guard = self.chunks[page].read();
            match guard.as_ref() {
                Some(data) => buf[off..off + n].copy_from_slice(&data[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
        }
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Panics
    /// Panics on out-of-bounds access.
    pub fn write(&self, addr: u64, buf: &[u8]) {
        self.check(addr, buf.len());
        let mut off = 0usize;
        while off < buf.len() {
            let cur = addr as usize + off;
            let page = cur / PAGE_SIZE;
            let in_page = cur % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(buf.len() - off);
            let mut guard = self.chunks[page].write();
            let data = guard.get_or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            data[in_page..in_page + n].copy_from_slice(&buf[off..off + n]);
            off += n;
        }
    }

    /// Fills `[addr, addr+len)` with `byte`.
    pub fn fill(&self, addr: u64, len: usize, byte: u8) {
        self.check(addr, len);
        let mut off = 0usize;
        while off < len {
            let cur = addr as usize + off;
            let page = cur / PAGE_SIZE;
            let in_page = cur % PAGE_SIZE;
            let n = (PAGE_SIZE - in_page).min(len - off);
            if byte == 0 && in_page == 0 && n == PAGE_SIZE {
                // Whole-page zero fill: drop the chunk back to lazy-zero.
                *self.chunks[page].write() = None;
            } else {
                let mut guard = self.chunks[page].write();
                let data = guard.get_or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
                data[in_page..in_page + n].fill(byte);
            }
            off += n;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    #[must_use]
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialized() {
        let m = PagedMem::new(8192);
        let mut buf = [0xffu8; 16];
        m.read(100, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn write_read_roundtrip_across_pages() {
        let m = PagedMem::new(3 * PAGE_SIZE);
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        m.write(3000, &data); // spans pages 0..=1 and into 2
        let mut out = vec![0u8; data.len()];
        m.read(3000, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn fill_and_whole_page_zero() {
        let m = PagedMem::new(2 * PAGE_SIZE);
        m.fill(0, 2 * PAGE_SIZE, 0xab);
        let mut b = [0u8; 4];
        m.read(PAGE_SIZE as u64, &mut b);
        assert_eq!(b, [0xab; 4]);
        m.fill(0, PAGE_SIZE, 0);
        m.read(0, &mut b);
        assert_eq!(b, [0; 4]);
        m.read(PAGE_SIZE as u64, &mut b);
        assert_eq!(b, [0xab; 4]);
    }

    #[test]
    fn u64_helpers() {
        let m = PagedMem::new(PAGE_SIZE);
        m.write_u64(40, 0xdead_beef_cafe_f00d);
        assert_eq!(m.read_u64(40), 0xdead_beef_cafe_f00d);
    }

    #[test]
    #[should_panic(expected = "simulated segfault")]
    fn out_of_bounds_read_panics() {
        let m = PagedMem::new(PAGE_SIZE);
        let mut b = [0u8; 8];
        m.read(PAGE_SIZE as u64 - 4, &mut b);
    }

    #[test]
    fn size_rounds_up() {
        let m = PagedMem::new(PAGE_SIZE + 1);
        assert_eq!(m.size(), 2 * PAGE_SIZE);
    }

    #[test]
    fn concurrent_disjoint_pages() {
        use std::sync::Arc;
        let m = Arc::new(PagedMem::new(64 * PAGE_SIZE));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                let addr = t * 8 * PAGE_SIZE as u64;
                let data = vec![t as u8 + 1; PAGE_SIZE * 2];
                for _ in 0..50 {
                    m.write(addr, &data);
                    let mut out = vec![0u8; data.len()];
                    m.read(addr, &mut out);
                    assert_eq!(out, data);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
