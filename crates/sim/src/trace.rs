//! Event tracing for the simulated machine.
//!
//! When enabled, components append timestamped [`Event`]s to a bounded
//! ring: enclave transitions, hardware and SUVM faults, evictions,
//! shootdowns and RPCs. Disabled (the default) the overhead is one
//! relaxed atomic load per would-be event. Experiments use traces to
//! explain *why* a configuration behaves as it does (e.g. watching the
//! driver evict another enclave's EPC++ in the Fig 9 thrashing runs).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// EENTER on a core.
    EnclaveEnter {
        /// Acting core.
        core: usize,
        /// Enclave id.
        enclave: u32,
    },
    /// EEXIT on a core.
    EnclaveExit {
        /// Acting core.
        core: usize,
        /// Enclave id.
        enclave: u32,
    },
    /// Hardware EPC fault.
    HwFault {
        /// Faulting core.
        core: usize,
        /// Enclave id.
        enclave: u32,
        /// Linear page number.
        page: u64,
    },
    /// Driver evicted a page (EWB).
    HwEvict {
        /// Victim enclave.
        enclave: u32,
        /// Linear page number.
        page: u64,
    },
    /// IPI delivered for a TLB shootdown.
    Ipi {
        /// Target core.
        target: usize,
    },
    /// SUVM software major fault.
    SuvmFault {
        /// Faulting core.
        core: usize,
        /// Backing-store page.
        page: u64,
    },
    /// SUVM eviction (sealed unless the clean-page elision applied).
    SuvmEvict {
        /// Backing-store page.
        page: u64,
        /// Whether the write-back was skipped.
        clean_skip: bool,
    },
    /// Exit-less RPC served.
    RpcCall {
        /// Registered function id.
        func: u64,
    },
    /// Caller posted a job descriptor into a ring slot.
    RpcPost {
        /// Ring slot index.
        slot: usize,
        /// Registered function id.
        func: u64,
    },
    /// Worker claimed a posted slot for execution.
    RpcClaim {
        /// Ring slot index.
        slot: usize,
        /// Worker core.
        core: usize,
    },
    /// Worker published a completion into a slot.
    RpcComplete {
        /// Ring slot index.
        slot: usize,
        /// Registered function id.
        func: u64,
    },
}

/// A `(cycles, event)` record; cycles are the acting core's clock.
pub type Record = (u64, Event);

/// The bounded trace ring.
pub struct Trace {
    enabled: AtomicBool,
    ring: Mutex<VecDeque<Record>>,
    capacity: usize,
    dropped: Mutex<u64>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new(1 << 16)
    }
}

impl Trace {
    /// Creates a disabled trace with room for `capacity` records.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1 << 20))),
            capacity,
            dropped: Mutex::new(0),
        }
    }

    /// Starts recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Stops recording (records are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether recording is on (cheap; called on every event site).
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Appends a record if enabled; the oldest record is dropped when
    /// the ring is full.
    #[inline]
    pub fn record(&self, cycles: u64, event: Event) {
        if !self.is_enabled() {
            return;
        }
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            *self.dropped.lock() += 1;
        }
        ring.push_back((cycles, event));
    }

    /// Drains and returns all records (oldest first).
    #[must_use]
    pub fn take(&self) -> Vec<Record> {
        self.ring.lock().drain(..).collect()
    }

    /// Records dropped because the ring overflowed.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        *self.dropped.lock()
    }

    /// Counts records per event kind — a quick profile of a phase.
    #[must_use]
    pub fn histogram(&self) -> TraceHistogram {
        let ring = self.ring.lock();
        let mut h = TraceHistogram::default();
        for (_, e) in ring.iter() {
            match e {
                Event::EnclaveEnter { .. } => h.enters += 1,
                Event::EnclaveExit { .. } => h.exits += 1,
                Event::HwFault { .. } => h.hw_faults += 1,
                Event::HwEvict { .. } => h.hw_evicts += 1,
                Event::Ipi { .. } => h.ipis += 1,
                Event::SuvmFault { .. } => h.suvm_faults += 1,
                Event::SuvmEvict { .. } => h.suvm_evicts += 1,
                Event::RpcCall { .. } => h.rpc_calls += 1,
                Event::RpcPost { .. } => h.rpc_posts += 1,
                Event::RpcClaim { .. } => h.rpc_claims += 1,
                Event::RpcComplete { .. } => h.rpc_completes += 1,
            }
        }
        h
    }
}

impl Event {
    fn name(&self) -> &'static str {
        match self {
            Event::EnclaveEnter { .. } => "eenter",
            Event::EnclaveExit { .. } => "eexit",
            Event::HwFault { .. } => "hw_fault",
            Event::HwEvict { .. } => "hw_evict",
            Event::Ipi { .. } => "ipi",
            Event::SuvmFault { .. } => "suvm_fault",
            Event::SuvmEvict { .. } => "suvm_evict",
            Event::RpcCall { .. } => "rpc",
            Event::RpcPost { .. } => "rpc_post",
            Event::RpcClaim { .. } => "rpc_claim",
            Event::RpcComplete { .. } => "rpc_complete",
        }
    }

    fn lane(&self) -> usize {
        match self {
            Event::EnclaveEnter { core, .. }
            | Event::EnclaveExit { core, .. }
            | Event::HwFault { core, .. }
            | Event::SuvmFault { core, .. } => *core,
            Event::Ipi { target } => *target,
            Event::RpcClaim { core, .. } => *core,
            // Driver-side and worker-side events get a synthetic lane.
            Event::HwEvict { .. }
            | Event::SuvmEvict { .. }
            | Event::RpcCall { .. }
            | Event::RpcPost { .. }
            | Event::RpcComplete { .. } => 99,
        }
    }
}

impl Trace {
    /// Renders the retained records as Chrome trace-event JSON
    /// (loadable in `chrome://tracing` / Perfetto): one instant event
    /// per record, `tid` = core, timestamps in simulated microseconds
    /// at 3.4 GHz.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let ring = self.ring.lock();
        let mut out = String::from("[");
        for (i, (cycles, ev)) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let us = *cycles as f64 / (crate::costs::CPU_HZ / 1e6);
            let args = match ev {
                Event::EnclaveEnter { enclave, .. } | Event::EnclaveExit { enclave, .. } => {
                    format!("{{\"enclave\":{enclave}}}")
                }
                Event::HwFault { enclave, page, .. } => {
                    format!("{{\"enclave\":{enclave},\"page\":{page}}}")
                }
                Event::HwEvict { enclave, page } => {
                    format!("{{\"enclave\":{enclave},\"page\":{page}}}")
                }
                Event::Ipi { target } => format!("{{\"target\":{target}}}"),
                Event::SuvmFault { page, .. } => format!("{{\"page\":{page}}}"),
                Event::SuvmEvict { page, clean_skip } => {
                    format!("{{\"page\":{page},\"clean_skip\":{clean_skip}}}")
                }
                Event::RpcCall { func } => format!("{{\"func\":{func}}}"),
                Event::RpcPost { slot, func } | Event::RpcComplete { slot, func } => {
                    format!("{{\"slot\":{slot},\"func\":{func}}}")
                }
                Event::RpcClaim { slot, core } => {
                    format!("{{\"slot\":{slot},\"core\":{core}}}")
                }
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{us:.3},\"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":{args}}}",
                ev.name(),
                ev.lane()
            ));
        }
        out.push(']');
        out
    }
}

/// Per-kind record counts from [`Trace::histogram`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraceHistogram {
    /// EENTERs.
    pub enters: u64,
    /// EEXITs.
    pub exits: u64,
    /// Hardware faults.
    pub hw_faults: u64,
    /// Hardware evictions.
    pub hw_evicts: u64,
    /// IPIs.
    pub ipis: u64,
    /// SUVM major faults.
    pub suvm_faults: u64,
    /// SUVM evictions.
    pub suvm_evicts: u64,
    /// RPC calls.
    pub rpc_calls: u64,
    /// RPC ring posts.
    pub rpc_posts: u64,
    /// RPC worker slot claims.
    pub rpc_claims: u64,
    /// RPC completions published.
    pub rpc_completes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Trace::new(8);
        t.record(1, Event::Ipi { target: 0 });
        assert!(t.take().is_empty());
    }

    #[test]
    fn enabled_records_in_order() {
        let t = Trace::new(8);
        t.enable();
        t.record(
            10,
            Event::EnclaveEnter {
                core: 0,
                enclave: 1,
            },
        );
        t.record(
            20,
            Event::EnclaveExit {
                core: 0,
                enclave: 1,
            },
        );
        let r = t.take();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, 10);
        assert!(matches!(r[1].1, Event::EnclaveExit { .. }));
        assert!(t.take().is_empty(), "take drains");
    }

    #[test]
    fn ring_drops_oldest() {
        let t = Trace::new(4);
        t.enable();
        for i in 0..10u64 {
            t.record(i, Event::Ipi { target: i as usize });
        }
        assert_eq!(t.dropped(), 6);
        let r = t.take();
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].0, 6, "oldest surviving record");
    }

    #[test]
    fn chrome_json_is_wellformed() {
        let t = Trace::new(8);
        t.enable();
        t.record(
            3_400,
            Event::EnclaveEnter {
                core: 2,
                enclave: 5,
            },
        );
        t.record(
            6_800,
            Event::SuvmEvict {
                page: 7,
                clean_skip: true,
            },
        );
        let json = t.to_chrome_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"eenter\""));
        assert!(json.contains("\"tid\":2"));
        // 3,400 cycles at 3.4 GHz = 1 microsecond.
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"clean_skip\":true"));
        assert_eq!(json.matches("{\"name\"").count(), 2);
    }

    #[test]
    fn histogram_counts_kinds() {
        let t = Trace::new(16);
        t.enable();
        t.record(
            1,
            Event::HwFault {
                core: 0,
                enclave: 1,
                page: 2,
            },
        );
        t.record(
            2,
            Event::HwFault {
                core: 0,
                enclave: 1,
                page: 3,
            },
        );
        t.record(
            3,
            Event::SuvmEvict {
                page: 9,
                clean_skip: true,
            },
        );
        let h = t.histogram();
        assert_eq!(h.hw_faults, 2);
        assert_eq!(h.suvm_evicts, 1);
        assert_eq!(h.rpc_calls, 0);
    }
}
