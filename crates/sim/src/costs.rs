//! The SGX cost model, calibrated from Eleos §2 (EuroSys'17).
//!
//! Every latency the paper measures on Skylake SGX1 hardware is captured
//! here as a named constant with the paper's value as default. The
//! simulator charges these costs; the `repro costs` harness re-measures
//! the aggregate quantities (exit round trip, hardware fault total, SUVM
//! fault latency) inside the simulator and `EXPERIMENTS.md` records them
//! against the paper.
//!
//! All values are CPU cycles unless stated otherwise.

/// Cache line size in bytes.
pub const LINE: usize = 64;
/// Page size in bytes (both hardware and the default SUVM page size).
pub const PAGE_SIZE: usize = 4096;

/// The simulated core frequency used to convert cycles to seconds when
/// reporting throughput (i7-6700 base clock).
pub const CPU_HZ: f64 = 3.4e9;

/// Cycle costs of the simulated machine and SGX implementation.
#[derive(Debug, Clone)]
pub struct CostModel {
    // --- Enclave transition costs (paper §2.2) ---
    /// `EEXIT`: leaving the enclave.
    pub eexit: u64,
    /// `EENTER`: (re-)entering the enclave.
    pub eenter: u64,
    /// SDK OCALL marshalling on top of the raw instructions.
    pub ocall_sdk: u64,
    /// An ordinary (non-enclave) system call trap + return.
    pub syscall: u64,
    /// Asynchronous enclave exit (AEX) + resume, charged to a core that
    /// receives an IPI during TLB shootdown.
    pub aex_resume: u64,
    /// Sending one inter-processor interrupt from the driver.
    pub ipi_send: u64,

    // --- Memory hierarchy ---
    /// LLC hit.
    pub llc_hit: u64,
    /// LLC miss served from untrusted DRAM (random access).
    pub dram_miss: u64,
    /// Multiplier applied to a *sequential* miss (row-buffer hits and
    /// prefetching make streaming much cheaper than pointer chasing).
    pub dram_seq_factor: f64,
    /// Memory-level-parallelism discount for the second and later
    /// misses *within one bulk access* (a memcpy-style span): their
    /// latencies overlap, unlike independent strided accesses (which
    /// is what Table 1 measures).
    pub mlp_factor: f64,
    /// Multiplier for an LLC read miss to EPC (Table 1: 5.6x).
    pub epc_read_factor: f64,
    /// Multiplier for a *sequential* LLC write miss to EPC (Table 1: 6.8x).
    pub epc_write_seq_factor: f64,
    /// Multiplier for a *random* LLC write miss to EPC (Table 1: 8.9x).
    pub epc_write_rand_factor: f64,
    /// TLB miss page-walk.
    pub tlb_walk: u64,
    /// Additional EPCM check on an enclave page-walk.
    pub epcm_check: u64,
    /// Cost of touching a resident line that hits in L1/L2 (charged per
    /// line for all simulated accesses; the LLC/DRAM costs are added on
    /// top when the LLC misses).
    pub l12_access: u64,

    // --- Hardware EPC paging (paper §2.3) ---
    /// Driver work to evict one EPC page (`EWB` + bookkeeping): ~12k.
    pub hw_evict_page: u64,
    /// Driver work to page one EPC page back in (`ELDU` + bookkeeping):
    /// the paper measures evict+load at ~25k, so load is the remainder.
    pub hw_load_page: u64,
    /// Kernel page-fault entry/exit and driver dispatch overhead beyond
    /// the EEXIT/EENTER pair and the EWB/ELDU work. Calibrated so the
    /// total observed hardware fault cost lands at the paper's ~40k
    /// (25k driver + 7k exit + ~8k indirect; part of the indirect cost
    /// emerges from the simulated TLB flush and LLC pollution).
    pub hw_fault_dispatch: u64,
    /// Supplying a zero-filled EPC page on first touch (EAUG-style),
    /// cheaper than unsealing a swapped page.
    pub hw_zero_page: u64,

    // --- Crypto (AES-NI rates, §4.1) ---
    /// Sealing/unsealing cycles per byte (AES-GCM at AES-NI speed).
    pub crypto_cpb: f64,
    /// Fixed setup cost per seal/unseal operation (key schedule reuse,
    /// nonce handling, tag arithmetic).
    pub crypto_fixed: u64,

    // --- SUVM software paging ---
    /// Page-table hash lookup on the SUVM fault path.
    pub suvm_lookup: u64,
    /// Spointer software translation on a *linked* access (§3.2.2: the
    /// page-cache pointer is cached in the spointer).
    pub spointer_linked: u64,
    /// Spointer link/unlink bookkeeping (refcount update + PT lookup).
    pub spointer_link: u64,

    // --- RPC (§3.1) ---
    /// Enqueue + polling handoff of one RPC job (cache-line transfers
    /// between the enclave thread and the worker thread).
    pub rpc_roundtrip: u64,
    /// Incremental cost of posting one *additional* in-flight job from
    /// the same caller: the slot claim and descriptor store, without a
    /// fresh handoff stall (the worker is already polling, and line
    /// transfers for back-to-back posts pipeline).
    pub rpc_post: u64,

    // --- Serving-path batching (multi-socket sharding) ---
    /// Per-message cost, on the serving core, of merging concurrent
    /// sub-batch reaps back into global arrival order: the descriptor
    /// sort plus the gather of payload stripes in permuted (non-slot)
    /// order. Charged only when a reap actually interleaves more than
    /// one sub-batch over a shared socket; a sharded reap (one socket
    /// per sub-batch) needs no merge and skips it.
    pub reap_merge: u64,
    /// Per-message kernel bookkeeping for a *sequenced* `sendmmsg`
    /// commit: the transmit reorder buffer insert/drain that keeps
    /// out-of-order sub-batches from reordering responses on a shared
    /// socket. Sharded sends (one socket per pipeline, intra-shard
    /// order preserved by construction) use the unsequenced mode and
    /// skip it.
    pub tx_reorder: u64,
    /// Additional per-line penalty when an LLC miss is served from a
    /// *remote* NUMA node's DRAM (QPI/UPI hop). Charged only when
    /// `MachineConfig::numa_nodes > 1` and the accessing core and the
    /// target range live on different nodes; shard-local buffer and
    /// stripe placement exists to avoid it.
    pub numa_remote: u64,

    // --- Session lifecycle (attestation + key rotation) ---
    /// One attestation handshake: producing the `EREPORT`-style
    /// evidence structure (MAC over enclave identity + session nonce)
    /// inside the enclave, in the ballpark of the measured EREPORT
    /// latency plus one AES-CMAC pass. Paid once per session, never on
    /// the per-request path.
    pub session_handshake: u64,
    /// One session key-epoch rotation: deriving the next epoch key
    /// through the sealer seam (a block-cipher KDF pass) and expanding
    /// its AES key schedule — roughly four `crypto_fixed` setups.
    /// Rotation is double-buffered, so this is the *only* cost; the
    /// serving path never stalls to drain the old epoch.
    pub session_rekey: u64,

    // --- Storage engine maintenance (runs only at sub-batch fences) ---
    /// Fixed bookkeeping for one slab-rebalancer move (registry
    /// re-class, free-list strip, chunk re-carve) on top of the
    /// simulated copies of relocated live items, which are charged
    /// through the data space like any other access.
    pub slab_move: u64,
    /// Fixed bookkeeping for one segment-store merge pass (choosing
    /// victims, recycling segment frames) on top of the simulated
    /// copies of surviving items.
    pub seg_merge: u64,

    // --- Background maintenance plane (off the serving path) ---
    /// One failure-detector heartbeat probe: reading a replica's pump
    /// counter and comparing it against the last observation — a pair
    /// of uncontended cache-line loads plus the branch.
    pub maint_heartbeat: u64,
    /// Fixed descriptor/reassembly bookkeeping per delta-snapshot
    /// chunk staged on (or reaped off) the cross-enclave channel, on
    /// top of the charged untrusted-memory traffic.
    pub maint_chunk: u64,
    /// Per-item bookkeeping of the copy-on-write delta scan (stamp
    /// compare + log append) on top of the data-space reads, which are
    /// charged like any other access.
    pub snapshot_delta_item: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            eexit: 3_300,
            eenter: 3_800,
            ocall_sdk: 800,
            syscall: 250,
            aex_resume: 4_000,
            ipi_send: 1_500,

            llc_hit: 40,
            dram_miss: 200,
            dram_seq_factor: 0.3,
            mlp_factor: 0.3,
            epc_read_factor: 5.6,
            epc_write_seq_factor: 6.8,
            epc_write_rand_factor: 8.9,
            tlb_walk: 100,
            epcm_check: 60,
            l12_access: 4,

            hw_evict_page: 12_000,
            hw_load_page: 13_000,
            hw_fault_dispatch: 3_000,
            hw_zero_page: 3_000,

            crypto_cpb: 1.7,
            crypto_fixed: 400,

            suvm_lookup: 220,
            spointer_linked: 6,
            spointer_link: 120,

            rpc_roundtrip: 600,
            rpc_post: 150,

            reap_merge: 120,
            tx_reorder: 80,
            numa_remote: 60,

            session_handshake: 9_000,
            session_rekey: 1_600,

            slab_move: 300,
            seg_merge: 900,

            maint_heartbeat: 40,
            maint_chunk: 250,
            snapshot_delta_item: 30,
        }
    }
}

impl CostModel {
    /// Direct cost of one enclave exit + re-entry (paper: ~7k).
    #[must_use]
    pub fn exit_roundtrip(&self) -> u64 {
        self.eexit + self.eenter
    }

    /// Total direct cost of an SDK OCALL (paper: ~8k).
    #[must_use]
    pub fn ocall_total(&self) -> u64 {
        self.exit_roundtrip() + self.ocall_sdk
    }

    /// Cycles to seal or unseal `bytes` bytes with AES-GCM at AES-NI
    /// rates, as a standalone operation (a batch of one:
    /// `crypto_batched(0, bytes)`).
    #[must_use]
    pub fn crypto(&self, bytes: usize) -> u64 {
        self.crypto_batched(0, bytes)
    }

    /// Fixed setup cycles for message `index` of a setup-amortized
    /// batch: the first message pays the full `crypto_fixed` (key
    /// schedule + GHASH table), follow-ons a quarter of it (the state
    /// is already hot).
    ///
    /// This is the one shared amortization contract: the SUVM
    /// write-back drain and the wire codec's batch entry points both
    /// charge through it.
    #[must_use]
    pub fn crypto_batch_fixed(&self, index: usize) -> u64 {
        if index == 0 {
            self.crypto_fixed
        } else {
            self.crypto_fixed / 4
        }
    }

    /// Cycles to seal or unseal `bytes` bytes as message `index` of a
    /// setup-amortized batch.
    #[must_use]
    pub fn crypto_batched(&self, index: usize, bytes: usize) -> u64 {
        self.crypto_batch_fixed(index) + (self.crypto_cpb * bytes as f64) as u64
    }

    /// LLC miss penalty for the given target and access.
    ///
    /// Sequential misses pay the discounted streaming cost; the
    /// Table-1 EPC multipliers then apply on top, so the *relative*
    /// EPC-vs-untrusted cost matches the paper for both patterns.
    #[must_use]
    pub fn miss_cost(&self, domain: Domain, kind: AccessKind, sequential: bool) -> u64 {
        let base = if sequential {
            self.dram_miss as f64 * self.dram_seq_factor
        } else {
            self.dram_miss as f64
        };
        let factor = match (domain, kind) {
            (Domain::Untrusted, _) => 1.0,
            (Domain::Epc, AccessKind::Read) => self.epc_read_factor,
            (Domain::Epc, AccessKind::Write) => {
                if sequential {
                    self.epc_write_seq_factor
                } else {
                    self.epc_write_rand_factor
                }
            }
        };
        (base * factor) as u64
    }

    /// Converts a cycle count to seconds at the simulated clock rate.
    #[must_use]
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / CPU_HZ
    }
}

/// Which physical region an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Ordinary untrusted DRAM.
    Untrusted,
    /// Processor-reserved memory holding EPC pages (MEE-protected).
    Epc,
}

/// Read or write, for cost classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Base physical address of the EPC region in the simulated address map.
pub const EPC_BASE: u64 = 0x40_0000_0000;

/// Classifies a simulated physical address.
#[must_use]
pub fn domain_of(paddr: u64) -> Domain {
    if paddr >= EPC_BASE {
        Domain::Epc
    } else {
        Domain::Untrusted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_aggregates() {
        let c = CostModel::default();
        // §2.2: exit+reenter ~7k, OCALL ~8k.
        assert!((6_500..=7_500).contains(&c.exit_roundtrip()));
        assert!((7_500..=8_500).contains(&c.ocall_total()));
        // §2.3: driver evict+load ~25k.
        assert_eq!(c.hw_evict_page + c.hw_load_page, 25_000);
    }

    #[test]
    fn crypto_scales_with_size() {
        let c = CostModel::default();
        let page = c.crypto(4096);
        let sub = c.crypto(1024);
        assert!(page > sub);
        // A 4 KiB unseal should land near the paper's 8.5k-cycle
        // read-fault cost (the fault also pays lookup + copies).
        assert!((6_000..=9_000).contains(&page), "page crypto = {page}");
    }

    #[test]
    fn batched_crypto_amortizes_setup() {
        let c = CostModel::default();
        // A batch of one is exactly the standalone cost.
        assert_eq!(c.crypto_batched(0, 4096), c.crypto(4096));
        assert_eq!(c.crypto_batch_fixed(0), c.crypto_fixed);
        // Follow-on messages pay a quarter of the setup.
        assert_eq!(c.crypto_batch_fixed(1), c.crypto_fixed / 4);
        assert_eq!(c.crypto_batch_fixed(63), c.crypto_fixed / 4);
        assert!(c.crypto_batched(1, 4096) < c.crypto(4096));
        // The per-byte cost is unaffected by batching.
        assert_eq!(
            c.crypto_batched(1, 4096) - c.crypto_batch_fixed(1),
            c.crypto(4096) - c.crypto_fixed
        );
    }

    #[test]
    fn miss_costs_ordered() {
        let c = CostModel::default();
        let u = c.miss_cost(Domain::Untrusted, AccessKind::Read, false);
        let er = c.miss_cost(Domain::Epc, AccessKind::Read, false);
        let ewr = c.miss_cost(Domain::Epc, AccessKind::Write, false);
        assert!(u < er && er < ewr);
        assert_eq!(er, (200.0 * 5.6) as u64);
    }

    #[test]
    fn sequential_misses_are_discounted_uniformly() {
        // Table 1 reports the same EPC/untrusted *ratio* for
        // sequential and random reads; the absolute sequential cost is
        // lower for both.
        let c = CostModel::default();
        let u_seq = c.miss_cost(Domain::Untrusted, AccessKind::Read, true);
        let u_rand = c.miss_cost(Domain::Untrusted, AccessKind::Read, false);
        let e_seq = c.miss_cost(Domain::Epc, AccessKind::Read, true);
        let e_rand = c.miss_cost(Domain::Epc, AccessKind::Read, false);
        assert!(u_seq < u_rand && e_seq < e_rand);
        let r_seq = e_seq as f64 / u_seq as f64;
        let r_rand = e_rand as f64 / u_rand as f64;
        assert!((r_seq - r_rand).abs() < 0.3, "{r_seq} vs {r_rand}");
    }

    #[test]
    fn domain_classification() {
        assert_eq!(domain_of(0), Domain::Untrusted);
        assert_eq!(domain_of(EPC_BASE - 1), Domain::Untrusted);
        assert_eq!(domain_of(EPC_BASE), Domain::Epc);
        assert_eq!(domain_of(EPC_BASE + 123), Domain::Epc);
    }
}
