//! Per-core simulated cycle counters.
//!
//! Each simulated core owns a monotonically increasing cycle counter.
//! The counter is atomic so that *other* threads can charge cycles to a
//! core remotely — the SGX driver does exactly that when a TLB shootdown
//! IPI forces an asynchronous enclave exit (AEX) on a victim core
//! (paper §3.2.3).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, atomically updated cycle counter for one simulated core,
/// plus the core's pending-interrupt line.
#[derive(Debug, Default)]
pub struct CoreClock {
    cycles: AtomicU64,
    pending_ipi: AtomicBool,
}

impl CoreClock {
    /// Creates a clock at cycle zero.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Advances the clock by `cycles`.
    pub fn advance(&self, cycles: u64) {
        self.cycles.fetch_add(cycles, Ordering::Relaxed);
    }

    /// Current cycle count.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Resets the clock to zero (between experiment phases).
    pub fn reset(&self) {
        self.cycles.store(0, Ordering::Relaxed);
    }

    /// Raises the core's interrupt line (driver-side half of an IPI).
    ///
    /// The owning thread observes it at its next simulated memory access
    /// and performs an asynchronous enclave exit: TLB flush plus the
    /// `aex_resume` cycle charge.
    pub fn post_interrupt(&self) {
        self.pending_ipi.store(true, Ordering::Release);
    }

    /// Consumes a pending interrupt, returning whether one was pending.
    pub fn take_interrupt(&self) -> bool {
        // Fast path: avoid the RMW when the line is quiet.
        if !self.pending_ipi.load(Ordering::Relaxed) {
            return false;
        }
        self.pending_ipi.swap(false, Ordering::Acquire)
    }
}

/// Registry of the clocks of all cores currently executing inside a
/// given enclave, so the driver can deliver IPIs to exactly those cores
/// (the `ETRACK` flow).
#[derive(Debug, Default)]
pub struct CoreSet {
    clocks: parking_lot::Mutex<Vec<(usize, Arc<CoreClock>)>>,
}

impl CoreSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a core as executing in the tracked domain.
    pub fn join(&self, core_id: usize, clock: Arc<CoreClock>) {
        let mut g = self.clocks.lock();
        if !g.iter().any(|(id, _)| *id == core_id) {
            g.push((core_id, clock));
        }
    }

    /// Removes a core.
    pub fn leave(&self, core_id: usize) {
        self.clocks.lock().retain(|(id, _)| *id != core_id);
    }

    /// Number of registered cores.
    #[must_use]
    pub fn len(&self) -> usize {
        self.clocks.lock().len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Invokes `f` with every registered core except `except`, returning
    /// how many cores were visited. Used to charge IPI/AEX costs.
    pub fn for_others(&self, except: usize, mut f: impl FnMut(usize, &CoreClock)) -> usize {
        let g = self.clocks.lock();
        let mut n = 0;
        for (id, clock) in g.iter() {
            if *id != except {
                f(*id, clock);
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let c = CoreClock::new();
        assert_eq!(c.now(), 0);
        c.advance(100);
        c.advance(50);
        assert_eq!(c.now(), 150);
        c.reset();
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn remote_charge_is_visible() {
        let c = CoreClock::new();
        let c2 = Arc::clone(&c);
        std::thread::spawn(move || c2.advance(42)).join().unwrap();
        assert_eq!(c.now(), 42);
    }

    #[test]
    fn interrupt_line() {
        let c = CoreClock::new();
        assert!(!c.take_interrupt());
        c.post_interrupt();
        assert!(c.take_interrupt());
        assert!(!c.take_interrupt(), "interrupt must be consumed");
    }

    #[test]
    fn core_set_membership() {
        let s = CoreSet::new();
        let a = CoreClock::new();
        let b = CoreClock::new();
        s.join(0, Arc::clone(&a));
        s.join(1, Arc::clone(&b));
        s.join(0, Arc::clone(&a)); // idempotent
        assert_eq!(s.len(), 2);
        let visited = s.for_others(0, |_, clock| clock.advance(10));
        assert_eq!(visited, 1);
        assert_eq!(a.now(), 0);
        assert_eq!(b.now(), 10);
        s.leave(1);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
