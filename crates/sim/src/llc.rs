//! A set-associative last-level-cache model with CAT way partitioning.
//!
//! The LLC is the lever behind three of the paper's observations:
//!
//! - syscall I/O buffers pollute the LLC and slow the enclave (§2.2.1,
//!   Fig 2a) — modelled by running RPC/syscall buffer traffic through
//!   the same shared cache;
//! - LLC misses to EPC are 5.6–9.5x more expensive than to untrusted
//!   memory (Table 1) — the *classification* (hit/miss, target domain,
//!   sequential/random) happens here, the *cycle charge* in
//!   [`crate::costs::CostModel::miss_cost`];
//! - Intel CAT can fence the RPC worker into a slice of the ways
//!   (§3.1) — modelled by per-context way masks.
//!
//! The MEE integrity tree's LLC footprint (the paper speculates it
//! shrinks the effective LLC for enclaves, §2.2.1) is modelled by
//! inserting one synthetic tree line per EPC miss.

use crate::costs::{domain_of, AccessKind, Domain, LINE};

/// Base address of the synthetic MEE integrity-tree region.
pub const MEE_BASE: u64 = 0x80_0000_0000;

/// Maximum number of per-shard cache classes ([`CacheCtx::Shard`]).
pub const MAX_SHARD_CLASSES: usize = 8;

/// Cache-context classes for CAT partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCtx {
    /// Enclave application threads.
    Enclave,
    /// Eleos RPC worker threads.
    Rpc,
    /// RPC worker traffic on behalf of serving shard `k`. Fills use the
    /// shard's own way slice when [`Llc::partition_shards`] carved one,
    /// and fall back to the plain RPC partition otherwise — shard
    /// traffic never escapes the RPC fence.
    Shard(u8),
    /// Everything else (host OS, untrusted app code).
    Other,
}

impl CacheCtx {
    fn idx(self) -> usize {
        match self {
            CacheCtx::Enclave => 0,
            // Unpartitioned shard traffic accounts as RPC-class.
            CacheCtx::Rpc | CacheCtx::Shard(_) => 1,
            CacheCtx::Other => 2,
        }
    }
}

/// Outcome of a single line access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineOutcome {
    /// Whether the line hit in the LLC.
    pub hit: bool,
    /// Target domain of the access.
    pub domain: Domain,
    /// Whether a dirty line had to be written back to make room.
    pub writeback: Option<Domain>,
}

/// Configuration for [`Llc`].
#[derive(Debug, Clone)]
pub struct LlcConfig {
    /// Total capacity in bytes (default 8 MiB — i7-6700).
    pub size: usize,
    /// Associativity (default 16 ways).
    pub ways: usize,
}

impl Default for LlcConfig {
    fn default() -> Self {
        Self {
            size: 8 << 20,
            ways: 16,
        }
    }
}

/// The set-associative cache model. Not internally synchronized; the
/// machine wraps it in a mutex.
pub struct Llc {
    ways: usize,
    sets: usize,
    /// `sets * ways` tags; tag = line address (paddr / 64).
    tags: Vec<u64>,
    /// Per-way flags, parallel to `tags`.
    flags: Vec<u8>,
    /// LRU ticks, parallel to `tags`.
    lru: Vec<u64>,
    /// Allowed-way bitmasks per [`CacheCtx`] base class.
    way_masks: [u64; 3],
    /// Per-shard way slices, used by [`CacheCtx::Shard`] fills once
    /// [`Llc::partition_shards`] has carved them.
    shard_masks: [u64; MAX_SHARD_CLASSES],
    shards_partitioned: bool,
    tick: u64,
}

const F_VALID: u8 = 1;
const F_DIRTY: u8 = 2;

impl Llc {
    /// Builds an empty cache; all contexts may use all ways.
    #[must_use]
    pub fn new(cfg: &LlcConfig) -> Self {
        assert!(cfg.ways >= 1 && cfg.ways <= 64, "1..=64 ways supported");
        let sets = cfg.size / (LINE * cfg.ways);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        let n = sets * cfg.ways;
        let all = if cfg.ways == 64 {
            u64::MAX
        } else {
            (1u64 << cfg.ways) - 1
        };
        Self {
            ways: cfg.ways,
            sets,
            tags: vec![0; n],
            flags: vec![0; n],
            lru: vec![0; n],
            way_masks: [all; 3],
            shard_masks: [0; MAX_SHARD_CLASSES],
            shards_partitioned: false,
            tick: 0,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Restricts `ctx` to the ways set in `mask` (CAT-style). Panics if
    /// the mask selects no way or ways beyond the associativity.
    pub fn set_partition(&mut self, ctx: CacheCtx, mask: u64) {
        let all = if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        };
        assert!(mask & all != 0, "partition must contain at least one way");
        assert_eq!(mask & !all, 0, "partition exceeds associativity");
        match ctx {
            CacheCtx::Shard(k) => {
                assert!(
                    (k as usize) < MAX_SHARD_CLASSES,
                    "shard class {k} exceeds MAX_SHARD_CLASSES ({MAX_SHARD_CLASSES})"
                );
                self.shard_masks[k as usize] = mask & all;
                self.shards_partitioned = true;
            }
            base => self.way_masks[base.idx()] = mask & all,
        }
    }

    /// Applies the paper's Eleos split: 75% of ways to the enclave, 25%
    /// to the RPC workers (§3.1); `Other` keeps full access.
    pub fn partition_eleos(&mut self) {
        let rpc_ways = (self.ways / 4).max(1);
        let enclave_ways = self.ways - rpc_ways;
        let enclave_mask = (1u64 << enclave_ways) - 1;
        let rpc_mask = ((1u64 << rpc_ways) - 1) << enclave_ways;
        self.set_partition(CacheCtx::Enclave, enclave_mask);
        self.set_partition(CacheCtx::Rpc, rpc_mask);
        self.shards_partitioned = false;
    }

    /// Carves the current RPC partition into `n` per-shard way slices
    /// (round-robin over the RPC ways; when the RPC slice has fewer
    /// ways than shards, shards share ways round-robin so every shard
    /// still owns at least one fill way). Shard fills stay inside the
    /// RPC fence, but two shards' socket traffic stops evicting each
    /// other.
    pub fn partition_shards(&mut self, n: usize) {
        assert!(n >= 1, "partition_shards needs at least one shard");
        assert!(
            n <= MAX_SHARD_CLASSES,
            "partition_shards({n}) exceeds MAX_SHARD_CLASSES ({MAX_SHARD_CLASSES})"
        );
        let rpc = self.way_masks[CacheCtx::Rpc.idx()];
        let ways: Vec<u64> = (0..64).filter(|w| rpc & (1 << w) != 0).collect();
        self.shard_masks = [0; MAX_SHARD_CLASSES];
        for (i, w) in ways.iter().enumerate() {
            self.shard_masks[i % n] |= 1 << w;
        }
        for k in 0..n {
            if self.shard_masks[k] == 0 {
                self.shard_masks[k] = 1 << ways[k % ways.len()];
            }
        }
        self.shards_partitioned = true;
    }

    /// Removes any partitioning.
    pub fn partition_none(&mut self) {
        let all = if self.ways == 64 {
            u64::MAX
        } else {
            (1u64 << self.ways) - 1
        };
        self.way_masks = [all; 3];
        self.shard_masks = [0; MAX_SHARD_CLASSES];
        self.shards_partitioned = false;
    }

    /// The way mask a fill from `ctx` may use. Shard classes beyond the
    /// carved set (or with no slice) fall back to the RPC fence.
    fn fill_mask(&self, ctx: CacheCtx) -> u64 {
        if let CacheCtx::Shard(k) = ctx {
            if self.shards_partitioned {
                let m = self.shard_masks.get(k as usize).copied().unwrap_or(0);
                if m != 0 {
                    return m;
                }
            }
        }
        self.way_masks[ctx.idx()]
    }

    /// Accesses one cache line containing `paddr`.
    pub fn access_line(&mut self, ctx: CacheCtx, paddr: u64, kind: AccessKind) -> LineOutcome {
        let domain = domain_of(paddr);
        let outcome = self.touch(ctx, paddr, kind);
        // An EPC miss drags MEE integrity-tree metadata through the LLC,
        // shrinking the cache available to the application. Tree lines
        // are private to the MEE; we insert them in the `Other` context
        // footprint (read-only, so no extra write-backs).
        if !outcome.hit && domain == Domain::Epc && paddr < MEE_BASE {
            let tree_line = MEE_BASE + (paddr >> 9 << 6);
            let _ = self.touch(ctx, tree_line, AccessKind::Read);
        }
        outcome
    }

    fn touch(&mut self, ctx: CacheCtx, paddr: u64, kind: AccessKind) -> LineOutcome {
        let domain = domain_of(paddr);
        let line = paddr / LINE as u64;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        self.tick += 1;

        // Hit path: any way, regardless of partition (CAT restricts
        // *fills*, not lookups).
        for w in 0..self.ways {
            let i = base + w;
            if self.flags[i] & F_VALID != 0 && self.tags[i] == line {
                self.lru[i] = self.tick;
                if kind == AccessKind::Write {
                    self.flags[i] |= F_DIRTY;
                }
                return LineOutcome {
                    hit: true,
                    domain,
                    writeback: None,
                };
            }
        }

        // Miss: fill into the LRU way among those allowed for `ctx`.
        let mask = self.fill_mask(ctx);
        let mut victim = None;
        let mut victim_tick = u64::MAX;
        for w in 0..self.ways {
            if mask & (1 << w) == 0 {
                continue;
            }
            let i = base + w;
            if self.flags[i] & F_VALID == 0 {
                victim = Some(i);
                break;
            }
            if self.lru[i] < victim_tick {
                victim_tick = self.lru[i];
                victim = Some(i);
            }
        }
        let i = victim.expect("partition always contains at least one way");
        let mut writeback = None;
        if self.flags[i] & (F_VALID | F_DIRTY) == (F_VALID | F_DIRTY) {
            writeback = Some(domain_of(self.tags[i] * LINE as u64));
        }
        self.tags[i] = line;
        self.flags[i] = F_VALID
            | if kind == AccessKind::Write {
                F_DIRTY
            } else {
                0
            };
        self.lru[i] = self.tick;
        LineOutcome {
            hit: false,
            domain,
            writeback,
        }
    }

    /// Invalidates every line overlapping `[paddr, paddr+len)` — used
    /// when the driver evicts an EPC page, since the frame's next
    /// contents are unrelated.
    pub fn invalidate_range(&mut self, paddr: u64, len: usize) {
        let first = paddr / LINE as u64;
        let last = (paddr + len as u64 - 1) / LINE as u64;
        for line in first..=last {
            let set = (line as usize) & (self.sets - 1);
            let base = set * self.ways;
            for w in 0..self.ways {
                let i = base + w;
                if self.flags[i] & F_VALID != 0 && self.tags[i] == line {
                    self.flags[i] = 0;
                }
            }
        }
    }

    /// Drops all contents (between experiment phases).
    pub fn clear(&mut self) {
        self.flags.fill(0);
        self.lru.fill(0);
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Llc {
        // 64 sets * 4 ways * 64 B = 16 KiB.
        Llc::new(&LlcConfig {
            size: 16 << 10,
            ways: 4,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let out = c.access_line(CacheCtx::Enclave, 0x1000, AccessKind::Read);
        assert!(!out.hit);
        let out = c.access_line(CacheCtx::Enclave, 0x1008, AccessKind::Read);
        assert!(out.hit, "same line must hit");
        let out = c.access_line(CacheCtx::Enclave, 0x1040, AccessKind::Read);
        assert!(!out.hit, "next line misses");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // 4-way set 0: lines at stride sets*64 = 4096.
        let stride = 64 * 64;
        for i in 0..4u64 {
            assert!(
                !c.access_line(CacheCtx::Other, i * stride, AccessKind::Read)
                    .hit
            );
        }
        for i in 0..4u64 {
            assert!(
                c.access_line(CacheCtx::Other, i * stride, AccessKind::Read)
                    .hit
            );
        }
        // Fifth line evicts the LRU (line 0).
        assert!(
            !c.access_line(CacheCtx::Other, 4 * stride, AccessKind::Read)
                .hit
        );
        assert!(!c.access_line(CacheCtx::Other, 0, AccessKind::Read).hit);
    }

    #[test]
    fn dirty_writeback_reported() {
        let mut c = small();
        let stride = 64 * 64;
        for i in 0..4u64 {
            c.access_line(CacheCtx::Other, i * stride, AccessKind::Write);
        }
        let out = c.access_line(CacheCtx::Other, 4 * stride, AccessKind::Read);
        assert!(!out.hit);
        assert_eq!(out.writeback, Some(Domain::Untrusted));
    }

    #[test]
    fn partition_isolates_fills() {
        let mut c = small();
        c.set_partition(CacheCtx::Rpc, 0b0001);
        c.set_partition(CacheCtx::Enclave, 0b1110);
        let stride = 64 * 64;
        // Enclave fills three lines into its 3 ways.
        for i in 0..3u64 {
            c.access_line(CacheCtx::Enclave, i * stride, AccessKind::Read);
        }
        // RPC streams many lines through its single way...
        for i in 10..30u64 {
            c.access_line(CacheCtx::Rpc, i * stride, AccessKind::Read);
        }
        // ...without evicting the enclave's lines.
        for i in 0..3u64 {
            assert!(
                c.access_line(CacheCtx::Enclave, i * stride, AccessKind::Read)
                    .hit,
                "enclave line {i} was evicted through the partition"
            );
        }
    }

    #[test]
    fn unpartitioned_rpc_traffic_evicts_enclave_lines() {
        let mut c = small();
        let stride = 64 * 64;
        for i in 0..4u64 {
            c.access_line(CacheCtx::Enclave, i * stride, AccessKind::Read);
        }
        for i in 10..30u64 {
            c.access_line(CacheCtx::Rpc, i * stride, AccessKind::Read);
        }
        let hits = (0..4u64)
            .filter(|i| {
                c.access_line(CacheCtx::Enclave, i * stride, AccessKind::Read)
                    .hit
            })
            .count();
        assert_eq!(hits, 0, "shared cache must show pollution");
    }

    #[test]
    fn epc_miss_inserts_tree_line() {
        use crate::costs::EPC_BASE;
        let mut c = small();
        c.access_line(CacheCtx::Enclave, EPC_BASE, AccessKind::Read);
        // The synthetic tree line for EPC_BASE occupies its set; a
        // subsequent direct access to it must hit.
        let tree = MEE_BASE + (EPC_BASE >> 9 << 6);
        assert!(c.access_line(CacheCtx::Enclave, tree, AccessKind::Read).hit);
    }

    #[test]
    fn invalidate_range_clears_lines() {
        let mut c = small();
        c.access_line(CacheCtx::Other, 0x2000, AccessKind::Write);
        c.access_line(CacheCtx::Other, 0x2040, AccessKind::Write);
        c.invalidate_range(0x2000, 128);
        assert!(!c.access_line(CacheCtx::Other, 0x2000, AccessKind::Read).hit);
        assert!(!c.access_line(CacheCtx::Other, 0x2040, AccessKind::Read).hit);
    }

    #[test]
    fn eleos_partition_shape() {
        let mut c = Llc::new(&LlcConfig::default());
        c.partition_eleos();
        // 16 ways: enclave gets 12, RPC 4, disjoint.
        assert_eq!(c.way_masks[CacheCtx::Enclave.idx()].count_ones(), 12);
        assert_eq!(c.way_masks[CacheCtx::Rpc.idx()].count_ones(), 4);
        assert_eq!(
            c.way_masks[CacheCtx::Enclave.idx()] & c.way_masks[CacheCtx::Rpc.idx()],
            0
        );
        c.partition_none();
        assert_eq!(c.way_masks[CacheCtx::Enclave.idx()].count_ones(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn empty_partition_rejected() {
        let mut c = small();
        c.set_partition(CacheCtx::Rpc, 0);
    }

    #[test]
    fn shard_slices_carve_the_rpc_fence() {
        let mut c = Llc::new(&LlcConfig::default());
        c.partition_eleos();
        c.partition_shards(2);
        let rpc = c.way_masks[CacheCtx::Rpc.idx()];
        let (s0, s1) = (
            c.fill_mask(CacheCtx::Shard(0)),
            c.fill_mask(CacheCtx::Shard(1)),
        );
        assert_eq!(s0 & s1, 0, "shard slices must be disjoint");
        assert_eq!(s0 | s1, rpc, "slices must cover exactly the RPC ways");
        assert!(s0.count_ones() >= 1 && s1.count_ones() >= 1);
        // A shard class beyond the carved set falls back to the fence.
        assert_eq!(c.fill_mask(CacheCtx::Shard(5)), rpc);
    }

    #[test]
    fn more_shards_than_rpc_ways_share_round_robin() {
        let mut c = small(); // 4 ways -> partition_eleos gives RPC 1 way.
        c.partition_eleos();
        c.partition_shards(3);
        let rpc = c.way_masks[CacheCtx::Rpc.idx()];
        for k in 0..3u8 {
            let m = c.fill_mask(CacheCtx::Shard(k));
            assert_eq!(m.count_ones(), 1, "each shard owns a fill way");
            assert_eq!(m & !rpc, 0, "shard ways stay inside the RPC fence");
        }
    }

    #[test]
    fn shard_fills_do_not_evict_a_sibling_shard() {
        let mut c = small();
        c.set_partition(CacheCtx::Shard(0), 0b0001);
        c.set_partition(CacheCtx::Shard(1), 0b0010);
        let stride = 64 * 64;
        c.access_line(CacheCtx::Shard(0), 0, AccessKind::Read);
        // Shard 1 streams many lines through its own way...
        for i in 10..30u64 {
            c.access_line(CacheCtx::Shard(1), i * stride, AccessKind::Read);
        }
        // ...without touching shard 0's resident line.
        assert!(
            c.access_line(CacheCtx::Shard(0), 0, AccessKind::Read).hit,
            "shard 0's line was evicted through the shard partition"
        );
    }

    #[test]
    fn unpartitioned_shard_traffic_uses_the_rpc_fence() {
        let mut c = small();
        c.set_partition(CacheCtx::Rpc, 0b0001);
        c.set_partition(CacheCtx::Enclave, 0b1110);
        let stride = 64 * 64;
        for i in 0..3u64 {
            c.access_line(CacheCtx::Enclave, i * stride, AccessKind::Read);
        }
        // No partition_shards call: shard traffic must stay fenced to
        // the single RPC way and leave the enclave's lines alone.
        for i in 10..30u64 {
            c.access_line(CacheCtx::Shard(3), i * stride, AccessKind::Read);
        }
        for i in 0..3u64 {
            assert!(
                c.access_line(CacheCtx::Enclave, i * stride, AccessKind::Read)
                    .hit,
                "shard traffic escaped the RPC fence"
            );
        }
    }

    #[test]
    fn partition_none_drops_shard_slices() {
        let mut c = Llc::new(&LlcConfig::default());
        c.partition_eleos();
        c.partition_shards(4);
        c.partition_none();
        assert!(!c.shards_partitioned);
        assert_eq!(c.fill_mask(CacheCtx::Shard(0)).count_ones(), 16);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_SHARD_CLASSES")]
    fn too_many_shard_partitions_rejected() {
        let mut c = Llc::new(&LlcConfig::default());
        c.partition_eleos();
        c.partition_shards(MAX_SHARD_CLASSES + 1);
    }
}
