//! Shared event counters for the simulated machine.
//!
//! A single [`Stats`] instance hangs off the machine; all components
//! (LLC, TLBs, driver, SUVM, RPC) increment it with relaxed atomics.
//! Experiments take [`Stats::snapshot`]s before and after a phase and
//! subtract them — this is how the harness reports fault and IPI counts
//! (e.g. Table 2 of the paper).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in the log-linear latency histogram: values 0–7
/// map one-to-one, every power-of-two octave above that is split into
/// 8 sub-buckets (HdrHistogram-style, ~12.5% worst-case resolution),
/// up to the full `u64` range.
pub const HIST_BUCKETS: usize = 496;

fn hist_bucket(v: u64) -> usize {
    if v < 8 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as u64; // floor(log2 v), >= 3
    (((exp - 2) * 8) + ((v >> (exp - 3)) - 8)) as usize
}

fn hist_value(bucket: usize) -> u64 {
    if bucket < 8 {
        return bucket as u64;
    }
    let group = (bucket / 8) as u64; // octave index, >= 1
    let off = (bucket % 8) as u64;
    (8 + off) << (group - 1)
}

/// A live, atomically updated log-linear histogram of `u64` samples
/// (cycles of sojourn, in practice). Recording is a single relaxed
/// `fetch_add`, so any core can stamp samples concurrently.
pub struct Hist {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Hist {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[hist_bucket(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Clears all buckets.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl core::fmt::Debug for Hist {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// A point-in-time copy of a [`Hist`], with percentile readout.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: [u64; HIST_BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0u64; HIST_BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The value at quantile `q` in `[0, 1]` — the lower bound of the
    /// first bucket whose cumulative count reaches `ceil(q * count)`
    /// (exact below 8, within ~12.5% above). Returns 0 when empty.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return hist_value(i);
            }
        }
        hist_value(HIST_BUCKETS - 1)
    }

    /// Median sample value.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile sample value.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile sample value.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

impl core::ops::Sub for HistSnapshot {
    type Output = HistSnapshot;
    fn sub(self, rhs: HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].wrapping_sub(rhs.buckets[i])),
        }
    }
}

impl core::fmt::Debug for HistSnapshot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Hist {{ count: {}, p50: {}, p95: {}, p99: {} }}",
            self.count(),
            self.p50(),
            self.p95(),
            self.p99()
        )
    }
}

/// Maximum number of serving shards tracked by the per-shard gauges
/// (mirrors `llc::MAX_SHARD_CLASSES`).
pub const MAX_SHARDS: usize = 8;

/// Maximum number of enclave replicas tracked by the per-replica
/// shard gauges (the fleet tier's stat dimension).
pub const MAX_REPLICAS: usize = 4;

/// Live per-shard serving telemetry. Slots beyond the active shard
/// count stay zero. `backlog` and `depth` are *gauges* (last observed
/// value, written with a relaxed store); the rest are counters.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Last observed kernel-ring backlog behind each shard's socket.
    pub backlog: [AtomicU64; MAX_SHARDS],
    /// Each shard's current AIMD reap depth.
    pub depth: [AtomicU64; MAX_SHARDS],
    /// Sub-batch runs this shard stole from a loaded sibling.
    pub steals_taken: [AtomicU64; MAX_SHARDS],
    /// Sub-batch runs stolen *from* this shard by an idle sibling.
    pub steals_given: [AtomicU64; MAX_SHARDS],
    /// Connections the rebalancer migrated *off* this shard.
    pub migrations: [AtomicU64; MAX_SHARDS],
    /// Per-shard sojourn histograms (stolen messages are credited to
    /// the shard whose socket they waited on).
    pub sojourn: [Hist; MAX_SHARDS],
}

impl ShardStats {
    /// Copies all per-shard slots.
    #[must_use]
    pub fn snapshot(&self) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            backlog: std::array::from_fn(|i| self.backlog[i].load(Ordering::Relaxed)),
            depth: std::array::from_fn(|i| self.depth[i].load(Ordering::Relaxed)),
            steals_taken: std::array::from_fn(|i| self.steals_taken[i].load(Ordering::Relaxed)),
            steals_given: std::array::from_fn(|i| self.steals_given[i].load(Ordering::Relaxed)),
            migrations: std::array::from_fn(|i| self.migrations[i].load(Ordering::Relaxed)),
            sojourn: std::array::from_fn(|i| self.sojourn[i].snapshot()),
        }
    }

    /// Resets every slot to zero.
    pub fn reset(&self) {
        for i in 0..MAX_SHARDS {
            self.backlog[i].store(0, Ordering::Relaxed);
            self.depth[i].store(0, Ordering::Relaxed);
            self.steals_taken[i].store(0, Ordering::Relaxed);
            self.steals_given[i].store(0, Ordering::Relaxed);
            self.migrations[i].store(0, Ordering::Relaxed);
            self.sojourn[i].reset();
        }
    }
}

/// A point-in-time copy of [`ShardStats`]. Subtraction treats the
/// counter slots as deltas; the gauges (`backlog`, `depth`) come out as
/// final-minus-initial, which after a `reset_counters` baseline is
/// simply the last observed value.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    /// Last observed kernel-ring backlog per shard (gauge).
    pub backlog: [u64; MAX_SHARDS],
    /// Current AIMD reap depth per shard (gauge).
    pub depth: [u64; MAX_SHARDS],
    /// Steals taken per shard.
    pub steals_taken: [u64; MAX_SHARDS],
    /// Steals given per shard.
    pub steals_given: [u64; MAX_SHARDS],
    /// Migrations off each shard.
    pub migrations: [u64; MAX_SHARDS],
    /// Per-shard sojourn histograms.
    pub sojourn: [HistSnapshot; MAX_SHARDS],
}

impl core::ops::Sub for ShardStatsSnapshot {
    type Output = ShardStatsSnapshot;
    fn sub(self, rhs: ShardStatsSnapshot) -> ShardStatsSnapshot {
        ShardStatsSnapshot {
            backlog: std::array::from_fn(|i| self.backlog[i].wrapping_sub(rhs.backlog[i])),
            depth: std::array::from_fn(|i| self.depth[i].wrapping_sub(rhs.depth[i])),
            steals_taken: std::array::from_fn(|i| {
                self.steals_taken[i].wrapping_sub(rhs.steals_taken[i])
            }),
            steals_given: std::array::from_fn(|i| {
                self.steals_given[i].wrapping_sub(rhs.steals_given[i])
            }),
            migrations: std::array::from_fn(|i| self.migrations[i].wrapping_sub(rhs.migrations[i])),
            sojourn: std::array::from_fn(|i| self.sojourn[i] - rhs.sojourn[i]),
        }
    }
}

/// The fleet tier's shard telemetry: one [`ShardStats`] block per
/// enclave replica. A single-enclave server writes replica slot 0;
/// the fleet's per-replica pipelines write their own slot, so shard
/// gauges never alias across replicas.
#[derive(Debug, Default)]
pub struct FleetShardStats {
    /// Per-replica shard gauge blocks. Slots beyond the active
    /// replica count stay zero.
    pub replica: [ShardStats; MAX_REPLICAS],
}

impl FleetShardStats {
    /// Copies every replica's shard slots.
    #[must_use]
    pub fn snapshot(&self) -> FleetShardSnapshot {
        FleetShardSnapshot {
            replica: std::array::from_fn(|r| self.replica[r].snapshot()),
        }
    }

    /// Resets every replica's slots to zero.
    pub fn reset(&self) {
        for r in &self.replica {
            r.reset();
        }
    }
}

/// A point-in-time copy of [`FleetShardStats`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FleetShardSnapshot {
    /// Per-replica shard gauge snapshots.
    pub replica: [ShardStatsSnapshot; MAX_REPLICAS],
}

impl core::ops::Sub for FleetShardSnapshot {
    type Output = FleetShardSnapshot;
    fn sub(self, rhs: FleetShardSnapshot) -> FleetShardSnapshot {
        FleetShardSnapshot {
            replica: std::array::from_fn(|r| self.replica[r] - rhs.replica[r]),
        }
    }
}

/// Maximum number of storage size classes tracked by the per-class
/// engine gauges — covers the full slab ladder a 1 MiB slab with 1.25
/// growth from a 96 B minimum produces (~43 classes), with headroom.
pub const MAX_STORAGE_CLASSES: usize = 48;

/// Live per-size-class storage-engine telemetry. All slots are
/// *gauges*: the engine re-publishes its cumulative per-class totals
/// with relaxed stores at sub-batch fences, so slots beyond the
/// engine's class count stay zero.
#[derive(Debug)]
pub struct StorageClassStats {
    /// Cumulative GET hits served from each size class.
    pub hits: [AtomicU64; MAX_STORAGE_CLASSES],
    /// Cumulative LRU evictions charged to each size class.
    pub evictions: [AtomicU64; MAX_STORAGE_CLASSES],
    /// Cumulative SET allocations landing in each size class.
    pub sets: [AtomicU64; MAX_STORAGE_CLASSES],
}

impl Default for StorageClassStats {
    fn default() -> Self {
        Self {
            hits: std::array::from_fn(|_| AtomicU64::new(0)),
            evictions: std::array::from_fn(|_| AtomicU64::new(0)),
            sets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl StorageClassStats {
    /// Copies all per-class slots.
    #[must_use]
    pub fn snapshot(&self) -> StorageClassSnapshot {
        StorageClassSnapshot {
            hits: std::array::from_fn(|i| self.hits[i].load(Ordering::Relaxed)),
            evictions: std::array::from_fn(|i| self.evictions[i].load(Ordering::Relaxed)),
            sets: std::array::from_fn(|i| self.sets[i].load(Ordering::Relaxed)),
        }
    }

    /// Resets every slot to zero.
    pub fn reset(&self) {
        for i in 0..MAX_STORAGE_CLASSES {
            self.hits[i].store(0, Ordering::Relaxed);
            self.evictions[i].store(0, Ordering::Relaxed);
            self.sets[i].store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of [`StorageClassStats`]. Subtraction yields
/// final-minus-initial, which after a `reset_counters` baseline is the
/// last published cumulative total.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageClassSnapshot {
    /// GET hits per size class (gauge).
    pub hits: [u64; MAX_STORAGE_CLASSES],
    /// Evictions per size class (gauge).
    pub evictions: [u64; MAX_STORAGE_CLASSES],
    /// SET allocations per size class (gauge).
    pub sets: [u64; MAX_STORAGE_CLASSES],
}

impl Default for StorageClassSnapshot {
    fn default() -> Self {
        Self {
            hits: [0; MAX_STORAGE_CLASSES],
            evictions: [0; MAX_STORAGE_CLASSES],
            sets: [0; MAX_STORAGE_CLASSES],
        }
    }
}

impl core::ops::Sub for StorageClassSnapshot {
    type Output = StorageClassSnapshot;
    fn sub(self, rhs: StorageClassSnapshot) -> StorageClassSnapshot {
        StorageClassSnapshot {
            hits: std::array::from_fn(|i| self.hits[i].wrapping_sub(rhs.hits[i])),
            evictions: std::array::from_fn(|i| self.evictions[i].wrapping_sub(rhs.evictions[i])),
            sets: std::array::from_fn(|i| self.sets[i].wrapping_sub(rhs.sets[i])),
        }
    }
}

macro_rules! stats {
    ($(#[$doc:meta] $name:ident),+ $(,)?) => {
        /// Live, atomically updated counters.
        #[derive(Debug, Default)]
        pub struct Stats {
            $(#[$doc] pub $name: AtomicU64,)+
            /// Per-op sojourn (enqueue-to-reap latency) in simulated
            /// cycles, stamped by the serving path's scatter-gather
            /// reaps from the enqueue timestamps in the wire
            /// descriptors.
            pub sojourn: Hist,
            /// Per-replica, per-shard serving gauges (backlog, AIMD
            /// depth, steals, migrations, per-shard sojourn).
            pub shard: FleetShardStats,
            /// Per-size-class storage-engine gauges (hits, evictions,
            /// sets), re-published at sub-batch fences.
            pub storage: StorageClassStats,
        }

        /// A point-in-time copy of [`Stats`].
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $(#[$doc] pub $name: u64,)+
            /// Per-op sojourn histogram (cycles).
            pub sojourn: HistSnapshot,
            /// Per-replica, per-shard serving gauges.
            pub shard: FleetShardSnapshot,
            /// Per-size-class storage-engine gauges.
            pub storage: StorageClassSnapshot,
        }

        impl Stats {
            /// Copies all counters.
            #[must_use]
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                    sojourn: self.sojourn.snapshot(),
                    shard: self.shard.snapshot(),
                    storage: self.storage.snapshot(),
                }
            }

            /// Resets all counters to zero.
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
                self.sojourn.reset();
                self.shard.reset();
                self.storage.reset();
            }
        }

        impl core::ops::Sub for StatsSnapshot {
            type Output = StatsSnapshot;
            fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.wrapping_sub(rhs.$name),)+
                    sojourn: self.sojourn - rhs.sojourn,
                    shard: self.shard - rhs.shard,
                    storage: self.storage - rhs.storage,
                }
            }
        }
    };
}

stats! {
    /// LLC hits.
    llc_hits,
    /// LLC misses.
    llc_misses,
    /// LLC misses whose target was EPC.
    llc_misses_epc,
    /// Dirty-line write-backs out of the LLC.
    llc_writebacks,
    /// LLC misses served from a remote NUMA node's DRAM (each paid the `numa_remote` hop; always zero on a single-node machine).
    numa_remote_misses,
    /// TLB hits.
    tlb_hits,
    /// TLB misses (page walks).
    tlb_misses,
    /// Full TLB flushes (enclave exits, AEX).
    tlb_flushes,
    /// Synchronous enclave exits (EEXIT executed).
    enclave_exits,
    /// Enclave (re-)entries.
    enclave_enters,
    /// OCALLs performed through the SDK path.
    ocalls,
    /// System calls executed by the host OS.
    syscalls,
    /// Kernel-metadata scratch walks performed by host syscalls (one per trap that touches socket state, regardless of batch size).
    kernel_meta_reads,
    /// Asynchronous enclave exits caused by IPIs.
    aex,
    /// Inter-processor interrupts sent by the driver.
    ipis,
    /// Hardware EPC page faults handled by the driver.
    hw_faults,
    /// EPC pages evicted by the driver (EWB).
    hw_evictions,
    /// EPC pages loaded by the driver (ELDU).
    hw_loads,
    /// SUVM major faults (page not in EPC++).
    suvm_major_faults,
    /// SUVM minor faults (page resident, spointer unlinked).
    suvm_minor_faults,
    /// SUVM page evictions from EPC++.
    suvm_evictions,
    /// SUVM evictions skipped because the page was clean.
    suvm_clean_skips,
    /// SUVM direct (sub-page) backing-store accesses.
    suvm_direct_accesses,
    /// RPC calls served exit-lessly.
    rpc_calls,
    /// RPC batches submitted (a `submit_batch`/`wait_all` round trip).
    rpc_batches,
    /// RPC posts that found the ring full and had to back off.
    rpc_ring_full,
    /// RPC worker poll sweeps that found no posted job.
    rpc_idle_polls,
    /// Bounded-spin yields: a claim attempt exceeded the idle-poll threshold and ceded the CPU with `thread::yield_now`.
    rpc_idle_yields,
    /// RPC calls to unregistered function ids (error sentinel returned).
    rpc_errors,
    /// Bytes moved by seal/unseal operations.
    sealed_bytes,
    /// Wire-crypto batches processed (one setup amortized per batch).
    crypto_batches,
    /// Wire messages sealed/opened through the batch pipeline.
    crypto_msgs,
    /// Fixed setup cycles charged by the wire-crypto pipeline (full for batch leaders, a quarter for follow-ons).
    crypto_setup_cycles,
    /// SUVM dirty victims parked on the write-back queue (batched mode).
    suvm_wb_queued,
    /// SUVM write-back drains that sealed at least one page.
    suvm_wb_batches,
    /// SUVM pages sealed by batched write-back drains.
    suvm_wb_pages,
    /// Queued SUVM victims rescued by a pin before write-back.
    suvm_wb_rescues,
    /// High-water mark of the SUVM write-back queue depth.
    suvm_wb_queue_peak,
    /// SUVM page-cache hits on probation-class frames.
    suvm_hits_probation,
    /// SUVM page-cache hits on protected-class frames.
    suvm_hits_protected,
    /// SUVM evictions of probation-class frames.
    suvm_evictions_probation,
    /// SUVM evictions of protected-class frames.
    suvm_evictions_protected,
    /// High-water mark of EPC frames any enclave held *beyond* its fair share while siblings were active (fleet contention pressure).
    epc_over_share_peak,
    /// Snapshots sealed by the fleet tier (quiesce-at-fence captures).
    fleet_snapshots,
    /// Snapshots restored into a replica (failover takeovers and cold rejoins).
    fleet_restores,
    /// Replica failovers: a replica's shards reassigned to survivors.
    fleet_failovers,
    /// Messages moved over exit-less cross-enclave channels.
    xchan_msgs,
    /// Payload bytes moved over exit-less cross-enclave channels.
    xchan_bytes,
    /// Attestation handshakes completed (evidence verified, session established).
    session_handshakes,
    /// Session key-epoch rotations begun (double-buffered, stall-free).
    rekeys,
    /// Sessions revoked (shard slot killed, queued traffic dropped).
    revocations,
    /// Messages rejected without serving: bad evidence, replayed handshake nonce, unknown key epoch, or a revoked session.
    auth_failures,
    /// Whole slabs the rebalancer reassigned from a cold class to a starved one.
    slab_moves,
    /// Live items relocated out of departing slabs during rebalancing moves.
    slab_items_relocated,
    /// Segment-store merge passes (compacting a TTL bucket's oldest segments).
    seg_merges,
    /// Whole segments reclaimed proactively because every item had expired.
    seg_expired_segments,
    /// Items dropped because their TTL deadline passed (lazy get-side expiry plus segment expiry sweeps).
    expired_items,
    /// Delta-snapshot chunks carried over the cross-enclave channel by the maintenance plane.
    maint_chunks,
    /// Serving-core cycles stalled inside fence-synchronous maintenance (slab moves, segment expiry/merges, fleet snapshot+restore); ~0 when the background maintenance plane runs the byte-work off-core.
    maint_stall_cycles,
    /// Items carried by incremental (delta) snapshots streamed by the maintenance plane.
    snapshot_delta_items,
    /// Segment-store merge passes run off the serving path by the background maintenance tick.
    bg_merges,
    /// Heartbeat ticks that found a replica's pump counter stalled (failure-detector evidence).
    hb_misses,
}

impl Stats {
    /// Convenience relaxed increment.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience relaxed add.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Convenience relaxed high-water mark update.
    pub fn peak(counter: &AtomicU64, v: u64) {
        counter.fetch_max(v, Ordering::Relaxed);
    }

    /// Convenience relaxed gauge store (for the per-shard gauges).
    pub fn set(counter: &AtomicU64, v: u64) {
        counter.store(v, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// A compact human-readable summary of the non-zero counters,
    /// grouped the way the experiments discuss them.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut put = |name: &str, v: u64| {
            if v > 0 {
                parts.push(format!("{name}={v}"));
            }
        };
        put("exits", self.enclave_exits);
        put("ocalls", self.ocalls);
        put("rpc", self.rpc_calls);
        put("rpc_batches", self.rpc_batches);
        put("rpc_ring_full", self.rpc_ring_full);
        put("rpc_idle_yields", self.rpc_idle_yields);
        put("rpc_errors", self.rpc_errors);
        put("syscalls", self.syscalls);
        put("kernel_meta", self.kernel_meta_reads);
        put("crypto_batches", self.crypto_batches);
        put("crypto_msgs", self.crypto_msgs);
        put("crypto_setup", self.crypto_setup_cycles);
        put("hw_faults", self.hw_faults);
        put("hw_evictions", self.hw_evictions);
        put("ipis", self.ipis);
        put("aex", self.aex);
        put("suvm_major", self.suvm_major_faults);
        put("suvm_minor", self.suvm_minor_faults);
        put("suvm_evict", self.suvm_evictions);
        put("clean_skips", self.suvm_clean_skips);
        put("direct", self.suvm_direct_accesses);
        put("wb_queued", self.suvm_wb_queued);
        put("wb_batches", self.suvm_wb_batches);
        put("wb_pages", self.suvm_wb_pages);
        put("wb_rescues", self.suvm_wb_rescues);
        put("wb_peak", self.suvm_wb_queue_peak);
        put("hits_probation", self.suvm_hits_probation);
        put("hits_protected", self.suvm_hits_protected);
        put("evict_probation", self.suvm_evictions_probation);
        put("evict_protected", self.suvm_evictions_protected);
        put("tlb_flushes", self.tlb_flushes);
        put("llc_miss", self.llc_misses);
        put(
            "steals",
            self.shard
                .replica
                .iter()
                .map(|r| r.steals_taken.iter().sum::<u64>())
                .sum(),
        );
        put(
            "migrations",
            self.shard
                .replica
                .iter()
                .map(|r| r.migrations.iter().sum::<u64>())
                .sum(),
        );
        put("epc_over_share", self.epc_over_share_peak);
        put("snapshots", self.fleet_snapshots);
        put("restores", self.fleet_restores);
        put("failovers", self.fleet_failovers);
        put("xchan_msgs", self.xchan_msgs);
        put("handshakes", self.session_handshakes);
        put("rekeys", self.rekeys);
        put("revocations", self.revocations);
        put("auth_failures", self.auth_failures);
        put("slab_moves", self.slab_moves);
        put("slab_relocated", self.slab_items_relocated);
        put("seg_merges", self.seg_merges);
        put("seg_expired", self.seg_expired_segments);
        put("expired", self.expired_items);
        put("maint_chunks", self.maint_chunks);
        put("maint_stall", self.maint_stall_cycles);
        put("delta_items", self.snapshot_delta_items);
        put("bg_merges", self.bg_merges);
        put("hb_misses", self.hb_misses);
        if self.sojourn.count() > 0 {
            parts.push(format!(
                "sojourn_p50={} sojourn_p95={} sojourn_p99={}",
                self.sojourn.p50(),
                self.sojourn.p95(),
                self.sojourn.p99()
            ));
        }
        if parts.is_empty() {
            "(idle)".to_string()
        } else {
            parts.join(" ")
        }
    }
}

impl core::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = Stats::default();
        Stats::bump(&s.llc_hits);
        Stats::add(&s.llc_misses, 5);
        let a = s.snapshot();
        Stats::add(&s.llc_misses, 2);
        Stats::bump(&s.hw_faults);
        let b = s.snapshot();
        let d = b - a;
        assert_eq!(d.llc_hits, 0);
        assert_eq!(d.llc_misses, 2);
        assert_eq!(d.hw_faults, 1);
        assert_eq!(b.llc_misses, 7);
    }

    #[test]
    fn summary_shows_only_nonzero() {
        let s = Stats::default();
        assert_eq!(s.snapshot().summary(), "(idle)");
        Stats::add(&s.enclave_exits, 3);
        Stats::bump(&s.hw_faults);
        let text = s.snapshot().to_string();
        assert!(text.contains("exits=3"));
        assert!(text.contains("hw_faults=1"));
        assert!(!text.contains("ipis"));
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = Stats::default();
        Stats::bump(&s.ipis);
        Stats::bump(&s.aex);
        s.sojourn.record(1234);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.ipis, 0);
        assert_eq!(snap.aex, 0);
        assert_eq!(snap.sojourn.count(), 0);
    }

    #[test]
    fn hist_buckets_are_exact_below_eight() {
        let h = Hist::default();
        for v in 0..8u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert_eq!(s.percentile(1.0 / 8.0), 0);
        assert_eq!(s.percentile(1.0), 7);
    }

    #[test]
    fn hist_resolution_stays_within_one_eighth() {
        // The log-linear scheme guarantees the reported bucket value is
        // within 12.5% of any recorded sample.
        for v in [8u64, 9, 100, 1_000, 123_456, 1 << 40, u64::MAX / 3] {
            let h = Hist::default();
            h.record(v);
            let p = h.snapshot().percentile(1.0);
            assert!(p <= v, "bucket value {p} above sample {v}");
            assert!(
                (v - p) as f64 <= v as f64 / 8.0 + 1.0,
                "bucket value {p} too far below sample {v}"
            );
        }
    }

    #[test]
    fn hist_percentiles_and_delta() {
        let h = Hist::default();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(100_000);
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), hist_value(hist_bucket(100)));
        assert_eq!(s.p95(), hist_value(hist_bucket(100)));
        assert_eq!(s.p99(), hist_value(hist_bucket(100)));
        assert_eq!(s.percentile(1.0), hist_value(hist_bucket(100_000)));
        // Subtracting an earlier snapshot removes its samples.
        h.record(100);
        let d = h.snapshot() - s;
        assert_eq!(d.count(), 1);
        assert_eq!(d.p99(), hist_value(hist_bucket(100)));
    }

    #[test]
    fn hist_bucket_value_is_monotone_inverse() {
        let mut last = None;
        for b in 0..HIST_BUCKETS {
            let v = hist_value(b);
            assert_eq!(hist_bucket(v), b, "bucket {b} not a fixed point");
            if let Some(prev) = last {
                assert!(v > prev, "bucket values must be strictly increasing");
            }
            last = Some(v);
        }
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn shard_gauges_snapshot_and_delta() {
        let s = Stats::default();
        Stats::set(&s.shard.replica[0].backlog[1], 7);
        Stats::set(&s.shard.replica[0].depth[1], 4);
        Stats::bump(&s.shard.replica[0].steals_taken[0]);
        Stats::bump(&s.shard.replica[0].steals_given[1]);
        Stats::add(&s.shard.replica[0].migrations[1], 2);
        s.shard.replica[0].sojourn[1].record(100);
        let base = FleetShardSnapshot::default();
        let d = (s.snapshot().shard - base).replica[0];
        assert_eq!(d.backlog[1], 7);
        assert_eq!(d.depth[1], 4);
        assert_eq!(d.steals_taken[0], 1);
        assert_eq!(d.steals_given[1], 1);
        assert_eq!(d.migrations[1], 2);
        assert_eq!(d.sojourn[1].count(), 1);
        assert_eq!(d.sojourn[0].count(), 0);
        let text = s.snapshot().summary();
        assert!(text.contains("steals=1"), "{text}");
        assert!(text.contains("migrations=2"), "{text}");
        s.reset();
        assert_eq!(s.snapshot().shard, FleetShardSnapshot::default());
    }

    #[test]
    fn replica_gauges_stay_disjoint_across_slots() {
        let s = Stats::default();
        Stats::set(&s.shard.replica[0].backlog[2], 3);
        Stats::set(&s.shard.replica[1].backlog[2], 9);
        Stats::bump(&s.shard.replica[1].steals_taken[0]);
        let snap = s.snapshot().shard;
        assert_eq!(snap.replica[0].backlog[2], 3);
        assert_eq!(snap.replica[1].backlog[2], 9);
        assert_eq!(snap.replica[0].steals_taken[0], 0);
        assert_eq!(snap.replica[1].steals_taken[0], 1);
        // The summary sums steal counters across every replica slot.
        assert!(s.snapshot().summary().contains("steals=1"));
    }

    #[test]
    fn summary_includes_sojourn_percentiles() {
        let s = Stats::default();
        s.sojourn.record(64);
        let text = s.snapshot().summary();
        assert!(text.contains("sojourn_p50=64"), "{text}");
    }
}
