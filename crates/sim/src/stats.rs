//! Shared event counters for the simulated machine.
//!
//! A single [`Stats`] instance hangs off the machine; all components
//! (LLC, TLBs, driver, SUVM, RPC) increment it with relaxed atomics.
//! Experiments take [`Stats::snapshot`]s before and after a phase and
//! subtract them — this is how the harness reports fault and IPI counts
//! (e.g. Table 2 of the paper).

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! stats {
    ($(#[$doc:meta] $name:ident),+ $(,)?) => {
        /// Live, atomically updated counters.
        #[derive(Debug, Default)]
        pub struct Stats {
            $(#[$doc] pub $name: AtomicU64,)+
        }

        /// A point-in-time copy of [`Stats`].
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $(#[$doc] pub $name: u64,)+
        }

        impl Stats {
            /// Copies all counters.
            #[must_use]
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }

            /// Resets all counters to zero.
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
            }
        }

        impl core::ops::Sub for StatsSnapshot {
            type Output = StatsSnapshot;
            fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.wrapping_sub(rhs.$name),)+
                }
            }
        }
    };
}

stats! {
    /// LLC hits.
    llc_hits,
    /// LLC misses.
    llc_misses,
    /// LLC misses whose target was EPC.
    llc_misses_epc,
    /// Dirty-line write-backs out of the LLC.
    llc_writebacks,
    /// TLB hits.
    tlb_hits,
    /// TLB misses (page walks).
    tlb_misses,
    /// Full TLB flushes (enclave exits, AEX).
    tlb_flushes,
    /// Synchronous enclave exits (EEXIT executed).
    enclave_exits,
    /// Enclave (re-)entries.
    enclave_enters,
    /// OCALLs performed through the SDK path.
    ocalls,
    /// System calls executed by the host OS.
    syscalls,
    /// Kernel-metadata scratch walks performed by host syscalls (one per trap that touches socket state, regardless of batch size).
    kernel_meta_reads,
    /// Asynchronous enclave exits caused by IPIs.
    aex,
    /// Inter-processor interrupts sent by the driver.
    ipis,
    /// Hardware EPC page faults handled by the driver.
    hw_faults,
    /// EPC pages evicted by the driver (EWB).
    hw_evictions,
    /// EPC pages loaded by the driver (ELDU).
    hw_loads,
    /// SUVM major faults (page not in EPC++).
    suvm_major_faults,
    /// SUVM minor faults (page resident, spointer unlinked).
    suvm_minor_faults,
    /// SUVM page evictions from EPC++.
    suvm_evictions,
    /// SUVM evictions skipped because the page was clean.
    suvm_clean_skips,
    /// SUVM direct (sub-page) backing-store accesses.
    suvm_direct_accesses,
    /// RPC calls served exit-lessly.
    rpc_calls,
    /// RPC batches submitted (a `submit_batch`/`wait_all` round trip).
    rpc_batches,
    /// RPC posts that found the ring full and had to back off.
    rpc_ring_full,
    /// RPC worker poll sweeps that found no posted job.
    rpc_idle_polls,
    /// RPC calls to unregistered function ids (error sentinel returned).
    rpc_errors,
    /// Bytes moved by seal/unseal operations.
    sealed_bytes,
    /// Wire-crypto batches processed (one setup amortized per batch).
    crypto_batches,
    /// Wire messages sealed/opened through the batch pipeline.
    crypto_msgs,
    /// Fixed setup cycles charged by the wire-crypto pipeline (full for batch leaders, a quarter for follow-ons).
    crypto_setup_cycles,
    /// SUVM dirty victims parked on the write-back queue (batched mode).
    suvm_wb_queued,
    /// SUVM write-back drains that sealed at least one page.
    suvm_wb_batches,
    /// SUVM pages sealed by batched write-back drains.
    suvm_wb_pages,
    /// Queued SUVM victims rescued by a pin before write-back.
    suvm_wb_rescues,
    /// High-water mark of the SUVM write-back queue depth.
    suvm_wb_queue_peak,
    /// SUVM page-cache hits on probation-class frames.
    suvm_hits_probation,
    /// SUVM page-cache hits on protected-class frames.
    suvm_hits_protected,
    /// SUVM evictions of probation-class frames.
    suvm_evictions_probation,
    /// SUVM evictions of protected-class frames.
    suvm_evictions_protected,
}

impl Stats {
    /// Convenience relaxed increment.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience relaxed add.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Convenience relaxed high-water mark update.
    pub fn peak(counter: &AtomicU64, v: u64) {
        counter.fetch_max(v, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// A compact human-readable summary of the non-zero counters,
    /// grouped the way the experiments discuss them.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut put = |name: &str, v: u64| {
            if v > 0 {
                parts.push(format!("{name}={v}"));
            }
        };
        put("exits", self.enclave_exits);
        put("ocalls", self.ocalls);
        put("rpc", self.rpc_calls);
        put("rpc_batches", self.rpc_batches);
        put("rpc_ring_full", self.rpc_ring_full);
        put("rpc_errors", self.rpc_errors);
        put("syscalls", self.syscalls);
        put("kernel_meta", self.kernel_meta_reads);
        put("crypto_batches", self.crypto_batches);
        put("crypto_msgs", self.crypto_msgs);
        put("crypto_setup", self.crypto_setup_cycles);
        put("hw_faults", self.hw_faults);
        put("hw_evictions", self.hw_evictions);
        put("ipis", self.ipis);
        put("aex", self.aex);
        put("suvm_major", self.suvm_major_faults);
        put("suvm_minor", self.suvm_minor_faults);
        put("suvm_evict", self.suvm_evictions);
        put("clean_skips", self.suvm_clean_skips);
        put("direct", self.suvm_direct_accesses);
        put("wb_queued", self.suvm_wb_queued);
        put("wb_batches", self.suvm_wb_batches);
        put("wb_pages", self.suvm_wb_pages);
        put("wb_rescues", self.suvm_wb_rescues);
        put("wb_peak", self.suvm_wb_queue_peak);
        put("hits_probation", self.suvm_hits_probation);
        put("hits_protected", self.suvm_hits_protected);
        put("evict_probation", self.suvm_evictions_probation);
        put("evict_protected", self.suvm_evictions_protected);
        put("tlb_flushes", self.tlb_flushes);
        put("llc_miss", self.llc_misses);
        if parts.is_empty() {
            "(idle)".to_string()
        } else {
            parts.join(" ")
        }
    }
}

impl core::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = Stats::default();
        Stats::bump(&s.llc_hits);
        Stats::add(&s.llc_misses, 5);
        let a = s.snapshot();
        Stats::add(&s.llc_misses, 2);
        Stats::bump(&s.hw_faults);
        let b = s.snapshot();
        let d = b - a;
        assert_eq!(d.llc_hits, 0);
        assert_eq!(d.llc_misses, 2);
        assert_eq!(d.hw_faults, 1);
        assert_eq!(b.llc_misses, 7);
    }

    #[test]
    fn summary_shows_only_nonzero() {
        let s = Stats::default();
        assert_eq!(s.snapshot().summary(), "(idle)");
        Stats::add(&s.enclave_exits, 3);
        Stats::bump(&s.hw_faults);
        let text = s.snapshot().to_string();
        assert!(text.contains("exits=3"));
        assert!(text.contains("hw_faults=1"));
        assert!(!text.contains("ipis"));
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = Stats::default();
        Stats::bump(&s.ipis);
        Stats::bump(&s.aex);
        s.reset();
        let snap = s.snapshot();
        assert_eq!(snap.ipis, 0);
        assert_eq!(snap.aex, 0);
    }
}
