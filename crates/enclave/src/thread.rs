//! Per-thread execution context: the unit that runs code "on a core",
//! inside or outside an enclave, with all memory traffic charged to the
//! simulated memory hierarchy.

use std::sync::Arc;

use eleos_sim::clock::CoreClock;
use eleos_sim::costs::{AccessKind, PAGE_SIZE};
use eleos_sim::llc::CacheCtx;
use eleos_sim::stats::Stats;

use crate::enclave::Enclave;
use crate::epc::EpcPool;
use crate::machine::{Core, SgxMachine};

/// A simulated thread of execution pinned to one core.
///
/// A `ThreadCtx` bound to an enclave alternates between trusted and
/// untrusted execution via [`enter`](Self::enter)/[`exit`](Self::exit)
/// (or the [`ocall`](Self::ocall) convenience). Access rules mirror
/// SGX: trusted code may touch both enclave and untrusted memory;
/// untrusted code may touch only untrusted memory.
pub struct ThreadCtx {
    /// The machine this thread runs on.
    pub machine: Arc<SgxMachine>,
    /// The core this thread is pinned to.
    pub core: Arc<Core>,
    /// Cache-partition class for CAT accounting.
    pub cache_ctx: CacheCtx,
    enclave: Option<Arc<Enclave>>,
    in_enclave: bool,
    seq_line: u64,
}

impl ThreadCtx {
    /// An untrusted host thread (cache context `Other`).
    #[must_use]
    pub fn untrusted(machine: &Arc<SgxMachine>, core_id: usize) -> Self {
        Self {
            core: machine.core(core_id),
            machine: Arc::clone(machine),
            cache_ctx: CacheCtx::Other,
            enclave: None,
            in_enclave: false,
            seq_line: u64::MAX - 1,
        }
    }

    /// An Eleos RPC worker thread (cache context `Rpc`, CAT-partitioned
    /// when [`SgxMachine::enable_cat`] is on).
    #[must_use]
    pub fn rpc_worker(machine: &Arc<SgxMachine>, core_id: usize) -> Self {
        Self {
            cache_ctx: CacheCtx::Rpc,
            ..Self::untrusted(machine, core_id)
        }
    }

    /// A thread bound to `enclave`, starting outside it.
    #[must_use]
    pub fn for_enclave(machine: &Arc<SgxMachine>, enclave: &Arc<Enclave>, core_id: usize) -> Self {
        Self {
            core: machine.core(core_id),
            machine: Arc::clone(machine),
            cache_ctx: CacheCtx::Enclave,
            enclave: Some(Arc::clone(enclave)),
            in_enclave: false,
            seq_line: u64::MAX - 1,
        }
    }

    /// The bound enclave, if any.
    #[must_use]
    pub fn enclave(&self) -> Option<&Arc<Enclave>> {
        self.enclave.as_ref()
    }

    /// Whether the thread currently executes in trusted mode.
    #[must_use]
    pub fn in_enclave(&self) -> bool {
        self.in_enclave
    }

    /// The core's clock.
    #[must_use]
    pub fn clock(&self) -> &CoreClock {
        &self.core.clock
    }

    /// Current simulated time on this core, in cycles.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.core.clock.now()
    }

    /// Charges `cycles` of pure compute to this core.
    pub fn compute(&self, cycles: u64) {
        self.core.clock.advance(cycles);
    }

    /// Charges the cycle cost of one crypto batch — the **single**
    /// place `Costs::crypto_batch_fixed` is billed from, shared by the
    /// wire codec's seal/open pipeline and SUVM's write-back drain.
    ///
    /// `lens` is the byte length of each sealed/opened message. With
    /// `amortize`, the first message pays the full `crypto_fixed` setup
    /// (key schedule, GHASH table) and follow-ons a quarter of it;
    /// without, every message pays the full setup, which is the
    /// per-message baseline (and the cost of an inline single-page
    /// eviction). Also bumps the `crypto_batches` / `crypto_msgs` /
    /// `crypto_setup_cycles` stats so experiments can report the
    /// amortization.
    pub fn charge_crypto_batch(&mut self, lens: impl IntoIterator<Item = usize>, amortize: bool) {
        let machine = Arc::clone(&self.machine);
        let costs = &machine.cfg.costs;
        let (mut n, mut setup) = (0u64, 0u64);
        for (i, len) in lens.into_iter().enumerate() {
            let fixed = if amortize {
                costs.crypto_batch_fixed(i)
            } else {
                costs.crypto_fixed
            };
            setup += fixed;
            self.compute(fixed + (costs.crypto_cpb * len as f64) as u64);
            n += 1;
        }
        if n == 0 {
            return;
        }
        Stats::bump(&machine.stats.crypto_batches);
        Stats::add(&machine.stats.crypto_msgs, n);
        Stats::add(&machine.stats.crypto_setup_cycles, setup);
    }

    /// EENTER: transitions to trusted execution.
    ///
    /// # Panics
    /// Panics if no enclave is bound or the thread is already inside.
    pub fn enter(&mut self) {
        assert!(!self.in_enclave, "nested EENTER");
        let e = self.enclave.as_ref().expect("no enclave bound");
        self.core.clock.advance(self.machine.cfg.costs.eenter);
        Stats::bump(&self.machine.stats.enclave_enters);
        self.machine.trace.record(
            self.core.clock.now(),
            eleos_sim::trace::Event::EnclaveEnter {
                core: self.core.id,
                enclave: e.id,
            },
        );
        e.core_set.join(self.core.id, Arc::clone(&self.core.clock));
        self.in_enclave = true;
    }

    /// EEXIT: transitions to untrusted execution, flushing the
    /// enclave's TLB entries on this core (the mandatory flush of
    /// §2.2.1).
    pub fn exit(&mut self) {
        assert!(self.in_enclave, "EEXIT while outside");
        let e = self.enclave.as_ref().expect("enclave bound");
        self.core.clock.advance(self.machine.cfg.costs.eexit);
        Stats::bump(&self.machine.stats.enclave_exits);
        Stats::bump(&self.machine.stats.tlb_flushes);
        self.machine.trace.record(
            self.core.clock.now(),
            eleos_sim::trace::Event::EnclaveExit {
                core: self.core.id,
                enclave: e.id,
            },
        );
        self.core.tlb.lock().flush_asid(e.asid());
        e.core_set.leave(self.core.id);
        self.in_enclave = false;
    }

    /// Performs an OCALL: exits the enclave, runs `f` in untrusted
    /// mode, re-enters. This is the Intel-SDK path Eleos's RPC
    /// replaces; its direct cost is ~8k cycles (§2.2).
    pub fn ocall<R>(&mut self, f: impl FnOnce(&mut ThreadCtx) -> R) -> R {
        Stats::bump(&self.machine.stats.ocalls);
        self.core.clock.advance(self.machine.cfg.costs.ocall_sdk);
        self.exit();
        let r = f(self);
        self.enter();
        r
    }

    /// Runs `f` in trusted mode (an ECALL).
    pub fn ecall<R>(&mut self, f: impl FnOnce(&mut ThreadCtx) -> R) -> R {
        self.enter();
        let r = f(self);
        self.exit();
        r
    }

    /// Observes a pending IPI, performing the AEX effects (enclave TLB
    /// flush). The cycle cost was already charged by the sender.
    fn poll_interrupt(&mut self) {
        if self.core.clock.take_interrupt() {
            if let Some(e) = &self.enclave {
                if self.in_enclave {
                    self.core.tlb.lock().flush_asid(e.asid());
                    Stats::bump(&self.machine.stats.tlb_flushes);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Untrusted memory.
    // ------------------------------------------------------------------

    fn untrusted_access(&mut self, addr: u64, len: usize, kind: AccessKind, charged: bool) {
        self.poll_interrupt();
        if !charged || len == 0 {
            return;
        }
        let mut cycles = 0u64;
        // Page walks for untrusted pages (ASID 0), not flushed by exits.
        let first_page = addr / PAGE_SIZE as u64;
        let last_page = (addr + len as u64 - 1) / PAGE_SIZE as u64;
        {
            let mut tlb = self.core.tlb.lock();
            for vpn in first_page..=last_page {
                if tlb.access(0, vpn) {
                    Stats::bump(&self.machine.stats.tlb_hits);
                } else {
                    Stats::bump(&self.machine.stats.tlb_misses);
                    cycles += self.machine.cfg.costs.tlb_walk;
                }
            }
        }
        let node = self.machine.core_node(self.core.id);
        cycles +=
            self.machine
                .charge_mem(self.cache_ctx, &mut self.seq_line, addr, len, kind, node);
        self.core.clock.advance(cycles);
    }

    /// Reads untrusted memory with full cost accounting.
    pub fn read_untrusted(&mut self, addr: u64, buf: &mut [u8]) {
        self.untrusted_access(addr, buf.len(), AccessKind::Read, true);
        self.machine.untrusted.read(addr, buf);
    }

    /// Writes untrusted memory with full cost accounting.
    pub fn write_untrusted(&mut self, addr: u64, buf: &[u8]) {
        self.untrusted_access(addr, buf.len(), AccessKind::Write, true);
        self.machine.untrusted.write(addr, buf);
    }

    /// Reads untrusted memory without charging cycles — for
    /// runtime-internal moves whose latency is already modelled (e.g.
    /// a seal operation charged at AES-NI rates). The bytes still
    /// stream through the LLC.
    pub fn read_untrusted_raw(&mut self, addr: u64, buf: &mut [u8]) {
        self.poll_interrupt();
        self.machine
            .touch_mem(self.cache_ctx, addr, buf.len(), AccessKind::Read);
        self.machine.untrusted.read(addr, buf);
    }

    /// Raw counterpart of [`Self::write_untrusted`].
    pub fn write_untrusted_raw(&mut self, addr: u64, buf: &[u8]) {
        self.poll_interrupt();
        self.machine
            .touch_mem(self.cache_ctx, addr, buf.len(), AccessKind::Write);
        self.machine.untrusted.write(addr, buf);
    }

    // ------------------------------------------------------------------
    // Enclave memory.
    // ------------------------------------------------------------------

    /// Reads enclave-linear memory (trusted mode only).
    pub fn read_enclave(&mut self, vaddr: u64, buf: &mut [u8]) {
        self.enclave_access(vaddr, AccessKind::Read, true, buf);
    }

    /// Writes enclave-linear memory (trusted mode only).
    pub fn write_enclave(&mut self, vaddr: u64, buf: &[u8]) {
        let mut data = buf;
        self.enclave_access_mut(vaddr, buf.len(), AccessKind::Write, true, &mut data);
    }

    /// Reads enclave memory without LLC/TLB charges (still faults if
    /// the page is non-resident — hardware residency is not optional).
    pub fn read_enclave_raw(&mut self, vaddr: u64, buf: &mut [u8]) {
        self.enclave_access(vaddr, AccessKind::Read, false, buf);
    }

    /// Raw counterpart of [`Self::write_enclave`].
    pub fn write_enclave_raw(&mut self, vaddr: u64, buf: &[u8]) {
        let mut data = buf;
        self.enclave_access_mut(vaddr, buf.len(), AccessKind::Write, false, &mut data);
    }

    /// Fills enclave memory with `byte`.
    pub fn fill_enclave(&mut self, vaddr: u64, len: usize, byte: u8) {
        // Reuse the write path with a bounded stack buffer per page.
        let chunk = [byte; PAGE_SIZE];
        let mut done = 0usize;
        while done < len {
            let n = (len - done).min(PAGE_SIZE);
            self.write_enclave(vaddr + done as u64, &chunk[..n]);
            done += n;
        }
    }

    /// Shared read path: splits the span into pages and copies from the
    /// resident frames.
    fn enclave_access(&mut self, vaddr: u64, kind: AccessKind, charged: bool, buf: &mut [u8]) {
        assert_eq!(kind, AccessKind::Read);
        assert!(self.in_enclave, "enclave memory access from untrusted mode");
        let e = Arc::clone(self.enclave.as_ref().expect("enclave bound"));
        let len = buf.len();
        let mut off = 0usize;
        while off < len {
            let addr = vaddr + off as u64;
            let page = addr / PAGE_SIZE as u64;
            let in_page = (addr % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(len - off);
            let dst = &mut buf[off..off + n];
            self.page_read(&e, page, in_page, kind, charged, dst);
            off += n;
        }
    }

    /// Shared write path (separate because the frame lock is exclusive).
    fn enclave_access_mut(
        &mut self,
        vaddr: u64,
        len: usize,
        kind: AccessKind,
        charged: bool,
        data: &mut &[u8],
    ) {
        assert_eq!(kind, AccessKind::Write);
        assert!(self.in_enclave, "enclave memory access from untrusted mode");
        let e = Arc::clone(self.enclave.as_ref().expect("enclave bound"));
        let mut off = 0usize;
        while off < len {
            let addr = vaddr + off as u64;
            let page = addr / PAGE_SIZE as u64;
            let in_page = (addr % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - in_page).min(len - off);
            let src = &data[off..off + n];
            self.page_write(&e, page, in_page, n, charged, src);
            off += n;
        }
    }

    fn translate_and_charge(
        &mut self,
        e: &Arc<Enclave>,
        page: u64,
        in_page: usize,
        n: usize,
        kind: AccessKind,
        charged: bool,
    ) -> u32 {
        loop {
            self.poll_interrupt();
            if charged {
                let hit = self.core.tlb.lock().access(e.asid(), page);
                let c = &self.machine.cfg.costs;
                if hit {
                    Stats::bump(&self.machine.stats.tlb_hits);
                } else {
                    Stats::bump(&self.machine.stats.tlb_misses);
                    self.core.clock.advance(c.tlb_walk + c.epcm_check);
                }
            }
            match e.pte(page) {
                Some(frame) => {
                    let paddr = EpcPool::paddr(frame) + in_page as u64;
                    if charged {
                        let node = self.machine.core_node(self.core.id);
                        let cycles = self.machine.charge_mem(
                            self.cache_ctx,
                            &mut self.seq_line,
                            paddr,
                            n,
                            kind,
                            node,
                        );
                        self.core.clock.advance(cycles);
                    } else {
                        // Raw runtime move: no cycle charge, but the
                        // bytes stream through the LLC.
                        self.machine.touch_mem(self.cache_ctx, paddr, n, kind);
                    }
                    return frame;
                }
                None => {
                    self.machine
                        .driver
                        .handle_fault(&self.machine, e, page, &self.core);
                }
            }
        }
    }

    fn page_read(
        &mut self,
        e: &Arc<Enclave>,
        page: u64,
        in_page: usize,
        kind: AccessKind,
        charged: bool,
        dst: &mut [u8],
    ) {
        loop {
            let frame = self.translate_and_charge(e, page, in_page, dst.len(), kind, charged);
            let fr = self.machine.epc.frame(frame);
            let g = fr.inner.read();
            if g.owner != Some((e.id, page)) {
                continue; // Evicted between translate and lock; retry.
            }
            dst.copy_from_slice(&g.data[in_page..in_page + dst.len()]);
            return;
        }
    }

    fn page_write(
        &mut self,
        e: &Arc<Enclave>,
        page: u64,
        in_page: usize,
        n: usize,
        charged: bool,
        src: &[u8],
    ) {
        loop {
            let frame = self.translate_and_charge(e, page, in_page, n, AccessKind::Write, charged);
            let fr = self.machine.epc.frame(frame);
            let mut g = fr.inner.write();
            if g.owner != Some((e.id, page)) {
                continue;
            }
            g.data[in_page..in_page + n].copy_from_slice(src);
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    fn setup() -> (Arc<SgxMachine>, Arc<Enclave>) {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 16 * PAGE_SIZE);
        (m, e)
    }

    #[test]
    fn enter_exit_charges_and_flushes() {
        let (m, e) = setup();
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        assert!(t.in_enclave());
        let after_enter = t.now();
        assert_eq!(after_enter, m.cfg.costs.eenter);
        t.exit();
        assert_eq!(t.now(), m.cfg.costs.eenter + m.cfg.costs.eexit);
        assert_eq!(m.stats.snapshot().tlb_flushes, 1);
    }

    #[test]
    fn enclave_memory_roundtrip() {
        let (m, e) = setup();
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let addr = e.alloc(100);
        t.write_enclave(addr, b"trusted bytes");
        let mut buf = [0u8; 13];
        t.read_enclave(addr, &mut buf);
        assert_eq!(&buf, b"trusted bytes");
        assert!(m.stats.snapshot().hw_faults >= 1, "first touch faults");
        t.exit();
    }

    #[test]
    #[should_panic(expected = "untrusted mode")]
    fn enclave_access_from_outside_denied() {
        let (m, e) = setup();
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        let mut buf = [0u8; 4];
        t.read_enclave(e.alloc(16), &mut buf);
    }

    #[test]
    fn untrusted_memory_accessible_from_enclave() {
        let (m, e) = setup();
        let addr = m.alloc_untrusted(64);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        t.write_untrusted(addr, b"shared");
        t.exit();
        let mut check = ThreadCtx::untrusted(&m, 1);
        let mut buf = [0u8; 6];
        check.read_untrusted(addr, &mut buf);
        assert_eq!(&buf, b"shared");
    }

    #[test]
    fn ocall_roundtrip_cost() {
        let (m, e) = setup();
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let before = t.now();
        let v = t.ocall(|_host| 41 + 1);
        assert_eq!(v, 42);
        let direct = t.now() - before;
        assert_eq!(direct, m.cfg.costs.ocall_total());
        assert_eq!(m.stats.snapshot().ocalls, 1);
        t.exit();
    }

    #[test]
    fn paging_beyond_epc_works() {
        // Enclave linear space (16 pages) exceeding a tiny EPC slice
        // still reads back correctly after evictions.
        let m = SgxMachine::new(MachineConfig {
            epc_bytes: 8 * PAGE_SIZE,
            ..MachineConfig::tiny()
        });
        let e = m.driver.create_enclave(&m, 32 * PAGE_SIZE);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        for page in 0..32u64 {
            let val = [page as u8 + 1; 64];
            t.write_enclave(page * PAGE_SIZE as u64, &val);
        }
        for page in 0..32u64 {
            let mut buf = [0u8; 64];
            t.read_enclave(page * PAGE_SIZE as u64, &mut buf);
            assert_eq!(buf, [page as u8 + 1; 64], "page {page} corrupted");
        }
        t.exit();
        let s = m.stats.snapshot();
        assert!(s.hw_evictions > 0, "evictions must have happened");
        assert!(s.hw_loads > 0, "sealed pages must have been reloaded");
    }

    #[test]
    fn fault_costs_match_paper_scale() {
        let m = SgxMachine::new(MachineConfig {
            epc_bytes: 8 * PAGE_SIZE,
            ..MachineConfig::tiny()
        });
        let e = m.driver.create_enclave(&m, 64 * PAGE_SIZE);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        // Touch all pages once (zero-fill faults), then sweep again to
        // force seal/unseal faults.
        for page in 0..64u64 {
            t.write_enclave(page * PAGE_SIZE as u64, &[1u8; 8]);
        }
        let s0 = m.stats.snapshot();
        let c0 = t.now();
        for page in 0..64u64 {
            let mut b = [0u8; 8];
            t.read_enclave(page * PAGE_SIZE as u64, &mut b);
        }
        let s1 = m.stats.snapshot();
        let faults = (s1 - s0).hw_faults;
        assert!(faults >= 56, "sweep should fault on most pages: {faults}");
        let per_fault = (t.now() - c0) / faults;
        // Paper §2.3: ~40k cycles per observed fault (we include
        // eviction, load, exit and the emergent TLB/LLC costs).
        assert!(
            (25_000..=55_000).contains(&per_fault),
            "per-fault cost {per_fault} out of range"
        );
        t.exit();
    }

    #[test]
    fn fill_enclave_sets_every_byte() {
        let (m, e) = setup();
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let addr = e.alloc(3 * PAGE_SIZE);
        t.fill_enclave(addr, 3 * PAGE_SIZE, 0xcd);
        let mut buf = vec![0u8; 3 * PAGE_SIZE];
        t.read_enclave(addr, &mut buf);
        assert!(buf.iter().all(|&b| b == 0xcd));
        let _ = m;
        t.exit();
    }

    #[test]
    fn ecall_runs_trusted_and_returns_outside() {
        let (_m, e) = setup();
        let mut t = ThreadCtx::for_enclave(&_m, &e, 0);
        assert!(!t.in_enclave());
        let inside = t.ecall(|c| c.in_enclave());
        assert!(inside);
        assert!(!t.in_enclave());
    }

    #[test]
    #[should_panic(expected = "nested EENTER")]
    fn nested_enter_rejected() {
        let (m, e) = setup();
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        t.enter();
    }

    #[test]
    #[should_panic(expected = "EEXIT while outside")]
    fn exit_outside_rejected() {
        let (m, e) = setup();
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.exit();
    }

    #[test]
    fn raw_accesses_charge_nothing_but_move_data() {
        let (m, e) = setup();
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let addr = e.alloc(64);
        t.write_enclave(addr, b"warm"); // fault + charges
        let before = t.now();
        let mut b = [0u8; 4];
        t.read_enclave_raw(addr, &mut b);
        t.write_enclave_raw(addr, b"cold");
        t.read_enclave_raw(addr, &mut b);
        assert_eq!(&b, b"cold");
        assert_eq!(t.now(), before, "raw ops must not charge cycles");
        t.exit();
    }

    #[test]
    fn tampered_swap_is_detected() {
        let m = SgxMachine::new(MachineConfig {
            epc_bytes: 4 * PAGE_SIZE,
            ..MachineConfig::tiny()
        });
        let e = m.driver.create_enclave(&m, 16 * PAGE_SIZE);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        for page in 0..16u64 {
            t.write_enclave(page * PAGE_SIZE as u64, &[7u8; 16]);
        }
        // Corrupt whatever is in swap, then touch everything: the load
        // of a tampered page must panic with an authentication failure.
        {
            let mut swap = e.swap.lock();
            assert!(!swap.is_empty(), "something must be swapped");
            for sealed in swap.values_mut() {
                sealed.ct[0] ^= 0xff;
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for page in 0..16u64 {
                let mut b = [0u8; 1];
                t.read_enclave(page * PAGE_SIZE as u64, &mut b);
            }
        }));
        assert!(result.is_err(), "tampering must be detected");
    }
}
