//! The SGX kernel driver: EPC frame allocation, secure paging (EWB /
//! ELDU), TLB shootdowns, and the Eleos extension for coordinated
//! multi-enclave memory allocation (§3.3, §4.1).
//!
//! The driver is deliberately *outside* the trust boundary: it moves
//! sealed bytes and updates page tables, but the sealing itself uses the
//! per-enclave key the way the `EWB`/`ELDU` instructions would — the
//! driver never sees plaintext it could tamper with undetected. A
//! corrupted swap entry fails authentication at load time.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use eleos_crypto::Sealer;
use eleos_sim::costs::PAGE_SIZE;
use eleos_sim::stats::Stats;

use crate::enclave::{Enclave, SealedPage};
use crate::epc::{EpcPool, FrameIdx};
use crate::machine::{Core, MachineConfig, SgxMachine};

struct DriverInner {
    free: Vec<FrameIdx>,
    /// FIFO of resident `(page, frame, faulting core)` triples per
    /// enclave — the driver's eviction order, remembering which core
    /// installed each page (its TLB is the shootdown target).
    resident: HashMap<u32, VecDeque<(u64, FrameIdx, usize)>>,
    enclaves: HashMap<u32, Arc<Enclave>>,
    fault_count: u64,
}

/// The driver.
pub struct SgxDriver {
    inner: Mutex<DriverInner>,
    swapper_period: u64,
    free_watermark: usize,
    total_frames: usize,
}

impl SgxDriver {
    pub(crate) fn new(cfg: &MachineConfig) -> Self {
        let total_frames = cfg.epc_bytes / PAGE_SIZE;
        Self {
            inner: Mutex::new(DriverInner {
                free: (0..total_frames as FrameIdx).rev().collect(),
                resident: HashMap::new(),
                enclaves: HashMap::new(),
                fault_count: 0,
            }),
            swapper_period: cfg.swapper_period,
            free_watermark: cfg.free_watermark.min(total_frames / 2),
            total_frames,
        }
    }

    /// Creates and registers an enclave with `linear_bytes` of linear
    /// address space.
    pub fn create_enclave(&self, m: &SgxMachine, linear_bytes: usize) -> Arc<Enclave> {
        let id = m.alloc_enclave_id();
        let e = Arc::new(Enclave::new(id, linear_bytes));
        let mut inner = self.inner.lock();
        inner.enclaves.insert(id, Arc::clone(&e));
        inner.resident.insert(id, VecDeque::new());
        e
    }

    /// Tears an enclave down, releasing all its frames.
    pub fn destroy_enclave(&self, m: &SgxMachine, e: &Arc<Enclave>) {
        let mut inner = self.inner.lock();
        if inner.enclaves.remove(&e.id).is_none() {
            return;
        }
        if let Some(fifo) = inner.resident.remove(&e.id) {
            for (page, frame, _) in fifo {
                let fr = m.epc.frame(frame);
                let mut g = fr.inner.write();
                if g.owner == Some((e.id, page)) {
                    g.owner = None;
                    g.data.fill(0);
                    e.set_pte(page, None);
                    inner.free.push(frame);
                }
            }
        }
        e.swap.lock().clear();
    }

    /// Number of registered enclaves.
    #[must_use]
    pub fn active_enclaves(&self) -> usize {
        self.inner.lock().enclaves.len()
    }

    /// The Eleos `ioctl` (§4.1): the PRM share currently available to
    /// one enclave, in frames. Today's driver splits the PRM evenly, so
    /// this returns `total / active`.
    #[must_use]
    pub fn available_epc_for(&self, _enclave_id: u32) -> usize {
        let n = self.active_enclaves().max(1);
        self.total_frames / n
    }

    /// Total EPC frames under management.
    #[must_use]
    pub fn total_frames(&self) -> usize {
        self.total_frames
    }

    /// Currently free frames (diagnostics).
    #[must_use]
    pub fn free_frames(&self) -> usize {
        self.inner.lock().free.len()
    }

    /// EPC frames currently resident for `enclave_id` (zero once the
    /// enclave is destroyed) — what the fleet's fair-share pressure
    /// gauge and the contention proptests read.
    #[must_use]
    pub fn resident_frames(&self, enclave_id: u32) -> usize {
        self.inner
            .lock()
            .resident
            .get(&enclave_id)
            .map_or(0, VecDeque::len)
    }

    /// Handles a hardware EPC fault: `enclave` touched linear `page`
    /// and found no resident frame. Charges all direct costs to
    /// `core`'s clock and flushes its TLB (the fault exits the
    /// enclave). Returns once the page is resident.
    pub fn handle_fault(&self, m: &SgxMachine, enclave: &Arc<Enclave>, page: u64, core: &Core) {
        let costs = &m.cfg.costs;
        let mut inner = self.inner.lock();
        if enclave.pte(page).is_some() {
            return; // Another thread faulted it in first.
        }
        Stats::bump(&m.stats.hw_faults);
        m.trace.record(
            core.clock.now(),
            eleos_sim::trace::Event::HwFault {
                core: core.id,
                enclave: enclave.id,
                page,
            },
        );
        inner.fault_count += 1;
        // The fault exits and re-enters the enclave and dispatches into
        // the kernel; the enclave's TLB entries are flushed.
        core.clock
            .advance(costs.exit_roundtrip() + costs.hw_fault_dispatch);
        core.tlb.lock().flush_asid(enclave.asid());
        Stats::bump(&m.stats.tlb_flushes);

        // Periodic housekeeping: the driver's swapper refills the free
        // pool. Its cycles are charged to the faulting core (the model
        // runs it deterministically on the fault path) but its
        // shootdowns behave like the real asynchronous swapper thread:
        // even a single-threaded enclave receives IPIs (Table 2,
        // footnote 3).
        if inner.fault_count.is_multiple_of(self.swapper_period) {
            while inner.free.len() < self.free_watermark {
                if !Self::evict_one(m, &mut inner, core, None) {
                    break;
                }
            }
        }

        // Demand eviction if the pool is empty (the faulting core runs
        // the driver, so it needs no IPI to itself).
        while inner.free.is_empty() {
            if !Self::evict_one(m, &mut inner, core, Some(core.id)) {
                panic!("EPC exhausted and nothing evictable");
            }
        }
        let frame = inner.free.pop().expect("free frame");

        // Install the page: unseal from swap, or supply a zero page.
        let sealed = enclave.swap.lock().remove(&page);
        {
            let fr = m.epc.frame(frame);
            let mut g = fr.inner.write();
            match sealed {
                Some(s) => {
                    let mut buf = s.ct;
                    let aad = Self::page_aad(enclave.id, page);
                    enclave
                        .seal
                        .open(&s.nonce, &aad, buf.as_mut_slice(), &s.tag)
                        .expect("swap page failed authentication: untrusted memory tampered");
                    g.data = buf;
                    core.clock.advance(costs.hw_load_page);
                    Stats::bump(&m.stats.hw_loads);
                    Stats::add(&m.stats.sealed_bytes, PAGE_SIZE as u64);
                }
                None => {
                    g.data.fill(0);
                    core.clock.advance(costs.hw_zero_page);
                }
            }
            g.owner = Some((enclave.id, page));
        }
        enclave.set_pte(page, Some(frame));
        // ELDU streamed the page through the cache: warm the frame's
        // lines so post-fault accesses are not double-charged.
        m.touch_mem(
            eleos_sim::llc::CacheCtx::Other,
            EpcPool::paddr(frame),
            PAGE_SIZE,
            eleos_sim::costs::AccessKind::Write,
        );
        inner
            .resident
            .get_mut(&enclave.id)
            .expect("registered")
            .push_back((page, frame, core.id));
        // Fleet contention telemetry: when siblings are active, record
        // how far this enclave now sits beyond its even PRM split. The
        // fair-share eviction policy pulls the overshoot back, so the
        // peak bounds how unfair the allocator ever got.
        if inner.enclaves.len() > 1 {
            let fair = self.total_frames / inner.enclaves.len();
            let res = inner.resident[&enclave.id].len();
            if res > fair {
                Stats::peak(&m.stats.epc_over_share_peak, (res - fair) as u64);
            }
        }
    }

    /// Evicts one page, preferring the enclave most over its fair
    /// share. `exclude_core` suppresses the shootdown of one core (the
    /// demand-faulting core runs the driver itself and its TLB was
    /// already flushed by the fault); `None` models the asynchronous
    /// swapper, which IPIs even the page's own core. Returns `false`
    /// when nothing is evictable.
    fn evict_one(
        m: &SgxMachine,
        inner: &mut DriverInner,
        requester: &Core,
        exclude_core: Option<usize>,
    ) -> bool {
        let costs = &m.cfg.costs;
        let share = inner.enclaves.len().max(1);
        let fair_share = m.epc.frame_count() / share;
        // Pick the victim enclave: most resident pages above its fair
        // share; ties broken by lowest id for determinism.
        let mut victim_id = None;
        let mut victim_excess = 0isize;
        let mut ids: Vec<u32> = inner.resident.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let res = inner.resident[&id].len() as isize;
            let excess = res - fair_share as isize;
            if res > 0 && (victim_id.is_none() || excess > victim_excess) {
                victim_id = Some(id);
                victim_excess = excess;
            }
        }
        let Some(vid) = victim_id else {
            return false;
        };
        let fifo = inner.resident.get_mut(&vid).expect("victim fifo");
        let Some((page, frame, owner_core)) = fifo.pop_front() else {
            return false;
        };
        let enclave = Arc::clone(inner.enclaves.get(&vid).expect("victim enclave"));

        // Unmap first so no new access can translate to the frame...
        enclave.set_pte(page, None);

        // ...then the ETRACK/IPI flow. Real ETRACK is epoch-based and
        // conservative — the driver cannot inspect remote TLBs — so we
        // shoot down the core that installed the page, which plausibly
        // still caches the translation.
        if Some(owner_core) != exclude_core {
            let core = m.core(owner_core);
            core.tlb.lock().flush_page(enclave.asid(), page);
            core.clock.post_interrupt();
            core.clock.advance(costs.aex_resume);
            Stats::bump(&m.stats.aex);
            requester.clock.advance(costs.ipi_send);
            Stats::bump(&m.stats.ipis);
            m.trace.record(
                requester.clock.now(),
                eleos_sim::trace::Event::Ipi { target: owner_core },
            );
        }

        // EWB: seal the contents out to swap. SGX always writes back,
        // clean or dirty (§3.2.4).
        {
            let fr = m.epc.frame(frame);
            let mut g = fr.inner.write();
            debug_assert_eq!(g.owner, Some((vid, page)));
            let mut ct = Box::new([0u8; PAGE_SIZE]);
            ct.copy_from_slice(g.data.as_slice());
            let nonce = enclave.next_nonce();
            let aad = Self::page_aad(vid, page);
            let tag = enclave.seal.seal(&nonce, &aad, ct.as_mut_slice());
            enclave
                .swap
                .lock()
                .insert(page, SealedPage { ct, nonce, tag });
            g.owner = None;
            g.data.fill(0);
        }
        m.llc
            .lock()
            .invalidate_range(EpcPool::paddr(frame), PAGE_SIZE);
        inner.free.push(frame);
        requester.clock.advance(costs.hw_evict_page);
        Stats::bump(&m.stats.hw_evictions);
        m.trace.record(
            requester.clock.now(),
            eleos_sim::trace::Event::HwEvict { enclave: vid, page },
        );
        Stats::add(&m.stats.sealed_bytes, PAGE_SIZE as u64);
        true
    }

    fn page_aad(enclave_id: u32, page: u64) -> [u8; 12] {
        let mut aad = [0u8; 12];
        aad[..4].copy_from_slice(&enclave_id.to_le_bytes());
        aad[4..].copy_from_slice(&page.to_le_bytes());
        aad
    }
}
