//! The replica fleet: N enclave replicas sharing one machine's EPC,
//! each destined to run its own serving pipeline, with an explicit
//! lifecycle so failover logic cannot serve from a half-restored
//! replica.
//!
//! The lifecycle is a strict state machine (documented in
//! `docs/fleet.md`):
//!
//! ```text
//! cold ──spawn──▶ restoring ──mark_serving──▶ serving
//!                     ▲                          │
//!                     └──respawn── dead ◀──kill──┤
//!                                    ▲           ▼
//!                                    └──kill── draining
//! ```
//!
//! A replica serves traffic only in `Serving`. `kill` routes through
//! `Draining` implicitly (the serving layer drains at a sub-batch
//! fence before calling it) and ends in `Dead`, releasing the
//! enclave's EPC frames and swap through the driver so survivors'
//! fair share grows immediately. `respawn` creates a *fresh* enclave
//! (new id, new sealing identity) in `Restoring`; the caller restores
//! state into it over the cross-enclave channel before promoting it.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::enclave::Enclave;
use crate::machine::SgxMachine;

/// Where a replica is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Slot allocated, no enclave yet.
    Cold,
    /// Enclave exists; state is being provisioned into it.
    Restoring,
    /// In rotation: owns shards and answers requests.
    Serving,
    /// Still answering its reaped requests but taking no new shards.
    Draining,
    /// Enclave destroyed; EPC frames and swap reclaimed.
    Dead,
}

struct Slot {
    enclave: Option<Arc<Enclave>>,
    state: ReplicaState,
}

/// A fixed-width set of enclave replica slots over one machine.
///
/// The fleet owns lifecycle and enclave identity only; shard
/// ownership, snapshots and the serving pipelines live a layer up
/// (the apps crate), which keeps this type reusable by any server.
pub struct Fleet {
    machine: Arc<SgxMachine>,
    linear_bytes: usize,
    slots: Mutex<Vec<Slot>>,
}

impl Fleet {
    /// Spawns `n` replicas, each a fresh enclave with `linear_bytes`
    /// of linear space, all starting in `Restoring` (a new fleet has
    /// no state to provision, so callers typically `mark_serving`
    /// right after seeding).
    #[must_use]
    pub fn new(machine: &Arc<SgxMachine>, n: usize, linear_bytes: usize) -> Self {
        assert!(n > 0, "a fleet needs at least one replica");
        let slots = (0..n)
            .map(|_| Slot {
                enclave: Some(machine.driver.create_enclave(machine, linear_bytes)),
                state: ReplicaState::Restoring,
            })
            .collect();
        Self {
            machine: Arc::clone(machine),
            linear_bytes,
            slots: Mutex::new(slots),
        }
    }

    /// Number of replica slots (fixed at construction).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True when the fleet has no slots (never, by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The replica's current lifecycle state.
    #[must_use]
    pub fn state(&self, idx: usize) -> ReplicaState {
        self.slots.lock()[idx].state
    }

    /// The replica's enclave.
    ///
    /// # Panics
    /// Panics when the slot is `Cold` or `Dead` — touching a dead
    /// replica's enclave is a lifecycle bug, not a recoverable error.
    #[must_use]
    pub fn enclave(&self, idx: usize) -> Arc<Enclave> {
        let slots = self.slots.lock();
        let slot = &slots[idx];
        assert!(
            !matches!(slot.state, ReplicaState::Cold | ReplicaState::Dead),
            "replica {idx} has no live enclave ({:?})",
            slot.state
        );
        Arc::clone(slot.enclave.as_ref().expect("live slot has an enclave"))
    }

    /// Indices of replicas currently in `Serving`.
    #[must_use]
    pub fn serving(&self) -> Vec<usize> {
        self.slots
            .lock()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == ReplicaState::Serving)
            .map(|(i, _)| i)
            .collect()
    }

    /// Promotes a `Restoring` replica into rotation.
    pub fn mark_serving(&self, idx: usize) {
        let mut slots = self.slots.lock();
        let slot = &mut slots[idx];
        assert_eq!(
            slot.state,
            ReplicaState::Restoring,
            "only a restoring replica can start serving (replica {idx})"
        );
        slot.state = ReplicaState::Serving;
    }

    /// Fences a `Serving` replica out of new work (shards stop being
    /// assigned to it; it still answers what it already reaped).
    pub fn mark_draining(&self, idx: usize) {
        let mut slots = self.slots.lock();
        let slot = &mut slots[idx];
        assert_eq!(
            slot.state,
            ReplicaState::Serving,
            "only a serving replica can drain (replica {idx})"
        );
        slot.state = ReplicaState::Draining;
    }

    /// Destroys the replica's enclave, reclaiming its EPC frames and
    /// swap. Valid from `Serving` (abrupt kill at a fence) or
    /// `Draining` (graceful). The slot ends `Dead` and can be
    /// respawned.
    pub fn kill(&self, idx: usize) {
        let mut slots = self.slots.lock();
        let slot = &mut slots[idx];
        assert!(
            matches!(slot.state, ReplicaState::Serving | ReplicaState::Draining),
            "kill needs a live replica (replica {idx} is {:?})",
            slot.state
        );
        let e = slot.enclave.take().expect("live slot has an enclave");
        self.machine.driver.destroy_enclave(&self.machine, &e);
        slot.state = ReplicaState::Dead;
    }

    /// Replaces a `Dead` (or `Cold`) slot with a fresh enclave in
    /// `Restoring`. The new enclave has a new id and sealing identity:
    /// nothing sealed by its predecessor opens under it, which is why
    /// restore traffic flows as a portable `eleos_core::snapshot`
    /// blob (sealed under a key both ends share) rather than raw swap
    /// pages.
    pub fn respawn(&self, idx: usize) -> Arc<Enclave> {
        let mut slots = self.slots.lock();
        let slot = &mut slots[idx];
        assert!(
            matches!(slot.state, ReplicaState::Dead | ReplicaState::Cold),
            "respawn needs a dead slot (replica {idx} is {:?})",
            slot.state
        );
        let e = self
            .machine
            .driver
            .create_enclave(&self.machine, self.linear_bytes);
        slot.enclave = Some(Arc::clone(&e));
        slot.state = ReplicaState::Restoring;
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    fn fleet(n: usize) -> (Arc<SgxMachine>, Fleet) {
        let m = SgxMachine::new(MachineConfig::tiny());
        let f = Fleet::new(&m, n, 1 << 20);
        (m, f)
    }

    #[test]
    fn lifecycle_happy_path() {
        let (m, f) = fleet(2);
        assert_eq!(f.len(), 2);
        assert_eq!(m.driver.active_enclaves(), 2);
        for i in 0..2 {
            assert_eq!(f.state(i), ReplicaState::Restoring);
            f.mark_serving(i);
        }
        assert_eq!(f.serving(), vec![0, 1]);
        f.mark_draining(0);
        assert_eq!(f.serving(), vec![1]);
        f.kill(0);
        assert_eq!(f.state(0), ReplicaState::Dead);
        assert_eq!(m.driver.active_enclaves(), 1);
        let e = f.respawn(0);
        assert_eq!(f.state(0), ReplicaState::Restoring);
        assert_eq!(m.driver.active_enclaves(), 2);
        // The respawned enclave is a new identity.
        assert_ne!(e.id, f.enclave(1).id);
    }

    #[test]
    fn kill_reclaims_epc_frames() {
        let (m, f) = fleet(2);
        f.mark_serving(0);
        f.mark_serving(1);
        let e = f.enclave(0);
        let mut t = crate::thread::ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        let buf = e.alloc(8 * eleos_sim::costs::PAGE_SIZE);
        t.write_enclave(buf, &[7u8; 8 * eleos_sim::costs::PAGE_SIZE]);
        t.exit();
        assert!(m.driver.resident_frames(e.id) >= 8);
        let free_before = m.driver.free_frames();
        f.kill(0);
        assert_eq!(m.driver.resident_frames(e.id), 0);
        assert!(m.driver.free_frames() >= free_before + 8);
    }

    #[test]
    #[should_panic(expected = "only a restoring replica can start serving")]
    fn double_promotion_fails_fast() {
        let (_m, f) = fleet(1);
        f.mark_serving(0);
        f.mark_serving(0);
    }

    #[test]
    #[should_panic(expected = "kill needs a live replica")]
    fn double_kill_fails_fast() {
        let (_m, f) = fleet(1);
        f.mark_serving(0);
        f.kill(0);
        f.kill(0);
    }

    #[test]
    #[should_panic(expected = "has no live enclave")]
    fn dead_enclave_access_fails_fast() {
        let (_m, f) = fleet(1);
        f.mark_serving(0);
        f.kill(0);
        let _ = f.enclave(0);
    }
}
