//! SGX enclave substrate for the Eleos reproduction.
//!
//! This crate composes the `eleos-sim` machine model into a functional
//! SGX system: a shared [`machine::SgxMachine`] with an EPC frame pool
//! ([`epc`]), hardware-paged enclaves ([`enclave`]), the kernel driver
//! with secure paging and TLB shootdowns ([`driver`]), per-thread
//! execution contexts with EENTER/EEXIT/OCALL semantics ([`thread`])
//! and a host OS with sockets and syscalls ([`host`]).
//!
//! Everything the paper's §2 measures is reproducible on top of this
//! substrate: exit costs, EPC-paging costs (with *real* AES-GCM sealing
//! of evicted pages, so tampering with swap is genuinely detected), LLC
//! pollution by syscalls, and the TLB flushes that penalize
//! pointer-chasing enclave workloads.
//!
//! # Examples
//!
//! ```
//! use eleos_enclave::machine::{MachineConfig, SgxMachine};
//! use eleos_enclave::thread::ThreadCtx;
//!
//! let machine = SgxMachine::new(MachineConfig::tiny());
//! let enclave = machine.driver.create_enclave(&machine, 64 * 4096);
//! let mut thread = ThreadCtx::for_enclave(&machine, &enclave, 0);
//!
//! thread.enter();
//! let secret = enclave.alloc(64);
//! thread.write_enclave(secret, b"in-enclave state");
//! let mut buf = [0u8; 16];
//! thread.read_enclave(secret, &mut buf);
//! assert_eq!(&buf, b"in-enclave state");
//! thread.exit();
//! ```

pub mod driver;
pub mod enclave;
pub mod epc;
pub mod fleet;
pub mod fs;
pub mod host;
pub mod machine;
pub mod thread;

pub use driver::SgxDriver;
pub use enclave::Enclave;
pub use epc::EpcPool;
pub use fleet::{Fleet, ReplicaState};
pub use fs::{FileFd, FsError, HostFs};
pub use host::{Fd, HostOs};
pub use machine::{Core, MachineConfig, SgxMachine};
pub use thread::ThreadCtx;
