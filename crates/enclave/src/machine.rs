//! The simulated SGX machine: cores, LLC, untrusted RAM, EPC, driver
//! and host OS, composed into one shared [`SgxMachine`].

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use eleos_sim::alloc::BuddyAllocator;
use eleos_sim::clock::CoreClock;
use eleos_sim::costs::{AccessKind, CostModel, Domain, LINE, PAGE_SIZE};
use eleos_sim::llc::{CacheCtx, Llc, LlcConfig};
use eleos_sim::mem::PagedMem;
use eleos_sim::stats::Stats;
use eleos_sim::tlb::Tlb;

use crate::driver::SgxDriver;
use crate::epc::EpcPool;
use crate::host::HostOs;

/// Configuration of a simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// EPC bytes available to applications. The paper's platform has
    /// 128 MiB PRM of which "only about 90 MiB is available" (§2.3);
    /// we default to 93 MiB like the paper's §6 setup notes.
    pub epc_bytes: usize,
    /// Untrusted RAM bytes (lazily materialized).
    pub untrusted_bytes: usize,
    /// Number of simulated cores.
    pub cores: usize,
    /// LLC geometry.
    pub llc: LlcConfig,
    /// TLB entries per core.
    pub tlb_entries: usize,
    /// Cycle cost model.
    pub costs: CostModel,
    /// Driver housekeeping period: every this many hardware faults the
    /// driver's swapper refills the free-frame pool (the paper notes an
    /// asynchronous swapper thread in the driver causes IPIs even for
    /// single-threaded enclaves — Table 2, footnote 3).
    pub swapper_period: u64,
    /// Free-frame low watermark the swapper maintains.
    pub free_watermark: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            epc_bytes: 93 << 20,
            untrusted_bytes: 4 << 30,
            cores: 8,
            llc: LlcConfig::default(),
            tlb_entries: eleos_sim::tlb::DEFAULT_TLB_ENTRIES,
            costs: CostModel::default(),
            swapper_period: 16,
            free_watermark: 32,
        }
    }
}

impl MachineConfig {
    /// A small configuration for unit tests: 64 pages of EPC, tiny LLC.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            epc_bytes: 64 * PAGE_SIZE,
            untrusted_bytes: 32 << 20,
            cores: 4,
            llc: LlcConfig {
                size: 64 << 10,
                ways: 4,
            },
            tlb_entries: 64,
            costs: CostModel::default(),
            swapper_period: 8,
            free_watermark: 4,
        }
    }

    /// A mid-size configuration for integration tests and scaled-down
    /// experiments: `epc_mb` MiB of EPC, proportionate watermark.
    #[must_use]
    pub fn scaled(epc_mb: usize) -> Self {
        Self {
            epc_bytes: epc_mb << 20,
            ..Self::default()
        }
    }
}

/// One simulated core: a cycle clock plus a TLB.
///
/// The TLB sits behind a mutex (rather than being thread-local) so the
/// driver can perform a faithful `ETRACK`: query *which cores actually
/// hold a translation* and IPI exactly those (§3.2.3).
pub struct Core {
    /// Core index.
    pub id: usize,
    /// The core's cycle counter / interrupt line.
    pub clock: Arc<CoreClock>,
    /// The core's TLB.
    pub tlb: Mutex<Tlb>,
}

/// The shared machine.
pub struct SgxMachine {
    /// Configuration the machine was built with.
    pub cfg: MachineConfig,
    /// Machine-wide event counters.
    pub stats: Stats,
    /// Optional event trace (disabled by default).
    pub trace: eleos_sim::trace::Trace,
    /// Shared last-level cache.
    pub llc: Mutex<Llc>,
    /// Untrusted RAM contents.
    pub untrusted: PagedMem,
    untrusted_heap: Mutex<BuddyAllocator>,
    /// EPC frames.
    pub epc: EpcPool,
    /// The SGX driver.
    pub driver: SgxDriver,
    /// The host operating system (sockets).
    pub host: HostOs,
    /// The host filesystem.
    pub fs: crate::fs::HostFs,
    cores: Vec<Arc<Core>>,
    next_enclave_id: AtomicU32,
}

impl SgxMachine {
    /// Builds a machine.
    #[must_use]
    pub fn new(cfg: MachineConfig) -> Arc<Self> {
        let untrusted_cap = (cfg.untrusted_bytes as u64).next_power_of_two();
        let cores = (0..cfg.cores)
            .map(|id| {
                Arc::new(Core {
                    id,
                    clock: CoreClock::new(),
                    tlb: Mutex::new(Tlb::new(cfg.tlb_entries)),
                })
            })
            .collect();
        Arc::new(Self {
            stats: Stats::default(),
            trace: eleos_sim::trace::Trace::default(),
            llc: Mutex::new(Llc::new(&cfg.llc)),
            untrusted: PagedMem::new(untrusted_cap as usize),
            untrusted_heap: Mutex::new(BuddyAllocator::new(untrusted_cap, 16)),
            epc: EpcPool::new(cfg.epc_bytes / PAGE_SIZE),
            driver: SgxDriver::new(&cfg),
            host: HostOs::new(),
            fs: crate::fs::HostFs::new(),
            cores,
            next_enclave_id: AtomicU32::new(1),
            cfg,
        })
    }

    /// A machine with the default (paper §6) configuration.
    #[must_use]
    pub fn new_default() -> Arc<Self> {
        Self::new(MachineConfig::default())
    }

    /// Returns core `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn core(&self, id: usize) -> Arc<Core> {
        Arc::clone(&self.cores[id])
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Allocates `len` bytes of untrusted memory, returning its address.
    pub fn alloc_untrusted(&self, len: usize) -> u64 {
        self.untrusted_heap
            .lock()
            .alloc(len)
            .expect("untrusted memory exhausted")
    }

    /// Frees an untrusted allocation.
    pub fn free_untrusted(&self, addr: u64) {
        self.untrusted_heap
            .lock()
            .free(addr)
            .expect("bad untrusted free");
    }

    /// Allocates a fresh enclave id.
    pub(crate) fn alloc_enclave_id(&self) -> u32 {
        self.next_enclave_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Applies the Eleos CAT partition (75% enclave / 25% RPC ways).
    pub fn enable_cat(&self) {
        self.llc.lock().partition_eleos();
    }

    /// Removes LLC partitioning.
    pub fn disable_cat(&self) {
        self.llc.lock().partition_none();
    }

    /// Charges the memory-hierarchy cost of touching
    /// `[paddr, paddr+len)` with access `kind` from cache context
    /// `cctx`, updating the caller's sequential-stream state `seq_line`.
    /// Returns the cycle cost (the caller advances its own clock).
    pub fn charge_mem(
        &self,
        cctx: CacheCtx,
        seq_line: &mut u64,
        paddr: u64,
        len: usize,
        kind: AccessKind,
    ) -> u64 {
        if len == 0 {
            return 0;
        }
        let c = &self.cfg.costs;
        let first = paddr / LINE as u64;
        let last = (paddr + len as u64 - 1) / LINE as u64;
        let mut cycles = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut misses_epc = 0u64;
        let mut writebacks = 0u64;
        {
            let mut llc = self.llc.lock();
            for line in first..=last {
                cycles += c.l12_access;
                let out = llc.access_line(cctx, line * LINE as u64, kind);
                if out.hit {
                    hits += 1;
                    cycles += c.llc_hit;
                } else {
                    let sequential = line == seq_line.wrapping_add(1) || line == *seq_line;
                    let mut miss = c.miss_cost(out.domain, kind, sequential);
                    if misses > 0 {
                        // Later misses of the same bulk span overlap
                        // (memory-level parallelism).
                        miss = (miss as f64 * c.mlp_factor) as u64;
                    }
                    misses += 1;
                    cycles += miss;
                    if out.domain == Domain::Epc {
                        misses_epc += 1;
                    }
                    if let Some(wb) = out.writeback {
                        writebacks += 1;
                        // Write-back of a dirty line: DRAM write, with
                        // the MEE encryption premium for EPC lines.
                        cycles += c.miss_cost(wb, AccessKind::Write, true) / 2;
                    }
                    *seq_line = line;
                }
            }
        }
        Stats::add(&self.stats.llc_hits, hits);
        Stats::add(&self.stats.llc_misses, misses);
        Stats::add(&self.stats.llc_misses_epc, misses_epc);
        Stats::add(&self.stats.llc_writebacks, writebacks);
        cycles
    }

    /// Streams `[paddr, paddr+len)` through the LLC *without charging
    /// cycles*: used for data movement whose latency is already folded
    /// into a modelled constant (EWB/ELDU work, AES-NI sealing). The
    /// movement still warms — and pollutes — the cache, which is part
    /// of paging's indirect cost (§2.3).
    pub fn touch_mem(&self, cctx: CacheCtx, paddr: u64, len: usize, kind: AccessKind) {
        if len == 0 {
            return;
        }
        let first = paddr / LINE as u64;
        let last = (paddr + len as u64 - 1) / LINE as u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        {
            let mut llc = self.llc.lock();
            for line in first..=last {
                if llc.access_line(cctx, line * LINE as u64, kind).hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        Stats::add(&self.stats.llc_hits, hits);
        Stats::add(&self.stats.llc_misses, misses);
    }

    /// Resets stats, LLC contents and core clocks between experiment
    /// phases (memory *contents* are preserved).
    pub fn reset_measurement(&self) {
        self.stats.reset();
        self.llc.lock().clear();
        for core in &self.cores {
            core.clock.reset();
            core.tlb.lock().flush();
        }
    }

    /// Resets stats and clocks but keeps LLC/TLB state — used after a
    /// warm-up phase (the paper discards the first ten invocations,
    /// §6).
    pub fn reset_counters(&self) {
        self.stats.reset();
        for core in &self.cores {
            core.clock.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_default_machine() {
        let m = SgxMachine::new(MachineConfig::tiny());
        assert_eq!(m.core_count(), 4);
        assert_eq!(m.epc.frame_count(), 64);
    }

    #[test]
    fn untrusted_alloc_roundtrip() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let a = m.alloc_untrusted(100);
        let b = m.alloc_untrusted(100);
        assert_ne!(a, b);
        m.untrusted.write(a, b"hello");
        let mut buf = [0u8; 5];
        m.untrusted.read(a, &mut buf);
        assert_eq!(&buf, b"hello");
        m.free_untrusted(a);
        m.free_untrusted(b);
    }

    #[test]
    fn charge_mem_counts_hits_and_misses() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut seq = u64::MAX - 1;
        let cold = m.charge_mem(CacheCtx::Other, &mut seq, 0x1000, 128, AccessKind::Read);
        let warm = m.charge_mem(CacheCtx::Other, &mut seq, 0x1000, 128, AccessKind::Read);
        assert!(cold > warm, "cold {cold} vs warm {warm}");
        let s = m.stats.snapshot();
        assert_eq!(s.llc_misses, 2);
        assert_eq!(s.llc_hits, 2);
    }

    #[test]
    fn epc_misses_cost_more() {
        use eleos_sim::costs::EPC_BASE;
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut seq = u64::MAX - 1;
        let u = m.charge_mem(CacheCtx::Other, &mut seq, 0x10_0000, 64, AccessKind::Read);
        m.reset_measurement();
        let mut seq = u64::MAX - 1;
        let e = m.charge_mem(
            CacheCtx::Other,
            &mut seq,
            EPC_BASE + 0x10_0000,
            64,
            AccessKind::Read,
        );
        assert!(e > 4 * u, "EPC miss {e} should dwarf untrusted {u}");
    }

    #[test]
    fn reset_clears_counters_and_clocks() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut seq = 0;
        m.charge_mem(CacheCtx::Other, &mut seq, 0, 64, AccessKind::Write);
        m.core(0).clock.advance(10);
        m.reset_measurement();
        assert_eq!(m.stats.snapshot().llc_misses, 0);
        assert_eq!(m.core(0).clock.now(), 0);
    }
}
