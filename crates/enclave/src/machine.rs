//! The simulated SGX machine: cores, LLC, untrusted RAM, EPC, driver
//! and host OS, composed into one shared [`SgxMachine`].

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use eleos_sim::alloc::BuddyAllocator;
use eleos_sim::clock::CoreClock;
use eleos_sim::costs::{AccessKind, CostModel, Domain, LINE, PAGE_SIZE};
use eleos_sim::llc::{CacheCtx, Llc, LlcConfig};
use eleos_sim::mem::PagedMem;
use eleos_sim::stats::Stats;
use eleos_sim::tlb::Tlb;

use crate::driver::SgxDriver;
use crate::epc::EpcPool;
use crate::host::HostOs;

/// Configuration of a simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// EPC bytes available to applications. The paper's platform has
    /// 128 MiB PRM of which "only about 90 MiB is available" (§2.3);
    /// we default to 93 MiB like the paper's §6 setup notes.
    pub epc_bytes: usize,
    /// Untrusted RAM bytes (lazily materialized).
    pub untrusted_bytes: usize,
    /// Number of simulated cores.
    pub cores: usize,
    /// LLC geometry.
    pub llc: LlcConfig,
    /// TLB entries per core.
    pub tlb_entries: usize,
    /// Cycle cost model.
    pub costs: CostModel,
    /// Driver housekeeping period: every this many hardware faults the
    /// driver's swapper refills the free-frame pool (the paper notes an
    /// asynchronous swapper thread in the driver causes IPIs even for
    /// single-threaded enclaves — Table 2, footnote 3).
    pub swapper_period: u64,
    /// Free-frame low watermark the swapper maintains.
    pub free_watermark: usize,
    /// NUMA nodes the cores and untrusted DRAM are split across.
    /// Default 1 (UMA — no placement effects, the paper's platform).
    /// With more nodes, cores split contiguously across nodes, memory
    /// ranges are bound via [`SgxMachine::bind_numa`], and each LLC
    /// miss to a remote node's range pays `CostModel::numa_remote`.
    pub numa_nodes: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            epc_bytes: 93 << 20,
            untrusted_bytes: 4 << 30,
            cores: 8,
            llc: LlcConfig::default(),
            tlb_entries: eleos_sim::tlb::DEFAULT_TLB_ENTRIES,
            costs: CostModel::default(),
            swapper_period: 16,
            free_watermark: 32,
            numa_nodes: 1,
        }
    }
}

impl MachineConfig {
    /// A small configuration for unit tests: 64 pages of EPC, tiny LLC.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            epc_bytes: 64 * PAGE_SIZE,
            untrusted_bytes: 32 << 20,
            cores: 4,
            llc: LlcConfig {
                size: 64 << 10,
                ways: 4,
            },
            tlb_entries: 64,
            costs: CostModel::default(),
            swapper_period: 8,
            free_watermark: 4,
            numa_nodes: 1,
        }
    }

    /// A mid-size configuration for integration tests and scaled-down
    /// experiments: `epc_mb` MiB of EPC, proportionate watermark.
    #[must_use]
    pub fn scaled(epc_mb: usize) -> Self {
        Self {
            epc_bytes: epc_mb << 20,
            ..Self::default()
        }
    }
}

/// One simulated core: a cycle clock plus a TLB.
///
/// The TLB sits behind a mutex (rather than being thread-local) so the
/// driver can perform a faithful `ETRACK`: query *which cores actually
/// hold a translation* and IPI exactly those (§3.2.3).
pub struct Core {
    /// Core index.
    pub id: usize,
    /// The core's cycle counter / interrupt line.
    pub clock: Arc<CoreClock>,
    /// The core's TLB.
    pub tlb: Mutex<Tlb>,
}

/// The shared machine.
pub struct SgxMachine {
    /// Configuration the machine was built with.
    pub cfg: MachineConfig,
    /// Machine-wide event counters.
    pub stats: Stats,
    /// Optional event trace (disabled by default).
    pub trace: eleos_sim::trace::Trace,
    /// Shared last-level cache.
    pub llc: Mutex<Llc>,
    /// Untrusted RAM contents.
    pub untrusted: PagedMem,
    untrusted_heap: Mutex<BuddyAllocator>,
    /// EPC frames.
    pub epc: EpcPool,
    /// The SGX driver.
    pub driver: SgxDriver,
    /// The host operating system (sockets).
    pub host: HostOs,
    /// The host filesystem.
    pub fs: crate::fs::HostFs,
    cores: Vec<Arc<Core>>,
    next_enclave_id: AtomicU32,
    /// Untrusted ranges bound to a NUMA node (start, end, node);
    /// unbound ranges live on node 0. Later bindings win.
    numa_ranges: Mutex<Vec<(u64, u64, usize)>>,
    /// Socket fds registered as belonging to a serving shard; RPC
    /// syscall handlers run those fds' traffic in the shard's own LLC
    /// class ([`CacheCtx::Shard`]).
    shard_classes: Mutex<std::collections::HashMap<u32, u8>>,
}

impl SgxMachine {
    /// Builds a machine.
    #[must_use]
    pub fn new(cfg: MachineConfig) -> Arc<Self> {
        assert!(
            cfg.numa_nodes >= 1 && cfg.numa_nodes <= cfg.cores,
            "numa_nodes must be in 1..=cores"
        );
        let untrusted_cap = (cfg.untrusted_bytes as u64).next_power_of_two();
        let cores = (0..cfg.cores)
            .map(|id| {
                Arc::new(Core {
                    id,
                    clock: CoreClock::new(),
                    tlb: Mutex::new(Tlb::new(cfg.tlb_entries)),
                })
            })
            .collect();
        Arc::new(Self {
            stats: Stats::default(),
            trace: eleos_sim::trace::Trace::default(),
            llc: Mutex::new(Llc::new(&cfg.llc)),
            untrusted: PagedMem::new(untrusted_cap as usize),
            untrusted_heap: Mutex::new(BuddyAllocator::new(untrusted_cap, 16)),
            epc: EpcPool::new(cfg.epc_bytes / PAGE_SIZE),
            driver: SgxDriver::new(&cfg),
            host: HostOs::new(),
            fs: crate::fs::HostFs::new(),
            cores,
            next_enclave_id: AtomicU32::new(1),
            numa_ranges: Mutex::new(Vec::new()),
            shard_classes: Mutex::new(std::collections::HashMap::new()),
            cfg,
        })
    }

    /// A machine with the default (paper §6) configuration.
    #[must_use]
    pub fn new_default() -> Arc<Self> {
        Self::new(MachineConfig::default())
    }

    /// Returns core `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn core(&self, id: usize) -> Arc<Core> {
        Arc::clone(&self.cores[id])
    }

    /// Number of cores.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Allocates `len` bytes of untrusted memory, returning its address.
    pub fn alloc_untrusted(&self, len: usize) -> u64 {
        self.untrusted_heap
            .lock()
            .alloc(len)
            .expect("untrusted memory exhausted")
    }

    /// Frees an untrusted allocation.
    pub fn free_untrusted(&self, addr: u64) {
        self.untrusted_heap
            .lock()
            .free(addr)
            .expect("bad untrusted free");
    }

    /// Allocates a fresh enclave id.
    pub(crate) fn alloc_enclave_id(&self) -> u32 {
        self.next_enclave_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Applies the Eleos CAT partition (75% enclave / 25% RPC ways).
    pub fn enable_cat(&self) {
        self.llc.lock().partition_eleos();
    }

    /// Removes LLC partitioning.
    pub fn disable_cat(&self) {
        self.llc.lock().partition_none();
    }

    /// Carves the RPC CAT slice into `n` per-shard sub-partitions (see
    /// [`Llc::partition_shards`]). Call after [`Self::enable_cat`].
    pub fn partition_shards(&self, n: usize) {
        self.llc.lock().partition_shards(n);
    }

    /// Registers socket `fd` as shard `class`'s socket: RPC syscall
    /// handlers will run its kernel traffic under
    /// [`CacheCtx::Shard`]`(class)`.
    pub fn set_shard_class(&self, fd: u32, class: u8) {
        self.shard_classes.lock().insert(fd, class);
    }

    /// The shard class registered for `fd`, if any.
    #[must_use]
    pub fn shard_class_of(&self, fd: u32) -> Option<u8> {
        self.shard_classes.lock().get(&fd).copied()
    }

    /// Binds the untrusted range `[addr, addr+len)` to NUMA `node`.
    /// Later bindings shadow earlier ones. No-op effect when the
    /// machine has a single node (everything is node 0 anyway).
    pub fn bind_numa(&self, addr: u64, len: usize, node: usize) {
        assert!(node < self.cfg.numa_nodes, "node {node} out of range");
        self.numa_ranges
            .lock()
            .push((addr, addr + len as u64, node));
    }

    /// The NUMA node owning physical address `paddr` (node 0 when
    /// unbound or on a single-node machine).
    #[must_use]
    pub fn numa_node_of(&self, paddr: u64) -> usize {
        if self.cfg.numa_nodes == 1 {
            return 0;
        }
        self.numa_ranges
            .lock()
            .iter()
            .rev()
            .find(|(s, e, _)| (*s..*e).contains(&paddr))
            .map_or(0, |(_, _, n)| *n)
    }

    /// The NUMA node core `core_id` belongs to (cores split
    /// contiguously across nodes).
    #[must_use]
    pub fn core_node(&self, core_id: usize) -> usize {
        core_id * self.cfg.numa_nodes / self.cfg.cores
    }

    /// Charges the memory-hierarchy cost of touching
    /// `[paddr, paddr+len)` with access `kind` from cache context
    /// `cctx` on a core of NUMA node `from_node`, updating the caller's
    /// sequential-stream state `seq_line`. Returns the cycle cost (the
    /// caller advances its own clock). On a multi-node machine, each
    /// LLC miss to a range bound to a different node pays the
    /// `numa_remote` hop on top of the DRAM cost.
    pub fn charge_mem(
        &self,
        cctx: CacheCtx,
        seq_line: &mut u64,
        paddr: u64,
        len: usize,
        kind: AccessKind,
        from_node: usize,
    ) -> u64 {
        if len == 0 {
            return 0;
        }
        let remote = self.cfg.numa_nodes > 1 && self.numa_node_of(paddr) != from_node;
        let c = &self.cfg.costs;
        let first = paddr / LINE as u64;
        let last = (paddr + len as u64 - 1) / LINE as u64;
        let mut cycles = 0u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut misses_epc = 0u64;
        let mut writebacks = 0u64;
        {
            let mut llc = self.llc.lock();
            for line in first..=last {
                cycles += c.l12_access;
                let out = llc.access_line(cctx, line * LINE as u64, kind);
                if out.hit {
                    hits += 1;
                    cycles += c.llc_hit;
                } else {
                    let sequential = line == seq_line.wrapping_add(1) || line == *seq_line;
                    let mut miss = c.miss_cost(out.domain, kind, sequential);
                    if misses > 0 {
                        // Later misses of the same bulk span overlap
                        // (memory-level parallelism).
                        miss = (miss as f64 * c.mlp_factor) as u64;
                    }
                    misses += 1;
                    cycles += miss;
                    if remote {
                        cycles += c.numa_remote;
                    }
                    if out.domain == Domain::Epc {
                        misses_epc += 1;
                    }
                    if let Some(wb) = out.writeback {
                        writebacks += 1;
                        // Write-back of a dirty line: DRAM write, with
                        // the MEE encryption premium for EPC lines.
                        cycles += c.miss_cost(wb, AccessKind::Write, true) / 2;
                    }
                    *seq_line = line;
                }
            }
        }
        Stats::add(&self.stats.llc_hits, hits);
        Stats::add(&self.stats.llc_misses, misses);
        Stats::add(&self.stats.llc_misses_epc, misses_epc);
        Stats::add(&self.stats.llc_writebacks, writebacks);
        if remote {
            Stats::add(&self.stats.numa_remote_misses, misses);
        }
        cycles
    }

    /// Streams `[paddr, paddr+len)` through the LLC *without charging
    /// cycles*: used for data movement whose latency is already folded
    /// into a modelled constant (EWB/ELDU work, AES-NI sealing). The
    /// movement still warms — and pollutes — the cache, which is part
    /// of paging's indirect cost (§2.3).
    pub fn touch_mem(&self, cctx: CacheCtx, paddr: u64, len: usize, kind: AccessKind) {
        if len == 0 {
            return;
        }
        let first = paddr / LINE as u64;
        let last = (paddr + len as u64 - 1) / LINE as u64;
        let mut hits = 0u64;
        let mut misses = 0u64;
        {
            let mut llc = self.llc.lock();
            for line in first..=last {
                if llc.access_line(cctx, line * LINE as u64, kind).hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
            }
        }
        Stats::add(&self.stats.llc_hits, hits);
        Stats::add(&self.stats.llc_misses, misses);
    }

    /// Resets stats, LLC contents and core clocks between experiment
    /// phases (memory *contents* are preserved).
    pub fn reset_measurement(&self) {
        self.stats.reset();
        self.llc.lock().clear();
        for core in &self.cores {
            core.clock.reset();
            core.tlb.lock().flush();
        }
    }

    /// Resets stats and clocks but keeps LLC/TLB state — used after a
    /// warm-up phase (the paper discards the first ten invocations,
    /// §6).
    pub fn reset_counters(&self) {
        self.stats.reset();
        for core in &self.cores {
            core.clock.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_default_machine() {
        let m = SgxMachine::new(MachineConfig::tiny());
        assert_eq!(m.core_count(), 4);
        assert_eq!(m.epc.frame_count(), 64);
    }

    #[test]
    fn untrusted_alloc_roundtrip() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let a = m.alloc_untrusted(100);
        let b = m.alloc_untrusted(100);
        assert_ne!(a, b);
        m.untrusted.write(a, b"hello");
        let mut buf = [0u8; 5];
        m.untrusted.read(a, &mut buf);
        assert_eq!(&buf, b"hello");
        m.free_untrusted(a);
        m.free_untrusted(b);
    }

    #[test]
    fn charge_mem_counts_hits_and_misses() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut seq = u64::MAX - 1;
        let cold = m.charge_mem(CacheCtx::Other, &mut seq, 0x1000, 128, AccessKind::Read, 0);
        let warm = m.charge_mem(CacheCtx::Other, &mut seq, 0x1000, 128, AccessKind::Read, 0);
        assert!(cold > warm, "cold {cold} vs warm {warm}");
        let s = m.stats.snapshot();
        assert_eq!(s.llc_misses, 2);
        assert_eq!(s.llc_hits, 2);
    }

    #[test]
    fn epc_misses_cost_more() {
        use eleos_sim::costs::EPC_BASE;
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut seq = u64::MAX - 1;
        let u = m.charge_mem(
            CacheCtx::Other,
            &mut seq,
            0x10_0000,
            64,
            AccessKind::Read,
            0,
        );
        m.reset_measurement();
        let mut seq = u64::MAX - 1;
        let e = m.charge_mem(
            CacheCtx::Other,
            &mut seq,
            EPC_BASE + 0x10_0000,
            64,
            AccessKind::Read,
            0,
        );
        assert!(e > 4 * u, "EPC miss {e} should dwarf untrusted {u}");
    }

    #[test]
    fn reset_clears_counters_and_clocks() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut seq = 0;
        m.charge_mem(CacheCtx::Other, &mut seq, 0, 64, AccessKind::Write, 0);
        m.core(0).clock.advance(10);
        m.reset_measurement();
        assert_eq!(m.stats.snapshot().llc_misses, 0);
        assert_eq!(m.core(0).clock.now(), 0);
    }

    #[test]
    fn cores_split_contiguously_across_numa_nodes() {
        let m = SgxMachine::new(MachineConfig {
            numa_nodes: 2,
            ..MachineConfig::tiny()
        });
        assert_eq!(m.core_node(0), 0);
        assert_eq!(m.core_node(1), 0);
        assert_eq!(m.core_node(2), 1);
        assert_eq!(m.core_node(3), 1);
        // Single-node machines put every core on node 0.
        let uma = SgxMachine::new(MachineConfig::tiny());
        assert_eq!(uma.core_node(3), 0);
    }

    #[test]
    fn remote_numa_misses_pay_the_hop() {
        let cfg = MachineConfig {
            numa_nodes: 2,
            ..MachineConfig::tiny()
        };
        let m = SgxMachine::new(cfg);
        m.bind_numa(0x10_0000, 4096, 1);
        // Access from a node-0 core: bound-to-node-1 range is remote.
        let mut seq = u64::MAX - 1;
        let remote = m.charge_mem(
            CacheCtx::Other,
            &mut seq,
            0x10_0000,
            64,
            AccessKind::Read,
            0,
        );
        m.reset_measurement();
        let mut seq = u64::MAX - 1;
        let local = m.charge_mem(
            CacheCtx::Other,
            &mut seq,
            0x10_0000,
            64,
            AccessKind::Read,
            1,
        );
        assert_eq!(
            remote - local,
            m.cfg.costs.numa_remote,
            "one miss, one hop charge"
        );
        m.reset_measurement();
        let mut seq = u64::MAX - 1;
        m.charge_mem(
            CacheCtx::Other,
            &mut seq,
            0x10_0000,
            64,
            AccessKind::Read,
            0,
        );
        assert_eq!(m.stats.snapshot().numa_remote_misses, 1);
        // Unbound ranges live on node 0.
        assert_eq!(m.numa_node_of(0x20_0000), 0);
        assert_eq!(m.numa_node_of(0x10_0000), 1);
    }

    #[test]
    fn uma_machine_never_charges_numa() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut seq = u64::MAX - 1;
        m.charge_mem(
            CacheCtx::Other,
            &mut seq,
            0x10_0000,
            4096,
            AccessKind::Read,
            0,
        );
        assert_eq!(m.stats.snapshot().numa_remote_misses, 0);
    }

    #[test]
    fn shard_class_registry_roundtrip() {
        let m = SgxMachine::new(MachineConfig::tiny());
        assert_eq!(m.shard_class_of(3), None);
        m.set_shard_class(3, 1);
        assert_eq!(m.shard_class_of(3), Some(1));
    }
}
