//! An in-memory host filesystem with POSIX-flavoured syscalls.
//!
//! Enclaves have no direct OS access, so file I/O takes the same two
//! routes as the socket calls: OCALL (exit per call) or Eleos's
//! exit-less RPC. Like `recv`/`send`, every call charges the syscall
//! trap cost and copies through kernel buffers with charged accesses —
//! the page-cache traffic pollutes the LLC exactly like socket I/O.

use std::collections::HashMap;

use parking_lot::Mutex;

use eleos_sim::stats::Stats;

use crate::thread::ThreadCtx;

/// A file descriptor in the host filesystem (distinct from socket
/// [`crate::host::Fd`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileFd(pub u32);

/// Kernel bookkeeping bytes touched per file syscall (dentry, inode,
/// page-cache radix nodes).
const FS_META_BYTES: usize = 1024;

struct File {
    data: Vec<u8>,
}

struct OpenFile {
    path: String,
    offset: usize,
}

/// The filesystem: a flat namespace of in-memory files.
pub struct HostFs {
    files: Mutex<HashMap<String, File>>,
    open: Mutex<HashMap<FileFd, OpenFile>>,
    next_fd: Mutex<u32>,
    /// Untrusted address of the shared kernel metadata footprint.
    meta: Mutex<Option<u64>>,
}

/// Errors surfaced to callers (mapped to negative returns over RPC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// Path does not exist.
    NotFound,
    /// Bad file descriptor.
    BadFd,
}

impl Default for HostFs {
    fn default() -> Self {
        Self::new()
    }
}

impl HostFs {
    /// An empty filesystem.
    #[must_use]
    pub fn new() -> Self {
        Self {
            files: Mutex::new(HashMap::new()),
            open: Mutex::new(HashMap::new()),
            next_fd: Mutex::new(100),
            meta: Mutex::new(None),
        }
    }

    fn touch_meta(&self, ctx: &mut ThreadCtx) {
        let addr = {
            let mut g = self.meta.lock();
            *g.get_or_insert_with(|| ctx.machine.alloc_untrusted(FS_META_BYTES))
        };
        let mut scratch = vec![0u8; FS_META_BYTES];
        ctx.read_untrusted(addr, &mut scratch);
    }

    /// `open(2)` with `O_CREAT`: opens (creating if absent) the file at
    /// `path`, position 0.
    pub fn open(&self, ctx: &mut ThreadCtx, path: &str) -> FileFd {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        self.touch_meta(ctx);
        self.files
            .lock()
            .entry(path.to_string())
            .or_insert_with(|| File { data: Vec::new() });
        let fd = {
            let mut n = self.next_fd.lock();
            let fd = FileFd(*n);
            *n += 1;
            fd
        };
        self.open.lock().insert(
            fd,
            OpenFile {
                path: path.to_string(),
                offset: 0,
            },
        );
        fd
    }

    /// `close(2)`.
    pub fn close(&self, ctx: &mut ThreadCtx, fd: FileFd) -> Result<(), FsError> {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        self.open
            .lock()
            .remove(&fd)
            .map(|_| ())
            .ok_or(FsError::BadFd)
    }

    /// `read(2)`: copies up to `len` bytes from the current offset
    /// into untrusted memory at `buf_addr`. Returns bytes read.
    pub fn read(
        &self,
        ctx: &mut ThreadCtx,
        fd: FileFd,
        buf_addr: u64,
        len: usize,
    ) -> Result<usize, FsError> {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        self.touch_meta(ctx);
        let (payload, new_off) = {
            let open = self.open.lock();
            let of = open.get(&fd).ok_or(FsError::BadFd)?;
            let files = self.files.lock();
            let f = files.get(&of.path).ok_or(FsError::NotFound)?;
            let n = len.min(f.data.len().saturating_sub(of.offset));
            (f.data[of.offset..of.offset + n].to_vec(), of.offset + n)
        };
        // Page-cache -> user copy, charged.
        ctx.write_untrusted(buf_addr, &payload);
        if let Some(of) = self.open.lock().get_mut(&fd) {
            of.offset = new_off;
        }
        Ok(payload.len())
    }

    /// `write(2)`: appends-at-offset from untrusted memory. Returns
    /// bytes written.
    pub fn write(
        &self,
        ctx: &mut ThreadCtx,
        fd: FileFd,
        buf_addr: u64,
        len: usize,
    ) -> Result<usize, FsError> {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        self.touch_meta(ctx);
        let mut payload = vec![0u8; len];
        ctx.read_untrusted(buf_addr, &mut payload);
        let mut open = self.open.lock();
        let of = open.get_mut(&fd).ok_or(FsError::BadFd)?;
        let mut files = self.files.lock();
        let f = files.get_mut(&of.path).ok_or(FsError::NotFound)?;
        if f.data.len() < of.offset + len {
            f.data.resize(of.offset + len, 0);
        }
        f.data[of.offset..of.offset + len].copy_from_slice(&payload);
        of.offset += len;
        Ok(len)
    }

    /// `lseek(2)` (`SEEK_SET`).
    pub fn seek(&self, ctx: &mut ThreadCtx, fd: FileFd, offset: usize) -> Result<(), FsError> {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        self.open
            .lock()
            .get_mut(&fd)
            .map(|of| of.offset = offset)
            .ok_or(FsError::BadFd)
    }

    /// `fstat(2)`-lite: the file's size.
    pub fn size(&self, ctx: &mut ThreadCtx, fd: FileFd) -> Result<usize, FsError> {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        let open = self.open.lock();
        let of = open.get(&fd).ok_or(FsError::BadFd)?;
        let files = self.files.lock();
        Ok(files.get(&of.path).ok_or(FsError::NotFound)?.data.len())
    }

    /// `unlink(2)`.
    pub fn unlink(&self, ctx: &mut ThreadCtx, path: &str) -> Result<(), FsError> {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        self.files
            .lock()
            .remove(path)
            .map(|_| ())
            .ok_or(FsError::NotFound)
    }

    /// Number of files (diagnostics).
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.files.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineConfig, SgxMachine};

    fn rig() -> (std::sync::Arc<SgxMachine>, ThreadCtx) {
        let m = SgxMachine::new(MachineConfig::tiny());
        let t = ThreadCtx::untrusted(&m, 0);
        (m, t)
    }

    #[test]
    fn open_write_seek_read() {
        let (m, mut t) = rig();
        let buf = m.alloc_untrusted(256);
        let fd = m.fs.open(&mut t, "/data/log");
        t.write_untrusted(buf, b"hello file");
        assert_eq!(m.fs.write(&mut t, fd, buf, 10).unwrap(), 10);
        assert_eq!(m.fs.size(&mut t, fd).unwrap(), 10);
        m.fs.seek(&mut t, fd, 6).unwrap();
        let n = m.fs.read(&mut t, fd, buf + 100, 64).unwrap();
        assert_eq!(n, 4);
        let mut got = vec![0u8; 4];
        t.read_untrusted(buf + 100, &mut got);
        assert_eq!(&got, b"file");
        m.fs.close(&mut t, fd).unwrap();
        assert_eq!(m.fs.close(&mut t, fd), Err(FsError::BadFd));
    }

    #[test]
    fn files_persist_across_opens() {
        let (m, mut t) = rig();
        let buf = m.alloc_untrusted(64);
        let fd = m.fs.open(&mut t, "/a");
        t.write_untrusted(buf, b"persist");
        m.fs.write(&mut t, fd, buf, 7).unwrap();
        m.fs.close(&mut t, fd).unwrap();
        let fd2 = m.fs.open(&mut t, "/a");
        assert_eq!(m.fs.size(&mut t, fd2).unwrap(), 7);
        m.fs.unlink(&mut t, "/a").unwrap();
        assert_eq!(m.fs.unlink(&mut t, "/a"), Err(FsError::NotFound));
    }

    #[test]
    fn read_past_eof_is_short() {
        let (m, mut t) = rig();
        let buf = m.alloc_untrusted(64);
        let fd = m.fs.open(&mut t, "/short");
        assert_eq!(m.fs.read(&mut t, fd, buf, 64).unwrap(), 0);
    }

    #[test]
    fn syscall_costs_charged() {
        let (m, mut t) = rig();
        let fd = m.fs.open(&mut t, "/x");
        let c0 = t.now();
        let _ = m.fs.size(&mut t, fd);
        assert!(t.now() - c0 >= m.cfg.costs.syscall);
        assert!(m.stats.snapshot().syscalls >= 2);
    }
}
