//! The EPC frame pool — the physical pages of processor-reserved
//! memory that all enclaves share.
//!
//! Frame *contents* and *ownership* live together under a per-frame
//! `RwLock`, which gives the access path a simple TOCTOU-free protocol:
//! translate, lock the frame, re-check ownership, copy. The driver takes
//! the write lock for eviction/loading, so a page can never be read
//! while it is being swapped.

use parking_lot::RwLock;

use eleos_sim::costs::{EPC_BASE, PAGE_SIZE};

/// Index of a frame within the pool.
pub type FrameIdx = u32;

/// Ownership record + contents of one frame.
pub struct FrameInner {
    /// Owning `(enclave id, linear page number)` when mapped.
    pub owner: Option<(u32, u64)>,
    /// Page contents.
    pub data: Box<[u8; PAGE_SIZE]>,
}

/// One 4 KiB EPC frame.
pub struct Frame {
    /// Guarded ownership + contents.
    pub inner: RwLock<FrameInner>,
}

/// The machine-wide EPC.
pub struct EpcPool {
    frames: Vec<Frame>,
}

impl EpcPool {
    /// Creates a pool of `n` zeroed, unowned frames.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "EPC must have at least one frame");
        let mut frames = Vec::with_capacity(n);
        frames.resize_with(n, || Frame {
            inner: RwLock::new(FrameInner {
                owner: None,
                data: Box::new([0u8; PAGE_SIZE]),
            }),
        });
        Self { frames }
    }

    /// Number of frames.
    #[must_use]
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Returns frame `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn frame(&self, idx: FrameIdx) -> &Frame {
        &self.frames[idx as usize]
    }

    /// Simulated physical address of the first byte of frame `idx`.
    #[must_use]
    pub fn paddr(idx: FrameIdx) -> u64 {
        EPC_BASE + idx as u64 * PAGE_SIZE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_start_unowned_and_zeroed() {
        let pool = EpcPool::new(4);
        assert_eq!(pool.frame_count(), 4);
        let g = pool.frame(3).inner.read();
        assert_eq!(g.owner, None);
        assert!(g.data.iter().all(|&b| b == 0));
    }

    #[test]
    fn paddr_is_in_epc_domain() {
        use eleos_sim::costs::{domain_of, Domain};
        assert_eq!(domain_of(EpcPool::paddr(0)), Domain::Epc);
        assert_eq!(EpcPool::paddr(2) - EpcPool::paddr(1), PAGE_SIZE as u64);
    }

    #[test]
    fn ownership_can_be_claimed() {
        let pool = EpcPool::new(2);
        {
            let mut g = pool.frame(0).inner.write();
            g.owner = Some((7, 42));
            g.data[0] = 0xaa;
        }
        let g = pool.frame(0).inner.read();
        assert_eq!(g.owner, Some((7, 42)));
        assert_eq!(g.data[0], 0xaa);
    }
}
