//! The enclave object: a linear address space of secure pages, its
//! hardware page-table entries, heap allocator, sealing identity and
//! swap area.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use eleos_crypto::gcm::{AesGcm128, Nonce, Tag};
use eleos_sim::alloc::BuddyAllocator;
use eleos_sim::clock::CoreSet;
use eleos_sim::costs::PAGE_SIZE;

use crate::epc::FrameIdx;

/// A page sealed out to the enclave's swap area in untrusted memory.
pub struct SealedPage {
    /// AES-GCM ciphertext of the page.
    pub ct: Box<[u8; PAGE_SIZE]>,
    /// Per-eviction nonce.
    pub nonce: Nonce,
    /// Authentication tag (covers the enclave id and page number as
    /// AAD, binding the ciphertext to its slot).
    pub tag: Tag,
}

/// A hardware enclave.
///
/// Created via [`crate::driver::SgxDriver::create_enclave`]; destroyed
/// via [`crate::driver::SgxDriver::destroy_enclave`], which releases its
/// EPC frames and PRM share.
pub struct Enclave {
    /// Enclave id (also its TLB ASID).
    pub id: u32,
    linear_pages: usize,
    /// Page-table entries: `0` = not resident, otherwise `frame + 1`.
    ptes: Vec<AtomicU64>,
    /// Heap allocator over the linear address space.
    pub heap: Mutex<BuddyAllocator>,
    /// Cores currently executing inside this enclave (ETRACK state).
    pub core_set: CoreSet,
    /// Per-enclave sealing key (the driver's EWB identity).
    pub seal: AesGcm128,
    nonce_ctr: AtomicU64,
    /// Swapped-out pages, keyed by linear page number. Conceptually
    /// this lives in untrusted memory; contents are AES-GCM sealed so
    /// holding them in a host-side map leaks nothing the paper's threat
    /// model does not already concede (the access pattern).
    pub swap: Mutex<HashMap<u64, SealedPage>>,
}

impl Enclave {
    pub(crate) fn new(id: u32, linear_bytes: usize) -> Self {
        // Round the linear space up to a power of two so the buddy
        // heap covers exactly the paged range.
        let cap = (linear_bytes.max(PAGE_SIZE) as u64).next_power_of_two();
        let linear_pages = (cap as usize) / PAGE_SIZE;
        let mut ptes = Vec::with_capacity(linear_pages);
        ptes.resize_with(linear_pages, || AtomicU64::new(0));
        // Deterministic per-enclave key: reproducible simulations. A
        // production enclave would draw this from RDRAND at init.
        let mut key = [0u8; 16];
        key[..4].copy_from_slice(&id.to_le_bytes());
        key[4..8].copy_from_slice(&0xe1e0_5e1fu32.to_le_bytes());
        Self {
            id,
            linear_pages,
            ptes,
            heap: Mutex::new(BuddyAllocator::new(cap.next_power_of_two(), 16)),
            core_set: CoreSet::new(),
            seal: AesGcm128::new(&key),
            nonce_ctr: AtomicU64::new(1),
            swap: Mutex::new(HashMap::new()),
        }
    }

    /// The TLB address-space id of this enclave (untrusted memory uses
    /// ASID 0).
    #[must_use]
    pub fn asid(&self) -> u32 {
        self.id
    }

    /// Size of the linear address space in pages.
    #[must_use]
    pub fn linear_pages(&self) -> usize {
        self.linear_pages
    }

    /// Current resident frame for `page`, if any.
    #[must_use]
    pub fn pte(&self, page: u64) -> Option<FrameIdx> {
        assert!(
            (page as usize) < self.linear_pages,
            "enclave {} page {page} beyond linear size",
            self.id
        );
        match self.ptes[page as usize].load(Ordering::Acquire) {
            0 => None,
            v => Some((v - 1) as FrameIdx),
        }
    }

    pub(crate) fn set_pte(&self, page: u64, frame: Option<FrameIdx>) {
        let v = frame.map_or(0, |f| f as u64 + 1);
        self.ptes[page as usize].store(v, Ordering::Release);
    }

    /// Number of currently resident pages (linear scan; diagnostics).
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.ptes
            .iter()
            .filter(|p| p.load(Ordering::Relaxed) != 0)
            .count()
    }

    /// Allocates `len` bytes of enclave-linear memory.
    ///
    /// # Panics
    /// Panics when the enclave heap is exhausted — the simulation
    /// equivalent of an in-enclave `malloc` returning NULL and the
    /// application aborting.
    pub fn alloc(&self, len: usize) -> u64 {
        self.heap
            .lock()
            .alloc(len)
            .expect("enclave linear memory exhausted")
    }

    /// Frees an allocation from [`Self::alloc`].
    pub fn free(&self, vaddr: u64) {
        self.heap.lock().free(vaddr).expect("bad enclave free");
    }

    /// Draws a fresh sealing nonce (never repeats for this enclave).
    pub fn next_nonce(&self) -> Nonce {
        let v = self.nonce_ctr.fetch_add(1, Ordering::Relaxed);
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&v.to_le_bytes());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_crypto::Sealer;

    #[test]
    fn pte_roundtrip() {
        let e = Enclave::new(1, 4 * PAGE_SIZE);
        assert_eq!(e.linear_pages(), 4);
        assert_eq!(e.pte(2), None);
        e.set_pte(2, Some(7));
        assert_eq!(e.pte(2), Some(7));
        assert_eq!(e.resident_pages(), 1);
        e.set_pte(2, None);
        assert_eq!(e.pte(2), None);
    }

    #[test]
    #[should_panic(expected = "beyond linear size")]
    fn pte_out_of_range() {
        let e = Enclave::new(1, PAGE_SIZE);
        let _ = e.pte(1);
    }

    #[test]
    fn heap_allocations_fit_linear_space() {
        let e = Enclave::new(1, 16 * PAGE_SIZE);
        let a = e.alloc(PAGE_SIZE);
        let b = e.alloc(PAGE_SIZE);
        assert_ne!(a, b);
        assert!(a < (16 * PAGE_SIZE) as u64);
        e.free(a);
        e.free(b);
    }

    #[test]
    fn nonces_are_unique() {
        let e = Enclave::new(1, PAGE_SIZE);
        let a = e.next_nonce();
        let b = e.next_nonce();
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_enclaves_have_distinct_keys() {
        // Sealing the same page under two enclaves must produce
        // different ciphertexts (different keys).
        let e1 = Enclave::new(1, PAGE_SIZE);
        let e2 = Enclave::new(2, PAGE_SIZE);
        let nonce = [0u8; 12];
        let mut a = [1u8; 32];
        let mut b = [1u8; 32];
        e1.seal.seal(&nonce, &[], &mut a);
        e2.seal.seal(&nonce, &[], &mut b);
        assert_ne!(a, b);
    }
}
