//! The host operating system: system calls and a socket layer fed by
//! load generators.
//!
//! Two effects matter to the paper and are modelled here:
//!
//! 1. a system call costs ~250 cycles of trap/return plus the cache
//!    footprint of its I/O buffers (§2.2) — `recv`/`send` genuinely
//!    copy through a per-socket kernel staging ring with charged
//!    accesses, so the pollution Fig 2a measures emerges from the LLC
//!    model;
//! 2. the network is a throughput ceiling (Fig 10's native server is
//!    NIC-bound) — sockets count rx/tx bytes and the harness converts
//!    them to a 10 Gb/s bound.

use std::collections::{BTreeMap, HashMap, VecDeque};

use parking_lot::Mutex;

use eleos_sim::stats::Stats;

use crate::thread::ThreadCtx;

/// A socket descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u32);

/// Size of the per-call kernel bookkeeping footprint touched on every
/// recv/send: socket structs, sk_buff chains, protocol bookkeeping.
/// FlexSC (the paper's \[28\]) measures several KiB of kernel state per
/// syscall; 4 KiB models that footprint.
const KERNEL_META_BYTES: usize = 4096;

/// Bytes per `recv_mmsg`/`send_mmsg` descriptor entry: two little-endian
/// `u64` words — `(seq << 32) | len`, then the enqueue timestamp in
/// cycles (receive side; ignored by sends).
pub const DESC_STRIDE: usize = 16;

/// Transmit-ordering contract of a [`HostOs::send_mmsg`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendMode {
    /// Commit through the kernel reorder buffer in descriptor-sequence
    /// order (shared-socket servers whose sub-batches race on several
    /// RPC workers). Pays `Costs::tx_reorder` per message.
    Sequenced,
    /// Commit in slot order with no sequencing (sharded servers: one
    /// socket per pipeline, intra-shard order is arrival order).
    Unsequenced,
}

struct Socket {
    /// Untrusted address of the kernel staging ring.
    staging: u64,
    staging_cap: usize,
    write_pos: usize,
    /// Queued inbound messages: (staging offset, len, enqueue cycles).
    /// The enqueue timestamp rides the wire descriptors out of
    /// `recv_mmsg` so the serving path can compute per-op sojourn.
    rx_queue: VecDeque<(usize, usize, u64)>,
    /// Monotonic dequeue counter; tags each popped message so
    /// concurrent receivers can restore arrival order at reap time.
    pop_seq: u64,
    /// Kernel metadata area address.
    meta: u64,
    rx_bytes: u64,
    tx_bytes: u64,
    /// Recent outbound messages, for verification by tests/loadgens.
    tx_log: VecDeque<Vec<u8>>,
    /// Next transmit sequence number to commit to `tx_log`. Sequenced
    /// sends (`send_mmsg`) carry their seq in the descriptor; commits
    /// are held in `tx_pending` until the in-order prefix is complete,
    /// so concurrent sub-batches on several RPC workers cannot
    /// interleave the wire order.
    tx_next_commit: u64,
    /// Out-of-order sequenced sends waiting for their predecessors.
    tx_pending: BTreeMap<u64, Vec<u8>>,
}

impl Socket {
    /// Commits a sequenced outbound message, draining the in-order
    /// prefix of the pending reorder buffer into `tx_log`.
    fn commit_tx(&mut self, seq: u64, payload: Vec<u8>) {
        self.tx_pending.insert(seq, payload);
        while let Some(payload) = self.tx_pending.remove(&self.tx_next_commit) {
            self.tx_next_commit += 1;
            self.tx_log.push_back(payload);
            if self.tx_log.len() > TX_LOG_CAP {
                self.tx_log.pop_front();
            }
        }
    }
}

/// The host OS.
pub struct HostOs {
    sockets: Mutex<HashMap<Fd, Socket>>,
    next_fd: Mutex<u32>,
}

/// How many outbound messages each socket retains for inspection.
const TX_LOG_CAP: usize = 32;

impl Default for HostOs {
    fn default() -> Self {
        Self::new()
    }
}

impl HostOs {
    /// Creates a host OS with no sockets.
    #[must_use]
    pub fn new() -> Self {
        Self {
            sockets: Mutex::new(HashMap::new()),
            next_fd: Mutex::new(3),
        }
    }

    /// Opens a socket with a `staging_cap`-byte kernel ring.
    pub fn socket(&self, ctx: &ThreadCtx, staging_cap: usize) -> Fd {
        let staging = ctx.machine.alloc_untrusted(staging_cap);
        let meta = ctx.machine.alloc_untrusted(KERNEL_META_BYTES);
        let mut fds = self.next_fd.lock();
        let fd = Fd(*fds);
        *fds += 1;
        self.sockets.lock().insert(
            fd,
            Socket {
                staging,
                staging_cap,
                write_pos: 0,
                rx_queue: VecDeque::new(),
                pop_seq: 0,
                meta,
                rx_bytes: 0,
                tx_bytes: 0,
                tx_log: VecDeque::new(),
                tx_next_commit: 0,
                tx_pending: BTreeMap::new(),
            },
        );
        fd
    }

    /// Opens `n` sockets sharing one staging capacity — the shard set
    /// of a multi-socket server, one socket per serving pipeline (SO_REUSEPORT
    /// style: the "kernel" — here the load generator's shard hash —
    /// spreads connections across them).
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn socket_set(&self, ctx: &ThreadCtx, n: usize, staging_cap: usize) -> Vec<Fd> {
        assert!(n > 0, "a socket set needs at least one shard");
        (0..n).map(|_| self.socket(ctx, staging_cap)).collect()
    }

    /// Load-generator side: enqueues an inbound message. Bytes land in
    /// the staging ring via DMA (uncharged — NIC traffic does not pass
    /// through the core being measured). The message is stamped with
    /// the pushing core's current cycle count.
    ///
    /// # Panics
    /// Panics if the message exceeds the staging capacity or the ring
    /// has no room (the load generator must not overrun the server).
    pub fn push_request(&self, ctx: &ThreadCtx, fd: Fd, msg: &[u8]) {
        self.push_request_at(ctx, fd, msg, ctx.now());
    }

    /// [`Self::push_request`] with an explicit enqueue timestamp, for
    /// load generators that model arrivals on a timebase other than
    /// their own core clock (e.g. stamping arrivals against the serving
    /// core so sojourn is measured on one clock).
    pub fn push_request_at(&self, ctx: &ThreadCtx, fd: Fd, msg: &[u8], enqueued_at: u64) {
        let mut sockets = self.sockets.lock();
        let s = sockets.get_mut(&fd).expect("bad fd");
        assert!(msg.len() <= s.staging_cap, "message exceeds staging ring");
        let queued: usize = s.rx_queue.iter().map(|&(_, l, _)| l).sum();
        assert!(
            queued + msg.len() <= s.staging_cap,
            "staging ring overrun: generator outpacing server"
        );
        if s.write_pos + msg.len() > s.staging_cap {
            s.write_pos = 0;
        }
        let off = s.write_pos;
        ctx.machine.untrusted.write(s.staging + off as u64, msg);
        s.write_pos += msg.len();
        s.rx_queue.push_back((off, msg.len(), enqueued_at));
    }

    /// Number of queued inbound messages.
    #[must_use]
    pub fn rx_pending(&self, fd: Fd) -> usize {
        self.sockets.lock().get(&fd).map_or(0, |s| s.rx_queue.len())
    }

    /// `recv(2)`: copies the next message into `[buf_addr, +max_len)`
    /// in untrusted memory. Returns the message length, or `None` if
    /// the queue is empty (EWOULDBLOCK).
    ///
    /// Must be called from untrusted mode (via OCALL or an RPC worker).
    pub fn recv(
        &self,
        ctx: &mut ThreadCtx,
        fd: Fd,
        buf_addr: u64,
        max_len: usize,
    ) -> Option<usize> {
        self.recv_tagged(ctx, fd, buf_addr, max_len).map(|(_, n)| n)
    }

    /// [`Self::recv`] variant that also returns the socket's dequeue
    /// sequence number. Messages popped concurrently by several RPC
    /// workers complete out of order; sorting by this tag restores the
    /// socket's arrival order.
    pub fn recv_tagged(
        &self,
        ctx: &mut ThreadCtx,
        fd: Fd,
        buf_addr: u64,
        max_len: usize,
    ) -> Option<(u64, usize)> {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        let (staging_off, len, meta, seq) = {
            let mut sockets = self.sockets.lock();
            let s = sockets.get_mut(&fd).expect("bad fd");
            let (off, len, _enq) = s.rx_queue.pop_front()?;
            let len = len.min(max_len);
            s.rx_bytes += len as u64;
            let seq = s.pop_seq;
            s.pop_seq += 1;
            (s.staging + off as u64, len, s.meta, seq)
        };
        // Kernel bookkeeping + the copy kernel->user, all polluting the
        // executor's cache partition.
        Stats::bump(&ctx.machine.stats.kernel_meta_reads);
        let mut scratch = vec![0u8; KERNEL_META_BYTES];
        ctx.read_untrusted(meta, &mut scratch);
        let mut payload = vec![0u8; len];
        ctx.read_untrusted(staging_off, &mut payload);
        ctx.write_untrusted(buf_addr, &payload);
        Some((seq, len))
    }

    /// `recvmmsg(2)`-style scatter-gather receive: dequeues up to
    /// `max_msgs` messages, in arrival order, into consecutive
    /// `stripe`-byte slots starting at `buf_addr`, and writes one
    /// [`DESC_STRIDE`]-byte descriptor per message into the array at
    /// `desc_addr`: two little-endian `u64` words,
    /// `(dequeue_seq << 32) | len` followed by the message's enqueue
    /// timestamp (cycles). Returns the number of messages received.
    ///
    /// The dequeue sequence in the first word's high half lets several
    /// sub-batches, issued concurrently on different RPC workers,
    /// merge back into the socket's global arrival order at reap time
    /// (the multi-worker generalization of `recv_tagged`'s tag); the
    /// timestamp word lets the reaper compute per-op sojourn
    /// (SO_TIMESTAMPING-style ancillary data).
    ///
    /// The whole batch pays the trap/return and kernel-bookkeeping
    /// footprint **once** — that is the point of the syscall: the
    /// kernel walks the socket queue a single time, so per-message
    /// cost degenerates to the user copies.
    pub fn recv_mmsg(
        &self,
        ctx: &mut ThreadCtx,
        fd: Fd,
        buf_addr: u64,
        stripe: usize,
        max_msgs: usize,
        desc_addr: u64,
    ) -> usize {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        assert!(max_msgs > 0);
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        // One queue walk under one lock hold: the batch is atomic, so
        // slot order *is* arrival order within the batch; the dequeue
        // seq recorded per message orders it against concurrent
        // sub-batches.
        let (popped, meta) = {
            let mut sockets = self.sockets.lock();
            let s = sockets.get_mut(&fd).expect("bad fd");
            let mut popped = Vec::with_capacity(max_msgs.min(s.rx_queue.len()));
            while popped.len() < max_msgs {
                let Some((off, len, enq)) = s.rx_queue.pop_front() else {
                    break;
                };
                let len = len.min(stripe);
                s.rx_bytes += len as u64;
                let seq = s.pop_seq;
                s.pop_seq += 1;
                popped.push((s.staging + off as u64, len, seq, enq));
            }
            (popped, s.meta)
        };
        if popped.is_empty() {
            return 0;
        }
        // Kernel bookkeeping once per batch, then the copies
        // kernel->user per message.
        Stats::bump(&ctx.machine.stats.kernel_meta_reads);
        let mut scratch = vec![0u8; KERNEL_META_BYTES];
        ctx.read_untrusted(meta, &mut scratch);
        let mut descs = Vec::with_capacity(popped.len() * DESC_STRIDE);
        for (i, &(staging_off, len, seq, enq)) in popped.iter().enumerate() {
            let mut payload = vec![0u8; len];
            ctx.read_untrusted(staging_off, &mut payload);
            ctx.write_untrusted(buf_addr + (i * stripe) as u64, &payload);
            descs.extend_from_slice(&((seq << 32) | len as u64).to_le_bytes());
            descs.extend_from_slice(&enq.to_le_bytes());
        }
        ctx.write_untrusted(desc_addr, &descs);
        popped.len()
    }

    /// `sendmmsg(2)`-style scatter-gather send: transmits `n_msgs`
    /// messages from consecutive `stripe`-byte slots at `buf_addr`,
    /// taking each message's transmit sequence and length from the
    /// [`DESC_STRIDE`]-byte descriptor array at `desc_addr` (first
    /// little-endian `u64` word `(tx_seq << 32) | len`, matching
    /// `recv_mmsg`'s layout; the timestamp word is ignored on the send
    /// side). Pays the trap/return and kernel bookkeeping once per
    /// batch. Returns `n_msgs`.
    ///
    /// With [`SendMode::Sequenced`], the transmit sequence orders
    /// commits across concurrent sub-batches: a message is held in a
    /// kernel reorder buffer until every lower-sequenced message has
    /// been committed, so the wire order equals the sender's sequence
    /// allocation order no matter which RPC worker runs which
    /// sub-batch. Senders must allocate sequences contiguously from 0
    /// per socket. Each message pays the reorder-buffer bookkeeping
    /// (`Costs::tx_reorder`).
    ///
    /// With [`SendMode::Unsequenced`], messages hit the wire in slot
    /// order with no reorder-buffer charge — the mode a sharded server
    /// uses, where each socket is owned by exactly one serving pipeline
    /// and intra-shard order is already arrival order. The sequence
    /// word is ignored. Do not mix the two modes on one socket.
    #[allow(clippy::too_many_arguments)]
    pub fn send_mmsg(
        &self,
        ctx: &mut ThreadCtx,
        fd: Fd,
        buf_addr: u64,
        stripe: usize,
        n_msgs: usize,
        desc_addr: u64,
        mode: SendMode,
    ) -> usize {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        let meta = {
            let sockets = self.sockets.lock();
            sockets.get(&fd).expect("bad fd").meta
        };
        Stats::bump(&ctx.machine.stats.kernel_meta_reads);
        let mut scratch = vec![0u8; KERNEL_META_BYTES];
        ctx.read_untrusted(meta, &mut scratch);
        let mut descs = vec![0u8; n_msgs * DESC_STRIDE];
        ctx.read_untrusted(desc_addr, &mut descs);
        for i in 0..n_msgs {
            let at = i * DESC_STRIDE;
            let d = u64::from_le_bytes(descs[at..at + 8].try_into().expect("desc"));
            let (seq, len) = (d >> 32, (d & 0xffff_ffff) as usize);
            assert!(len <= stripe, "descriptor exceeds its stripe");
            let mut payload = vec![0u8; len];
            ctx.read_untrusted(buf_addr + (i * stripe) as u64, &mut payload);
            let mut sockets = self.sockets.lock();
            let s = sockets.get_mut(&fd).expect("bad fd");
            s.tx_bytes += len as u64;
            match mode {
                SendMode::Sequenced => {
                    ctx.compute(ctx.machine.cfg.costs.tx_reorder);
                    s.commit_tx(seq, payload);
                }
                SendMode::Unsequenced => {
                    s.tx_log.push_back(payload);
                    if s.tx_log.len() > TX_LOG_CAP {
                        s.tx_log.pop_front();
                    }
                }
            }
        }
        n_msgs
    }

    /// `send(2)`: transmits `len` bytes from untrusted memory.
    pub fn send(&self, ctx: &mut ThreadCtx, fd: Fd, buf_addr: u64, len: usize) -> usize {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        let meta = {
            let sockets = self.sockets.lock();
            sockets.get(&fd).expect("bad fd").meta
        };
        Stats::bump(&ctx.machine.stats.kernel_meta_reads);
        let mut scratch = vec![0u8; KERNEL_META_BYTES];
        ctx.read_untrusted(meta, &mut scratch);
        let mut payload = vec![0u8; len];
        ctx.read_untrusted(buf_addr, &mut payload);
        let mut sockets = self.sockets.lock();
        let s = sockets.get_mut(&fd).expect("bad fd");
        s.tx_bytes += len as u64;
        s.tx_log.push_back(payload);
        if s.tx_log.len() > TX_LOG_CAP {
            s.tx_log.pop_front();
        }
        len
    }

    /// `poll(2)`-lite: whether `fd` has inbound data. This is the
    /// paper's canonical *long-running* syscall — "to reduce the cost
    /// of polling, Eleos invokes long running system calls like
    /// `poll()` via the naive OCALL mechanism" (§3.1) rather than
    /// burning an RPC worker on it.
    #[must_use]
    pub fn poll(&self, ctx: &mut ThreadCtx, fd: Fd) -> bool {
        assert!(!ctx.in_enclave(), "syscall from trusted mode");
        ctx.compute(ctx.machine.cfg.costs.syscall);
        Stats::bump(&ctx.machine.stats.syscalls);
        self.rx_pending(fd) > 0
    }

    /// Bytes received / transmitted so far on `fd`.
    #[must_use]
    pub fn byte_counts(&self, fd: Fd) -> (u64, u64) {
        let sockets = self.sockets.lock();
        let s = sockets.get(&fd).expect("bad fd");
        (s.rx_bytes, s.tx_bytes)
    }

    /// Pops the oldest retained outbound message (test/loadgen side).
    #[must_use]
    pub fn pop_response(&self, fd: Fd) -> Option<Vec<u8>> {
        self.sockets
            .lock()
            .get_mut(&fd)
            .and_then(|s| s.tx_log.pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{MachineConfig, SgxMachine};

    #[test]
    fn recv_send_roundtrip() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut t = ThreadCtx::untrusted(&m, 0);
        let fd = m.host.socket(&t, 64 << 10);
        m.host.push_request(&t, fd, b"hello server");
        assert_eq!(m.host.rx_pending(fd), 1);

        let buf = m.alloc_untrusted(256);
        let n = m.host.recv(&mut t, fd, buf, 256).unwrap();
        assert_eq!(n, 12);
        let mut got = vec![0u8; n];
        t.read_untrusted(buf, &mut got);
        assert_eq!(&got, b"hello server");

        t.write_untrusted(buf, b"response!");
        m.host.send(&mut t, fd, buf, 9);
        assert_eq!(m.host.byte_counts(fd), (12, 9));
        assert_eq!(m.host.pop_response(fd).unwrap(), b"response!");
    }

    #[test]
    fn mmsg_batches_pay_one_syscall() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut t = ThreadCtx::untrusted(&m, 0);
        let fd = m.host.socket(&t, 64 << 10);
        let push_start = t.now();
        for i in 0..5u8 {
            m.host.push_request(&t, fd, &[i; 10]);
        }
        let buf = m.alloc_untrusted(4096);
        let desc = m.alloc_untrusted(8 * DESC_STRIDE);
        let s0 = m.stats.snapshot();
        // Asks for 8, gets the 5 queued, in arrival order.
        let n = m.host.recv_mmsg(&mut t, fd, buf, 512, 8, desc);
        assert_eq!(n, 5);
        let d = m.stats.snapshot() - s0;
        assert_eq!(d.syscalls, 1);
        assert_eq!(d.kernel_meta_reads, 1);
        let mut descs = vec![0u8; n * DESC_STRIDE];
        t.read_untrusted(desc, &mut descs);
        for i in 0..n {
            let at = i * DESC_STRIDE;
            let d = u64::from_le_bytes(descs[at..at + 8].try_into().unwrap());
            assert_eq!(d >> 32, i as u64, "descriptor carries the dequeue seq");
            let len = (d & 0xffff_ffff) as usize;
            assert_eq!(len, 10);
            let enq = u64::from_le_bytes(descs[at + 8..at + 16].try_into().unwrap());
            assert_eq!(enq, push_start, "descriptor carries the enqueue stamp");
            let mut msg = vec![0u8; len];
            t.read_untrusted(buf + (i * 512) as u64, &mut msg);
            assert_eq!(msg, vec![i as u8; 10]);
        }

        // Echo all five back with one sendmmsg; the dequeue seqs 0..5
        // double as contiguous transmit seqs.
        let s1 = m.stats.snapshot();
        assert_eq!(
            m.host
                .send_mmsg(&mut t, fd, buf, 512, n, desc, SendMode::Sequenced),
            5
        );
        let d = m.stats.snapshot() - s1;
        assert_eq!(d.syscalls, 1);
        assert_eq!(d.kernel_meta_reads, 1);
        for i in 0..n {
            assert_eq!(m.host.pop_response(fd).unwrap(), vec![i as u8; 10]);
        }
        assert_eq!(m.host.byte_counts(fd), (50, 50));
    }

    #[test]
    fn sequenced_sends_commit_in_seq_order() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut t = ThreadCtx::untrusted(&m, 0);
        let fd = m.host.socket(&t, 4096);
        let buf = m.alloc_untrusted(1024);
        let desc = m.alloc_untrusted(DESC_STRIDE);
        // Stage "b" then "a" in slot order, but sequence them 1 then 0:
        // the second sub-batch completes first, yet the wire order must
        // follow the sequence numbers.
        t.write_untrusted(buf, b"b");
        t.write_untrusted(buf + 256, b"a");
        t.write_untrusted(desc, &((1u64 << 32) | 1).to_le_bytes());
        assert_eq!(
            m.host
                .send_mmsg(&mut t, fd, buf, 256, 1, desc, SendMode::Sequenced),
            1
        );
        assert_eq!(m.host.pop_response(fd), None, "seq 1 waits for seq 0");
        t.write_untrusted(desc, &1u64.to_le_bytes());
        assert_eq!(
            m.host
                .send_mmsg(&mut t, fd, buf + 256, 256, 1, desc, SendMode::Sequenced),
            1
        );
        assert_eq!(m.host.pop_response(fd).unwrap(), b"a");
        assert_eq!(m.host.pop_response(fd).unwrap(), b"b");
    }

    #[test]
    fn unsequenced_sends_skip_the_reorder_buffer() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut t = ThreadCtx::untrusted(&m, 0);
        let fd = m.host.socket(&t, 4096);
        let buf = m.alloc_untrusted(1024);
        let desc = m.alloc_untrusted(2 * DESC_STRIDE);
        t.write_untrusted(buf, b"x");
        t.write_untrusted(buf + 256, b"y");
        // Sequence words deliberately out of order and non-contiguous:
        // unsequenced sends ignore them and commit in slot order.
        let mut descs = Vec::new();
        descs.extend_from_slice(&((9u64 << 32) | 1).to_le_bytes());
        descs.extend_from_slice(&0u64.to_le_bytes());
        descs.extend_from_slice(&((3u64 << 32) | 1).to_le_bytes());
        descs.extend_from_slice(&0u64.to_le_bytes());
        t.write_untrusted(desc, &descs);
        let c0 = t.now();
        assert_eq!(
            m.host
                .send_mmsg(&mut t, fd, buf, 256, 2, desc, SendMode::Unsequenced),
            2
        );
        let unseq_cost = t.now() - c0;
        assert_eq!(m.host.pop_response(fd).unwrap(), b"x");
        assert_eq!(m.host.pop_response(fd).unwrap(), b"y");

        // The sequenced path pays tx_reorder per message on top.
        let fd2 = m.host.socket(&t, 4096);
        let mut descs = Vec::new();
        descs.extend_from_slice(&1u64.to_le_bytes());
        descs.extend_from_slice(&0u64.to_le_bytes());
        descs.extend_from_slice(&((1u64 << 32) | 1).to_le_bytes());
        descs.extend_from_slice(&0u64.to_le_bytes());
        t.write_untrusted(desc, &descs);
        let c1 = t.now();
        assert_eq!(
            m.host
                .send_mmsg(&mut t, fd2, buf, 256, 2, desc, SendMode::Sequenced),
            2
        );
        let seq_cost = t.now() - c1;
        assert_eq!(seq_cost - unseq_cost, 2 * m.cfg.costs.tx_reorder);
    }

    #[test]
    fn socket_set_opens_independent_shards() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let t = ThreadCtx::untrusted(&m, 0);
        let fds = m.host.socket_set(&t, 3, 4096);
        assert_eq!(fds.len(), 3);
        m.host.push_request(&t, fds[1], b"only shard 1");
        assert_eq!(m.host.rx_pending(fds[0]), 0);
        assert_eq!(m.host.rx_pending(fds[1]), 1);
        assert_eq!(m.host.rx_pending(fds[2]), 0);
    }

    #[test]
    fn explicit_enqueue_stamp_rides_the_descriptor() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut t = ThreadCtx::untrusted(&m, 0);
        let fd = m.host.socket(&t, 4096);
        m.host.push_request_at(&t, fd, b"stamped", 0xdead_beef);
        let buf = m.alloc_untrusted(512);
        let desc = m.alloc_untrusted(DESC_STRIDE);
        assert_eq!(m.host.recv_mmsg(&mut t, fd, buf, 512, 1, desc), 1);
        let mut descs = vec![0u8; DESC_STRIDE];
        t.read_untrusted(desc, &mut descs);
        let enq = u64::from_le_bytes(descs[8..16].try_into().unwrap());
        assert_eq!(enq, 0xdead_beef);
    }

    #[test]
    fn empty_queue_would_block() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut t = ThreadCtx::untrusted(&m, 0);
        let fd = m.host.socket(&t, 4096);
        let buf = m.alloc_untrusted(64);
        assert_eq!(m.host.recv(&mut t, fd, buf, 64), None);
    }

    #[test]
    fn syscalls_charge_cycles_and_pollute() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let mut t = ThreadCtx::untrusted(&m, 0);
        let fd = m.host.socket(&t, 64 << 10);
        m.host.push_request(&t, fd, &vec![7u8; 4096]);
        let buf = m.alloc_untrusted(4096);
        let s0 = m.stats.snapshot();
        let c0 = t.now();
        m.host.recv(&mut t, fd, buf, 4096).unwrap();
        assert!(t.now() - c0 >= m.cfg.costs.syscall);
        let d = m.stats.snapshot() - s0;
        assert_eq!(d.syscalls, 1);
        assert!(d.llc_misses > 0, "I/O buffers must touch the LLC");
    }

    #[test]
    #[should_panic(expected = "staging ring overrun")]
    fn generator_cannot_overrun() {
        let m = SgxMachine::new(MachineConfig::tiny());
        let t = ThreadCtx::untrusted(&m, 0);
        let fd = m.host.socket(&t, 1024);
        m.host.push_request(&t, fd, &vec![0u8; 600]);
        m.host.push_request(&t, fd, &vec![0u8; 600]);
    }
}
