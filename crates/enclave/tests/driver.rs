//! Driver-level integration tests: fair-share eviction, enclave
//! teardown, swap correctness under pressure, and shootdown effects.

use std::sync::Arc;

use eleos_enclave::machine::{MachineConfig, SgxMachine};
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::costs::PAGE_SIZE;

fn machine(epc_pages: usize) -> Arc<SgxMachine> {
    SgxMachine::new(MachineConfig {
        epc_bytes: epc_pages * PAGE_SIZE,
        ..MachineConfig::tiny()
    })
}

#[test]
fn eviction_targets_the_enclave_over_its_fair_share() {
    let m = machine(64);
    let hog = m.driver.create_enclave(&m, 256 * PAGE_SIZE);
    let modest = m.driver.create_enclave(&m, 256 * PAGE_SIZE);

    // The hog touches 48 pages (over its 32-frame fair share); the
    // modest enclave touches 8.
    let mut th = ThreadCtx::for_enclave(&m, &hog, 0);
    th.enter();
    let hb = hog.alloc(64 * PAGE_SIZE);
    for p in 0..48u64 {
        th.write_enclave(hb + p * PAGE_SIZE as u64, &[1u8; 8]);
    }
    th.exit();
    let mut tm = ThreadCtx::for_enclave(&m, &modest, 1);
    tm.enter();
    let mb = modest.alloc(64 * PAGE_SIZE);
    for p in 0..8u64 {
        tm.write_enclave(mb + p * PAGE_SIZE as u64, &[2u8; 8]);
    }
    // Push the system into eviction: the hog keeps faulting.
    th.enter();
    for p in 0..48u64 {
        let mut b = [0u8; 8];
        th.read_enclave(hb + p * PAGE_SIZE as u64, &mut b);
    }
    th.exit();
    // The modest enclave should still be fully resident.
    assert_eq!(
        modest.resident_pages(),
        8,
        "fair-share eviction must spare the under-share enclave"
    );
    tm.exit();
}

#[test]
fn destroyed_enclaves_release_their_frames() {
    let m = machine(32);
    let before = m.driver.free_frames();
    let e = m.driver.create_enclave(&m, 64 * PAGE_SIZE);
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    let b = e.alloc(16 * PAGE_SIZE);
    for p in 0..16u64 {
        t.write_enclave(b + p * PAGE_SIZE as u64, &[1u8; 8]);
    }
    t.exit();
    assert!(m.driver.free_frames() < before);
    m.driver.destroy_enclave(&m, &e);
    assert_eq!(m.driver.free_frames(), before, "frames leaked on destroy");
    assert_eq!(m.driver.active_enclaves(), 0);
}

#[test]
fn ioctl_share_tracks_enclave_count() {
    let m = machine(60);
    let e1 = m.driver.create_enclave(&m, PAGE_SIZE);
    assert_eq!(m.driver.available_epc_for(e1.id), 60);
    let e2 = m.driver.create_enclave(&m, PAGE_SIZE);
    assert_eq!(m.driver.available_epc_for(e1.id), 30);
    let e3 = m.driver.create_enclave(&m, PAGE_SIZE);
    assert_eq!(m.driver.available_epc_for(e3.id), 20);
    m.driver.destroy_enclave(&m, &e2);
    assert_eq!(m.driver.available_epc_for(e1.id), 30);
    m.driver.destroy_enclave(&m, &e1);
    m.driver.destroy_enclave(&m, &e3);
}

#[test]
fn heavy_swap_churn_preserves_every_page() {
    // 3 enclaves, each with a working set bigger than its share,
    // interleaved: contents must survive arbitrary EWB/ELDU churn.
    let m = machine(48);
    let enclaves: Vec<_> = (0..3)
        .map(|_| m.driver.create_enclave(&m, 256 * PAGE_SIZE))
        .collect();
    let mut threads: Vec<_> = enclaves
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let mut t = ThreadCtx::for_enclave(&m, e, i);
            t.enter();
            t
        })
        .collect();
    let bases: Vec<u64> = enclaves.iter().map(|e| e.alloc(40 * PAGE_SIZE)).collect();
    for round in 0..3u64 {
        for (i, t) in threads.iter_mut().enumerate() {
            for p in 0..40u64 {
                let tag = [(i as u8 + 1) * 10 + (p % 7) as u8 + round as u8; 16];
                t.write_enclave(bases[i] + p * PAGE_SIZE as u64, &tag);
            }
        }
        for (i, t) in threads.iter_mut().enumerate() {
            for p in (0..40u64).rev() {
                let mut b = [0u8; 16];
                t.read_enclave(bases[i] + p * PAGE_SIZE as u64, &mut b);
                assert_eq!(
                    b,
                    [(i as u8 + 1) * 10 + (p % 7) as u8 + round as u8; 16],
                    "enclave {i} page {p} round {round}"
                );
            }
        }
    }
    let s = m.stats.snapshot();
    assert!(s.hw_evictions > 100, "churn must page heavily");
    for t in &mut threads {
        t.exit();
    }
}

#[test]
fn shootdown_interrupt_flushes_victim_tlb() {
    let m = machine(16);
    let e = m.driver.create_enclave(&m, 128 * PAGE_SIZE);
    // Thread on core 0 warms its TLB, then a fault storm from core 1
    // evicts pages installed by core 0, posting IPIs to it.
    let mut t0 = ThreadCtx::for_enclave(&m, &e, 0);
    t0.enter();
    let b = e.alloc(64 * PAGE_SIZE);
    for p in 0..8u64 {
        t0.write_enclave(b + p * PAGE_SIZE as u64, &[1u8; 8]);
    }
    let mut t1 = ThreadCtx::for_enclave(&m, &e, 1);
    t1.enter();
    for p in 8..64u64 {
        t1.write_enclave(b + p * PAGE_SIZE as u64, &[2u8; 8]);
    }
    let ipis = m.stats.snapshot().ipis;
    assert!(ipis > 0, "evicting core-0 pages must IPI core 0");
    let clock0_before = t0.now();
    // Core 0's next access observes the interrupt (AEX cost was
    // already charged remotely by the driver).
    let mut buf = [0u8; 8];
    t0.read_enclave(b, &mut buf);
    assert!(t0.now() > clock0_before);
    t0.exit();
    t1.exit();
}

#[test]
fn swap_is_per_enclave_isolated() {
    // Two enclaves writing the same page numbers must never observe
    // each other's data, even with constant swapping.
    let m = machine(8);
    let e1 = m.driver.create_enclave(&m, 64 * PAGE_SIZE);
    let e2 = m.driver.create_enclave(&m, 64 * PAGE_SIZE);
    let mut t1 = ThreadCtx::for_enclave(&m, &e1, 0);
    let mut t2 = ThreadCtx::for_enclave(&m, &e2, 1);
    t1.enter();
    t2.enter();
    let b1 = e1.alloc(16 * PAGE_SIZE);
    let b2 = e2.alloc(16 * PAGE_SIZE);
    assert_eq!(b1, b2, "same linear addresses in both enclaves");
    for p in 0..16u64 {
        t1.write_enclave(b1 + p * PAGE_SIZE as u64, &[0x11u8; 32]);
        t2.write_enclave(b2 + p * PAGE_SIZE as u64, &[0x22u8; 32]);
    }
    for p in 0..16u64 {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        t1.read_enclave(b1 + p * PAGE_SIZE as u64, &mut a);
        t2.read_enclave(b2 + p * PAGE_SIZE as u64, &mut b);
        assert_eq!(a, [0x11u8; 32]);
        assert_eq!(b, [0x22u8; 32]);
    }
    t1.exit();
    t2.exit();
}
