//! Property-based tests for the crypto substrate.

use eleos_crypto::aes::Aes;
use eleos_crypto::ctr::Ctr128;
use eleos_crypto::gcm::{AesGcm128, AesGcm256, Nonce, Tag};
use eleos_crypto::ghash::gf128_mul;
use eleos_crypto::{OpenJob, SealJob, Sealer};
use proptest::prelude::*;

/// Deterministic distinct nonce for message `i` of a batch.
fn nonce_for(i: usize) -> Nonce {
    let mut n = [0u8; 12];
    n[..8].copy_from_slice(&(i as u64).to_le_bytes());
    n
}

proptest! {
    /// AES decrypt inverts encrypt for any key/block (128-bit).
    #[test]
    fn aes128_roundtrip(key in prop::array::uniform16(any::<u8>()),
                        block in prop::array::uniform16(any::<u8>())) {
        let aes = Aes::new_128(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    /// AES decrypt inverts encrypt for any key/block (256-bit).
    #[test]
    fn aes256_roundtrip(key in prop::array::uniform32(any::<u8>()),
                        block in prop::array::uniform16(any::<u8>())) {
        let aes = Aes::new_256(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    /// CTR applied twice is the identity, for any length.
    #[test]
    fn ctr_involution(key in prop::array::uniform16(any::<u8>()),
                      nonce in prop::array::uniform12(any::<u8>()),
                      data in prop::collection::vec(any::<u8>(), 0..512)) {
        let c = Ctr128::new(&key);
        let mut buf = data.clone();
        c.apply(&nonce, &mut buf);
        c.apply(&nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// GCM open(seal(x)) == x for arbitrary data and AAD.
    #[test]
    fn gcm128_roundtrip(key in prop::array::uniform16(any::<u8>()),
                        nonce in prop::array::uniform12(any::<u8>()),
                        aad in prop::collection::vec(any::<u8>(), 0..64),
                        data in prop::collection::vec(any::<u8>(), 0..512)) {
        let gcm = AesGcm128::new(&key);
        let mut buf = data.clone();
        let tag = gcm.seal(&nonce, &aad, &mut buf);
        prop_assert!(gcm.open(&nonce, &aad, &mut buf, &tag).is_ok());
        prop_assert_eq!(buf, data);
    }

    /// GCM-256 roundtrip.
    #[test]
    fn gcm256_roundtrip(key in prop::array::uniform32(any::<u8>()),
                        nonce in prop::array::uniform12(any::<u8>()),
                        data in prop::collection::vec(any::<u8>(), 0..256)) {
        let gcm = AesGcm256::new(&key);
        let mut buf = data.clone();
        let tag = gcm.seal(&nonce, &[], &mut buf);
        prop_assert!(gcm.open(&nonce, &[], &mut buf, &tag).is_ok());
        prop_assert_eq!(buf, data);
    }

    /// Any single-bit flip in the ciphertext is detected.
    #[test]
    fn gcm_detects_bit_flips(key in prop::array::uniform16(any::<u8>()),
                             nonce in prop::array::uniform12(any::<u8>()),
                             data in prop::collection::vec(any::<u8>(), 1..256),
                             flip_byte in 0usize..256, flip_bit in 0u8..8) {
        let gcm = AesGcm128::new(&key);
        let mut buf = data.clone();
        let tag = gcm.seal(&nonce, &[], &mut buf);
        let idx = flip_byte % buf.len();
        buf[idx] ^= 1 << flip_bit;
        prop_assert!(gcm.open(&nonce, &[], &mut buf, &tag).is_err());
    }

    /// Any tag corruption is detected.
    #[test]
    fn gcm_detects_tag_flips(key in prop::array::uniform16(any::<u8>()),
                             nonce in prop::array::uniform12(any::<u8>()),
                             data in prop::collection::vec(any::<u8>(), 0..64),
                             flip_byte in 0usize..16, flip_bit in 0u8..8) {
        let gcm = AesGcm128::new(&key);
        let mut buf = data;
        let mut tag = gcm.seal(&nonce, &[], &mut buf);
        tag[flip_byte] ^= 1 << flip_bit;
        prop_assert!(gcm.open(&nonce, &[], &mut buf, &tag).is_err());
    }

    /// `seal_batch` is byte-equivalent to sealing each message alone,
    /// for any batch size (including empty and single-message batches)
    /// and any message lengths: same ciphertexts, same tags.
    #[test]
    fn gcm_seal_batch_equals_sequential(
        key in prop::array::uniform16(any::<u8>()),
        msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..160), 0..9),
        aad in prop::collection::vec(any::<u8>(), 0..32)) {
        let gcm = AesGcm128::new(&key);
        // Sequential reference: one seal per message.
        let mut seq: Vec<Vec<u8>> = msgs.clone();
        let seq_tags: Vec<Tag> = seq
            .iter_mut()
            .enumerate()
            .map(|(i, m)| gcm.seal(&nonce_for(i), &aad, m))
            .collect();
        // One scatter-gather batch over the same messages.
        let mut batched: Vec<Vec<u8>> = msgs.clone();
        let mut jobs: Vec<SealJob<'_>> = batched
            .iter_mut()
            .enumerate()
            .map(|(i, m)| SealJob { nonce: nonce_for(i), aad: &aad, data: m })
            .collect();
        let batch_tags = gcm.seal_batch(&mut jobs);
        prop_assert_eq!(&batched, &seq);
        prop_assert_eq!(&batch_tags, &seq_tags);
        // And the batch opens back to the plaintexts in one pass.
        let mut jobs: Vec<OpenJob<'_>> = batched
            .iter_mut()
            .zip(batch_tags.iter())
            .enumerate()
            .map(|(i, (m, tag))| OpenJob { nonce: nonce_for(i), aad: &aad, data: m, tag: *tag })
            .collect();
        prop_assert!(gcm.open_batch(&mut jobs).is_ok());
        prop_assert_eq!(&batched, &msgs);
    }

    /// `open_batch` is byte-equivalent to opening each message alone.
    #[test]
    fn gcm_open_batch_equals_sequential(
        key in prop::array::uniform16(any::<u8>()),
        msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..160), 0..9)) {
        let gcm = AesGcm128::new(&key);
        let mut sealed: Vec<Vec<u8>> = msgs.clone();
        let tags: Vec<Tag> = sealed
            .iter_mut()
            .enumerate()
            .map(|(i, m)| gcm.seal(&nonce_for(i), &[], m))
            .collect();
        // Sequential reference opens.
        let mut seq = sealed.clone();
        for (i, m) in seq.iter_mut().enumerate() {
            prop_assert!(gcm.open(&nonce_for(i), &[], m, &tags[i]).is_ok());
        }
        // Batched open of the same ciphertexts.
        let mut batched = sealed.clone();
        let mut jobs: Vec<OpenJob<'_>> = batched
            .iter_mut()
            .zip(tags.iter())
            .enumerate()
            .map(|(i, (m, tag))| OpenJob { nonce: nonce_for(i), aad: &[], data: m, tag: *tag })
            .collect();
        prop_assert!(gcm.open_batch(&mut jobs).is_ok());
        prop_assert_eq!(&batched, &seq);
        prop_assert_eq!(&batched, &msgs);
    }

    /// The CTR sealer's batch path matches per-message `apply` and the
    /// involution still holds through the trait.
    #[test]
    fn ctr_seal_batch_equals_sequential(
        key in prop::array::uniform16(any::<u8>()),
        msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..160), 0..9)) {
        let ctr = Ctr128::new(&key);
        let mut seq: Vec<Vec<u8>> = msgs.clone();
        for (i, m) in seq.iter_mut().enumerate() {
            ctr.apply(&nonce_for(i), m);
        }
        let mut batched: Vec<Vec<u8>> = msgs.clone();
        let mut jobs: Vec<SealJob<'_>> = batched
            .iter_mut()
            .enumerate()
            .map(|(i, m)| SealJob { nonce: nonce_for(i), aad: &[], data: m })
            .collect();
        let tags = ctr.seal_batch(&mut jobs);
        prop_assert!(tags.iter().all(|t| *t == [0u8; 16]), "CTR tags are zero");
        prop_assert_eq!(&batched, &seq);
        // open_batch is the inverse pass (and never fails: no tags).
        let mut jobs: Vec<OpenJob<'_>> = batched
            .iter_mut()
            .enumerate()
            .map(|(i, m)| OpenJob { nonce: nonce_for(i), aad: &[], data: m, tag: [0u8; 16] })
            .collect();
        prop_assert!(ctr.open_batch(&mut jobs).is_ok());
        prop_assert_eq!(&batched, &msgs);
    }

    /// GF(2^128) multiplication is commutative and associative.
    #[test]
    fn gf128_algebra(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        prop_assert_eq!(gf128_mul(a, b), gf128_mul(b, a));
        prop_assert_eq!(gf128_mul(gf128_mul(a, b), c), gf128_mul(a, gf128_mul(b, c)));
        prop_assert_eq!(gf128_mul(a, b ^ c), gf128_mul(a, b) ^ gf128_mul(a, c));
    }
}
