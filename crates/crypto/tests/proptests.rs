//! Property-based tests for the crypto substrate.

use eleos_crypto::aes::Aes;
use eleos_crypto::ctr::Ctr128;
use eleos_crypto::gcm::{AesGcm128, AesGcm256};
use eleos_crypto::ghash::gf128_mul;
use proptest::prelude::*;

proptest! {
    /// AES decrypt inverts encrypt for any key/block (128-bit).
    #[test]
    fn aes128_roundtrip(key in prop::array::uniform16(any::<u8>()),
                        block in prop::array::uniform16(any::<u8>())) {
        let aes = Aes::new_128(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    /// AES decrypt inverts encrypt for any key/block (256-bit).
    #[test]
    fn aes256_roundtrip(key in prop::array::uniform32(any::<u8>()),
                        block in prop::array::uniform16(any::<u8>())) {
        let aes = Aes::new_256(&key);
        let mut b = block;
        aes.encrypt_block(&mut b);
        aes.decrypt_block(&mut b);
        prop_assert_eq!(b, block);
    }

    /// CTR applied twice is the identity, for any length.
    #[test]
    fn ctr_involution(key in prop::array::uniform16(any::<u8>()),
                      nonce in prop::array::uniform12(any::<u8>()),
                      data in prop::collection::vec(any::<u8>(), 0..512)) {
        let c = Ctr128::new(&key);
        let mut buf = data.clone();
        c.apply(&nonce, &mut buf);
        c.apply(&nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// GCM open(seal(x)) == x for arbitrary data and AAD.
    #[test]
    fn gcm128_roundtrip(key in prop::array::uniform16(any::<u8>()),
                        nonce in prop::array::uniform12(any::<u8>()),
                        aad in prop::collection::vec(any::<u8>(), 0..64),
                        data in prop::collection::vec(any::<u8>(), 0..512)) {
        let gcm = AesGcm128::new(&key);
        let mut buf = data.clone();
        let tag = gcm.seal(&nonce, &aad, &mut buf);
        prop_assert!(gcm.open(&nonce, &aad, &mut buf, &tag).is_ok());
        prop_assert_eq!(buf, data);
    }

    /// GCM-256 roundtrip.
    #[test]
    fn gcm256_roundtrip(key in prop::array::uniform32(any::<u8>()),
                        nonce in prop::array::uniform12(any::<u8>()),
                        data in prop::collection::vec(any::<u8>(), 0..256)) {
        let gcm = AesGcm256::new(&key);
        let mut buf = data.clone();
        let tag = gcm.seal(&nonce, &[], &mut buf);
        prop_assert!(gcm.open(&nonce, &[], &mut buf, &tag).is_ok());
        prop_assert_eq!(buf, data);
    }

    /// Any single-bit flip in the ciphertext is detected.
    #[test]
    fn gcm_detects_bit_flips(key in prop::array::uniform16(any::<u8>()),
                             nonce in prop::array::uniform12(any::<u8>()),
                             data in prop::collection::vec(any::<u8>(), 1..256),
                             flip_byte in 0usize..256, flip_bit in 0u8..8) {
        let gcm = AesGcm128::new(&key);
        let mut buf = data.clone();
        let tag = gcm.seal(&nonce, &[], &mut buf);
        let idx = flip_byte % buf.len();
        buf[idx] ^= 1 << flip_bit;
        prop_assert!(gcm.open(&nonce, &[], &mut buf, &tag).is_err());
    }

    /// Any tag corruption is detected.
    #[test]
    fn gcm_detects_tag_flips(key in prop::array::uniform16(any::<u8>()),
                             nonce in prop::array::uniform12(any::<u8>()),
                             data in prop::collection::vec(any::<u8>(), 0..64),
                             flip_byte in 0usize..16, flip_bit in 0u8..8) {
        let gcm = AesGcm128::new(&key);
        let mut buf = data;
        let mut tag = gcm.seal(&nonce, &[], &mut buf);
        tag[flip_byte] ^= 1 << flip_bit;
        prop_assert!(gcm.open(&nonce, &[], &mut buf, &tag).is_err());
    }

    /// GF(2^128) multiplication is commutative and associative.
    #[test]
    fn gf128_algebra(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        prop_assert_eq!(gf128_mul(a, b), gf128_mul(b, a));
        prop_assert_eq!(gf128_mul(gf128_mul(a, b), c), gf128_mul(a, gf128_mul(b, c)));
        prop_assert_eq!(gf128_mul(a, b ^ c), gf128_mul(a, b) ^ gf128_mul(a, c));
    }
}
