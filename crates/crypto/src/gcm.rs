//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! SUVM seals evicted pages with AES-GCM using a random per-page nonce
//! and a random per-application key kept in the EPC (§3.2.3). The nonce
//! and tag are stored in the in-enclave crypto-metadata page table, which
//! is what gives evicted pages privacy, integrity *and freshness*: an
//! attacker replaying an older sealed page presents a tag that no longer
//! matches the nonce recorded for the page.

use crate::aes::{Aes, Block};
use crate::ctr::{ctr_xor, inc32};
use crate::ghash::{Ghash, GhashKey};
use crate::sealer::{BatchAuthError, OpenJob, SealJob, Sealer};
use crate::{ct_eq, AuthError};

/// The GCM authentication tag length used throughout Eleos (full 128-bit
/// tags, like the SGX `EWB` metadata).
pub const TAG_LEN: usize = 16;
/// The GCM nonce length (96-bit fast path of SP 800-38D).
pub const NONCE_LEN: usize = 12;

/// An authentication tag.
pub type Tag = [u8; TAG_LEN];
/// A 96-bit GCM nonce.
pub type Nonce = [u8; NONCE_LEN];

/// AES-GCM with a 128-bit key.
pub struct AesGcm128 {
    aes: Aes,
    h: GhashKey,
}

/// AES-GCM with a 256-bit key.
pub struct AesGcm256 {
    aes: Aes,
    h: GhashKey,
}

fn j0(nonce: &Nonce) -> Block {
    let mut block = [0u8; 16];
    block[..NONCE_LEN].copy_from_slice(nonce);
    block[15] = 1;
    block
}

fn seal_impl(aes: &Aes, h: &GhashKey, nonce: &Nonce, aad: &[u8], data: &mut [u8]) -> Tag {
    let j0 = j0(nonce);
    let mut ctr = j0;
    inc32(&mut ctr);
    ctr_xor(aes, &ctr, data);
    let mut g = Ghash::new(h);
    g.update_padded(aad);
    g.update_padded(data);
    g.update_lengths(aad.len() as u64, data.len() as u64);
    let mut tag = g.finalize();
    let ek_j0 = aes.encrypt(&j0);
    for (t, k) in tag.iter_mut().zip(ek_j0.iter()) {
        *t ^= k;
    }
    tag
}

fn open_impl(
    aes: &Aes,
    h: &GhashKey,
    nonce: &Nonce,
    aad: &[u8],
    data: &mut [u8],
    tag: &Tag,
) -> Result<(), AuthError> {
    let j0 = j0(nonce);
    let mut g = Ghash::new(h);
    g.update_padded(aad);
    g.update_padded(data);
    g.update_lengths(aad.len() as u64, data.len() as u64);
    let mut expect = g.finalize();
    let ek_j0 = aes.encrypt(&j0);
    for (t, k) in expect.iter_mut().zip(ek_j0.iter()) {
        *t ^= k;
    }
    if !ct_eq(&expect, tag) {
        return Err(AuthError);
    }
    let mut ctr = j0;
    inc32(&mut ctr);
    ctr_xor(aes, &ctr, data);
    Ok(())
}

macro_rules! impl_gcm {
    ($name:ident, $ctor:ident, $keylen:expr, $label:expr) => {
        impl $name {
            /// Creates a GCM instance, precomputing the AES key
            /// schedule and the GHASH table (the state a batch
            /// [`Sealer::setup`] amortizes).
            #[must_use]
            pub fn new(key: &[u8; $keylen]) -> Self {
                let aes = Aes::$ctor(key);
                let h = GhashKey::new(&aes.encrypt(&[0u8; 16]));
                Self { aes, h }
            }
        }

        impl Sealer for $name {
            fn name(&self) -> &'static str {
                $label
            }

            fn seal_batch(&self, jobs: &mut [SealJob<'_>]) -> Vec<Tag> {
                self.setup();
                jobs.iter_mut()
                    .map(|j| seal_impl(&self.aes, &self.h, &j.nonce, j.aad, j.data))
                    .collect()
            }

            fn open_batch(&self, jobs: &mut [OpenJob<'_>]) -> Result<(), BatchAuthError> {
                self.setup();
                for (index, j) in jobs.iter_mut().enumerate() {
                    open_impl(&self.aes, &self.h, &j.nonce, j.aad, j.data, &j.tag)
                        .map_err(|AuthError| BatchAuthError { index })?;
                }
                Ok(())
            }
        }
    };
}

impl_gcm!(AesGcm128, new_128, 16, "aes128-gcm");
impl_gcm!(AesGcm256, new_256, 32, "aes256-gcm");

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// GCM spec test case 1: empty everything, zero key/IV.
    #[test]
    fn gcm_test_case_1() {
        let gcm = AesGcm128::new(&[0u8; 16]);
        let mut data = [0u8; 0];
        let tag = gcm.seal(&[0u8; 12], &[], &mut data);
        assert_eq!(tag.to_vec(), hex("58e2fccefa7e3061367f1d57a4e7455a"));
    }

    /// GCM spec test case 2: one zero block of plaintext.
    #[test]
    fn gcm_test_case_2() {
        let gcm = AesGcm128::new(&[0u8; 16]);
        let mut data = [0u8; 16];
        let tag = gcm.seal(&[0u8; 12], &[], &mut data);
        assert_eq!(data.to_vec(), hex("0388dace60b6a392f328c2b971b2fe78"));
        assert_eq!(tag.to_vec(), hex("ab6e47d42cec13bdf53a67b21257bddf"));
    }

    /// GCM spec test case 3: 4 blocks of plaintext, no AAD.
    #[test]
    fn gcm_test_case_3() {
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let nonce: Nonce = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let mut data = hex("d9313225f88406e5a55909c5aff5269a\
             86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525\
             b16aedf5aa0de657ba637b391aafd255");
        let gcm = AesGcm128::new(&key);
        let tag = gcm.seal(&nonce, &[], &mut data);
        assert_eq!(
            data,
            hex("42831ec2217774244b7221b784d0d49c\
                 e3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa05\
                 1ba30b396a0aac973d58e091473f5985")
        );
        assert_eq!(tag.to_vec(), hex("4d5c2af327cd64a62cf35abd2ba6fab4"));
    }

    /// GCM spec test case 4: AAD and a truncated final block.
    #[test]
    fn gcm_test_case_4() {
        let key: [u8; 16] = hex("feffe9928665731c6d6a8f9467308308").try_into().unwrap();
        let nonce: Nonce = hex("cafebabefacedbaddecaf888").try_into().unwrap();
        let aad = hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let mut data = hex("d9313225f88406e5a55909c5aff5269a\
             86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525\
             b16aedf5aa0de657ba637b39");
        let gcm = AesGcm128::new(&key);
        let tag = gcm.seal(&nonce, &aad, &mut data);
        assert_eq!(
            data,
            hex("42831ec2217774244b7221b784d0d49c\
                 e3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa05\
                 1ba30b396a0aac973d58e091")
        );
        assert_eq!(tag.to_vec(), hex("5bc94fbc3221a5db94fae95ae7121a47"));
    }

    #[test]
    fn roundtrip_and_tamper_detection() {
        let gcm = AesGcm128::new(&[0x55u8; 16]);
        let nonce = [0xaau8; 12];
        let aad = b"page 7";
        let plain: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let mut buf = plain.clone();
        let tag = gcm.seal(&nonce, aad, &mut buf);
        assert_ne!(buf, plain);

        // Flipping one ciphertext bit must fail authentication.
        let mut tampered = buf.clone();
        tampered[100] ^= 1;
        assert_eq!(gcm.open(&nonce, aad, &mut tampered, &tag), Err(AuthError));

        // Wrong AAD must fail.
        let mut wrong_aad = buf.clone();
        assert_eq!(
            gcm.open(&nonce, b"page 8", &mut wrong_aad, &tag),
            Err(AuthError)
        );

        // Wrong nonce must fail (freshness: a replayed old page carries a
        // tag for a different recorded nonce).
        let mut wrong_nonce = buf.clone();
        assert_eq!(
            gcm.open(&[0xabu8; 12], aad, &mut wrong_nonce, &tag),
            Err(AuthError)
        );

        // The genuine triple decrypts back to the plaintext.
        gcm.open(&nonce, aad, &mut buf, &tag).unwrap();
        assert_eq!(buf, plain);
    }

    #[test]
    fn gcm256_roundtrip() {
        let gcm = AesGcm256::new(&[0x11u8; 32]);
        let nonce = [1u8; 12];
        let mut buf = b"sub-page granular sealed data".to_vec();
        let tag = gcm.seal(&nonce, &[], &mut buf);
        gcm.open(&nonce, &[], &mut buf, &tag).unwrap();
        assert_eq!(buf, b"sub-page granular sealed data");
    }

    #[test]
    fn empty_plaintext_with_aad() {
        let gcm = AesGcm128::new(&[3u8; 16]);
        let nonce = [4u8; 12];
        let mut empty = [0u8; 0];
        let tag = gcm.seal(&nonce, b"header only", &mut empty);
        assert!(gcm.open(&nonce, b"header only", &mut empty, &tag).is_ok());
        assert!(gcm.open(&nonce, b"header onlx", &mut empty, &tag).is_err());
    }
}
