//! The batched sealing contract shared by the wire codec and SUVM.
//!
//! Both consumers of this crate seal *batches*: the SUVM swapper drains
//! a write-back queue of dirty pages, and the server reap path decrypts
//! a whole sorted batch of requests in one pass. Doing that well means
//! paying the per-operation setup — AES key schedule in registers,
//! GHASH table hot in L1 — once per batch instead of once per message.
//! [`Sealer`] is where that contract lives: [`Sealer::setup`] is the
//! amortization point, [`Sealer::seal_batch`] / [`Sealer::open_batch`]
//! are the scatter-gather entry points, and the single-message
//! [`Sealer::seal`] / [`Sealer::open`] are batches of one.
//!
//! A batched seal is byte-for-byte identical to sealing each message
//! alone — every job carries its own nonce, AAD and tag. The win is
//! purely in the setup cost, which the simulator charges as the full
//! `crypto_fixed` for the first message of a batch and a quarter of it
//! for follow-ons (`CostModel::crypto_batched` in `eleos-sim`, the same
//! model the SUVM write-back drain uses).

use crate::gcm::{Nonce, Tag, TAG_LEN};
use crate::AuthError;

/// One message of a scatter-gather seal batch.
///
/// `data` is encrypted in place; the tag (over `aad || ciphertext` for
/// authenticated sealers) is returned by [`Sealer::seal_batch`].
pub struct SealJob<'a> {
    /// Per-message nonce; a (key, nonce) pair must never repeat.
    pub nonce: Nonce,
    /// Additional authenticated data (ignored by unauthenticated
    /// sealers).
    pub aad: &'a [u8],
    /// Plaintext in, ciphertext out.
    pub data: &'a mut [u8],
}

/// One message of a scatter-gather open batch.
pub struct OpenJob<'a> {
    /// The nonce the message was sealed under.
    pub nonce: Nonce,
    /// Additional authenticated data (ignored by unauthenticated
    /// sealers).
    pub aad: &'a [u8],
    /// Ciphertext in, plaintext out.
    pub data: &'a mut [u8],
    /// The tag to verify (ignored by unauthenticated sealers).
    pub tag: Tag,
}

/// Authentication failure of one message within an open batch.
///
/// Jobs *before* `index` were verified and decrypted in place; the
/// failing job and everything after it are left as ciphertext.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchAuthError {
    /// Position of the first job that failed its tag check.
    pub index: usize,
}

impl core::fmt::Display for BatchAuthError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "authentication tag mismatch at batch index {}",
            self.index
        )
    }
}

impl std::error::Error for BatchAuthError {}

impl From<BatchAuthError> for AuthError {
    fn from(_: BatchAuthError) -> Self {
        AuthError
    }
}

/// A cipher that seals and opens scatter-gather batches under one
/// amortized setup.
pub trait Sealer: Send + Sync {
    /// Short label for stats and experiment output.
    fn name(&self) -> &'static str;

    /// The per-batch amortization point: (re-)establishes whatever
    /// per-key state sealing needs — key schedule, GHASH table.
    ///
    /// The implementations here precompute that state in their
    /// constructors, so this is a no-op *functionally*; it exists so
    /// the cost contract has a name. Batch entry points conceptually
    /// run `setup()` once and then stream messages, which is why the
    /// cost model bills the first message of a batch the full
    /// `crypto_fixed` and follow-ons a quarter of it.
    fn setup(&self) {}

    /// Seals every job in place and returns one tag per job.
    fn seal_batch(&self, jobs: &mut [SealJob<'_>]) -> Vec<Tag>;

    /// Verifies and decrypts every job in place, stopping at the first
    /// authentication failure.
    ///
    /// On `Err`, jobs before the failing index hold plaintext, the
    /// rest still hold ciphertext; callers must not use the failing
    /// job's buffer.
    fn open_batch(&self, jobs: &mut [OpenJob<'_>]) -> Result<(), BatchAuthError>;

    /// Seals a single message: a batch of one.
    fn seal(&self, nonce: &Nonce, aad: &[u8], data: &mut [u8]) -> Tag {
        let mut jobs = [SealJob {
            nonce: *nonce,
            aad,
            data,
        }];
        self.seal_batch(&mut jobs)
            .pop()
            .expect("a batch of one yields one tag")
    }

    /// Verifies and decrypts a single message: a batch of one.
    ///
    /// On failure `data` is left as the (unauthenticated) ciphertext
    /// and [`AuthError`] is returned; callers must not use the buffer
    /// contents in that case.
    fn open(&self, nonce: &Nonce, aad: &[u8], data: &mut [u8], tag: &Tag) -> Result<(), AuthError> {
        let mut jobs = [OpenJob {
            nonce: *nonce,
            aad,
            data,
            tag: *tag,
        }];
        self.open_batch(&mut jobs).map_err(AuthError::from)
    }
}

/// A tag of all zeroes, returned per job by unauthenticated sealers
/// (CTR mode has no tag; the wire protocol carries none).
pub const ZERO_TAG: Tag = [0u8; TAG_LEN];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctr::Ctr128;
    use crate::gcm::AesGcm128;

    #[test]
    fn batch_auth_error_reports_index() {
        let e = BatchAuthError { index: 3 };
        assert_eq!(
            e.to_string(),
            "authentication tag mismatch at batch index 3"
        );
        assert_eq!(AuthError::from(e), AuthError);
    }

    #[test]
    fn empty_batches_are_noops() {
        let gcm = AesGcm128::new(&[1u8; 16]);
        assert!(gcm.seal_batch(&mut []).is_empty());
        assert!(gcm.open_batch(&mut []).is_ok());
        let ctr = Ctr128::new(&[1u8; 16]);
        assert!(ctr.seal_batch(&mut []).is_empty());
        assert!(ctr.open_batch(&mut []).is_ok());
    }

    #[test]
    fn open_batch_stops_at_first_bad_tag() {
        let gcm = AesGcm128::new(&[7u8; 16]);
        let mut a = b"first".to_vec();
        let mut b = b"second".to_vec();
        let mut c = b"third".to_vec();
        let tags: Vec<Tag> = [(&mut a, 0u8), (&mut b, 1), (&mut c, 2)]
            .into_iter()
            .map(|(buf, i)| gcm.seal(&[i; 12], &[], buf))
            .collect();
        let sealed_c = c.clone();
        let mut jobs = [
            OpenJob {
                nonce: [0u8; 12],
                aad: &[],
                data: &mut a,
                tag: tags[0],
            },
            OpenJob {
                nonce: [1u8; 12],
                aad: &[],
                data: &mut b,
                tag: [0u8; 16], // corrupted
            },
            OpenJob {
                nonce: [2u8; 12],
                aad: &[],
                data: &mut c,
                tag: tags[2],
            },
        ];
        assert_eq!(gcm.open_batch(&mut jobs), Err(BatchAuthError { index: 1 }));
        assert_eq!(a, b"first", "job before the failure is plaintext");
        assert_eq!(c, sealed_c, "job after the failure stays ciphertext");
    }

    #[test]
    fn sealer_names() {
        assert_eq!(Sealer::name(&AesGcm128::new(&[0u8; 16])), "aes128-gcm");
        assert_eq!(Sealer::name(&Ctr128::new(&[0u8; 16])), "aes128-ctr");
    }
}
