//! The AES block cipher (FIPS-197), with 128- and 256-bit keys.
//!
//! The S-box and its inverse are derived at compile time from the GF(2^8)
//! multiplicative inverse plus the affine transform, rather than being
//! transcribed as 256 literals; the FIPS-197 test vectors below pin the
//! result.

/// The AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;

/// A 16-byte AES block.
pub type Block = [u8; BLOCK_SIZE];

/// Multiplies two elements of GF(2^8) modulo the AES polynomial x^8 + x^4
/// + x^3 + x + 1 (0x11b).
const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    acc
}

/// Computes the multiplicative inverse in GF(2^8) (0 maps to 0), via
/// Fermat: `a^254 == a^-1` in GF(2^8).
const fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 computed by square-and-multiply over the 8-bit exponent.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp != 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn affine(x: u8) -> u8 {
    x ^ x.rotate_left(1) ^ x.rotate_left(2) ^ x.rotate_left(3) ^ x.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        sbox[i] = affine(gf_inv(i as u8));
        i += 1;
    }
    sbox
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0usize;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// The AES substitution box.
pub const SBOX: [u8; 256] = build_sbox();
/// The inverse AES substitution box.
pub const INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);

const fn build_rcon() -> [u8; 15] {
    let mut rcon = [0u8; 15];
    let mut v = 1u8;
    let mut i = 0usize;
    while i < 15 {
        rcon[i] = v;
        v = gf_mul(v, 2);
        i += 1;
    }
    rcon
}

const RCON: [u8; 15] = build_rcon();

/// Builds the round-transform lookup table `Te0`:
/// `Te0[x] = [2·S(x), S(x), S(x), 3·S(x)]` packed big-endian. The other
/// three tables are byte rotations of this one.
const fn build_te0() -> [u32; 256] {
    let mut t = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let s = SBOX[i];
        let s2 = gf_mul(s, 2);
        let s3 = gf_mul(s, 3);
        t[i] = ((s2 as u32) << 24) | ((s as u32) << 16) | ((s as u32) << 8) | (s3 as u32);
        i += 1;
    }
    t
}

const TE0: [u32; 256] = build_te0();

fn sub_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([
        SBOX[b[0] as usize],
        SBOX[b[1] as usize],
        SBOX[b[2] as usize],
        SBOX[b[3] as usize],
    ])
}

/// An expanded AES key schedule.
///
/// Supports the two key sizes the Eleos runtime needs: 128-bit (request
/// encryption, page sealing) and 256-bit (available for callers wanting
/// the larger margin).
#[derive(Clone)]
pub struct Aes {
    /// Round keys, as words in big-endian column order; `4 * (rounds+1)`.
    round_keys: Vec<u32>,
    rounds: usize,
}

impl Aes {
    /// Expands a 128-bit key.
    #[must_use]
    pub fn new_128(key: &[u8; 16]) -> Self {
        Self::expand(key, 4, 10)
    }

    /// Expands a 256-bit key.
    #[must_use]
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::expand(key, 8, 14)
    }

    /// Number of rounds for this key size (10 or 14).
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    fn expand(key: &[u8], nk: usize, rounds: usize) -> Self {
        let total = 4 * (rounds + 1);
        let mut w = Vec::with_capacity(total);
        for i in 0..nk {
            w.push(u32::from_be_bytes([
                key[4 * i],
                key[4 * i + 1],
                key[4 * i + 2],
                key[4 * i + 3],
            ]));
        }
        for i in nk..total {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                temp = sub_word(temp.rotate_left(8)) ^ ((RCON[i / nk - 1] as u32) << 24);
            } else if nk > 6 && i % nk == 4 {
                temp = sub_word(temp);
            }
            w.push(w[i - nk] ^ temp);
        }
        Self {
            round_keys: w,
            rounds,
        }
    }

    fn add_round_key(&self, state: &mut [u8; 16], round: usize) {
        for c in 0..4 {
            let k = self.round_keys[4 * round + c].to_be_bytes();
            for r in 0..4 {
                state[4 * c + r] ^= k[r];
            }
        }
    }

    /// Encrypts a single block in place.
    ///
    /// Uses the classic four-T-table formulation (here one table plus
    /// rotations, trading a shade of speed for table footprint): this
    /// path runs on every sealed page, so it is the hot loop of the
    /// whole simulation.
    pub fn encrypt_block(&self, block: &mut Block) {
        let rk = &self.round_keys;
        let mut s0 = u32::from_be_bytes(block[0..4].try_into().unwrap()) ^ rk[0];
        let mut s1 = u32::from_be_bytes(block[4..8].try_into().unwrap()) ^ rk[1];
        let mut s2 = u32::from_be_bytes(block[8..12].try_into().unwrap()) ^ rk[2];
        let mut s3 = u32::from_be_bytes(block[12..16].try_into().unwrap()) ^ rk[3];
        #[inline(always)]
        fn round_word(a: u32, b: u32, c: u32, d: u32, k: u32) -> u32 {
            TE0[(a >> 24) as usize]
                ^ TE0[((b >> 16) & 0xff) as usize].rotate_right(8)
                ^ TE0[((c >> 8) & 0xff) as usize].rotate_right(16)
                ^ TE0[(d & 0xff) as usize].rotate_right(24)
                ^ k
        }
        for round in 1..self.rounds {
            let k = &rk[4 * round..4 * round + 4];
            let t0 = round_word(s0, s1, s2, s3, k[0]);
            let t1 = round_word(s1, s2, s3, s0, k[1]);
            let t2 = round_word(s2, s3, s0, s1, k[2]);
            let t3 = round_word(s3, s0, s1, s2, k[3]);
            s0 = t0;
            s1 = t1;
            s2 = t2;
            s3 = t3;
        }
        #[inline(always)]
        fn final_word(a: u32, b: u32, c: u32, d: u32, k: u32) -> u32 {
            (((SBOX[(a >> 24) as usize] as u32) << 24)
                | ((SBOX[((b >> 16) & 0xff) as usize] as u32) << 16)
                | ((SBOX[((c >> 8) & 0xff) as usize] as u32) << 8)
                | (SBOX[(d & 0xff) as usize] as u32))
                ^ k
        }
        let k = &rk[4 * self.rounds..4 * self.rounds + 4];
        let o0 = final_word(s0, s1, s2, s3, k[0]);
        let o1 = final_word(s1, s2, s3, s0, k[1]);
        let o2 = final_word(s2, s3, s0, s1, k[2]);
        let o3 = final_word(s3, s0, s1, s2, k[3]);
        block[0..4].copy_from_slice(&o0.to_be_bytes());
        block[4..8].copy_from_slice(&o1.to_be_bytes());
        block[8..12].copy_from_slice(&o2.to_be_bytes());
        block[12..16].copy_from_slice(&o3.to_be_bytes());
    }

    /// Decrypts a single block in place.
    pub fn decrypt_block(&self, block: &mut Block) {
        let state = block;
        self.add_round_key(state, self.rounds);
        for round in (1..self.rounds).rev() {
            inv_shift_rows(state);
            inv_sub_bytes(state);
            self.add_round_key(state, round);
            inv_mix_columns(state);
        }
        inv_shift_rows(state);
        inv_sub_bytes(state);
        self.add_round_key(state, 0);
    }

    /// Encrypts a block, returning the ciphertext without mutating the
    /// input.
    #[must_use]
    pub fn encrypt(&self, block: &Block) -> Block {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

// State layout: state[4*c + r] is row r, column c (column-major, as in
// FIPS-197's byte ordering of the input block).

fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * ((c + r) % 4) + r] = s[4 * c + r];
        }
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gf_mul(col[0], 0x0e) ^ gf_mul(col[1], 0x0b) ^ gf_mul(col[2], 0x0d) ^ gf_mul(col[3], 9);
        state[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 0x0e) ^ gf_mul(col[2], 0x0b) ^ gf_mul(col[3], 0x0d);
        state[4 * c + 2] =
            gf_mul(col[0], 0x0d) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 0x0e) ^ gf_mul(col[3], 0x0b);
        state[4 * c + 3] =
            gf_mul(col[0], 0x0b) ^ gf_mul(col[1], 0x0d) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_matches_fips197_corners() {
        // Known entries from the FIPS-197 S-box table.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        for i in 0..256 {
            assert_eq!(INV_SBOX[SBOX[i] as usize] as usize, i);
        }
    }

    /// FIPS-197 Appendix B / C.1: AES-128.
    #[test]
    fn aes128_fips197_vector() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block: Block = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let aes = Aes::new_128(&key);
        aes.encrypt_block(&mut block);
        let expect: Block = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(block, expect);
        aes.decrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34
            ]
        );
    }

    /// FIPS-197 Appendix C.1: AES-128 with the 00..0f key.
    #[test]
    fn aes128_fips197_appendix_c1() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let mut block: Block = core::array::from_fn(|i| (i as u8) * 0x11);
        let aes = Aes::new_128(&key);
        aes.encrypt_block(&mut block);
        let expect: Block = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(block, expect);
    }

    /// FIPS-197 Appendix C.3: AES-256.
    #[test]
    fn aes256_fips197_appendix_c3() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let mut block: Block = core::array::from_fn(|i| (i as u8) * 0x11);
        let aes = Aes::new_256(&key);
        aes.encrypt_block(&mut block);
        let expect: Block = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        assert_eq!(block, expect);
        aes.decrypt_block(&mut block);
        assert_eq!(block, core::array::from_fn(|i| (i as u8) * 0x11));
    }

    #[test]
    fn round_counts() {
        assert_eq!(Aes::new_128(&[0; 16]).rounds(), 10);
        assert_eq!(Aes::new_256(&[0; 32]).rounds(), 14);
    }

    #[test]
    fn gf_mul_known_products() {
        // From the FIPS-197 examples: {57} x {83} = {c1}.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
    }

    #[test]
    fn gf_inv_roundtrip() {
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse of {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }
}
