//! From-scratch cryptographic primitives for the Eleos reproduction.
//!
//! The paper seals every page evicted from the SUVM page cache (EPC++)
//! with AES-GCM — "just like the `EWB` SGX instruction" (§3.2.3) — and
//! encrypts client requests with AES-CTR (§5). No crypto crates are
//! available offline, so this crate implements:
//!
//! - [`aes`]: AES-128 and AES-256 block ciphers (FIPS-197),
//! - [`ctr`]: CTR mode (NIST SP 800-38A),
//! - [`derive`]: per-epoch session-key derivation (one-block AES MAC),
//! - [`ghash`]: the GHASH universal hash over GF(2^128),
//! - [`gcm`]: AES-GCM authenticated encryption (NIST SP 800-38D),
//! - [`sealer`]: the [`Sealer`] batch contract every cipher implements.
//!
//! All sealing goes through the [`Sealer`] trait: single-message
//! `seal`/`open` are provided as batches of one, and the batch entry
//! points (`seal_batch`/`open_batch`) are what the SUVM write-back
//! drain and the server request pipeline use to amortize the per-key
//! setup across a scatter-gather batch.
//!
//! Functional behaviour is real — tampered ciphertexts genuinely fail
//! authentication, which the SUVM integrity tests rely on. *Performance*
//! is not: the simulator charges AES-NI-rate cycle costs for sealing
//! (see `eleos_sim::costs`), so this implementation favours clarity over
//! speed.
//!
//! # Examples
//!
//! ```
//! use eleos_crypto::gcm::AesGcm128;
//! use eleos_crypto::Sealer;
//!
//! let key = [7u8; 16];
//! let gcm = AesGcm128::new(&key);
//! let nonce = [1u8; 12];
//! let mut buf = b"secret page contents".to_vec();
//! let tag = gcm.seal(&nonce, b"page#42", &mut buf);
//! assert!(gcm.open(&nonce, b"page#42", &mut buf, &tag).is_ok());
//! assert_eq!(&buf, b"secret page contents");
//! ```

pub mod aes;
pub mod ctr;
pub mod derive;
pub mod gcm;
pub mod ghash;
pub mod sealer;

pub use derive::derive_key;
pub use sealer::{BatchAuthError, OpenJob, SealJob, Sealer};

/// Error returned when an authenticated decryption fails its tag check.
///
/// SUVM treats this as evidence of tampering with (or replay of) a page
/// in the untrusted backing store and refuses to page the data in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthError;

impl core::fmt::Display for AuthError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "authentication tag mismatch")
    }
}

impl std::error::Error for AuthError {}

/// Compares two byte slices in constant time (with respect to content).
///
/// Used for authentication-tag checks so that the comparison itself does
/// not leak how many leading tag bytes matched.
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_equal() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn ct_eq_unequal_content() {
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"xbc", b"abc"));
    }

    #[test]
    fn ct_eq_unequal_length() {
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(!ct_eq(b"abc", b""));
    }

    #[test]
    fn auth_error_displays() {
        assert_eq!(AuthError.to_string(), "authentication tag mismatch");
    }
}
