//! CTR-mode encryption (NIST SP 800-38A).
//!
//! Eleos encrypts client requests/responses with AES in CTR mode using a
//! randomized 128-bit key (§5). CTR is also the keystream generator
//! inside [`crate::gcm`].

use crate::aes::{Aes, Block, BLOCK_SIZE};
use crate::gcm::Tag;
use crate::sealer::{BatchAuthError, OpenJob, SealJob, Sealer, ZERO_TAG};

/// Applies the AES-CTR keystream to `data` in place.
///
/// `counter_block` is the initial 128-bit counter; the low 32 bits are
/// incremented (big-endian, wrapping) per block, matching the GCM
/// `inc32` convention so this routine is reusable by GCM.
///
/// CTR is an involution: applying it twice with the same parameters
/// restores the plaintext.
pub fn ctr_xor(aes: &Aes, counter_block: &Block, data: &mut [u8]) {
    let mut counter = *counter_block;
    for chunk in data.chunks_mut(BLOCK_SIZE) {
        let keystream = aes.encrypt(&counter);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        inc32(&mut counter);
    }
}

/// Increments the last 32 bits of a counter block (big-endian, wrapping).
pub fn inc32(block: &mut Block) {
    let mut ctr = u32::from_be_bytes([block[12], block[13], block[14], block[15]]);
    ctr = ctr.wrapping_add(1);
    block[12..16].copy_from_slice(&ctr.to_be_bytes());
}

/// A convenience stateless CTR cipher bound to one key.
///
/// The nonce is spread over the first 12 bytes of the counter block and
/// the remaining 4 bytes count blocks, so a (key, nonce) pair must not
/// be reused for different messages — the Eleos runtime derives a fresh
/// random nonce per request and per evicted page.
#[derive(Clone)]
pub struct Ctr128 {
    aes: Aes,
}

impl Ctr128 {
    /// Creates a CTR cipher from a 128-bit key.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        Self {
            aes: Aes::new_128(key),
        }
    }

    /// Encrypts or decrypts `data` in place under `nonce`.
    pub fn apply(&self, nonce: &[u8; 12], data: &mut [u8]) {
        let mut counter = [0u8; BLOCK_SIZE];
        counter[..12].copy_from_slice(nonce);
        counter[15] = 1;
        ctr_xor(&self.aes, &counter, data);
    }
}

/// The *unauthenticated* sealer behind the §5 wire protocol: CTR has
/// no tag, so `seal_batch` returns [`ZERO_TAG`]s, `open_batch` never
/// fails, and `aad` is ignored. Callers that need integrity must use a
/// GCM sealer instead.
impl Sealer for Ctr128 {
    fn name(&self) -> &'static str {
        "aes128-ctr"
    }

    fn seal_batch(&self, jobs: &mut [SealJob<'_>]) -> Vec<Tag> {
        self.setup();
        jobs.iter_mut()
            .map(|j| {
                self.apply(&j.nonce, j.data);
                ZERO_TAG
            })
            .collect()
    }

    fn open_batch(&self, jobs: &mut [OpenJob<'_>]) -> Result<(), BatchAuthError> {
        self.setup();
        for j in jobs.iter_mut() {
            // CTR is an involution: the same keystream pass decrypts.
            self.apply(&j.nonce, j.data);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST SP 800-38A F.5.1: CTR-AES128.Encrypt.
    #[test]
    fn sp800_38a_ctr_aes128() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let counter: Block = [
            0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb, 0xfc, 0xfd,
            0xfe, 0xff,
        ];
        let mut data: Vec<u8> = vec![
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a, // block 1
            0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7, 0x6f, 0xac, 0x45, 0xaf,
            0x8e, 0x51, // block 2
        ];
        let aes = Aes::new_128(&key);
        ctr_xor(&aes, &counter, &mut data);
        let expect: Vec<u8> = vec![
            0x87, 0x4d, 0x61, 0x91, 0xb6, 0x20, 0xe3, 0x26, 0x1b, 0xef, 0x68, 0x64, 0x99, 0x0d,
            0xb6, 0xce, 0x98, 0x06, 0xf6, 0x6b, 0x79, 0x70, 0xfd, 0xff, 0x86, 0x17, 0x18, 0x7b,
            0xb9, 0xff, 0xfd, 0xff,
        ];
        assert_eq!(data, expect);
    }

    #[test]
    fn ctr_is_an_involution() {
        let c = Ctr128::new(&[9u8; 16]);
        let nonce = [3u8; 12];
        let mut data = (0..100u8).collect::<Vec<_>>();
        let orig = data.clone();
        c.apply(&nonce, &mut data);
        assert_ne!(data, orig);
        c.apply(&nonce, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let c = Ctr128::new(&[9u8; 16]);
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        c.apply(&[1u8; 12], &mut a);
        c.apply(&[2u8; 12], &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn inc32_wraps_only_low_word() {
        let mut block = [0xffu8; 16];
        inc32(&mut block);
        assert_eq!(&block[..12], &[0xff; 12]);
        assert_eq!(&block[12..], &[0, 0, 0, 0]);
    }

    #[test]
    fn partial_block_tail() {
        let c = Ctr128::new(&[1u8; 16]);
        let nonce = [0u8; 12];
        let mut data = vec![0xa5u8; 17];
        let orig = data.clone();
        c.apply(&nonce, &mut data);
        c.apply(&nonce, &mut data);
        assert_eq!(data, orig);
    }
}
