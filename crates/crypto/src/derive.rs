//! Epoch key derivation for wire sessions.
//!
//! A session holds one long-lived *master* key (established by the
//! attestation handshake) and derives a fresh traffic key for every
//! rotation epoch, so compromise of an epoch key exposes only that
//! epoch's traffic and rotation never has to re-run the handshake.
//!
//! The derivation is a single-block AES-ECB MAC over the epoch label:
//! `K_e = AES(master, label || LE32(epoch) || zeros)`. One block-cipher
//! call per epoch is exactly the shape of the CMAC-based KDFs in NIST
//! SP 800-108 for inputs that fit one block, and it keeps the epoch
//! keys independent: distinct `(label, epoch)` inputs are distinct
//! plaintext blocks, and AES is a PRP under the master key.

use crate::aes::Aes;

/// Derives the 128-bit traffic key for `epoch` from a session master
/// key. `label` domain-separates independent key hierarchies (e.g.
/// client→server vs server→client directions) under one master.
#[must_use]
pub fn derive_key(master: &[u8; 16], label: &[u8; 4], epoch: u32) -> [u8; 16] {
    let mut block = [0u8; 16];
    block[..4].copy_from_slice(label);
    block[4..8].copy_from_slice(&epoch.to_le_bytes());
    Aes::new_128(master).encrypt(&block)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epochs_derive_distinct_keys() {
        let master = [0x42u8; 16];
        let k0 = derive_key(&master, b"wire", 0);
        let k1 = derive_key(&master, b"wire", 1);
        let k2 = derive_key(&master, b"wire", 2);
        assert_ne!(k0, k1);
        assert_ne!(k1, k2);
        assert_ne!(k0, k2);
    }

    #[test]
    fn labels_domain_separate() {
        let master = [0x42u8; 16];
        assert_ne!(
            derive_key(&master, b"wire", 7),
            derive_key(&master, b"rsvp", 7)
        );
    }

    #[test]
    fn derivation_is_deterministic() {
        let master = [9u8; 16];
        assert_eq!(
            derive_key(&master, b"wire", 3),
            derive_key(&master, b"wire", 3)
        );
    }

    #[test]
    fn masters_do_not_collide() {
        assert_ne!(
            derive_key(&[1u8; 16], b"wire", 0),
            derive_key(&[2u8; 16], b"wire", 0)
        );
    }
}
