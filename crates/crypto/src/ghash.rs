//! GHASH — the universal hash over GF(2^128) used by GCM (SP 800-38D).
//!
//! Blocks are interpreted with bit 0 as the most significant bit of the
//! first byte, per the GCM specification. Multiplication by the fixed
//! hash subkey `H` is table-driven (16 tables of 256 precomputed
//! products, one per byte position — 64 KiB per key): GHASH runs over
//! every sealed page, so it shares the hot path with AES.

/// The GCM reduction constant: x^128 + x^7 + x^2 + x + 1, reflected
/// into the top byte.
const R: u128 = 0xe1 << 120;

/// Multiplies two elements of GF(2^128) in GCM's bit order (reference
/// implementation; table construction and tests use it).
#[must_use]
pub fn gf128_mul(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// A precomputed GHASH key: for each byte position `i` and byte value
/// `b`, the product `(b << 8·(15−i)) · H`.
pub struct GhashKey {
    table: Box<[[u128; 256]; 16]>,
}

impl GhashKey {
    /// Precomputes the multiplication tables for subkey `h`.
    #[must_use]
    pub fn new(h: &[u8; 16]) -> Self {
        let h = u128::from_be_bytes(*h);
        let mut table = Box::new([[0u128; 256]; 16]);
        for pos in 0..16 {
            let shift = 8 * (15 - pos);
            // Fill powers-of-two entries with the reference multiply,
            // then complete by linearity (XOR).
            for bit in 0..8 {
                let b = 1usize << bit;
                table[pos][b] = gf128_mul((b as u128) << shift, h);
            }
            for b in 1..256usize {
                if !b.is_power_of_two() {
                    let hi = 1 << (usize::BITS - 1 - b.leading_zeros());
                    table[pos][b] = table[pos][hi] ^ table[pos][b - hi];
                }
            }
        }
        Self { table }
    }

    /// Multiplies `z` by `H`.
    #[must_use]
    pub fn mul(&self, z: u128) -> u128 {
        let bytes = z.to_be_bytes();
        let mut acc = 0u128;
        for (pos, &b) in bytes.iter().enumerate() {
            acc ^= self.table[pos][b as usize];
        }
        acc
    }
}

/// Incremental GHASH state keyed by a precomputed [`GhashKey`].
pub struct Ghash<'k> {
    key: &'k GhashKey,
    acc: u128,
}

impl<'k> Ghash<'k> {
    /// Starts a GHASH computation.
    #[must_use]
    pub fn new(key: &'k GhashKey) -> Self {
        Self { key, acc: 0 }
    }

    /// Absorbs `data`, zero-padding the final partial block.
    pub fn update_padded(&mut self, data: &[u8]) {
        let mut chunks = data.chunks_exact(16);
        for chunk in &mut chunks {
            let block = u128::from_be_bytes(chunk.try_into().unwrap());
            self.acc = self.key.mul(self.acc ^ block);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut block = [0u8; 16];
            block[..rem.len()].copy_from_slice(rem);
            self.acc = self.key.mul(self.acc ^ u128::from_be_bytes(block));
        }
    }

    /// Absorbs the standard GCM length block: `len(aad) || len(ct)` in
    /// bits, each as a 64-bit big-endian integer.
    pub fn update_lengths(&mut self, aad_bytes: u64, ct_bytes: u64) {
        let block = ((aad_bytes as u128 * 8) << 64) | (ct_bytes as u128 * 8);
        self.acc = self.key.mul(self.acc ^ block);
    }

    /// Returns the current hash value.
    #[must_use]
    pub fn finalize(&self) -> [u8; 16] {
        self.acc.to_be_bytes()
    }
}

/// One-shot GHASH over the GCM layout (padded AAD, padded ciphertext,
/// length block).
#[must_use]
pub fn ghash(key: &GhashKey, aad: &[u8], ct: &[u8]) -> [u8; 16] {
    let mut g = Ghash::new(key);
    g.update_padded(aad);
    g.update_padded(ct);
    g.update_lengths(aad.len() as u64, ct.len() as u64);
    g.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_identity() {
        // The multiplicative identity in GCM bit order is the block
        // 0x80000...0 (bit 0 set).
        let one = 1u128 << 127;
        let x = 0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978u128;
        assert_eq!(gf128_mul(x, one), x);
        assert_eq!(gf128_mul(one, x), x);
    }

    #[test]
    fn mul_zero_annihilates() {
        let x = 0xdead_beef_u128;
        assert_eq!(gf128_mul(x, 0), 0);
        assert_eq!(gf128_mul(0, x), 0);
    }

    #[test]
    fn mul_commutes() {
        let a = 0x0f0e_0d0c_0b0a_0908_0706_0504_0302_0100u128;
        let b = 0xfedc_ba98_7654_3210_0123_4567_89ab_cdefu128;
        assert_eq!(gf128_mul(a, b), gf128_mul(b, a));
    }

    #[test]
    fn mul_distributes_over_xor() {
        let a = 0x1111_2222_3333_4444_5555_6666_7777_8888u128;
        let b = 0x9999_aaaa_bbbb_cccc_dddd_eeee_ffff_0000u128;
        let c = 0x0246_8ace_1357_9bdf_fdb9_7531_eca8_6420u128;
        assert_eq!(gf128_mul(a, b ^ c), gf128_mul(a, b) ^ gf128_mul(a, c));
    }

    #[test]
    fn table_mul_matches_reference() {
        let h_bytes = [0x42u8; 16];
        let key = GhashKey::new(&h_bytes);
        let h = u128::from_be_bytes(h_bytes);
        for z in [
            0u128,
            1,
            1 << 127,
            0xdead_beef_cafe_f00d,
            u128::MAX,
            0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978,
        ] {
            assert_eq!(key.mul(z), gf128_mul(z, h), "z = {z:#x}");
        }
    }

    /// GHASH over an empty message with any key is zero (only the
    /// length block of zeros is absorbed).
    #[test]
    fn ghash_empty_is_zero() {
        let key = GhashKey::new(&[0x42u8; 16]);
        assert_eq!(ghash(&key, &[], &[]), [0u8; 16]);
    }

    /// GCM spec test case 2's GHASH step: H = AES_0(0),
    /// C = AES-CTR of a zero block; GHASH(H, {}, C) must equal the
    /// documented pre-tag value `f38cbb1ad69223dcc3457ae5b6b0f885`.
    #[test]
    fn ghash_gcm_test_case_2() {
        use crate::aes::Aes;
        let aes = Aes::new_128(&[0u8; 16]);
        let h = aes.encrypt(&[0u8; 16]);
        let key = GhashKey::new(&h);
        // J0 = IV || 0^31 || 1 with IV = 0^96; first CTR block is inc32(J0).
        let mut ctr_block = [0u8; 16];
        ctr_block[15] = 2;
        let c = aes.encrypt(&ctr_block);
        let s = ghash(&key, &[], &c);
        let expect: [u8; 16] = [
            0xf3, 0x8c, 0xbb, 0x1a, 0xd6, 0x92, 0x23, 0xdc, 0xc3, 0x45, 0x7a, 0xe5, 0xb6, 0xb0,
            0xf8, 0x85,
        ];
        assert_eq!(s, expect);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = GhashKey::new(&[7u8; 16]);
        let aad = b"associated data";
        let ct = b"ciphertext bytes spanning multiple blocks of ghash input!";
        let oneshot = ghash(&key, aad, ct);
        let mut g = Ghash::new(&key);
        g.update_padded(aad);
        g.update_padded(ct);
        g.update_lengths(aad.len() as u64, ct.len() as u64);
        assert_eq!(g.finalize(), oneshot);
    }
}
