//! The assembled Eleos runtime — "ease-of-use" is an explicit §3
//! design goal ("Eleos is intended for use by application developers
//! ... it only introduces two new memory management functions, while
//! RPC services are integrated transparently").
//!
//! [`Eleos::builder`] wires the full stack in one place: machine,
//! enclave, exit-less RPC workers with the standard syscalls, SUVM,
//! CAT partitioning and (optionally) the background swapper. What the
//! SDK's `enclave_create` + OCALL tables + the Eleos untrusted runtime
//! do together, condensed:
//!
//! ```
//! use eleos_core::runtime::Eleos;
//!
//! let rt = Eleos::builder().epc_mb(16).suvm_mb(4).build();
//! let mut t = rt.thread(0);
//! t.enter();
//! let buf = rt.suvm.malloc(1 << 20);
//! rt.suvm.write(&mut t, buf, b"hello exit-less world");
//! let mut out = [0u8; 21];
//! rt.suvm.read(&mut t, buf, &mut out);
//! assert_eq!(&out, b"hello exit-less world");
//! t.exit();
//! ```

use std::sync::Arc;
use std::time::Duration;

use eleos_enclave::enclave::Enclave;
use eleos_enclave::machine::{MachineConfig, SgxMachine};
use eleos_enclave::thread::ThreadCtx;
use eleos_rpc::{with_fs, with_syscalls, RpcService};

use crate::config::SuvmConfig;
use crate::suvm::Suvm;
use crate::swapper::Swapper;

/// Builder for [`Eleos`].
pub struct EleosBuilder {
    machine_cfg: MachineConfig,
    suvm_cfg: SuvmConfig,
    enclave_bytes: usize,
    rpc_workers: usize,
    cat: bool,
    swapper_interval: Option<Duration>,
}

impl Default for EleosBuilder {
    fn default() -> Self {
        Self {
            machine_cfg: MachineConfig::default(),
            suvm_cfg: SuvmConfig::default(),
            enclave_bytes: 1 << 30,
            rpc_workers: 1,
            cat: true,
            swapper_interval: None,
        }
    }
}

impl EleosBuilder {
    /// Overrides the machine configuration wholesale.
    #[must_use]
    pub fn machine(mut self, cfg: MachineConfig) -> Self {
        self.machine_cfg = cfg;
        self
    }

    /// Shorthand: EPC capacity in MiB.
    #[must_use]
    pub fn epc_mb(mut self, mb: usize) -> Self {
        self.machine_cfg.epc_bytes = mb << 20;
        self
    }

    /// Overrides the SUVM configuration wholesale.
    #[must_use]
    pub fn suvm(mut self, cfg: SuvmConfig) -> Self {
        self.suvm_cfg = cfg;
        self
    }

    /// Shorthand: EPC++ capacity in MiB (the backing store is sized at
    /// 16x unless overridden via [`Self::suvm`]).
    #[must_use]
    pub fn suvm_mb(mut self, mb: usize) -> Self {
        self.suvm_cfg.epcpp_bytes = mb << 20;
        self.suvm_cfg.backing_bytes = (mb << 24).next_power_of_two();
        self
    }

    /// Enclave linear address space in bytes.
    #[must_use]
    pub fn enclave_bytes(mut self, bytes: usize) -> Self {
        self.enclave_bytes = bytes;
        self
    }

    /// Number of RPC worker threads (default 1, on the last cores).
    #[must_use]
    pub fn rpc_workers(mut self, n: usize) -> Self {
        self.rpc_workers = n;
        self
    }

    /// Enables/disables the 75/25 CAT partition (default on).
    #[must_use]
    pub fn cat(mut self, on: bool) -> Self {
        self.cat = on;
        self
    }

    /// Runs the background EPC++ swapper every `interval` (default:
    /// off — call [`Suvm::swapper_tick`] manually or enable this for
    /// multi-enclave deployments).
    #[must_use]
    pub fn swapper(mut self, interval: Duration) -> Self {
        self.swapper_interval = Some(interval);
        self
    }

    /// Assembles the runtime.
    #[must_use]
    pub fn build(self) -> Eleos {
        let machine = SgxMachine::new(self.machine_cfg);
        if self.cat {
            machine.enable_cat();
        }
        let enclave = machine.driver.create_enclave(&machine, self.enclave_bytes);
        let worker_cores: Vec<usize> = (0..self.rpc_workers)
            .map(|i| machine.core_count() - 1 - (i % machine.core_count()))
            .collect();
        let rpc = Arc::new(
            with_fs(
                with_syscalls(RpcService::builder(&machine), &machine),
                &machine,
            )
            .workers(self.rpc_workers, &worker_cores)
            .build(),
        );
        let t0 = ThreadCtx::for_enclave(&machine, &enclave, 0);
        let suvm = Suvm::new(&t0, self.suvm_cfg);
        let swapper = self
            .swapper_interval
            .map(|iv| Swapper::spawn(&machine, &suvm, machine.core_count() - 2, iv));
        Eleos {
            machine,
            enclave,
            rpc,
            suvm,
            swapper,
        }
    }
}

/// A fully wired Eleos runtime: one enclave with exit-less syscalls
/// and SUVM.
pub struct Eleos {
    /// The simulated machine.
    pub machine: Arc<SgxMachine>,
    /// The application enclave.
    pub enclave: Arc<Enclave>,
    /// Exit-less RPC service (socket + filesystem syscalls registered).
    pub rpc: Arc<RpcService>,
    /// The SUVM instance.
    pub suvm: Arc<Suvm>,
    swapper: Option<Swapper>,
}

impl Eleos {
    /// Starts a builder.
    #[must_use]
    pub fn builder() -> EleosBuilder {
        EleosBuilder::default()
    }

    /// An application thread bound to the enclave on `core` (call
    /// [`ThreadCtx::enter`] to go trusted).
    #[must_use]
    pub fn thread(&self, core: usize) -> ThreadCtx {
        ThreadCtx::for_enclave(&self.machine, &self.enclave, core)
    }

    /// Stops the background swapper (also happens on drop).
    pub fn shutdown(mut self) {
        if let Some(s) = self.swapper.take() {
            s.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_wires_the_full_stack() {
        let rt = Eleos::builder()
            .epc_mb(8)
            .suvm_mb(2)
            .enclave_bytes(64 << 20)
            .rpc_workers(2)
            .build();
        let mut t = rt.thread(0);
        t.enter();
        // SUVM works.
        let buf = rt.suvm.malloc(8 << 20);
        rt.suvm.write(&mut t, buf + 12345, b"runtime");
        let mut out = [0u8; 7];
        rt.suvm.read(&mut t, buf + 12345, &mut out);
        assert_eq!(&out, b"runtime");
        // Exit-less file I/O works through the prewired RPC.
        let path = rt.machine.alloc_untrusted(16);
        t.write_untrusted(path, b"/rt");
        let fd = rt.rpc.call(&mut t, eleos_rpc::funcs::OPEN, [path, 3, 0, 0]);
        assert_eq!(
            rt.rpc.call(&mut t, eleos_rpc::funcs::CLOSE, [fd, 0, 0, 0]),
            0
        );
        assert_eq!(rt.machine.stats.snapshot().enclave_exits, 0);
        t.exit();
        rt.shutdown();
    }

    #[test]
    fn builder_with_swapper_balloons() {
        let rt = Eleos::builder()
            .epc_mb(8)
            .suvm_mb(6)
            .enclave_bytes(32 << 20)
            .swapper(Duration::from_millis(1))
            .build();
        // A second enclave halves the share; the swapper should shrink
        // EPC++ shortly.
        let _e2 = rt.machine.driver.create_enclave(&rt.machine, 1 << 20);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let target_ok = loop {
            let share = rt.machine.driver.available_epc_for(rt.enclave.id) * 4096;
            if rt.suvm.frame_limit() * 4096 <= share {
                break true;
            }
            if std::time::Instant::now() > deadline {
                break false;
            }
            std::thread::yield_now();
        };
        assert!(target_ok, "swapper never applied the reduced share");
        rt.shutdown();
    }
}
