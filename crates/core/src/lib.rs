//! **Eleos** — ExitLess OS services for SGX enclaves.
//!
//! This crate is the paper's primary contribution (Orenbach et al.,
//! EuroSys 2017): **Secure User-managed Virtual Memory (SUVM)**, an
//! application-level paging system that runs entirely inside the
//! enclave, eliminating the enclave exits that dominate the cost of
//! SGX hardware paging. Together with the exit-less RPC of `eleos-rpc`
//! it removes both classes of exits that §2 of the paper identifies as
//! the root cause of in-enclave slowdowns.
//!
//! - [`Suvm`] — the runtime: `suvm_malloc`/`suvm_free`
//!   ([`Suvm::malloc`]/[`Suvm::free`]), bulk
//!   `memcpy`/`memset`/`memcmp`, the in-enclave fault path, pluggable
//!   eviction policies ([`suvm::policy`]) and backing stores
//!   ([`suvm::store`]) with clean-page write-back elision, optional
//!   batched asynchronous write-back, and direct sub-page access to
//!   the backing store (§3.2.4);
//! - [`spointer::SPtr`] — secure active pointers with software address
//!   translation cached per page (§3.2.2);
//! - [`swapper::Swapper`] — the periodic free-pool/ballooning thread
//!   (§3.3);
//! - [`config::SuvmConfig`] — the expert tuning surface.
//!
//! # Examples
//!
//! ```
//! use eleos_core::{Suvm, SuvmConfig};
//! use eleos_core::spointer::SPtr;
//! use eleos_enclave::machine::{MachineConfig, SgxMachine};
//! use eleos_enclave::thread::ThreadCtx;
//!
//! let machine = SgxMachine::new(MachineConfig::tiny());
//! let enclave = machine.driver.create_enclave(&machine, 96 * 4096);
//! let mut t = ThreadCtx::for_enclave(&machine, &enclave, 0);
//! let suvm = Suvm::new(&t, SuvmConfig::tiny());
//!
//! t.enter();
//! let sva = suvm.malloc(4096);
//! let p: SPtr<u64> = SPtr::new(&suvm, sva);
//! p.set(&mut t, 0xfeed);
//! assert_eq!(p.get(&mut t), 0xfeed);
//! suvm.free(sva);
//! t.exit();
//! ```

pub mod config;
pub mod containers;
pub mod raw;
pub mod runtime;
pub mod shared;
pub mod snapshot;
pub mod spointer;
pub mod suvm;
pub mod swapper;
pub mod table;

pub use config::{EvictPolicy, SealerConfig, StoreKind, SuvmConfig};
pub use containers::{SBox, SHashMap, SVec};
pub use runtime::{Eleos, EleosBuilder};
pub use snapshot::{Snapshot, SnapshotBuilder};
pub use spointer::{Plain, SPtr};
pub use suvm::{Suvm, Sva};
pub use swapper::Swapper;
