//! The SUVM runtime: exit-less, application-level secure paging inside
//! the enclave (Eleos §3.2).
//!
//! SUVM layers a second level of virtual memory on top of the enclave:
//!
//! - a **page cache** (*EPC++*) carved out of enclave-linear memory —
//!   so the SGX driver can still evict its frames under PRM pressure,
//!   which is exactly the multi-enclave hazard §3.3 coordinates around;
//! - a **backing store** in untrusted memory, holding AES-GCM-sealed
//!   page (or sub-page) images, allocated by a memsys5-style buddy
//!   allocator;
//! - the **inverse page table** and **crypto-metadata table** in
//!   enclave memory (see [`crate::table`]);
//! - a software fault path that runs *entirely inside the enclave*: no
//!   EEXIT, no kernel, no IPIs.
//!
//! The two paper optimizations impossible under hardware paging are
//! here: clean pages skip write-back on eviction, and direct sub-page
//! access bypasses the page cache for locality-free workloads
//! (§3.2.4).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use eleos_crypto::gcm::AesGcm128;
use eleos_enclave::enclave::Enclave;
use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::alloc::BuddyAllocator;
use eleos_sim::stats::Stats;

use crate::config::SuvmConfig;
use crate::table::{CryptoTable, InversePt, SealState, NO_PAGE};

/// Per-EPC++-frame metadata.
pub(crate) struct FrameMeta {
    /// Backing-store page currently cached, or [`NO_PAGE`].
    pub page: AtomicU64,
    /// Number of linked spointers (and in-flight raw operations)
    /// pinning the frame (§3.2.2).
    pub pinned: AtomicU32,
    /// Whether the cached copy diverged from the sealed copy.
    pub dirty: AtomicBool,
    /// CLOCK reference bit.
    pub referenced: AtomicBool,
}

/// A SUVM virtual address (an offset into the instance's secure space).
pub type Sva = u64;

/// The Secure User-managed Virtual Memory runtime for one enclave.
pub struct Suvm {
    cfg: SuvmConfig,
    machine: Arc<SgxMachine>,
    enclave: Arc<Enclave>,
    /// Enclave-linear base of the EPC++ frame pool.
    epcpp_base: u64,
    frames: Vec<FrameMeta>,
    free: Mutex<Vec<u32>>,
    /// Ballooning limit: only frames `0..limit` are usable (§3.3).
    limit: AtomicUsize,
    hand: Mutex<usize>,
    pt: InversePt,
    seals: CryptoTable,
    /// Untrusted base of the backing store.
    bs_base: u64,
    bs_alloc: Mutex<BuddyAllocator>,
    gcm: AesGcm128,
    nonce_ctr: AtomicU64,
    /// Per-instance counters (machine-wide stats aggregate across all
    /// SUVM instances; multi-enclave experiments need them apart).
    pub(super) local: LocalStats,
}

/// Per-instance SUVM counters.
#[derive(Debug, Default)]
pub struct LocalStats {
    /// Major faults served by this instance.
    pub major_faults: AtomicU64,
    /// Evictions performed by this instance.
    pub evictions: AtomicU64,
    /// Evictions that skipped the write-back (clean pages).
    pub clean_skips: AtomicU64,
}

/// A plain snapshot of [`LocalStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSnapshot {
    /// Major faults.
    pub major_faults: u64,
    /// Evictions.
    pub evictions: u64,
    /// Clean-page elisions.
    pub clean_skips: u64,
}

impl Suvm {
    /// Creates a SUVM instance for the enclave bound to `ctx`.
    ///
    /// Allocates the EPC++ pool from enclave-linear memory and the
    /// backing store from untrusted memory. `ctx` may be outside the
    /// enclave; no secure memory is touched yet.
    #[must_use]
    pub fn new(ctx: &ThreadCtx, cfg: SuvmConfig) -> Arc<Self> {
        cfg.validate();
        let enclave = Arc::clone(
            ctx.enclave()
                .expect("SUVM requires an enclave-bound thread"),
        );
        let machine = Arc::clone(&ctx.machine);
        let epcpp_base = enclave.alloc(cfg.epcpp_bytes.next_power_of_two());
        assert_eq!(
            epcpp_base % cfg.page_size as u64,
            0,
            "EPC++ pool must be page aligned"
        );
        let bs_base = machine.alloc_untrusted(cfg.backing_bytes);
        let n = cfg.frames();
        let mut frames = Vec::with_capacity(n);
        frames.resize_with(n, || FrameMeta {
            page: AtomicU64::new(NO_PAGE),
            pinned: AtomicU32::new(0),
            dirty: AtomicBool::new(false),
            referenced: AtomicBool::new(false),
        });
        // Random per-application key stored in the EPC (§3.2.3);
        // deterministic here for reproducible simulations.
        let mut key = [0u8; 16];
        key[..4].copy_from_slice(&enclave.id.to_le_bytes());
        key[4..12].copy_from_slice(b"suvm-key");
        Arc::new(Self {
            pt: InversePt::new(n * 2),
            seals: CryptoTable::new(64),
            bs_alloc: Mutex::new(BuddyAllocator::new(cfg.backing_bytes as u64, 16)),
            free: Mutex::new((0..n as u32).rev().collect()),
            limit: AtomicUsize::new(n),
            hand: Mutex::new(0),
            gcm: AesGcm128::new(&key),
            nonce_ctr: AtomicU64::new(1),
            local: LocalStats::default(),
            frames,
            epcpp_base,
            bs_base,
            machine,
            enclave,
            cfg,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SuvmConfig {
        &self.cfg
    }

    /// The enclave this instance serves.
    #[must_use]
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Current EPC++ capacity in frames (after ballooning).
    #[must_use]
    pub fn frame_limit(&self) -> usize {
        self.limit.load(Ordering::Acquire)
    }

    /// The enclave-linear span of the EPC++ frame pool — useful to
    /// experiments needing a plain resident enclave region of the same
    /// physical pages (e.g. the Fig 8 spointer-overhead baseline).
    #[must_use]
    pub fn epcpp_span(&self) -> (u64, usize) {
        (self.epcpp_base, self.frames.len() * self.cfg.page_size)
    }

    /// Number of pages currently cached in EPC++.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pt.len()
    }

    /// Number of pages with seal metadata (diagnostics).
    #[must_use]
    pub fn debug_seal_entries(&self) -> usize {
        self.seals.live_entries()
    }

    /// This instance's fault/eviction counters (machine-wide stats mix
    /// all instances together).
    #[must_use]
    pub fn local_stats(&self) -> LocalSnapshot {
        LocalSnapshot {
            major_faults: self.local.major_faults.load(Ordering::Relaxed),
            evictions: self.local.evictions.load(Ordering::Relaxed),
            clean_skips: self.local.clean_skips.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Allocation (suvm_malloc / suvm_free, §3.2.3).
    // ------------------------------------------------------------------

    /// Allocates `len` bytes of secure virtual memory.
    ///
    /// # Panics
    /// Panics when the backing store is exhausted; use
    /// [`Self::try_malloc`] for fallible allocation.
    pub fn malloc(&self, len: usize) -> Sva {
        self.try_malloc(len).expect("SUVM backing store exhausted")
    }

    /// Fallible [`Self::malloc`].
    pub fn try_malloc(&self, len: usize) -> Result<Sva, eleos_sim::alloc::AllocError> {
        self.bs_alloc.lock().alloc(len)
    }

    /// Frees an allocation, decommitting any fully covered pages.
    pub fn free(&self, sva: Sva) {
        let size = {
            let mut a = self.bs_alloc.lock();
            let size = a.size_of(sva).expect("suvm_free of non-allocated address");
            a.free(sva).expect("suvm_free failed");
            size
        };
        // Decommit whole pages covered by the block: drop cached frames
        // (if unpinned) and forget seal state, so the space is really
        // reclaimed.
        let ps = self.cfg.page_size as u64;
        let first = sva.div_ceil(ps);
        let last = (sva + size) / ps;
        for page in first..last {
            self.pt.with_bucket(page, |b| {
                if let Some(idx) = b.iter().position(|(p, _)| *p == page) {
                    let frame = b[idx].1;
                    let meta = &self.frames[frame as usize];
                    if meta.pinned.load(Ordering::Acquire) == 0 {
                        b.swap_remove(idx);
                        meta.page.store(NO_PAGE, Ordering::Release);
                        meta.dirty.store(false, Ordering::Release);
                        self.push_free(frame);
                    }
                }
            });
            self.seals.clear(page);
        }
    }

    /// Bytes currently allocated in the backing store.
    #[must_use]
    pub fn allocated_bytes(&self) -> u64 {
        self.bs_alloc.lock().used()
    }

    // ------------------------------------------------------------------
    // Address helpers.
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn page_of(&self, sva: Sva) -> u64 {
        sva / self.cfg.page_size as u64
    }

    #[inline]
    pub(crate) fn epcpp_vaddr(&self, frame: u32, in_page: usize) -> u64 {
        self.epcpp_base + frame as u64 * self.cfg.page_size as u64 + in_page as u64
    }

    #[inline]
    fn bs_addr(&self, page: u64, in_page: usize) -> u64 {
        self.bs_base + page * self.cfg.page_size as u64 + in_page as u64
    }

    fn next_nonce(&self) -> [u8; 12] {
        let v = self.nonce_ctr.fetch_add(1, Ordering::Relaxed);
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&v.to_le_bytes());
        n[8..].copy_from_slice(b"suvm");
        n
    }

    fn aad(page: u64, sub: u32) -> [u8; 12] {
        let mut aad = [0u8; 12];
        aad[..8].copy_from_slice(&page.to_le_bytes());
        aad[8..].copy_from_slice(&sub.to_le_bytes());
        aad
    }

    fn push_free(&self, frame: u32) {
        if (frame as usize) < self.limit.load(Ordering::Acquire) {
            self.free.lock().push(frame);
        }
    }
}

mod balloon;
mod bulk;
mod direct;
mod fault;

#[cfg(test)]
mod tests;
