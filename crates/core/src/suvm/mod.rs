//! The SUVM runtime: exit-less, application-level secure paging inside
//! the enclave (Eleos §3.2).
//!
//! SUVM layers a second level of virtual memory on top of the enclave:
//!
//! - a **page cache** (*EPC++*) carved out of enclave-linear memory —
//!   so the SGX driver can still evict its frames under PRM pressure,
//!   which is exactly the multi-enclave hazard §3.3 coordinates around;
//! - a **backing store** in untrusted memory, holding AES-GCM-sealed
//!   page (or sub-page) images, allocated by a memsys5-style buddy
//!   allocator;
//! - the **inverse page table** and **crypto-metadata table** in
//!   enclave memory (see [`crate::table`]);
//! - a software fault path that runs *entirely inside the enclave*: no
//!   EEXIT, no kernel, no IPIs.
//!
//! The two paper optimizations impossible under hardware paging are
//! here: clean pages skip write-back on eviction, and direct sub-page
//! access bypasses the page cache for locality-free workloads
//! (§3.2.4).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use eleos_crypto::gcm::AesGcm128;
use eleos_crypto::Sealer;
use eleos_enclave::enclave::Enclave;
use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::stats::Stats;

use crate::config::{SealerConfig, SuvmConfig};
use crate::table::{CryptoTable, InversePt, SealState, NO_PAGE};

use self::policy::EvictionPolicy;
use self::store::BackingStore;

/// Per-EPC++-frame metadata.
pub(crate) struct FrameMeta {
    /// Backing-store page currently cached, or [`NO_PAGE`].
    pub page: AtomicU64,
    /// Number of linked spointers (and in-flight raw operations)
    /// pinning the frame (§3.2.2).
    pub pinned: AtomicU32,
    /// Whether the cached copy diverged from the sealed copy.
    pub dirty: AtomicBool,
    /// Whether the frame sits on the write-back queue (batched mode).
    /// Only flipped under the page's bucket lock, so a pin rescuing
    /// the frame and a drain claiming it cannot both win.
    pub queued: AtomicBool,
}

/// A SUVM virtual address (an offset into the instance's secure space).
pub type Sva = u64;

/// The Secure User-managed Virtual Memory runtime for one enclave.
pub struct Suvm {
    cfg: SuvmConfig,
    machine: Arc<SgxMachine>,
    enclave: Arc<Enclave>,
    /// Enclave-linear base of the EPC++ frame pool.
    epcpp_base: u64,
    frames: Vec<FrameMeta>,
    free: Mutex<Vec<u32>>,
    /// Ballooning limit: only frames `0..limit` are usable (§3.3).
    limit: AtomicUsize,
    pt: InversePt,
    /// Victim selection (trait object; see [`policy`]).
    policy: Box<dyn EvictionPolicy>,
    /// Sealed page images + crypto table (trait object; see [`store`]).
    store: Box<dyn BackingStore>,
    /// Detached-but-not-yet-sealed victims awaiting a batched drain
    /// (`(frame, page)`; see [`writeback`]).
    wb: Mutex<VecDeque<(u32, u64)>>,
    /// The cipher every backing-store seal/open flows through —
    /// per-domain GCM by default, or an externally shared instance
    /// ([`SealerConfig::Shared`]) for unified key management.
    sealer: Arc<dyn Sealer>,
    nonce_ctr: AtomicU64,
    /// Per-instance counters (machine-wide stats aggregate across all
    /// SUVM instances; multi-enclave experiments need them apart).
    pub(super) local: LocalStats,
}

/// Per-instance SUVM counters.
#[derive(Debug, Default)]
pub struct LocalStats {
    /// Major faults served by this instance.
    pub major_faults: AtomicU64,
    /// Evictions performed by this instance.
    pub evictions: AtomicU64,
    /// Evictions that skipped the write-back (clean pages).
    pub clean_skips: AtomicU64,
}

/// A plain snapshot of [`LocalStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalSnapshot {
    /// Major faults.
    pub major_faults: u64,
    /// Evictions.
    pub evictions: u64,
    /// Clean-page elisions.
    pub clean_skips: u64,
}

impl Suvm {
    /// Creates a SUVM instance for the enclave bound to `ctx`.
    ///
    /// Allocates the EPC++ pool from enclave-linear memory and the
    /// backing store from untrusted memory. `ctx` may be outside the
    /// enclave; no secure memory is touched yet.
    #[must_use]
    pub fn new(ctx: &ThreadCtx, cfg: SuvmConfig) -> Arc<Self> {
        cfg.validate();
        let enclave = Arc::clone(
            ctx.enclave()
                .expect("SUVM requires an enclave-bound thread"),
        );
        let machine = Arc::clone(&ctx.machine);
        let epcpp_base = enclave.alloc(cfg.epcpp_bytes.next_power_of_two());
        assert_eq!(
            epcpp_base % cfg.page_size as u64,
            0,
            "EPC++ pool must be page aligned"
        );
        let n = cfg.frames();
        let mut frames = Vec::with_capacity(n);
        frames.resize_with(n, || FrameMeta {
            page: AtomicU64::new(NO_PAGE),
            pinned: AtomicU32::new(0),
            dirty: AtomicBool::new(false),
            queued: AtomicBool::new(false),
        });
        let sealer: Arc<dyn Sealer> = match &cfg.sealer {
            SealerConfig::PerDomain => {
                // Random per-application key stored in the EPC (§3.2.3);
                // deterministic here for reproducible simulations.
                let mut key = [0u8; 16];
                key[..4].copy_from_slice(&enclave.id.to_le_bytes());
                key[4..12].copy_from_slice(b"suvm-key");
                Arc::new(AesGcm128::new(&key))
            }
            SealerConfig::Shared(s) => Arc::clone(s),
        };
        Arc::new(Self {
            pt: InversePt::new(n * 2),
            policy: policy::build_policy(cfg.policy, n),
            store: store::build_store(cfg.store, &machine, cfg.backing_bytes, cfg.page_size),
            wb: Mutex::new(VecDeque::new()),
            free: Mutex::new((0..n as u32).rev().collect()),
            limit: AtomicUsize::new(n),
            sealer,
            nonce_ctr: AtomicU64::new(1),
            local: LocalStats::default(),
            frames,
            epcpp_base,
            machine,
            enclave,
            cfg,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SuvmConfig {
        &self.cfg
    }

    /// The enclave this instance serves.
    #[must_use]
    pub fn enclave(&self) -> &Arc<Enclave> {
        &self.enclave
    }

    /// Current EPC++ capacity in frames (after ballooning).
    #[must_use]
    pub fn frame_limit(&self) -> usize {
        self.limit.load(Ordering::Acquire)
    }

    /// The enclave-linear span of the EPC++ frame pool — useful to
    /// experiments needing a plain resident enclave region of the same
    /// physical pages (e.g. the Fig 8 spointer-overhead baseline).
    #[must_use]
    pub fn epcpp_span(&self) -> (u64, usize) {
        (self.epcpp_base, self.frames.len() * self.cfg.page_size)
    }

    /// Number of pages currently cached in EPC++.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pt.len()
    }

    /// Number of pages with seal metadata (diagnostics).
    #[must_use]
    pub fn debug_seal_entries(&self) -> usize {
        self.seals().live_entries()
    }

    /// Label of the sealer the backing store is sealed with.
    #[must_use]
    pub fn sealer_name(&self) -> &'static str {
        self.sealer.name()
    }

    /// Detached victims waiting for a batched write-back drain.
    #[must_use]
    pub fn writeback_queue_len(&self) -> usize {
        self.wb.lock().len()
    }

    /// This instance's fault/eviction counters (machine-wide stats mix
    /// all instances together).
    #[must_use]
    pub fn local_stats(&self) -> LocalSnapshot {
        LocalSnapshot {
            major_faults: self.local.major_faults.load(Ordering::Relaxed),
            evictions: self.local.evictions.load(Ordering::Relaxed),
            clean_skips: self.local.clean_skips.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Allocation (suvm_malloc / suvm_free, §3.2.3).
    // ------------------------------------------------------------------

    /// Allocates `len` bytes of secure virtual memory.
    ///
    /// # Panics
    /// Panics when the backing store is exhausted; use
    /// [`Self::try_malloc`] for fallible allocation.
    pub fn malloc(&self, len: usize) -> Sva {
        self.try_malloc(len).expect("SUVM backing store exhausted")
    }

    /// Fallible [`Self::malloc`].
    pub fn try_malloc(&self, len: usize) -> Result<Sva, eleos_sim::alloc::AllocError> {
        self.store.alloc(len)
    }

    /// Frees an allocation, decommitting any fully covered pages.
    pub fn free(&self, sva: Sva) {
        self.store
            .size_of(sva)
            .expect("suvm_free of non-allocated address");
        let size = self.store.free(sva).expect("suvm_free failed");
        // Decommit whole pages covered by the block: drop cached frames
        // (if unpinned) and forget seal state, so the space is really
        // reclaimed.
        let ps = self.cfg.page_size as u64;
        let first = sva.div_ceil(ps);
        let last = (sva + size) / ps;
        for page in first..last {
            self.pt.with_bucket(page, |b| {
                if let Some(idx) = b.iter().position(|(p, _)| *p == page) {
                    let frame = b[idx].1;
                    let meta = &self.frames[frame as usize];
                    if meta.pinned.load(Ordering::Acquire) == 0 {
                        b.swap_remove(idx);
                        meta.page.store(NO_PAGE, Ordering::Release);
                        meta.dirty.store(false, Ordering::Release);
                        meta.queued.store(false, Ordering::Release);
                        self.policy.on_remove(frame);
                        self.push_free(frame);
                    }
                }
            });
            self.seals().clear(page);
        }
    }

    /// Bytes currently allocated in the backing store.
    #[must_use]
    pub fn allocated_bytes(&self) -> u64 {
        self.store.used()
    }

    // ------------------------------------------------------------------
    // Address helpers.
    // ------------------------------------------------------------------

    #[inline]
    pub(crate) fn page_of(&self, sva: Sva) -> u64 {
        sva / self.cfg.page_size as u64
    }

    #[inline]
    pub(crate) fn epcpp_vaddr(&self, frame: u32, in_page: usize) -> u64 {
        self.epcpp_base + frame as u64 * self.cfg.page_size as u64 + in_page as u64
    }

    #[inline]
    fn bs_addr(&self, page: u64, in_page: usize) -> u64 {
        self.store.addr_of(page, in_page)
    }

    /// The crypto-metadata table (owned by the backing store).
    #[inline]
    pub(crate) fn seals(&self) -> &CryptoTable {
        self.store.crypto()
    }

    /// Draws the next seal nonce. The enclave id scopes the nonce so
    /// that several SUVM instances sharing one keyed sealer
    /// ([`SealerConfig::Shared`]) can never repeat a (key, nonce) pair
    /// across domains.
    fn next_nonce(&self) -> [u8; 12] {
        let v = self.nonce_ctr.fetch_add(1, Ordering::Relaxed);
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&v.to_le_bytes());
        n[8..].copy_from_slice(&self.enclave.id.to_le_bytes());
        n
    }

    fn aad(page: u64, sub: u32) -> [u8; 12] {
        let mut aad = [0u8; 12];
        aad[..8].copy_from_slice(&page.to_le_bytes());
        aad[8..].copy_from_slice(&sub.to_le_bytes());
        aad
    }

    fn push_free(&self, frame: u32) {
        if (frame as usize) < self.limit.load(Ordering::Acquire) {
            self.free.lock().push(frame);
        }
    }

    /// Checks the structural invariants between the inverse page
    /// table, the frame metadata, the free list and the write-back
    /// queue. Intended for tests at quiescent points (no concurrent
    /// mutators).
    ///
    /// # Panics
    /// Panics on any violated invariant.
    pub fn check_consistency(&self) {
        let mut mapped = 0usize;
        for (frame, meta) in self.frames.iter().enumerate() {
            let page = meta.page.load(Ordering::Acquire);
            if page == NO_PAGE {
                assert!(
                    !meta.queued.load(Ordering::Acquire),
                    "unmapped frame {frame} sits on the write-back queue"
                );
                continue;
            }
            mapped += 1;
            assert_eq!(
                self.pt.lookup(page),
                Some(frame as u32),
                "frame {frame} claims page {page} but the inverse PT disagrees"
            );
        }
        assert_eq!(
            self.pt.len(),
            mapped,
            "inverse PT holds entries no frame claims"
        );
        let free = self.free.lock();
        let mut seen = std::collections::HashSet::new();
        for &f in free.iter() {
            assert!(seen.insert(f), "frame {f} is on the free list twice");
            assert_eq!(
                self.frames[f as usize].page.load(Ordering::Acquire),
                NO_PAGE,
                "free frame {f} is still mapped"
            );
        }
        for &(frame, page) in self.wb.lock().iter() {
            // Stale entries (rescued or decommitted since detach) are
            // legal — drains skip them — but a *live* entry must point
            // at a still-mapped, genuinely queued frame.
            if self.frames[frame as usize].queued.load(Ordering::Acquire) {
                assert_eq!(
                    self.frames[frame as usize].page.load(Ordering::Acquire),
                    page,
                    "queued frame {frame} no longer holds page {page}"
                );
            }
        }
    }
}

mod balloon;
mod bulk;
mod direct;
mod fault;
pub mod policy;
pub mod store;
mod writeback;

#[cfg(test)]
mod tests;
