//! Batched asynchronous write-back (the `wb_batch > 0` fault path).
//!
//! Inline eviction pays the full seal on the serving core, on every
//! fault that needs a frame. In batched mode the fault path only
//! *detaches* victims: clean pages are freed outright (the §3.2.4
//! elision), dirty ones are flagged `queued` and parked — still mapped
//! — on a FIFO write-back queue. The swapper drains the queue off the
//! serving core in batches; every seal flows through the configured
//! [`eleos_crypto::Sealer`] and the whole drain is charged as **one**
//! batch via `ThreadCtx::charge_crypto_batch` — the same amortization
//! contract the wire pipeline uses (the first seal op pays the full
//! `crypto_fixed` setup, follow-ons a quarter; no private amortization
//! lives here). When the free pool runs dry before the swapper gets
//! there, [`Suvm::drain_writeback`] doubles as the synchronous
//! fallback.
//!
//! ## Queue entry lifecycle
//!
//! A queue entry `(frame, page)` is a *hint*, not ownership. The drain
//! re-validates under the page's bucket lock: the mapping must still be
//! `(page, frame)`, the frame unpinned, and `queued.swap(false)` must
//! return `true`. Any pin in between rescues the frame —
//! [`Suvm::try_pin`] clears `queued` under the same bucket lock — so a
//! successful swap proves no access (hence no write) happened since
//! detach and the drain's seal captures the right bytes. Entries
//! invalidated by a rescue, a `free()` decommit, a balloon resize or an
//! inline `evict_one` simply fail validation and are skipped.

use super::*;

impl Suvm {
    /// Scans for up to `max` victims on the fault path, freeing clean
    /// ones immediately and parking dirty ones on the write-back
    /// queue. Returns `(freed, queued)`.
    pub(super) fn detach_victims(&self, ctx: &mut ThreadCtx, max: usize) -> (usize, usize) {
        let n = self.frames.len();
        let max_steps = 2 * n + 1;
        let (mut freed, mut queued) = (0usize, 0usize);
        for step in 0..max_steps {
            if freed + queued >= max {
                break;
            }
            let idx = self.policy.next_candidate(step, n);
            let meta = &self.frames[idx];
            if meta.pinned.load(Ordering::Acquire) > 0 || meta.queued.load(Ordering::Acquire) {
                continue;
            }
            let page = meta.page.load(Ordering::Acquire);
            if page == NO_PAGE {
                continue;
            }
            if step < n && self.policy.second_chance(idx as u32) {
                continue;
            }
            match self.detach_frame(ctx, idx as u32, page) {
                Detached::Freed => freed += 1,
                Detached::Queued => queued += 1,
                Detached::Lost => {}
            }
        }
        (freed, queued)
    }

    /// Detaches one victim: frees it when clean (with a sealed copy),
    /// otherwise parks it on the write-back queue.
    fn detach_frame(&self, ctx: &mut ThreadCtx, frame: u32, page: u64) -> Detached {
        let meta = &self.frames[frame as usize];
        // Clean pages short-circuit: same unmap-and-discard as inline
        // eviction, no queue round-trip.
        let clean = !meta.dirty.load(Ordering::Acquire)
            && self.cfg.clean_skip
            && self.seals().get(page).has_copy();
        if clean {
            return if self.try_evict_frame(ctx, frame, page) {
                Detached::Freed
            } else {
                Detached::Lost
            };
        }
        let parked = self.pt.with_bucket(page, |b| {
            if !b.iter().any(|(p, f)| *p == page && *f == frame) {
                return false;
            }
            if meta.pinned.load(Ordering::Acquire) > 0 {
                return false;
            }
            // Still mapped: a reader hitting the page before the drain
            // rescues it instead of re-faulting.
            !meta.queued.swap(true, Ordering::AcqRel)
        });
        if !parked {
            return Detached::Lost;
        }
        let depth = {
            let mut wb = self.wb.lock();
            wb.push_back((frame, page));
            wb.len() as u64
        };
        Stats::bump(&self.machine.stats.suvm_wb_queued);
        Stats::peak(&self.machine.stats.suvm_wb_queue_peak, depth);
        Detached::Queued
    }

    /// Drains up to `max` queued victims in one batch, sealing each
    /// still-valid entry and freeing its frame. Returns the number of
    /// pages sealed.
    ///
    /// Called by the swapper (off the serving core) and, as the
    /// synchronous fallback, by the fault path when the free pool is
    /// empty. The GCM key schedule is set up once per batch: the first
    /// sealed page pays the full `crypto_fixed`, follow-on pages a
    /// quarter.
    pub fn drain_writeback(&self, ctx: &mut ThreadCtx, max: usize) -> usize {
        let batch: Vec<(u32, u64)> = {
            let mut wb = self.wb.lock();
            let take = wb.len().min(max.max(1));
            wb.drain(..take).collect()
        };
        if batch.is_empty() {
            return 0;
        }
        let mut sealed = 0usize;
        let mut seal_lens: Vec<usize> = Vec::new();
        for (frame, page) in batch {
            let meta = &self.frames[frame as usize];
            let claimed = self.pt.with_bucket(page, |b| {
                let Some(idx) = b.iter().position(|(p, f)| *p == page && *f == frame) else {
                    return false;
                };
                if meta.pinned.load(Ordering::Acquire) > 0 {
                    return false;
                }
                if !meta.queued.swap(false, Ordering::AcqRel) {
                    // Rescued (and possibly re-parked later — that
                    // newer entry is still in the queue).
                    return false;
                }
                b.swap_remove(idx);
                true
            });
            if !claimed {
                continue;
            }
            self.count_eviction_class(frame);
            meta.dirty.store(false, Ordering::Release);
            seal_lens.extend(self.seal_page_raw(ctx, page, frame));
            meta.page.store(NO_PAGE, Ordering::Release);
            self.policy.on_remove(frame);
            self.push_free(frame);
            sealed += 1;
            Stats::bump(&self.machine.stats.suvm_evictions);
            self.local.evictions.fetch_add(1, Ordering::Relaxed);
            self.machine.trace.record(
                ctx.now(),
                eleos_sim::trace::Event::SuvmEvict {
                    page,
                    clean_skip: false,
                },
            );
        }
        // One amortized charge for the whole drain, through the same
        // `ThreadCtx::charge_crypto_batch` contract the wire pipeline
        // uses: the batch leader pays the full setup, follow-ons a
        // quarter.
        ctx.charge_crypto_batch(seal_lens, true);
        if sealed > 0 {
            Stats::bump(&self.machine.stats.suvm_wb_batches);
            Stats::add(&self.machine.stats.suvm_wb_pages, sealed as u64);
        }
        sealed
    }

    /// Quiesces the instance at a fence: parks every dirty resident
    /// page on the write-back queue and drains the queue to the sealed
    /// backing store. On return every page's authoritative copy lives
    /// sealed in the backing store (the cache is cold — quiesce is a
    /// snapshot fence, not a hot-path operation) and a state capture
    /// reading through the store sees all writes. Returns the number
    /// of pages sealed.
    ///
    /// # Panics
    /// Panics when a dirty frame is still pinned — a fence means no
    /// in-flight mutators, so a live pin is an orchestration bug.
    pub fn quiesce(&self, ctx: &mut ThreadCtx) -> usize {
        for (idx, meta) in self.frames.iter().enumerate() {
            let frame = idx as u32;
            let page = meta.page.load(Ordering::Acquire);
            if page == NO_PAGE || !meta.dirty.load(Ordering::Acquire) {
                continue;
            }
            assert_eq!(
                meta.pinned.load(Ordering::Acquire),
                0,
                "quiesce at a fence found a pinned dirty frame {frame} (page {page})"
            );
            // Same hint protocol as the detach path: park under the
            // bucket lock so a concurrent rescue cannot race the flag.
            let parked = self.pt.with_bucket(page, |b| {
                b.iter().any(|(p, f)| *p == page && *f == frame)
                    && !meta.queued.swap(true, Ordering::AcqRel)
            });
            if parked {
                let depth = {
                    let mut wb = self.wb.lock();
                    wb.push_back((frame, page));
                    wb.len() as u64
                };
                Stats::bump(&self.machine.stats.suvm_wb_queued);
                Stats::peak(&self.machine.stats.suvm_wb_queue_peak, depth);
            }
        }
        let mut sealed = 0;
        loop {
            let depth = self.wb.lock().len();
            if depth == 0 {
                return sealed;
            }
            sealed += self.drain_writeback(ctx, depth);
        }
    }
}

/// Outcome of [`Suvm::detach_frame`].
enum Detached {
    /// Clean victim, unmapped and freed immediately.
    Freed,
    /// Dirty victim parked on the write-back queue.
    Queued,
    /// The frame was pinned/remapped concurrently; nothing happened.
    Lost,
}
