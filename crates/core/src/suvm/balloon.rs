//! EPC++ resizing and the ballooning swapper tick (§3.3).
use super::*;

impl Suvm {
    // ------------------------------------------------------------------
    // Ballooning / swapper (§3.3).
    // ------------------------------------------------------------------

    /// Resizes EPC++ to `new_frames`, evicting pages cached in frames
    /// beyond the new limit. Growing is immediate.
    pub fn resize(&self, ctx: &mut ThreadCtx, new_frames: usize) {
        let new = new_frames.clamp(2, self.frames.len());
        let old = self.limit.load(Ordering::Acquire);
        if new == old {
            return;
        }
        if new > old {
            self.limit.store(new, Ordering::Release);
            let mut free = self.free.lock();
            for f in old..new {
                if self.frames[f].page.load(Ordering::Acquire) == NO_PAGE {
                    free.push(f as u32);
                }
            }
            return;
        }
        // Shrink: publish the limit first so the frames stop being
        // handed out, then drain them.
        self.limit.store(new, Ordering::Release);
        self.free.lock().retain(|&f| (f as usize) < new);
        for f in new..old {
            let meta = &self.frames[f];
            for _ in 0..1000 {
                let page = meta.page.load(Ordering::Acquire);
                if page == NO_PAGE {
                    break;
                }
                if self.try_evict_frame(ctx, f as u32, page) {
                    // try_evict_frame pushed it to the free list, but
                    // push_free filtered it out (>= limit): done.
                    break;
                }
                std::hint::spin_loop();
            }
        }
    }

    /// One swapper pass (§3.2.3 cases 2 and 3): applies the driver's
    /// ballooning target, then refills the free pool to the watermark.
    pub fn swapper_tick(&self, ctx: &mut ThreadCtx) {
        assert!(ctx.in_enclave(), "the swapper enters the enclave");
        // Ballooning: size EPC++ to our PRM share minus headroom.
        let share_frames_4k = self.machine.driver.available_epc_for(self.enclave.id);
        let share_bytes = share_frames_4k * eleos_sim::costs::PAGE_SIZE;
        let budget = share_bytes.saturating_sub(self.cfg.headroom_bytes);
        let target = (budget / self.cfg.page_size).clamp(2, self.frames.len());
        self.resize(ctx, target);
        let want = self.cfg.free_watermark;
        if self.cfg.wb_batch > 0 {
            // Batched mode: this *is* the asynchronous half — drain
            // whatever the fault path detached since the last tick,
            // then detach-and-drain until the watermark holds.
            let batch = self.cfg.wb_batch;
            while self.drain_writeback(ctx, batch) > 0 {}
            for _ in 0..self.frames.len() {
                if self.free.lock().len() >= want {
                    break;
                }
                let (freed, queued) = self.detach_victims(ctx, batch);
                let drained = self.drain_writeback(ctx, batch);
                if freed == 0 && queued == 0 && drained == 0 {
                    break;
                }
            }
            return;
        }
        // Inline mode: classic watermark refill.
        while self.free.lock().len() < want {
            if !self.evict_one(ctx) {
                break;
            }
        }
    }
}
