//! SUVM bulk memory operations (suvm_memcpy and friends).
use super::*;

impl Suvm {
    // ------------------------------------------------------------------
    // Bulk operations (suvm_memcpy-style, §3.2.3).
    // ------------------------------------------------------------------

    /// Reads `buf.len()` bytes starting at `sva` (unlinked access: one
    /// page-table lookup per page touched).
    pub fn read(&self, ctx: &mut ThreadCtx, sva: Sva, buf: &mut [u8]) {
        let ps = self.cfg.page_size;
        let mut off = 0usize;
        while off < buf.len() {
            let addr = sva + off as u64;
            let page = self.page_of(addr);
            let in_page = (addr % ps as u64) as usize;
            let n = (ps - in_page).min(buf.len() - off);
            let (frame, _) = self.fault_in_and_pin(ctx, page);
            ctx.read_enclave(self.epcpp_vaddr(frame, in_page), &mut buf[off..off + n]);
            self.unpin(frame);
            off += n;
        }
    }

    /// Writes `data` starting at `sva`, marking the touched pages dirty.
    pub fn write(&self, ctx: &mut ThreadCtx, sva: Sva, data: &[u8]) {
        let ps = self.cfg.page_size;
        let mut off = 0usize;
        while off < data.len() {
            let addr = sva + off as u64;
            let page = self.page_of(addr);
            let in_page = (addr % ps as u64) as usize;
            let n = (ps - in_page).min(data.len() - off);
            let (frame, _) = self.fault_in_and_pin(ctx, page);
            ctx.write_enclave(self.epcpp_vaddr(frame, in_page), &data[off..off + n]);
            self.mark_dirty(frame);
            self.unpin(frame);
            off += n;
        }
    }

    /// Prefetches `[sva, sva+len)` into EPC++ (up to the cache size),
    /// so subsequent accesses start warm — the §6.1.2 microbenchmarks
    /// pre-fault their arrays this way.
    pub fn prefetch(&self, ctx: &mut ThreadCtx, sva: Sva, len: usize) {
        let first = self.page_of(sva);
        let last = self.page_of(sva + len.saturating_sub(1) as u64);
        let budget = self.frame_limit().saturating_sub(self.cfg.free_watermark);
        for (i, page) in (first..=last).enumerate() {
            if i >= budget {
                break;
            }
            let (frame, _) = self.fault_in_and_pin(ctx, page);
            self.unpin(frame);
        }
    }

    /// `suvm_memset`: fills `[sva, sva+len)` with `byte`.
    pub fn memset(&self, ctx: &mut ThreadCtx, sva: Sva, len: usize, byte: u8) {
        let chunk = vec![byte; self.cfg.page_size];
        let mut off = 0usize;
        while off < len {
            let n = (len - off).min(self.cfg.page_size);
            self.write(ctx, sva + off as u64, &chunk[..n]);
            off += n;
        }
    }

    /// `suvm_memcmp`: compares `[a, a+len)` with `[b, b+len)`.
    #[must_use]
    pub fn memcmp(&self, ctx: &mut ThreadCtx, a: Sva, b: Sva, len: usize) -> core::cmp::Ordering {
        let ps = self.cfg.page_size;
        let mut off = 0usize;
        let mut ab = vec![0u8; ps];
        let mut bb = vec![0u8; ps];
        while off < len {
            let n = (len - off).min(ps);
            self.read(ctx, a + off as u64, &mut ab[..n]);
            self.read(ctx, b + off as u64, &mut bb[..n]);
            match ab[..n].cmp(&bb[..n]) {
                core::cmp::Ordering::Equal => off += n,
                other => return other,
            }
        }
        core::cmp::Ordering::Equal
    }

    /// `suvm_memcpy` within the secure space.
    pub fn memcpy(&self, ctx: &mut ThreadCtx, dst: Sva, src: Sva, len: usize) {
        let ps = self.cfg.page_size;
        let mut buf = vec![0u8; ps];
        let mut off = 0usize;
        while off < len {
            let n = (len - off).min(ps);
            self.read(ctx, src + off as u64, &mut buf[..n]);
            self.write(ctx, dst + off as u64, &buf[..n]);
            off += n;
        }
    }
}
