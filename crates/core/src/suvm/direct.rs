//! Direct sub-page backing-store access (§3.2.4).
use super::*;

impl Suvm {
    // ------------------------------------------------------------------
    // Direct sub-page access (§3.2.4).
    // ------------------------------------------------------------------

    /// Reads `[sva, sva+buf.len())` directly from the backing store at
    /// sub-page granularity, bypassing EPC++ for non-resident pages
    /// (resident pages are read from the cache for consistency).
    ///
    /// Only useful when the instance seals sub-pages
    /// ([`SuvmConfig::seal_sub_pages`]); whole-page-sealed data falls
    /// back to unsealing the full page.
    pub fn read_direct(&self, ctx: &mut ThreadCtx, sva: Sva, buf: &mut [u8]) {
        assert!(ctx.in_enclave(), "SUVM runs inside the enclave");
        let ps = self.cfg.page_size;
        let sp = self.cfg.sub_page_size;
        let costs_crypto_fixed = self.machine.cfg.costs.crypto_fixed;
        let cpb = self.machine.cfg.costs.crypto_cpb;
        let mut off = 0usize;
        while off < buf.len() {
            let addr = sva + off as u64;
            let page = self.page_of(addr);
            let in_page = (addr % ps as u64) as usize;
            let n = (ps - in_page).min(buf.len() - off);
            ctx.compute(self.machine.cfg.costs.suvm_lookup);
            // Consistency: a resident page may be newer than its sealed
            // copy — serve it from the cache.
            if let Some(frame) = self.try_pin(page) {
                ctx.read_enclave(self.epcpp_vaddr(frame, in_page), &mut buf[off..off + n]);
                self.unpin(frame);
                off += n;
                continue;
            }
            Stats::bump(&self.machine.stats.suvm_direct_accesses);
            'retry: loop {
                let (version, state) = self.seals().read(page);
                match state {
                    SealState::Fresh => buf[off..off + n].fill(0),
                    SealState::SubPages { meta } => {
                        let first_sub = in_page / sp;
                        let last_sub = (in_page + n - 1) / sp;
                        let mut scratch = vec![0u8; sp];
                        for s in first_sub..=last_sub {
                            ctx.read_untrusted(self.bs_addr(page, s * sp), &mut scratch);
                            let (nonce, tag) = &meta[s];
                            if self
                                .sealer
                                .open(nonce, &Self::aad(page, s as u32), &mut scratch, tag)
                                .is_err()
                            {
                                if !self.seals().check(page, version) {
                                    continue 'retry; // torn by a concurrent re-seal
                                }
                                panic!("SUVM sub-page failed authentication");
                            }
                            ctx.compute(costs_crypto_fixed + (cpb * sp as f64) as u64);
                            let lo = in_page.max(s * sp);
                            let hi = (in_page + n).min((s + 1) * sp);
                            buf[off + (lo - in_page)..off + (hi - in_page)]
                                .copy_from_slice(&scratch[lo - s * sp..hi - s * sp]);
                        }
                    }
                    SealState::Page { nonce, tag } => {
                        // Fallback: whole-page unseal into a scratch
                        // buffer (costs a full page of crypto — the
                        // point of sealing sub-pages is to avoid this).
                        let mut scratch = vec![0u8; ps];
                        ctx.read_untrusted(self.bs_addr(page, 0), &mut scratch);
                        if self
                            .sealer
                            .open(&nonce, &Self::aad(page, u32::MAX), &mut scratch, &tag)
                            .is_err()
                        {
                            if !self.seals().check(page, version) {
                                continue 'retry;
                            }
                            panic!("SUVM page failed authentication");
                        }
                        ctx.compute(self.machine.cfg.costs.crypto(ps));
                        buf[off..off + n].copy_from_slice(&scratch[in_page..in_page + n]);
                    }
                }
                break;
            }
            off += n;
        }
    }

    /// Writes directly to the backing store at sub-page granularity
    /// (read-modify-write of each touched sub-page, resealed with a
    /// fresh nonce). Resident pages are written in EPC++ instead.
    pub fn write_direct(&self, ctx: &mut ThreadCtx, sva: Sva, data: &[u8]) {
        assert!(ctx.in_enclave(), "SUVM runs inside the enclave");
        let ps = self.cfg.page_size;
        let sp = self.cfg.sub_page_size;
        let costs_crypto_fixed = self.machine.cfg.costs.crypto_fixed;
        let cpb = self.machine.cfg.costs.crypto_cpb;
        let mut off = 0usize;
        while off < data.len() {
            let addr = sva + off as u64;
            let page = self.page_of(addr);
            let in_page = (addr % ps as u64) as usize;
            let n = (ps - in_page).min(data.len() - off);
            ctx.compute(self.machine.cfg.costs.suvm_lookup);
            if let Some(frame) = self.try_pin(page) {
                ctx.write_enclave(self.epcpp_vaddr(frame, in_page), &data[off..off + n]);
                self.mark_dirty(frame);
                self.unpin(frame);
                off += n;
                continue;
            }
            Stats::bump(&self.machine.stats.suvm_direct_accesses);
            // Exclusive writer for this page's sealed image from here
            // to the commit.
            self.seals().begin_write(page);
            // Bring the page's seal state to sub-page form.
            let mut meta = match self.seals().get_unchecked(page) {
                SealState::SubPages { meta } => meta.into_vec(),
                SealState::Fresh => {
                    // Materialize a zero page as sealed sub-pages.
                    let mut zeros = vec![0u8; ps];
                    let mut meta = Vec::with_capacity(ps / sp);
                    for s in 0..ps / sp {
                        let nonce = self.next_nonce();
                        let tag = self.sealer.seal(
                            &nonce,
                            &Self::aad(page, s as u32),
                            &mut zeros[s * sp..(s + 1) * sp],
                        );
                        meta.push((nonce, tag));
                    }
                    ctx.write_untrusted_raw(self.bs_addr(page, 0), &zeros);
                    meta
                }
                SealState::Page { nonce, tag } => {
                    // Re-seal the whole page as sub-pages first.
                    let mut buf = vec![0u8; ps];
                    ctx.read_untrusted_raw(self.bs_addr(page, 0), &mut buf);
                    self.sealer
                        .open(&nonce, &Self::aad(page, u32::MAX), &mut buf, &tag)
                        .expect("SUVM page failed authentication");
                    ctx.compute(self.machine.cfg.costs.crypto(ps));
                    let mut meta = Vec::with_capacity(ps / sp);
                    for s in 0..ps / sp {
                        let nonce = self.next_nonce();
                        let tag = self.sealer.seal(
                            &nonce,
                            &Self::aad(page, s as u32),
                            &mut buf[s * sp..(s + 1) * sp],
                        );
                        meta.push((nonce, tag));
                    }
                    ctx.write_untrusted_raw(self.bs_addr(page, 0), &buf);
                    ctx.compute(self.machine.cfg.costs.crypto(ps));
                    meta
                }
            };
            let first_sub = in_page / sp;
            let last_sub = (in_page + n - 1) / sp;
            let mut scratch = vec![0u8; sp];
            for s in first_sub..=last_sub {
                let (nonce, tag) = meta[s];
                ctx.read_untrusted(self.bs_addr(page, s * sp), &mut scratch);
                self.sealer
                    .open(&nonce, &Self::aad(page, s as u32), &mut scratch, &tag)
                    .expect("SUVM sub-page failed authentication");
                let lo = in_page.max(s * sp);
                let hi = (in_page + n).min((s + 1) * sp);
                scratch[lo - s * sp..hi - s * sp]
                    .copy_from_slice(&data[off + (lo - in_page)..off + (hi - in_page)]);
                let new_nonce = self.next_nonce();
                let new_tag =
                    self.sealer
                        .seal(&new_nonce, &Self::aad(page, s as u32), &mut scratch);
                ctx.write_untrusted(self.bs_addr(page, s * sp), &scratch);
                meta[s] = (new_nonce, new_tag);
                ctx.compute(2 * (costs_crypto_fixed + (cpb * sp as f64) as u64));
            }
            self.seals().commit_write(
                page,
                SealState::SubPages {
                    meta: meta.into_boxed_slice(),
                },
            );
            off += n;
        }
    }
}
