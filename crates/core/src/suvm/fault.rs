//! SUVM fault handling and eviction (split from the main module).
use super::*;

impl Suvm {
    // ------------------------------------------------------------------
    // Fault handling (§3.2.2): all in-enclave, no exits.
    // ------------------------------------------------------------------

    /// Looks up `page`, faulting it in if needed, and pins it. Returns
    /// `(frame, was_resident)`.
    pub(crate) fn fault_in_and_pin(&self, ctx: &mut ThreadCtx, page: u64) -> (u32, bool) {
        assert!(ctx.in_enclave(), "SUVM runs inside the enclave");
        let costs = &self.machine.cfg.costs;
        ctx.compute(costs.suvm_lookup);
        // Fast path: resident.
        if let Some(frame) = self.try_pin(page) {
            return (frame, true);
        }
        // Major fault: acquire a frame, load, then publish.
        Stats::bump(&self.machine.stats.suvm_major_faults);
        self.local.major_faults.fetch_add(1, Ordering::Relaxed);
        self.charge_metadata_pressure(ctx);
        self.machine.trace.record(
            ctx.now(),
            eleos_sim::trace::Event::SuvmFault {
                core: ctx.core.id,
                page,
            },
        );
        loop {
            let frame = self.acquire_frame(ctx);
            if !self.load_page_in(ctx, page, frame) {
                // Raced a concurrent re-seal of this page; retry.
                self.push_free(frame);
                if let Some(frame) = self.try_pin(page) {
                    return (frame, true);
                }
                continue;
            }
            // Publish, unless somebody beat us to it.
            let won = self.pt.with_bucket(page, |b| {
                if b.iter().any(|(p, _)| *p == page) {
                    return false;
                }
                let meta = &self.frames[frame as usize];
                debug_assert!(
                    !meta.queued.load(Ordering::Acquire),
                    "free frame still on the write-back queue"
                );
                meta.page.store(page, Ordering::Release);
                meta.pinned.store(1, Ordering::Release);
                meta.dirty.store(false, Ordering::Release);
                self.policy.on_insert(frame);
                b.push((page, frame));
                true
            });
            if won {
                return (frame, false);
            }
            // Lost the race: recycle our frame and pin the winner's.
            self.push_free(frame);
            if let Some(frame) = self.try_pin(page) {
                return (frame, true);
            }
            // The winner's frame was evicted already; try again.
        }
    }

    /// The §4.1/§4.2 effect: SUVM metadata lives in EPC and is paged
    /// by the hardware when it outgrows the enclave's headroom. Each
    /// fault touches ~2 metadata entries at random; the expected
    /// hardware-fault cost of those touches is charged here.
    fn charge_metadata_pressure(&self, ctx: &mut ThreadCtx) {
        if !self.cfg.model_metadata_pressure {
            return;
        }
        // ~44 B per sealed page (nonce, tag, version, hash slot) plus
        // 16 B per EPC++ frame mapping.
        let meta = self.seals().live_entries() * 44 + self.frames.len() * 16;
        let headroom = self.cfg.headroom_bytes.max(1);
        if meta <= headroom {
            return;
        }
        let miss_p = 1.0 - headroom as f64 / meta as f64;
        let costs = &self.machine.cfg.costs;
        let per_fault = (costs.exit_roundtrip()
            + costs.hw_fault_dispatch
            + (costs.hw_evict_page + costs.hw_load_page) / 2) as f64;
        ctx.compute((miss_p * 2.0 * per_fault) as u64);
    }

    /// Pins `page`'s frame if resident. Pin 0→1 only happens under the
    /// page's bucket lock, which is what makes eviction's
    /// "unpinned ⇒ evictable" check race-free.
    ///
    /// A pin also *rescues* a frame parked on the write-back queue:
    /// clearing `queued` here (under the same bucket lock the drain
    /// validates under) guarantees a drain never seals a frame that
    /// was re-pinned — and possibly re-written — after detach.
    pub(super) fn try_pin(&self, page: u64) -> Option<u32> {
        self.pt.with_bucket(page, |b| {
            b.iter().find(|(p, _)| *p == page).map(|&(_, frame)| {
                let meta = &self.frames[frame as usize];
                meta.pinned.fetch_add(1, Ordering::AcqRel);
                if meta.queued.swap(false, Ordering::AcqRel) {
                    Stats::bump(&self.machine.stats.suvm_wb_rescues);
                }
                match self.policy.class_of(frame) {
                    super::policy::VictimClass::Protected => {
                        Stats::bump(&self.machine.stats.suvm_hits_protected);
                    }
                    super::policy::VictimClass::Probation => {
                        Stats::bump(&self.machine.stats.suvm_hits_probation);
                    }
                }
                self.policy.on_access(frame);
                frame
            })
        })
    }

    /// Unpins a frame previously pinned by [`Self::fault_in_and_pin`].
    pub(crate) fn unpin(&self, frame: u32) {
        let old = self.frames[frame as usize]
            .pinned
            .fetch_sub(1, Ordering::AcqRel);
        debug_assert!(old > 0, "unpin of unpinned frame");
    }

    /// Marks a pinned frame dirty (write access).
    pub(crate) fn mark_dirty(&self, frame: u32) {
        self.frames[frame as usize]
            .dirty
            .store(true, Ordering::Release);
    }

    fn acquire_frame(&self, ctx: &mut ThreadCtx) -> u32 {
        loop {
            if let Some(f) = self.free.lock().pop() {
                if (f as usize) < self.limit.load(Ordering::Acquire) {
                    return f;
                }
                continue; // Ballooned away; drop it.
            }
            if self.cfg.wb_batch > 0 {
                // Batched mode: detaching is cheap on this path —
                // clean victims are freed outright, dirty ones only
                // parked on the write-back queue. When detaching frees
                // nothing the queue holds everything evictable, so
                // fall back to a synchronous batched drain.
                let (freed, _queued) = self.detach_victims(ctx, self.cfg.wb_batch);
                if freed > 0 {
                    continue;
                }
                if self.drain_writeback(ctx, self.cfg.wb_batch) > 0 {
                    continue;
                }
            }
            assert!(
                self.evict_one(ctx),
                "EPC++ exhausted: every frame is pinned (too many live linked spointers)"
            );
        }
    }

    /// Evicts one page per the configured [`crate::EvictPolicy`],
    /// sealing it out inline if dirty. Scans *all* frames (including
    /// ballooned-away ones, so a shrink eventually drains stragglers).
    /// Returns `false` if nothing was evictable.
    ///
    /// Part of the expert tuning surface (§3): experiments use it to
    /// drain EPC++ deterministically. Under batched write-back this is
    /// the deterministic drain tool — it happily evicts queued frames
    /// too (the stale queue entry is skipped at drain time).
    pub fn evict_one(&self, ctx: &mut ThreadCtx) -> bool {
        let n = self.frames.len();
        let max_steps = 2 * n + 1;
        for step in 0..max_steps {
            let idx = self.policy.next_candidate(step, n);
            let meta = &self.frames[idx];
            if meta.pinned.load(Ordering::Acquire) > 0 {
                continue;
            }
            let page = meta.page.load(Ordering::Acquire);
            if page == NO_PAGE {
                continue;
            }
            // Second chance only on the first lap (a full fruitless
            // revolution must still evict).
            if step < n && self.policy.second_chance(idx as u32) {
                continue;
            }
            if self.try_evict_frame(ctx, idx as u32, page) {
                return true;
            }
        }
        false
    }

    /// Unmaps `page` from `frame` and seals it out (or drops it when
    /// clean). Returns `false` if the mapping changed or is pinned.
    pub(super) fn try_evict_frame(&self, ctx: &mut ThreadCtx, frame: u32, page: u64) -> bool {
        let meta = &self.frames[frame as usize];
        let unmapped = self.pt.with_bucket(page, |b| {
            let Some(idx) = b.iter().position(|(p, f)| *p == page && *f == frame) else {
                return false;
            };
            if meta.pinned.load(Ordering::Acquire) > 0 {
                return false;
            }
            b.swap_remove(idx);
            true
        });
        if !unmapped {
            return false;
        }
        self.count_eviction_class(frame);
        let dirty = meta.dirty.swap(false, Ordering::AcqRel);
        let has_copy = self.seals().get(page).has_copy();
        if dirty || !has_copy || !self.cfg.clean_skip {
            // Inline eviction is a batch of one: every seal op pays the
            // full setup.
            let lens = self.seal_page_raw(ctx, page, frame);
            ctx.charge_crypto_batch(lens, false);
        } else {
            // Clean page with a valid sealed copy: discard without the
            // write-back (§3.2.4). SGX's EWB cannot do this.
            Stats::bump(&self.machine.stats.suvm_clean_skips);
            self.local.clean_skips.fetch_add(1, Ordering::Relaxed);
        }
        meta.page.store(NO_PAGE, Ordering::Release);
        meta.queued.store(false, Ordering::Release);
        self.policy.on_remove(frame);
        self.push_free(frame);
        Stats::bump(&self.machine.stats.suvm_evictions);
        self.local.evictions.fetch_add(1, Ordering::Relaxed);
        self.machine.trace.record(
            ctx.now(),
            eleos_sim::trace::Event::SuvmEvict {
                page,
                clean_skip: !(dirty || !has_copy || !self.cfg.clean_skip),
            },
        );
        true
    }

    /// Bumps the per-class eviction counter for `frame` (called before
    /// the policy forgets the frame).
    pub(super) fn count_eviction_class(&self, frame: u32) {
        match self.policy.class_of(frame) {
            super::policy::VictimClass::Protected => {
                Stats::bump(&self.machine.stats.suvm_evictions_protected);
            }
            super::policy::VictimClass::Probation => {
                Stats::bump(&self.machine.stats.suvm_evictions_probation);
            }
        }
    }

    /// Seals `frame`'s contents into the backing store as `page`
    /// through the configured [`eleos_crypto::Sealer`], and returns the
    /// byte length of each seal operation performed (one page, or one
    /// entry per sub-page).
    ///
    /// This is the *functional* half of an eviction: no crypto cycles
    /// are charged here. Callers feed the returned lengths to
    /// [`ThreadCtx::charge_crypto_batch`] — inline evictions as a batch
    /// of one, the write-back drain as one amortized batch across all
    /// the pages it sealed — so `Costs::crypto_batch_fixed` is billed
    /// from exactly one place.
    ///
    /// The crypto-metadata seqlock brackets the (ciphertext, metadata)
    /// update so concurrent readers never mistake a torn pair for
    /// tampering.
    pub(super) fn seal_page_raw(&self, ctx: &mut ThreadCtx, page: u64, frame: u32) -> Vec<usize> {
        let ps = self.cfg.page_size;
        let mut buf = vec![0u8; ps];
        ctx.read_enclave_raw(self.epcpp_vaddr(frame, 0), &mut buf);
        self.seals().begin_write(page);
        let (state, lens) = if self.cfg.seal_sub_pages {
            let sp = self.cfg.sub_page_size;
            let n_subs = ps / sp;
            let mut meta = Vec::with_capacity(n_subs);
            for s in 0..n_subs {
                let nonce = self.next_nonce();
                let tag = self.sealer.seal(
                    &nonce,
                    &Self::aad(page, s as u32),
                    &mut buf[s * sp..(s + 1) * sp],
                );
                meta.push((nonce, tag));
            }
            (
                SealState::SubPages {
                    meta: meta.into_boxed_slice(),
                },
                vec![sp; n_subs],
            )
        } else {
            let nonce = self.next_nonce();
            let tag = self
                .sealer
                .seal(&nonce, &Self::aad(page, u32::MAX), &mut buf);
            (SealState::Page { nonce, tag }, vec![ps])
        };
        ctx.write_untrusted_raw(self.bs_addr(page, 0), &buf);
        self.seals().commit_write(page, state);
        Stats::add(&self.machine.stats.sealed_bytes, ps as u64);
        lens
    }

    /// Loads `page` into `frame` (not yet visible in the page table).
    /// Returns `false` when the unseal raced a concurrent re-seal of
    /// the same page and must be retried.
    ///
    /// # Panics
    /// Panics when the sealed copy fails authentication at a *stable*
    /// metadata version — genuine tampering with untrusted memory.
    fn load_page_in(&self, ctx: &mut ThreadCtx, page: u64, frame: u32) -> bool {
        let ps = self.cfg.page_size;
        let (version, state) = self.seals().read(page);
        match state {
            SealState::Fresh => {
                let zeros = vec![0u8; ps];
                ctx.write_enclave_raw(self.epcpp_vaddr(frame, 0), &zeros);
                // Fast zero-fill: ~32 bytes/cycle.
                ctx.compute(ps as u64 / 32);
                true
            }
            SealState::Page { nonce, tag } => {
                let mut buf = vec![0u8; ps];
                ctx.read_untrusted_raw(self.bs_addr(page, 0), &mut buf);
                match self
                    .sealer
                    .open(&nonce, &Self::aad(page, u32::MAX), &mut buf, &tag)
                {
                    Ok(()) => {
                        ctx.charge_crypto_batch([ps], false);
                        ctx.write_enclave_raw(self.epcpp_vaddr(frame, 0), &buf);
                        Stats::add(&self.machine.stats.sealed_bytes, ps as u64);
                        true
                    }
                    Err(_) if !self.seals().check(page, version) => false,
                    Err(_) => {
                        panic!("SUVM page failed authentication: backing store tampered")
                    }
                }
            }
            SealState::SubPages { meta } => {
                let sp = self.cfg.sub_page_size;
                let mut buf = vec![0u8; ps];
                ctx.read_untrusted_raw(self.bs_addr(page, 0), &mut buf);
                for (s, (nonce, tag)) in meta.iter().enumerate() {
                    let span = &mut buf[s * sp..(s + 1) * sp];
                    if self
                        .sealer
                        .open(nonce, &Self::aad(page, s as u32), span, tag)
                        .is_err()
                    {
                        if !self.seals().check(page, version) {
                            return false;
                        }
                        panic!("SUVM sub-page failed authentication: backing store tampered");
                    }
                }
                ctx.charge_crypto_batch(vec![sp; meta.len()], false);
                ctx.write_enclave_raw(self.epcpp_vaddr(frame, 0), &buf);
                Stats::add(&self.machine.stats.sealed_bytes, ps as u64);
                true
            }
        }
    }
}
