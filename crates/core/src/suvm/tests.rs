//! Unit tests for the SUVM runtime.

use super::*;
use eleos_enclave::machine::MachineConfig;
use eleos_sim::costs::PAGE_SIZE;

fn setup(cfg: SuvmConfig) -> (Arc<SgxMachine>, Arc<Suvm>, ThreadCtx) {
    let m = SgxMachine::new(MachineConfig::scaled(4));
    let e = m
        .driver
        .create_enclave(&m, 2 * cfg.epcpp_bytes.max(1 << 20));
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    let suvm = Suvm::new(&t, cfg);
    t.enter();
    (m, suvm, t)
}

#[test]
fn malloc_write_read_roundtrip() {
    let (_m, s, mut t) = setup(SuvmConfig::tiny());
    let a = s.malloc(10_000);
    let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    s.write(&mut t, a, &data);
    let mut out = vec![0u8; data.len()];
    s.read(&mut t, a, &mut out);
    assert_eq!(out, data);
    s.free(a);
    t.exit();
}

#[test]
fn working_set_larger_than_epcpp_survives_eviction() {
    let (m, s, mut t) = setup(SuvmConfig::tiny()); // 16 frames
    let total = 64 * 4096; // 64 pages, 4x EPC++
    let a = s.malloc(total);
    for page in 0..64u64 {
        let val = vec![page as u8 + 1; 128];
        s.write(&mut t, a + page * 4096, &val);
    }
    for page in 0..64u64 {
        let mut buf = vec![0u8; 128];
        s.read(&mut t, a + page * 4096, &mut buf);
        assert_eq!(buf, vec![page as u8 + 1; 128], "page {page}");
    }
    let st = m.stats.snapshot();
    assert!(st.suvm_evictions > 0, "evictions must occur");
    assert!(st.suvm_major_faults >= 64, "refaults expected");
    assert_eq!(st.enclave_exits, 0, "SUVM paging must be exit-less");
    assert_eq!(st.hw_faults + 1, st.hw_faults + 1); // touch field
    t.exit();
}

#[test]
fn suvm_paging_causes_no_enclave_exits_but_hw_paging_does() {
    // Same working set through SUVM vs plain enclave memory, with
    // EPC smaller than the set: SUVM exits = 0, HW faults > 0.
    let m = SgxMachine::new(MachineConfig {
        epc_bytes: 32 * PAGE_SIZE,
        ..MachineConfig::tiny()
    });
    let e = m.driver.create_enclave(&m, 256 * PAGE_SIZE);
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    let suvm = Suvm::new(
        &t,
        SuvmConfig {
            epcpp_bytes: 8 * 4096,
            backing_bytes: 1 << 20,
            ..SuvmConfig::tiny()
        },
    );
    t.enter();
    let a = suvm.malloc(64 * 4096);
    let s0 = m.stats.snapshot();
    for page in 0..64u64 {
        suvm.write(&mut t, a + page * 4096, &[1u8; 64]);
    }
    let d = m.stats.snapshot() - s0;
    assert!(d.suvm_evictions > 0);
    assert_eq!(d.enclave_exits, 0);
    t.exit();
}

#[test]
fn clean_pages_skip_writeback() {
    let (m, s, mut t) = setup(SuvmConfig::tiny()); // 16 frames
    let a = s.malloc(64 * 4096);
    // Populate all pages (dirty), cycling through EPC++.
    for page in 0..64u64 {
        s.write(&mut t, a + page * 4096, &[3u8; 32]);
    }
    let s0 = m.stats.snapshot();
    // Read-only sweep: evictions during this phase are of clean
    // pages and must skip the write-back.
    for _ in 0..2 {
        for page in 0..64u64 {
            let mut b = [0u8; 32];
            s.read(&mut t, a + page * 4096, &mut b);
            assert_eq!(b, [3u8; 32]);
        }
    }
    let d = m.stats.snapshot() - s0;
    assert!(d.suvm_clean_skips > 0, "clean evictions must skip seal");
    t.exit();
}

#[test]
fn clean_skip_disabled_always_writes_back() {
    let cfg = SuvmConfig {
        clean_skip: false,
        ..SuvmConfig::tiny()
    };
    let (m, s, mut t) = setup(cfg);
    let a = s.malloc(64 * 4096);
    for page in 0..64u64 {
        s.write(&mut t, a + page * 4096, &[3u8; 32]);
    }
    let s0 = m.stats.snapshot();
    for page in 0..64u64 {
        let mut b = [0u8; 32];
        s.read(&mut t, a + page * 4096, &mut b);
    }
    let d = m.stats.snapshot() - s0;
    assert_eq!(d.suvm_clean_skips, 0);
    t.exit();
}

#[test]
fn direct_read_matches_cached_read() {
    let cfg = SuvmConfig {
        seal_sub_pages: true,
        ..SuvmConfig::tiny()
    };
    let (_m, s, mut t) = setup(cfg);
    let a = s.malloc(64 * 4096);
    let data: Vec<u8> = (0..64 * 4096u32).map(|i| (i % 239) as u8).collect();
    s.write(&mut t, a, &data);
    // Force everything out of EPC++.
    while s.evict_one(&mut t) {}
    assert_eq!(s.resident_pages(), 0);
    // Direct reads at various offsets/sizes, including misaligned
    // spans across sub-pages (beyond the paper's prototype).
    for &(off, len) in &[
        (0usize, 16usize),
        (100, 256),
        (1000, 2048),
        (4000, 200),
        (5000, 9000),
    ] {
        let mut buf = vec![0u8; len];
        s.read_direct(&mut t, a + off as u64, &mut buf);
        assert_eq!(buf, &data[off..off + len], "off={off} len={len}");
    }
    assert_eq!(
        s.resident_pages(),
        0,
        "direct reads must not populate EPC++"
    );
    t.exit();
}

#[test]
fn direct_write_read_roundtrip() {
    let cfg = SuvmConfig {
        seal_sub_pages: true,
        ..SuvmConfig::tiny()
    };
    let (_m, s, mut t) = setup(cfg);
    let a = s.malloc(16 * 4096);
    s.write(&mut t, a, &vec![9u8; 16 * 4096]);
    while s.evict_one(&mut t) {}
    // Misaligned direct write spanning two sub-pages.
    s.write_direct(&mut t, a + 1000, b"direct-write-payload");
    let mut buf = vec![0u8; 30];
    s.read_direct(&mut t, a + 995, &mut buf);
    assert_eq!(&buf[..5], &[9u8; 5]);
    assert_eq!(&buf[5..25], b"direct-write-payload");
    assert_eq!(&buf[25..], &[9u8; 5]);
    // And the cached path agrees.
    let mut buf2 = vec![0u8; 30];
    s.read(&mut t, a + 995, &mut buf2);
    assert_eq!(buf, buf2);
    t.exit();
}

#[test]
fn resize_shrink_and_grow() {
    let (_m, s, mut t) = setup(SuvmConfig::tiny()); // 16 frames
    let a = s.malloc(16 * 4096);
    for page in 0..16u64 {
        s.write(&mut t, a + page * 4096, &[1u8; 16]);
    }
    s.resize(&mut t, 4);
    assert_eq!(s.frame_limit(), 4);
    assert!(s.resident_pages() <= 4, "shrink must evict");
    // Data still correct through the smaller cache.
    for page in 0..16u64 {
        let mut b = [0u8; 16];
        s.read(&mut t, a + page * 4096, &mut b);
        assert_eq!(b, [1u8; 16]);
    }
    s.resize(&mut t, 16);
    assert_eq!(s.frame_limit(), 16);
    for page in 0..16u64 {
        let mut b = [0u8; 16];
        s.read(&mut t, a + page * 4096, &mut b);
        assert_eq!(b, [1u8; 16]);
    }
    t.exit();
}

#[test]
fn memset_memcmp_memcpy() {
    let (_m, s, mut t) = setup(SuvmConfig::tiny());
    let a = s.malloc(8192);
    let b = s.malloc(8192);
    s.memset(&mut t, a, 8192, 0x5a);
    s.memcpy(&mut t, b, a, 8192);
    assert_eq!(s.memcmp(&mut t, a, b, 8192), core::cmp::Ordering::Equal);
    s.write(&mut t, b + 5000, &[0x5b]);
    assert_eq!(s.memcmp(&mut t, a, b, 8192), core::cmp::Ordering::Less);
    t.exit();
}

#[test]
fn free_decommits_whole_pages() {
    let (_m, s, mut t) = setup(SuvmConfig::tiny());
    let a = s.malloc(4 * 4096);
    s.write(&mut t, a, &[1u8; 4 * 4096]);
    let resident_before = s.resident_pages();
    assert!(resident_before >= 4);
    s.free(a);
    assert!(s.resident_pages() < resident_before);
    t.exit();
}

#[test]
fn fault_costs_match_paper() {
    // Read faults ~8.5k cycles, write(evict-dirty)+load ~14k (§6.1.2).
    let (m, s, mut t) = setup(SuvmConfig::tiny()); // 16 frames
    let a = s.malloc(64 * 4096);
    // Populate (all dirty).
    for page in 0..64u64 {
        s.write(&mut t, a + page * 4096, &[1u8; 4096]);
    }
    // Read-only steady state: faults pay load only (victims clean
    // after first lap).
    for page in 0..64u64 {
        let mut b = [0u8; 8];
        s.read(&mut t, a + page * 4096, &mut b);
    }
    let s0 = m.stats.snapshot();
    let c0 = t.now();
    for page in 0..64u64 {
        let mut b = [0u8; 8];
        s.read(&mut t, a + page * 4096, &mut b);
    }
    let d = m.stats.snapshot() - s0;
    let per_read_fault = (t.now() - c0) / d.suvm_major_faults.max(1);
    assert!(
        (6_000..=12_000).contains(&per_read_fault),
        "read fault cost {per_read_fault}"
    );

    // Write steady state: fault pays evict(dirty)+load.
    for page in 0..64u64 {
        s.write(&mut t, a + page * 4096, &[2u8; 4096]);
    }
    let s0 = m.stats.snapshot();
    let c0 = t.now();
    for page in 0..64u64 {
        s.write(&mut t, a + page * 4096, &[3u8; 8]);
    }
    let d = m.stats.snapshot() - s0;
    let per_write_fault = (t.now() - c0) / d.suvm_major_faults.max(1);
    assert!(
        (11_000..=20_000).contains(&per_write_fault),
        "write fault cost {per_write_fault}"
    );
    t.exit();
}

#[test]
fn all_eviction_policies_preserve_data() {
    use crate::config::EvictPolicy;
    for policy in [
        EvictPolicy::Clock,
        EvictPolicy::Fifo,
        EvictPolicy::Random(7),
        EvictPolicy::LruApprox(7),
        EvictPolicy::Slru,
    ] {
        let (m, s, mut t) = setup(SuvmConfig {
            policy,
            ..SuvmConfig::tiny()
        });
        let a = s.malloc(64 * 4096);
        for page in 0..64u64 {
            s.write(&mut t, a + page * 4096, &[page as u8 + 1; 64]);
        }
        for page in 0..64u64 {
            let mut b = [0u8; 64];
            s.read(&mut t, a + page * 4096, &mut b);
            assert_eq!(b, [page as u8 + 1; 64], "{policy:?} page {page}");
        }
        assert!(m.stats.snapshot().suvm_evictions > 0, "{policy:?}");
        t.exit();
    }
}

#[test]
fn clock_keeps_hot_pages_over_fifo() {
    use crate::config::EvictPolicy;
    // A hot page touched between every cold access: CLOCK's second
    // chance should retain it far more often than FIFO.
    let faults_on_hot = |policy| {
        let (m, s, mut t) = setup(SuvmConfig {
            policy,
            ..SuvmConfig::tiny() // 16 frames
        });
        let a = s.malloc(64 * 4096);
        s.memset(&mut t, a, 64 * 4096, 1);
        let s0 = m.stats.snapshot();
        let mut hot_faults = 0u64;
        for i in 0..400u64 {
            // Hot page 0.
            let before = m.stats.snapshot().suvm_major_faults;
            let mut b = [0u8; 8];
            s.read(&mut t, a, &mut b);
            hot_faults += m.stats.snapshot().suvm_major_faults - before;
            // Cold sweep.
            let cold = 1 + (i % 63);
            s.read(&mut t, a + cold * 4096, &mut b);
        }
        let _ = s0;
        t.exit();
        hot_faults
    };
    let clock = faults_on_hot(EvictPolicy::Clock);
    let fifo = faults_on_hot(EvictPolicy::Fifo);
    assert!(
        clock < fifo,
        "CLOCK ({clock} hot faults) must beat FIFO ({fifo})"
    );
}

#[test]
fn tampered_backing_store_detected() {
    let (m, s, mut t) = setup(SuvmConfig::tiny());
    let a = s.malloc(32 * 4096);
    for page in 0..32u64 {
        s.write(&mut t, a + page * 4096, &[7u8; 64]);
    }
    // Find a sealed page and flip a ciphertext byte in the
    // untrusted backing store.
    let mut tampered = false;
    for page in 0..32u64 {
        if s.seals().get(page + s.page_of(a)).has_copy() {
            let addr = s.bs_addr(s.page_of(a) + page, 100);
            let mut b = [0u8; 1];
            m.untrusted.read(addr, &mut b);
            m.untrusted.write(addr, &[b[0] ^ 0xff]);
            tampered = true;
            break;
        }
    }
    assert!(tampered, "no sealed page found to tamper with");
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for page in 0..32u64 {
            let mut b = [0u8; 1];
            s.read(&mut t, a + page * 4096, &mut b);
        }
    }));
    assert!(result.is_err(), "tampering must be detected");
}

#[test]
fn multithreaded_suvm_consistency() {
    let m = SgxMachine::new(MachineConfig::scaled(4));
    let e = m.driver.create_enclave(&m, 4 << 20);
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let s = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 8 * 4096,
            backing_bytes: 1 << 20,
            ..SuvmConfig::tiny()
        },
    );
    // 4 threads, each owns a disjoint 16-page region, hammering
    // through an 8-frame cache.
    let region = s.malloc(64 * 4096);
    let mut handles = Vec::new();
    for thread in 0..4u64 {
        let m = Arc::clone(&m);
        let e = Arc::clone(&e);
        let s = Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            let mut t = ThreadCtx::for_enclave(&m, &e, thread as usize);
            t.enter();
            let base = region + thread * 16 * 4096;
            for round in 0..8u64 {
                for page in 0..16u64 {
                    let val = [(thread * 31 + page + round) as u8; 32];
                    s.write(&mut t, base + page * 4096, &val);
                }
                for page in 0..16u64 {
                    let mut b = [0u8; 32];
                    s.read(&mut t, base + page * 4096, &mut b);
                    assert_eq!(
                        b,
                        [(thread * 31 + page + round) as u8; 32],
                        "thread {thread} page {page} round {round}"
                    );
                }
            }
            t.exit();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn metadata_pressure_slows_faults_when_over_headroom() {
    // Identical workloads; the second instance's headroom is tiny, so
    // its sealed-page metadata "outgrows the EPC" and fault paths pay
    // the modelled hardware cost (§4.1/§4.2 — Fig 7's >1GB droop).
    let fault_cost = |headroom: usize| {
        let (m, s, mut t) = setup(SuvmConfig {
            headroom_bytes: headroom,
            ..SuvmConfig::tiny()
        });
        let a = s.malloc(256 * 4096);
        for p in 0..256u64 {
            s.write(&mut t, a + p * 4096, &[1u8; 32]);
        }
        // Read steady state over sealed pages.
        for p in 0..256u64 {
            let mut b = [0u8; 8];
            s.read(&mut t, a + p * 4096, &mut b);
        }
        let s0 = m.stats.snapshot();
        let c0 = t.now();
        for p in 0..256u64 {
            let mut b = [0u8; 8];
            s.read(&mut t, a + p * 4096, &mut b);
        }
        let d = m.stats.snapshot() - s0;
        let per = (t.now() - c0) / d.suvm_major_faults.max(1);
        t.exit();
        per
    };
    let roomy = fault_cost(1 << 20);
    let squeezed = fault_cost(1 << 10); // 1 KiB "headroom": heavy pressure
    assert!(
        squeezed > roomy + 5_000,
        "metadata pressure must surface: {squeezed} vs {roomy}"
    );
}

#[test]
fn metadata_pressure_model_can_be_disabled() {
    let (_m, s, mut t) = setup(SuvmConfig {
        headroom_bytes: 1 << 10,
        model_metadata_pressure: false,
        ..SuvmConfig::tiny()
    });
    let a = s.malloc(64 * 4096);
    for p in 0..64u64 {
        s.write(&mut t, a + p * 4096, &[1u8; 8]);
    }
    // No panic, data intact; (cost parity with the roomy case is
    // covered by the calibration test windows).
    let mut b = [0u8; 8];
    s.read(&mut t, a, &mut b);
    assert_eq!(b[0], 1);
    t.exit();
}

#[test]
fn batched_writeback_detaches_then_drains() {
    let (m, s, mut t) = setup(SuvmConfig {
        wb_batch: 4,
        ..SuvmConfig::tiny() // 16 frames
    });
    let a = s.malloc(64 * 4096);
    for page in 0..64u64 {
        s.write(&mut t, a + page * 4096, &[page as u8 + 1; 64]);
    }
    let st = m.stats.snapshot();
    assert!(st.suvm_wb_queued > 0, "dirty victims must be queued");
    assert!(st.suvm_wb_batches > 0, "queue must have been drained");
    assert!(st.suvm_wb_pages > 0);
    assert!(st.suvm_wb_queue_peak > 0);
    // Queue may hold leftovers (possibly stale entries that seal
    // nothing); drain until it is empty, then the structure must be
    // consistent and the data intact.
    while s.writeback_queue_len() > 0 {
        s.drain_writeback(&mut t, 4);
    }
    s.check_consistency();
    for page in 0..64u64 {
        let mut b = [0u8; 64];
        s.read(&mut t, a + page * 4096, &mut b);
        assert_eq!(b, [page as u8 + 1; 64], "page {page}");
    }
    t.exit();
}

#[test]
fn quiesce_seals_every_dirty_page_and_is_idempotent() {
    // Regardless of write-back mode: after quiesce the backing store
    // holds every write sealed, nothing is dirty, and the data
    // survives refaulting (a snapshot fence for failover).
    for wb_batch in [0usize, 4] {
        let (_m, s, mut t) = setup(SuvmConfig {
            wb_batch,
            ..SuvmConfig::tiny()
        });
        let a = s.malloc(16 * 4096);
        for page in 0..8u64 {
            s.write(&mut t, a + page * 4096, &[page as u8 + 1; 64]);
        }
        let sealed = s.quiesce(&mut t);
        assert_eq!(
            sealed, 8,
            "every dirty resident page sealed (wb_batch {wb_batch})"
        );
        assert_eq!(s.writeback_queue_len(), 0);
        s.check_consistency();
        assert_eq!(
            s.quiesce(&mut t),
            0,
            "a quiesced instance has nothing dirty"
        );
        for page in 0..8u64 {
            let mut b = [0u8; 64];
            s.read(&mut t, a + page * 4096, &mut b);
            assert_eq!(b, [page as u8 + 1; 64], "page {page}");
        }
        t.exit();
    }
}

#[test]
fn pin_rescues_queued_frame_before_drain() {
    let (m, s, mut t) = setup(SuvmConfig {
        wb_batch: 16,
        clean_skip: true,
        ..SuvmConfig::tiny()
    });
    let a = s.malloc(16 * 4096);
    // Dirty every resident page, then detach victims onto the queue
    // without draining.
    for page in 0..8u64 {
        s.write(&mut t, a + page * 4096, &[9u8; 32]);
    }
    let (_freed, queued) = s.detach_victims(&mut t, 8);
    assert!(queued > 0, "dirty pages must be parked");
    let before = m.stats.snapshot();
    // Touch a queued page: the access must rescue it (no refault) and
    // the later drain must skip it.
    let mut b = [0u8; 32];
    s.read(&mut t, a, &mut b);
    assert_eq!(b, [9u8; 32]);
    let mid = m.stats.snapshot();
    assert_eq!(
        mid.suvm_major_faults, before.suvm_major_faults,
        "a queued page is still resident — no refault"
    );
    assert!(mid.suvm_wb_rescues > before.suvm_wb_rescues);
    let drained = s.drain_writeback(&mut t, 16);
    assert!(
        drained < queued,
        "the rescued page must be skipped at drain time"
    );
    s.check_consistency();
    t.exit();
}

#[test]
fn batched_writeback_amortizes_seal_setup() {
    // Seal 8 dirty pages inline vs in one drained batch; the batch
    // charges the full GCM setup once and a quarter for the rest.
    let run = |wb_batch: usize| {
        let (m, s, mut t) = setup(SuvmConfig {
            wb_batch,
            ..SuvmConfig::tiny()
        });
        let a = s.malloc(16 * 4096);
        for page in 0..8u64 {
            s.write(&mut t, a + page * 4096, &[3u8; 64]);
        }
        let c0 = t.now();
        if wb_batch > 0 {
            let (_f, q) = s.detach_victims(&mut t, 8);
            assert_eq!(q, 8);
            assert_eq!(s.drain_writeback(&mut t, 8), 8);
        } else {
            for _ in 0..8 {
                assert!(s.evict_one(&mut t));
            }
        }
        let cycles = t.now() - c0;
        let st = m.stats.snapshot();
        assert_eq!(st.suvm_evictions, 8);
        t.exit();
        cycles
    };
    let inline = run(0);
    let batched = run(8);
    // 7 pages * (400 - 100) = 2100 cycles saved on the seal setup.
    assert!(
        batched < inline,
        "batched drain must be cheaper: {batched} vs {inline}"
    );
    assert!(inline - batched >= 2_000, "{inline} vs {batched}");
}

#[test]
fn striped_store_roundtrips_and_detects_tampering() {
    let (m, s, mut t) = setup(SuvmConfig {
        store: crate::config::StoreKind::Striped { stripes: 4 },
        ..SuvmConfig::tiny()
    });
    let a = s.malloc(32 * 4096);
    for page in 0..32u64 {
        s.write(&mut t, a + page * 4096, &[page as u8 ^ 0x5a; 64]);
    }
    for page in 0..32u64 {
        let mut b = [0u8; 64];
        s.read(&mut t, a + page * 4096, &mut b);
        assert_eq!(b, [page as u8 ^ 0x5a; 64], "page {page}");
    }
    // Tamper with a sealed image in whichever stripe holds it.
    let mut tampered = false;
    for page in 0..32u64 {
        if s.seals().get(page + s.page_of(a)).has_copy() {
            let addr = s.bs_addr(s.page_of(a) + page, 100);
            let mut b = [0u8; 1];
            m.untrusted.read(addr, &mut b);
            m.untrusted.write(addr, &[b[0] ^ 0xff]);
            tampered = true;
            break;
        }
    }
    assert!(tampered);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for page in 0..32u64 {
            let mut b = [0u8; 1];
            s.read(&mut t, a + page * 4096, &mut b);
        }
    }));
    assert!(result.is_err(), "striped store must detect tampering too");
}

#[test]
fn striped_store_rejects_blocks_larger_than_a_stripe() {
    let (_m, s, mut t) = setup(SuvmConfig {
        store: crate::config::StoreKind::Striped { stripes: 4 },
        ..SuvmConfig::tiny() // 1 MiB backing → 256 KiB stripes
    });
    assert!(s.try_malloc(512 << 10).is_err());
    // Chunked allocation of the same total succeeds.
    let chunks: Vec<_> = (0..4).map(|_| s.malloc(128 << 10)).collect();
    for (i, &c) in chunks.iter().enumerate() {
        s.write(&mut t, c, &[i as u8 + 1; 16]);
    }
    for (i, &c) in chunks.iter().enumerate() {
        let mut b = [0u8; 16];
        s.read(&mut t, c, &mut b);
        assert_eq!(b, [i as u8 + 1; 16]);
    }
    for c in chunks {
        s.free(c);
    }
    t.exit();
}
