//! Pluggable EPC++ eviction policies.
//!
//! §3.2.2: "user code has full control over the spointer's page table,
//! page size, and eviction policy" — this module is that control
//! surface. [`EvictionPolicy`] separates victim *selection* from the
//! fault/eviction machinery in [`super::fault`]: the runtime asks the
//! policy for candidates and reports insertions/accesses/removals; the
//! runtime alone decides pin-safety and performs the unmap/seal.
//!
//! Policies keep their own per-frame state (reference bits, stamps,
//! classes) in plain atomics sized at construction, so the hot paths
//! stay lock-free; CLOCK and FIFO share a hand under a mutex exactly
//! like the pre-refactor implementation, keeping single-threaded victim
//! sequences bit-identical to the old hard-coded path.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use parking_lot::Mutex;

use crate::config::EvictPolicy;

/// Replacement class of a resident frame, for per-class statistics.
///
/// Single-class policies report everything as `Probation`; the
/// pin-aware SLRU promotes re-pinned frames to `Protected`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimClass {
    /// Recently inserted, not yet proven hot.
    Probation,
    /// Re-accessed since insertion; evicted only after demotion.
    Protected,
}

/// Victim selection for the EPC++ frame pool.
///
/// The caller ([`super::Suvm`]) drives a bounded scan: it requests
/// [`Self::next_candidate`] up to `2n + 1` times, skips pinned and
/// empty frames itself, honors [`Self::second_chance`] only on the
/// first lap (`step < n`) so a full fruitless revolution still
/// evicts, and performs the actual unmap/seal.
pub trait EvictionPolicy: Send + Sync {
    /// Short label for stats and experiment output.
    fn name(&self) -> &'static str;

    /// A page was installed into `frame`.
    fn on_insert(&self, frame: u32);

    /// `frame` was touched (pinned) while resident.
    fn on_access(&self, frame: u32);

    /// `frame` was unmapped (evicted or decommitted).
    fn on_remove(&self, frame: u32);

    /// The frame index to consider at scan step `step` of `n` frames.
    fn next_candidate(&self, step: usize, n: usize) -> usize;

    /// Whether `frame` should be spared this pass (first lap only).
    /// May consume state (e.g. clear a reference bit or demote a
    /// class) so a later pass succeeds.
    fn second_chance(&self, frame: u32) -> bool {
        let _ = frame;
        false
    }

    /// The frame's current replacement class (statistics only).
    fn class_of(&self, frame: u32) -> VictimClass {
        let _ = frame;
        VictimClass::Probation
    }

    /// The current protected-class capacity, for policies that bound
    /// (and possibly tune) it. `None` for policies without a cap.
    fn protected_cap(&self) -> Option<usize> {
        None
    }
}

/// Builds the policy object configured by [`EvictPolicy`] for a pool
/// of `n` frames.
pub(crate) fn build_policy(policy: EvictPolicy, n: usize) -> Box<dyn EvictionPolicy> {
    match policy {
        EvictPolicy::Clock => Box::new(ClockPolicy::new(n)),
        EvictPolicy::Fifo => Box::new(FifoPolicy::default()),
        EvictPolicy::Random(seed) => Box::new(RandomPolicy::new(seed)),
        EvictPolicy::LruApprox(seed) => Box::new(LruApproxPolicy::new(n, seed)),
        EvictPolicy::Slru => Box::new(SlruPolicy::new(n)),
        EvictPolicy::SlruTuned => Box::new(TunedSlruPolicy::new(n)),
    }
}

// The pre-refactor Random walk: one multiply + xor-shift. Kept
// bit-exact so seeded experiments reproduce across the refactor.
#[inline]
fn splitmix_weak(x: u64) -> u64 {
    let mut x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 31;
    x
}

// Full splitmix64 finalizer for the LRU sampler, whose quality depends
// on the low bits being well distributed.
#[inline]
fn splitmix64(x: u64) -> u64 {
    let mut x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Second-chance CLOCK (the default, and the paper's choice).
struct ClockPolicy {
    hand: Mutex<usize>,
    referenced: Vec<AtomicBool>,
}

impl ClockPolicy {
    fn new(n: usize) -> Self {
        let mut referenced = Vec::with_capacity(n);
        referenced.resize_with(n, || AtomicBool::new(false));
        Self {
            hand: Mutex::new(0),
            referenced,
        }
    }
}

impl EvictionPolicy for ClockPolicy {
    fn name(&self) -> &'static str {
        "clock"
    }

    fn on_insert(&self, frame: u32) {
        self.referenced[frame as usize].store(true, Ordering::Release);
    }

    fn on_access(&self, frame: u32) {
        self.referenced[frame as usize].store(true, Ordering::Release);
    }

    fn on_remove(&self, frame: u32) {
        self.referenced[frame as usize].store(false, Ordering::Release);
    }

    fn next_candidate(&self, _step: usize, n: usize) -> usize {
        let mut hand = self.hand.lock();
        let idx = *hand % n;
        *hand = (*hand + 1) % n;
        idx
    }

    fn second_chance(&self, frame: u32) -> bool {
        self.referenced[frame as usize].swap(false, Ordering::AcqRel)
    }
}

/// FIFO: evict in residence order, ignoring reuse (what the opaque SGX
/// driver effectively does).
#[derive(Default)]
struct FifoPolicy {
    hand: Mutex<usize>,
}

impl EvictionPolicy for FifoPolicy {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn on_insert(&self, _frame: u32) {}
    fn on_access(&self, _frame: u32) {}
    fn on_remove(&self, _frame: u32) {}

    fn next_candidate(&self, _step: usize, n: usize) -> usize {
        let mut hand = self.hand.lock();
        let idx = *hand % n;
        *hand = (*hand + 1) % n;
        idx
    }
}

/// Deterministic pseudo-random victim selection (the adversarial
/// baseline).
struct RandomPolicy {
    seed: u64,
    ctr: AtomicU64,
}

impl RandomPolicy {
    fn new(seed: u64) -> Self {
        Self {
            seed,
            ctr: AtomicU64::new(0),
        }
    }
}

impl EvictionPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn on_insert(&self, _frame: u32) {}
    fn on_access(&self, _frame: u32) {}
    fn on_remove(&self, _frame: u32) {}

    fn next_candidate(&self, step: usize, n: usize) -> usize {
        // Past one full lap of random draws, degrade to a linear sweep
        // so an eviction scan is guaranteed to visit every frame —
        // random draws alone can miss the single evictable frame for
        // all 2n+1 steps and fail a scan that should succeed.
        if step >= n {
            return step % n;
        }
        // Splitmix walk over a shared counter, matching the
        // pre-refactor sequence (counter starts at 1).
        let c = self.ctr.fetch_add(1, Ordering::Relaxed) + 1;
        (splitmix_weak(c.wrapping_add(self.seed)) as usize) % n
    }
}

/// How many frames [`LruApproxPolicy`] samples per candidate request.
const LRU_SAMPLE: usize = 8;

/// Sampled LRU: stamp frames on insert/access with a logical clock and
/// evict the oldest of a small random sample — Redis-style
/// approximation, O(1) per access with no global list.
struct LruApproxPolicy {
    seed: u64,
    tick: AtomicU64,
    ctr: AtomicU64,
    stamps: Vec<AtomicU64>,
}

impl LruApproxPolicy {
    fn new(n: usize, seed: u64) -> Self {
        let mut stamps = Vec::with_capacity(n);
        stamps.resize_with(n, || AtomicU64::new(u64::MAX));
        Self {
            seed,
            tick: AtomicU64::new(0),
            ctr: AtomicU64::new(0),
            stamps,
        }
    }

    fn stamp(&self, frame: u32) {
        let t = self.tick.fetch_add(1, Ordering::Relaxed);
        self.stamps[frame as usize].store(t, Ordering::Relaxed);
    }
}

impl EvictionPolicy for LruApproxPolicy {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn on_insert(&self, frame: u32) {
        self.stamp(frame);
    }

    fn on_access(&self, frame: u32) {
        self.stamp(frame);
    }

    fn on_remove(&self, frame: u32) {
        // MAX keeps empty frames out of future samples.
        self.stamps[frame as usize].store(u64::MAX, Ordering::Relaxed);
    }

    fn next_candidate(&self, step: usize, n: usize) -> usize {
        if step >= n {
            // Deterministic sweep fallback guarantees the bounded scan
            // terminates even if sampling keeps hitting unusable
            // frames.
            return step % n;
        }
        let mut best = 0usize;
        let mut best_stamp = u64::MAX;
        for _ in 0..LRU_SAMPLE.min(n) {
            let c = self.ctr.fetch_add(1, Ordering::Relaxed);
            let idx = (splitmix64(c.wrapping_add(self.seed)) as usize) % n;
            let s = self.stamps[idx].load(Ordering::Relaxed);
            if s <= best_stamp {
                best_stamp = s;
                best = idx;
            }
        }
        best
    }
}

/// Pin-aware segmented LRU: frames enter on probation; a re-pin after
/// insertion (a linked spointer or any repeat access) promotes them to
/// a protected class that the sweep demotes instead of evicting —
/// working-set pages survive one extra revolution even after their
/// pins drop.
struct SlruPolicy {
    hand: Mutex<usize>,
    class: Vec<AtomicU8>,
    referenced: Vec<AtomicBool>,
}

const CLASS_PROBATION: u8 = 0;
const CLASS_PROTECTED: u8 = 1;

impl SlruPolicy {
    fn new(n: usize) -> Self {
        let mut class = Vec::with_capacity(n);
        class.resize_with(n, || AtomicU8::new(CLASS_PROBATION));
        let mut referenced = Vec::with_capacity(n);
        referenced.resize_with(n, || AtomicBool::new(false));
        Self {
            hand: Mutex::new(0),
            class,
            referenced,
        }
    }
}

impl EvictionPolicy for SlruPolicy {
    fn name(&self) -> &'static str {
        "slru"
    }

    fn on_insert(&self, frame: u32) {
        self.class[frame as usize].store(CLASS_PROBATION, Ordering::Release);
        self.referenced[frame as usize].store(true, Ordering::Release);
    }

    fn on_access(&self, frame: u32) {
        self.referenced[frame as usize].store(true, Ordering::Release);
        self.class[frame as usize].store(CLASS_PROTECTED, Ordering::Release);
    }

    fn on_remove(&self, frame: u32) {
        self.class[frame as usize].store(CLASS_PROBATION, Ordering::Release);
        self.referenced[frame as usize].store(false, Ordering::Release);
    }

    fn next_candidate(&self, _step: usize, n: usize) -> usize {
        let mut hand = self.hand.lock();
        let idx = *hand % n;
        *hand = (*hand + 1) % n;
        idx
    }

    fn second_chance(&self, frame: u32) -> bool {
        let i = frame as usize;
        if self.class[i].swap(CLASS_PROBATION, Ordering::AcqRel) == CLASS_PROTECTED {
            // Demote instead of evicting; the bit buys one more lap.
            self.referenced[i].store(false, Ordering::Release);
            return true;
        }
        self.referenced[i].swap(false, Ordering::AcqRel)
    }

    fn class_of(&self, frame: u32) -> VictimClass {
        if self.class[frame as usize].load(Ordering::Acquire) == CLASS_PROTECTED {
            VictimClass::Protected
        } else {
            VictimClass::Probation
        }
    }
}

/// Accesses between self-tuning windows of [`TunedSlruPolicy`].
const TUNE_WINDOW: u64 = 256;

/// SLRU with a *bounded, self-tuning* protected class. The plain
/// [`SlruPolicy`] promotes every re-accessed frame, so a scan-heavy
/// phase can flood the protected class and starve the working set.
/// This variant caps promotions at a protected capacity and retunes
/// the cap from per-class hit feedback every [`TUNE_WINDOW`] accesses:
///
/// - probation earning most of the hits (`2 * probation_hits >
///   total_hits`) means hot frames are stuck below the cap — grow it
///   by `n/8` (up to `7n/8`);
/// - protected dominating (`total_hits > 3 * probation_hits`) means
///   the class already holds the working set and is hoarding frames —
///   shrink by `n/8` (down to `n/8`).
///
/// This is the same hit/eviction feedback loop the storage tier's
/// slab rebalancer runs, applied to paging frames.
struct TunedSlruPolicy {
    hand: Mutex<usize>,
    n: usize,
    class: Vec<AtomicU8>,
    referenced: Vec<AtomicBool>,
    cap: AtomicU64,
    protected: AtomicU64,
    hits_probation: AtomicU64,
    hits_total: AtomicU64,
}

impl TunedSlruPolicy {
    fn new(n: usize) -> Self {
        let mut class = Vec::with_capacity(n);
        class.resize_with(n, || AtomicU8::new(CLASS_PROBATION));
        let mut referenced = Vec::with_capacity(n);
        referenced.resize_with(n, || AtomicBool::new(false));
        Self {
            hand: Mutex::new(0),
            n,
            class,
            referenced,
            cap: AtomicU64::new((n / 2).max(1) as u64),
            protected: AtomicU64::new(0),
            hits_probation: AtomicU64::new(0),
            hits_total: AtomicU64::new(0),
        }
    }

    fn step(&self) -> u64 {
        (self.n / 8).max(1) as u64
    }

    fn retune(&self) {
        let hp = self.hits_probation.swap(0, Ordering::Relaxed);
        let ht = self.hits_total.swap(0, Ordering::Relaxed);
        let cap = self.cap.load(Ordering::Relaxed);
        let lo = self.step();
        let hi = ((self.n * 7) / 8).max(1) as u64;
        if 2 * hp > ht {
            self.cap
                .store((cap + self.step()).min(hi), Ordering::Relaxed);
        } else if ht > 3 * hp {
            self.cap
                .store(cap.saturating_sub(self.step()).max(lo), Ordering::Relaxed);
        }
    }
}

impl EvictionPolicy for TunedSlruPolicy {
    fn name(&self) -> &'static str {
        "slru-tuned"
    }

    fn on_insert(&self, frame: u32) {
        self.class[frame as usize].store(CLASS_PROBATION, Ordering::Release);
        self.referenced[frame as usize].store(true, Ordering::Release);
    }

    fn on_access(&self, frame: u32) {
        let i = frame as usize;
        self.referenced[i].store(true, Ordering::Release);
        let ht = self.hits_total.fetch_add(1, Ordering::Relaxed) + 1;
        if self.class[i].load(Ordering::Acquire) == CLASS_PROTECTED {
            // Already protected: a pure protected-class hit.
        } else {
            self.hits_probation.fetch_add(1, Ordering::Relaxed);
            // Promote only while the protected class has room.
            if self.protected.load(Ordering::Relaxed) < self.cap.load(Ordering::Relaxed)
                && self.class[i].swap(CLASS_PROTECTED, Ordering::AcqRel) == CLASS_PROBATION
            {
                self.protected.fetch_add(1, Ordering::Relaxed);
            }
        }
        if ht.is_multiple_of(TUNE_WINDOW) {
            self.retune();
        }
    }

    fn on_remove(&self, frame: u32) {
        let i = frame as usize;
        if self.class[i].swap(CLASS_PROBATION, Ordering::AcqRel) == CLASS_PROTECTED {
            self.protected.fetch_sub(1, Ordering::Relaxed);
        }
        self.referenced[i].store(false, Ordering::Release);
    }

    fn next_candidate(&self, _step: usize, n: usize) -> usize {
        let mut hand = self.hand.lock();
        let idx = *hand % n;
        *hand = (*hand + 1) % n;
        idx
    }

    fn second_chance(&self, frame: u32) -> bool {
        let i = frame as usize;
        if self.class[i].swap(CLASS_PROBATION, Ordering::AcqRel) == CLASS_PROTECTED {
            self.protected.fetch_sub(1, Ordering::Relaxed);
            self.referenced[i].store(false, Ordering::Release);
            return true;
        }
        self.referenced[i].swap(false, Ordering::AcqRel)
    }

    fn class_of(&self, frame: u32) -> VictimClass {
        if self.class[frame as usize].load(Ordering::Acquire) == CLASS_PROTECTED {
            VictimClass::Protected
        } else {
            VictimClass::Probation
        }
    }

    fn protected_cap(&self) -> Option<usize> {
        Some(self.cap.load(Ordering::Relaxed) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_matches_pre_refactor_hand_sequence() {
        let p = build_policy(EvictPolicy::Clock, 4);
        let seq: Vec<usize> = (0..6).map(|s| p.next_candidate(s, 4)).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 0, 1]);
        p.on_insert(2);
        assert!(p.second_chance(2), "referenced frame gets a pass");
        assert!(!p.second_chance(2), "the pass clears the bit");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = build_policy(EvictPolicy::Random(7), 16);
        let b = build_policy(EvictPolicy::Random(7), 16);
        for s in 0..32 {
            assert_eq!(a.next_candidate(s, 16), b.next_candidate(s, 16));
        }
        assert!(!a.second_chance(3), "random never spares");
    }

    #[test]
    fn lru_sampling_prefers_older_stamps() {
        let p = build_policy(EvictPolicy::LruApprox(1), 8);
        for f in 0..8u32 {
            p.on_insert(f);
        }
        // Touch everything except frame 3; the old stamp must win the
        // sample often enough to appear as a candidate.
        for f in (0..8u32).filter(|&f| f != 3) {
            p.on_access(f);
            p.on_access(f);
        }
        let picked = (0..8).map(|s| p.next_candidate(s, 8)).any(|c| c == 3);
        assert!(picked, "stale frame must be sampled as a victim");
        // Fallback sweep covers every frame.
        assert_eq!(p.next_candidate(8, 8), 0);
        assert_eq!(p.next_candidate(11, 8), 3);
    }

    #[test]
    fn tuned_slru_caps_promotions() {
        let p = build_policy(EvictPolicy::SlruTuned, 16);
        assert_eq!(p.protected_cap(), Some(8), "cap starts at n/2");
        for f in 0..16u32 {
            p.on_insert(f);
        }
        // Promote up to the cap...
        for f in 0..8u32 {
            p.on_access(f);
            assert_eq!(p.class_of(f), VictimClass::Protected);
        }
        // ...after which re-accessed frames stay on probation.
        p.on_access(9);
        assert_eq!(p.class_of(9), VictimClass::Probation);
        // A demotion frees a slot, so the next access promotes again.
        assert!(
            p.second_chance(0),
            "protected frame is demoted, not evicted"
        );
        p.on_access(9);
        assert_eq!(p.class_of(9), VictimClass::Protected);
    }

    #[test]
    fn tuned_slru_grows_cap_on_probation_hits() {
        let p = build_policy(EvictPolicy::SlruTuned, 16);
        for f in 0..16u32 {
            p.on_insert(f);
        }
        // Fill the protected class, then hammer the *other* frames:
        // every hit lands on probation (the cap blocks promotion), so
        // the feedback loop must conclude the cap is too small.
        for f in 0..8u32 {
            p.on_access(f);
        }
        for i in 0..512u32 {
            p.on_access(8 + (i % 8));
        }
        assert!(
            p.protected_cap().unwrap() > 8,
            "cap must grow, got {:?}",
            p.protected_cap()
        );
    }

    #[test]
    fn tuned_slru_shrinks_cap_when_protected_dominates() {
        let p = build_policy(EvictPolicy::SlruTuned, 16);
        for f in 0..16u32 {
            p.on_insert(f);
        }
        for f in 0..8u32 {
            p.on_access(f);
        }
        // Every subsequent hit lands on already-protected frames: the
        // class holds the whole working set and should give frames
        // back.
        for i in 0..512u32 {
            p.on_access(i % 8);
        }
        assert!(
            p.protected_cap().unwrap() < 8,
            "cap must shrink, got {:?}",
            p.protected_cap()
        );
        // The floor holds.
        for i in 0..4096u32 {
            p.on_access(i % 8);
        }
        assert!(p.protected_cap().unwrap() >= 2, "cap floor is n/8");
    }

    #[test]
    fn slru_promotes_and_demotes() {
        let p = build_policy(EvictPolicy::Slru, 4);
        p.on_insert(1);
        assert_eq!(p.class_of(1), VictimClass::Probation);
        p.on_access(1);
        assert_eq!(p.class_of(1), VictimClass::Protected);
        // First pass demotes, second spends the reference bit, third
        // evicts.
        assert!(p.second_chance(1));
        assert_eq!(p.class_of(1), VictimClass::Probation);
        assert!(!p.second_chance(1));
        p.on_remove(1);
        assert_eq!(p.class_of(1), VictimClass::Probation);
    }
}
