//! Pluggable sealed backing stores for SUVM.
//!
//! §3.2.3 puts the sealed page images in untrusted memory managed by a
//! memsys5-style buddy allocator, with the crypto metadata (nonce, tag,
//! version) in an in-enclave table. [`BackingStore`] abstracts that
//! layout so [`super::Suvm`] only deals in secure virtual addresses:
//! the store decides where a page's ciphertext lives and which locks
//! guard the allocator and crypto table.
//!
//! Two implementations ship:
//!
//! - [`SealedBuddyStore`] — the paper's setup: one untrusted region,
//!   one buddy allocator behind one mutex, one crypto table.
//! - [`StripedStore`] — the same, sharded into `stripes` independent
//!   stripes (own region, own allocator lock, proportionally more
//!   crypto-table shards) so concurrent faulting threads don't
//!   serialize on the allocator mutex. One allocation cannot exceed a
//!   stripe, so large secure buffers must be built from ≤ stripe-sized
//!   chunks.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use eleos_enclave::machine::SgxMachine;
use eleos_sim::alloc::{AllocError, BuddyAllocator};

use crate::config::StoreKind;
use crate::table::CryptoTable;

/// Where sealed page images live and how their space is managed.
///
/// Addresses handed out ([`Self::alloc`]) and consumed
/// ([`Self::addr_of`]) are *secure virtual addresses* — offsets into
/// one contiguous logical space — regardless of how the store scatters
/// them across untrusted regions.
pub trait BackingStore: Send + Sync {
    /// Short label for stats and experiment output.
    fn name(&self) -> &'static str;

    /// Allocates `len` bytes of secure virtual space.
    fn alloc(&self, len: usize) -> Result<u64, AllocError>;

    /// Frees an allocation, returning its block size.
    fn free(&self, sva: u64) -> Result<u64, AllocError>;

    /// The block size of an allocation, if `sva` is one.
    fn size_of(&self, sva: u64) -> Option<u64>;

    /// Bytes currently allocated.
    fn used(&self) -> u64;

    /// Untrusted address of byte `in_page` of `page`'s sealed image.
    fn addr_of(&self, page: u64, in_page: usize) -> u64;

    /// The crypto-metadata table guarding this store's pages.
    fn crypto(&self) -> &CryptoTable;
}

/// Builds the store configured by [`StoreKind`].
pub(crate) fn build_store(
    kind: StoreKind,
    machine: &Arc<SgxMachine>,
    backing_bytes: usize,
    page_size: usize,
) -> Box<dyn BackingStore> {
    match kind {
        StoreKind::Buddy => Box::new(SealedBuddyStore::new(machine, backing_bytes, page_size)),
        StoreKind::Striped { stripes } => Box::new(StripedStore::new(
            machine,
            backing_bytes,
            page_size,
            stripes,
        )),
    }
}

/// The classic single-region store (memsys5 buddy + one crypto table).
pub struct SealedBuddyStore {
    base: u64,
    alloc: Mutex<BuddyAllocator>,
    seals: CryptoTable,
    page_size: u64,
}

impl SealedBuddyStore {
    fn new(machine: &Arc<SgxMachine>, backing_bytes: usize, page_size: usize) -> Self {
        Self {
            base: machine.alloc_untrusted(backing_bytes),
            alloc: Mutex::new(BuddyAllocator::new(backing_bytes as u64, 16)),
            seals: CryptoTable::new(64),
            page_size: page_size as u64,
        }
    }
}

impl BackingStore for SealedBuddyStore {
    fn name(&self) -> &'static str {
        "buddy"
    }

    fn alloc(&self, len: usize) -> Result<u64, AllocError> {
        self.alloc.lock().alloc(len)
    }

    fn free(&self, sva: u64) -> Result<u64, AllocError> {
        self.alloc.lock().free(sva)
    }

    fn size_of(&self, sva: u64) -> Option<u64> {
        self.alloc.lock().size_of(sva)
    }

    fn used(&self) -> u64 {
        self.alloc.lock().used()
    }

    fn addr_of(&self, page: u64, in_page: usize) -> u64 {
        self.base + page * self.page_size + in_page as u64
    }

    fn crypto(&self) -> &CryptoTable {
        &self.seals
    }
}

/// The sharded store: `stripes` independent (region, allocator,
/// crypto-shard) columns addressed by interleaving the secure virtual
/// space in `stripe_bytes` runs.
pub struct StripedStore {
    stripe_bytes: u64,
    bases: Vec<u64>,
    allocs: Vec<Mutex<BuddyAllocator>>,
    next: AtomicUsize,
    seals: CryptoTable,
    page_size: u64,
}

impl StripedStore {
    fn new(
        machine: &Arc<SgxMachine>,
        backing_bytes: usize,
        page_size: usize,
        stripes: usize,
    ) -> Self {
        assert!(stripes.is_power_of_two(), "stripes must be a power of two");
        let stripe_bytes = (backing_bytes / stripes) as u64;
        assert!(
            stripe_bytes >= page_size as u64 && stripe_bytes.is_power_of_two(),
            "each stripe must be a power-of-two number of pages"
        );
        let mut bases = Vec::with_capacity(stripes);
        let mut allocs = Vec::with_capacity(stripes);
        let nodes = machine.cfg.numa_nodes;
        for s in 0..stripes {
            let base = machine.alloc_untrusted(stripe_bytes as usize);
            // Stripes interleave round-robin across NUMA nodes, so a
            // shard pinned near node `s % nodes` faults against local
            // DRAM (a no-op bind on single-node machines).
            machine.bind_numa(base, stripe_bytes as usize, s % nodes);
            bases.push(base);
            allocs.push(Mutex::new(BuddyAllocator::new(stripe_bytes, 16)));
        }
        Self {
            stripe_bytes,
            bases,
            allocs,
            next: AtomicUsize::new(0),
            // More shards ⇒ less seqlock contention across stripes.
            seals: CryptoTable::new((stripes * 64).clamp(64, 1024)),
            page_size: page_size as u64,
        }
    }

    #[inline]
    fn stripe_of(&self, sva: u64) -> (usize, u64) {
        ((sva / self.stripe_bytes) as usize, sva % self.stripe_bytes)
    }
}

impl BackingStore for StripedStore {
    fn name(&self) -> &'static str {
        "striped"
    }

    fn alloc(&self, len: usize) -> Result<u64, AllocError> {
        if len as u64 > self.stripe_bytes {
            // A block may not span stripes; callers chunk big buffers.
            return Err(AllocError::BadSize(len));
        }
        let start = self.next.fetch_add(1, Ordering::Relaxed);
        let n = self.allocs.len();
        for i in 0..n {
            let s = (start + i) & (n - 1);
            if let Ok(off) = self.allocs[s].lock().alloc(len) {
                return Ok(s as u64 * self.stripe_bytes + off);
            }
        }
        Err(AllocError::OutOfMemory)
    }

    fn free(&self, sva: u64) -> Result<u64, AllocError> {
        let (s, off) = self.stripe_of(sva);
        self.allocs
            .get(s)
            .ok_or(AllocError::BadFree(sva))?
            .lock()
            .free(off)
    }

    fn size_of(&self, sva: u64) -> Option<u64> {
        let (s, off) = self.stripe_of(sva);
        self.allocs.get(s)?.lock().size_of(off)
    }

    fn used(&self) -> u64 {
        self.allocs.iter().map(|a| a.lock().used()).sum()
    }

    fn addr_of(&self, page: u64, in_page: usize) -> u64 {
        // Pages never span stripes: stripe_bytes is a power-of-two
        // multiple of the page size.
        let (s, off) = self.stripe_of(page * self.page_size);
        self.bases[s] + off + in_page as u64
    }

    fn crypto(&self) -> &CryptoTable {
        &self.seals
    }
}
