//! The C-style SUVM interface (paper §3.2.3).
//!
//! "For applications written in C, we provide a lower level API for
//! operating on the spointer data type" — the memcached port uses it
//! because C cannot instantiate the C++ spointer template. This module
//! mirrors that interface: a plain-old-data [`RawSPtr`] handle plus
//! free functions (`suvm_malloc`, `suvm_free`, `sptr_deref_*`,
//! `sptr_add`, …) operating on it. The handle carries no link state —
//! every dereference goes through the page table, the paper's
//! "requires more effort to adapt" trade-off (§5).

use std::sync::Arc;

use eleos_enclave::thread::ThreadCtx;

use crate::suvm::{Suvm, Sva};

/// A plain-old-data secure pointer: just an address, freely copyable
/// and storable inside other (clear or secure) structures — exactly
/// what a C `suvm_ptr_t` would be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct RawSPtr(pub Sva);

impl RawSPtr {
    /// The null secure pointer.
    pub const NULL: RawSPtr = RawSPtr(u64::MAX);

    /// Whether this is [`Self::NULL`].
    #[must_use]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }
}

/// `suvm_malloc(3)`: allocates `len` bytes of secure memory.
#[must_use]
pub fn suvm_malloc(suvm: &Arc<Suvm>, len: usize) -> RawSPtr {
    RawSPtr(suvm.malloc(len))
}

/// `suvm_free(3)`.
///
/// # Panics
/// Panics on a pointer that is null or not an allocation start.
pub fn suvm_free(suvm: &Arc<Suvm>, p: RawSPtr) {
    assert!(!p.is_null(), "suvm_free(NULL)");
    suvm.free(p.0);
}

/// `sptr_add`: pointer arithmetic in bytes.
#[must_use]
pub fn sptr_add(p: RawSPtr, bytes: u64) -> RawSPtr {
    RawSPtr(p.0 + bytes)
}

/// `sptr_read`: copies out of secure memory.
pub fn sptr_read(suvm: &Arc<Suvm>, ctx: &mut ThreadCtx, p: RawSPtr, buf: &mut [u8]) {
    assert!(!p.is_null(), "deref of NULL secure pointer");
    suvm.read(ctx, p.0, buf);
}

/// `sptr_write`: copies into secure memory.
pub fn sptr_write(suvm: &Arc<Suvm>, ctx: &mut ThreadCtx, p: RawSPtr, data: &[u8]) {
    assert!(!p.is_null(), "deref of NULL secure pointer");
    suvm.write(ctx, p.0, data);
}

/// `sptr_deref_u64` — the get macro of §3.2.4.
#[must_use]
pub fn sptr_deref_u64(suvm: &Arc<Suvm>, ctx: &mut ThreadCtx, p: RawSPtr) -> u64 {
    let mut b = [0u8; 8];
    sptr_read(suvm, ctx, p, &mut b);
    u64::from_le_bytes(b)
}

/// `sptr_set_u64` — the set macro of §3.2.4 (marks the page dirty).
pub fn sptr_set_u64(suvm: &Arc<Suvm>, ctx: &mut ThreadCtx, p: RawSPtr, v: u64) {
    sptr_write(suvm, ctx, p, &v.to_le_bytes());
}

/// `suvm_memcpy(3)` between secure regions.
pub fn suvm_memcpy(suvm: &Arc<Suvm>, ctx: &mut ThreadCtx, dst: RawSPtr, src: RawSPtr, len: usize) {
    suvm.memcpy(ctx, dst.0, src.0, len);
}

/// `suvm_memset(3)`.
pub fn suvm_memset(suvm: &Arc<Suvm>, ctx: &mut ThreadCtx, p: RawSPtr, byte: u8, len: usize) {
    suvm.memset(ctx, p.0, len, byte);
}

/// `suvm_memcmp(3)`.
#[must_use]
pub fn suvm_memcmp(
    suvm: &Arc<Suvm>,
    ctx: &mut ThreadCtx,
    a: RawSPtr,
    b: RawSPtr,
    len: usize,
) -> core::cmp::Ordering {
    suvm.memcmp(ctx, a.0, b.0, len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SuvmConfig;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    fn rig() -> (Arc<Suvm>, ThreadCtx) {
        let m = SgxMachine::new(MachineConfig::scaled(4));
        let e = m.driver.create_enclave(&m, 4 << 20);
        let t0 = ThreadCtx::for_enclave(&m, &e, 0);
        let s = Suvm::new(&t0, SuvmConfig::tiny());
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        (s, t)
    }

    #[test]
    fn c_style_roundtrip() {
        let (s, mut t) = rig();
        let p = suvm_malloc(&s, 4096);
        assert!(!p.is_null());
        sptr_set_u64(&s, &mut t, p, 42);
        let q = sptr_add(p, 8);
        sptr_set_u64(&s, &mut t, q, 43);
        assert_eq!(sptr_deref_u64(&s, &mut t, p), 42);
        assert_eq!(sptr_deref_u64(&s, &mut t, q), 43);
        suvm_free(&s, p);
        t.exit();
    }

    #[test]
    fn c_style_mem_ops() {
        let (s, mut t) = rig();
        let a = suvm_malloc(&s, 1024);
        let b = suvm_malloc(&s, 1024);
        suvm_memset(&s, &mut t, a, 0x77, 1024);
        suvm_memcpy(&s, &mut t, b, a, 1024);
        assert_eq!(
            suvm_memcmp(&s, &mut t, a, b, 1024),
            core::cmp::Ordering::Equal
        );
        sptr_write(&s, &mut t, sptr_add(b, 512), b"!");
        assert_ne!(
            suvm_memcmp(&s, &mut t, a, b, 1024),
            core::cmp::Ordering::Equal
        );
        t.exit();
    }

    #[test]
    fn raw_pointers_are_storable_pod() {
        // A RawSPtr can live inside another SUVM allocation (a linked
        // structure entirely in secure memory, built C-style).
        let (s, mut t) = rig();
        let node1 = suvm_malloc(&s, 16); // [value u64][next u64]
        let node2 = suvm_malloc(&s, 16);
        sptr_set_u64(&s, &mut t, node1, 100);
        sptr_set_u64(&s, &mut t, sptr_add(node1, 8), node2.0);
        sptr_set_u64(&s, &mut t, node2, 200);
        sptr_set_u64(&s, &mut t, sptr_add(node2, 8), RawSPtr::NULL.0);
        // Walk the list.
        let mut cur = node1;
        let mut values = Vec::new();
        while !cur.is_null() {
            values.push(sptr_deref_u64(&s, &mut t, cur));
            cur = RawSPtr(sptr_deref_u64(&s, &mut t, sptr_add(cur, 8)));
        }
        assert_eq!(values, [100, 200]);
        t.exit();
    }

    #[test]
    #[should_panic(expected = "NULL")]
    fn null_deref_panics() {
        let (s, mut t) = rig();
        let _ = sptr_deref_u64(&s, &mut t, RawSPtr::NULL);
    }
}
