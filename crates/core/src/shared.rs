//! Inter-enclave shared secure memory — the extension sketched in the
//! paper's conclusions (§8): "Eleos might be extended to provide new
//! services, i.e., inter-enclave shared memory, which are not
//! currently supported in SGX."
//!
//! A [`SharedRegion`] is a sealed store in untrusted memory readable
//! and writable by *every* enclave holding its [`SharedToken`]. The
//! token stands for the result of local attestation plus a secure
//! channel: a shared sealing key and a shared view of the
//! crypto-metadata (nonce + tag per page) and of the per-page seqlock.
//! With the metadata root shared between the trusted parties, the
//! region has the same privacy/integrity/freshness guarantees as SUVM's
//! backing store — an untrusted-memory adversary can neither read,
//! modify, nor replay pages undetected.
//!
//! Access is direct-mode (unseal per access, like §3.2.4's sub-page
//! path but at page granularity): no per-enclave page cache means no
//! cross-enclave coherence protocol is needed — writes are globally
//! visible at their seqlock commit.

use std::sync::Arc;

use eleos_crypto::gcm::AesGcm128;
use eleos_crypto::Sealer;
use eleos_enclave::enclave::Enclave;
use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::alloc::BuddyAllocator;
use eleos_sim::stats::Stats;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::table::{CryptoTable, SealState};

/// The shared sealed store.
///
/// # Examples
///
/// ```
/// use eleos_core::shared::SharedRegion;
/// use eleos_enclave::machine::{MachineConfig, SgxMachine};
/// use eleos_enclave::thread::ThreadCtx;
///
/// let m = SgxMachine::new(MachineConfig::tiny());
/// let producer = m.driver.create_enclave(&m, 1 << 20);
/// let consumer = m.driver.create_enclave(&m, 1 << 20);
/// let region = SharedRegion::establish(&m, 1 << 20, [9; 16]);
///
/// let tok_p = region.join(&producer);
/// let tok_c = region.join(&consumer);
/// let mut tp = ThreadCtx::for_enclave(&m, &producer, 0);
/// let mut tc = ThreadCtx::for_enclave(&m, &consumer, 1);
/// tp.enter();
/// tc.enter();
/// let buf = tok_p.alloc(4096);
/// tok_p.write(&mut tp, buf, b"cross-enclave message");
/// let mut got = [0u8; 21];
/// tok_c.read(&mut tc, buf, &mut got);
/// assert_eq!(&got, b"cross-enclave message");
/// tp.exit();
/// tc.exit();
/// ```
pub struct SharedRegion {
    machine: Arc<SgxMachine>,
    bs_base: u64,
    page_size: usize,
    gcm: AesGcm128,
    seals: CryptoTable,
    alloc: Mutex<BuddyAllocator>,
    nonce_ctr: AtomicU64,
}

/// One enclave's capability to use a [`SharedRegion`].
///
/// Obtained from [`SharedRegion::join`]; conceptually the outcome of
/// local attestation between the region creator and the joining
/// enclave.
pub struct SharedToken {
    region: Arc<SharedRegion>,
    enclave_id: u32,
}

impl SharedRegion {
    /// Establishes a region of `bytes` (power of two) with `key` as
    /// the attestation-derived shared sealing key.
    #[must_use]
    pub fn establish(machine: &Arc<SgxMachine>, bytes: usize, key: [u8; 16]) -> Arc<Self> {
        assert!(
            bytes.is_power_of_two(),
            "region size must be a power of two"
        );
        let page_size = 4096;
        Arc::new(Self {
            bs_base: machine.alloc_untrusted(bytes),
            machine: Arc::clone(machine),
            page_size,
            gcm: AesGcm128::new(&key),
            seals: CryptoTable::new(32),
            alloc: Mutex::new(BuddyAllocator::new(bytes as u64, 16)),
            nonce_ctr: AtomicU64::new(1),
        })
    }

    /// Grants `enclave` access (models the attestation handshake).
    #[must_use]
    pub fn join(self: &Arc<Self>, enclave: &Arc<Enclave>) -> SharedToken {
        SharedToken {
            region: Arc::clone(self),
            enclave_id: enclave.id,
        }
    }

    fn next_nonce(&self) -> [u8; 12] {
        let v = self.nonce_ctr.fetch_add(1, Ordering::Relaxed);
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&v.to_le_bytes());
        n[8..].copy_from_slice(b"shrd");
        n
    }

    fn aad(page: u64) -> [u8; 12] {
        let mut aad = [0u8; 12];
        aad[..8].copy_from_slice(&page.to_le_bytes());
        aad[8..].copy_from_slice(b"shpg");
        aad
    }
}

impl SharedToken {
    /// The id of the enclave holding this token.
    #[must_use]
    pub fn enclave_id(&self) -> u32 {
        self.enclave_id
    }

    fn check(&self, ctx: &ThreadCtx) {
        assert!(ctx.in_enclave(), "shared region access from untrusted mode");
        let e = ctx.enclave().expect("enclave-bound thread");
        assert_eq!(
            e.id, self.enclave_id,
            "token presented by the wrong enclave"
        );
    }

    /// Allocates `len` bytes in the shared region.
    #[must_use]
    pub fn alloc(&self, len: usize) -> u64 {
        self.region
            .alloc
            .lock()
            .alloc(len)
            .expect("shared region exhausted")
    }

    /// Frees a shared allocation.
    pub fn free(&self, addr: u64) {
        self.region
            .alloc
            .lock()
            .free(addr)
            .expect("bad shared free");
    }

    /// Reads `buf.len()` bytes at `addr`, unsealing the covering pages
    /// with torn-write retry (seqlock).
    pub fn read(&self, ctx: &mut ThreadCtx, addr: u64, buf: &mut [u8]) {
        self.check(ctx);
        let r = &self.region;
        let ps = r.page_size;
        let costs_crypto = r.machine.cfg.costs.crypto(ps);
        let mut off = 0usize;
        while off < buf.len() {
            let cur = addr + off as u64;
            let page = cur / ps as u64;
            let in_page = (cur % ps as u64) as usize;
            let n = (ps - in_page).min(buf.len() - off);
            loop {
                let (version, state) = r.seals.read(page);
                match state {
                    SealState::Fresh => buf[off..off + n].fill(0),
                    SealState::Page { nonce, tag } => {
                        let mut scratch = vec![0u8; ps];
                        ctx.read_untrusted(r.bs_base + page * ps as u64, &mut scratch);
                        if r.gcm
                            .open(&nonce, &SharedRegion::aad(page), &mut scratch, &tag)
                            .is_err()
                        {
                            if !r.seals.check(page, version) {
                                continue; // torn by a concurrent writer
                            }
                            panic!("shared page failed authentication: untrusted memory tampered");
                        }
                        ctx.compute(costs_crypto);
                        buf[off..off + n].copy_from_slice(&scratch[in_page..in_page + n]);
                    }
                    SealState::SubPages { .. } => {
                        unreachable!("shared regions seal whole pages")
                    }
                }
                break;
            }
            off += n;
        }
    }

    /// Writes `data` at `addr` (read-modify-write of the covering
    /// pages, resealed with fresh nonces; writers serialize per page).
    pub fn write(&self, ctx: &mut ThreadCtx, addr: u64, data: &[u8]) {
        self.check(ctx);
        let r = &self.region;
        let ps = r.page_size;
        let costs_crypto = r.machine.cfg.costs.crypto(ps);
        let mut off = 0usize;
        while off < data.len() {
            let cur = addr + off as u64;
            let page = cur / ps as u64;
            let in_page = (cur % ps as u64) as usize;
            let n = (ps - in_page).min(data.len() - off);
            r.seals.begin_write(page);
            let mut scratch = vec![0u8; ps];
            match r.seals.get_unchecked(page) {
                SealState::Fresh => {}
                SealState::Page { nonce, tag } => {
                    ctx.read_untrusted(r.bs_base + page * ps as u64, &mut scratch);
                    r.gcm
                        .open(&nonce, &SharedRegion::aad(page), &mut scratch, &tag)
                        .expect("shared page failed authentication");
                    ctx.compute(costs_crypto);
                }
                SealState::SubPages { .. } => unreachable!("shared regions seal whole pages"),
            }
            scratch[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            let nonce = r.next_nonce();
            let tag = r.gcm.seal(&nonce, &SharedRegion::aad(page), &mut scratch);
            ctx.compute(costs_crypto);
            ctx.write_untrusted(r.bs_base + page * ps as u64, &scratch);
            r.seals.commit_write(page, SealState::Page { nonce, tag });
            Stats::add(&r.machine.stats.sealed_bytes, ps as u64);
            off += n;
        }
    }

    /// Atomically reads a little-endian `u64` (convenience for
    /// flags/indices in producer-consumer protocols).
    #[must_use]
    pub fn read_u64(&self, ctx: &mut ThreadCtx, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(ctx, addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&self, ctx: &mut ThreadCtx, addr: u64, v: u64) {
        self.write(ctx, addr, &v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::MachineConfig;

    fn rig() -> (
        Arc<SgxMachine>,
        Arc<Enclave>,
        Arc<Enclave>,
        Arc<SharedRegion>,
    ) {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e1 = m.driver.create_enclave(&m, 4 << 20);
        let e2 = m.driver.create_enclave(&m, 4 << 20);
        let region = SharedRegion::establish(&m, 4 << 20, [0x33; 16]);
        (m, e1, e2, region)
    }

    #[test]
    fn two_enclaves_exchange_data() {
        let (m, e1, e2, region) = rig();
        let tok1 = region.join(&e1);
        let tok2 = region.join(&e2);
        let mut t1 = ThreadCtx::for_enclave(&m, &e1, 0);
        let mut t2 = ThreadCtx::for_enclave(&m, &e2, 1);
        t1.enter();
        t2.enter();
        let buf = tok1.alloc(64 << 10);
        t1_to_t2(&tok1, &tok2, &mut t1, &mut t2, buf);
        t1.exit();
        t2.exit();
    }

    fn t1_to_t2(
        tok1: &SharedToken,
        tok2: &SharedToken,
        t1: &mut ThreadCtx,
        t2: &mut ThreadCtx,
        buf: u64,
    ) {
        tok1.write(t1, buf + 5000, b"message from enclave one");
        let mut got = [0u8; 24];
        tok2.read(t2, buf + 5000, &mut got);
        assert_eq!(&got, b"message from enclave one");
        // And back.
        tok2.write(t2, buf + 5000, b"reply from enclave two!!");
        tok1.read(t1, buf + 5000, &mut got);
        assert_eq!(&got, b"reply from enclave two!!");
    }

    #[test]
    fn shared_plaintext_stays_sealed() {
        let (m, e1, _e2, region) = rig();
        let tok = region.join(&e1);
        let mut t = ThreadCtx::for_enclave(&m, &e1, 0);
        t.enter();
        let buf = tok.alloc(4096);
        let secret = b"SHARED-REGION-SECRET-MARKER!";
        tok.write(&mut t, buf, secret);
        // Scan a window of untrusted memory around the region.
        let mut raw = vec![0u8; 8 << 20];
        m.untrusted.read(0, &mut raw);
        assert!(
            !raw.windows(secret.len()).any(|w| w == secret),
            "shared-region plaintext visible in untrusted memory"
        );
        t.exit();
    }

    #[test]
    fn shared_tamper_detected() {
        let (m, e1, e2, region) = rig();
        let tok1 = region.join(&e1);
        let tok2 = region.join(&e2);
        let mut t1 = ThreadCtx::for_enclave(&m, &e1, 0);
        t1.enter();
        let buf = tok1.alloc(4096);
        tok1.write(&mut t1, buf, &[9u8; 256]);
        t1.exit();
        // Flip one byte everywhere plausible.
        for addr in (0..(6 << 20u64)).step_by(997) {
            let mut b = [0u8; 1];
            m.untrusted.read(addr, &mut b);
            if b[0] != 0 {
                m.untrusted.write(addr, &[b[0] ^ 1]);
            }
        }
        let mut t2 = ThreadCtx::for_enclave(&m, &e2, 1);
        t2.enter();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut b = [0u8; 256];
            tok2.read(&mut t2, buf, &mut b);
            b
        }));
        match result {
            Err(_) => {} // authentication failure: detected
            Ok(b) => assert_eq!(b, [9u8; 256], "silent corruption"),
        }
    }

    #[test]
    fn concurrent_producer_consumer() {
        let (m, e1, e2, region) = rig();
        let tok1 = region.join(&e1);
        let tok2 = region.join(&e2);
        // Slot protocol: [seq u64][payload 64B] per slot, 16 slots.
        let base = tok1.alloc(16 * 128);
        let producer = {
            let m = Arc::clone(&m);
            let e1 = Arc::clone(&e1);
            std::thread::spawn(move || {
                let mut t = ThreadCtx::for_enclave(&m, &e1, 0);
                t.enter();
                for i in 1..=64u64 {
                    let slot = base + (i % 16) * 128;
                    tok1.write(&mut t, slot + 8, &[(i % 251) as u8; 64]);
                    tok1.write_u64(&mut t, slot, i);
                }
                t.exit();
            })
        };
        let consumer = {
            let m = Arc::clone(&m);
            let e2 = Arc::clone(&e2);
            std::thread::spawn(move || {
                let mut t = ThreadCtx::for_enclave(&m, &e2, 1);
                t.enter();
                // Wait for the final item and check its payload.
                loop {
                    let slot = base; // item 64 lands in slot 64 % 16 == 0
                    if tok2.read_u64(&mut t, slot) == 64 {
                        let mut payload = [0u8; 64];
                        tok2.read(&mut t, slot + 8, &mut payload);
                        assert_eq!(payload, [64u8; 64]);
                        break;
                    }
                    std::hint::spin_loop();
                }
                t.exit();
            })
        };
        producer.join().expect("producer");
        consumer.join().expect("consumer");
    }

    #[test]
    #[should_panic(expected = "wrong enclave")]
    fn token_bound_to_its_enclave() {
        let (m, e1, e2, region) = rig();
        let tok1 = region.join(&e1);
        let mut t2 = ThreadCtx::for_enclave(&m, &e2, 0);
        t2.enter();
        let mut b = [0u8; 8];
        tok1.read(&mut t2, 0, &mut b);
    }
}
