//! The EPC++ swapper thread (§3.2.3 / §3.3).
//!
//! The untrusted runtime periodically invokes the swapper, which enters
//! the enclave (an ECALL, with its usual cost), applies the driver's
//! current ballooning target and tops up the EPC++ free-frame pool so
//! the fault path rarely has to evict inline.
//!
//! [`Swapper::spawn`] runs ticks on a real background thread;
//! deterministic experiments can instead call
//! [`Suvm::swapper_tick`](crate::Suvm::swapper_tick) at chosen points.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;

use crate::suvm::Suvm;

/// Handle to a running swapper thread; stops it on drop.
pub struct Swapper {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Swapper {
    /// Spawns a swapper for `suvm` on `core_id`, ticking every
    /// `interval`.
    #[must_use]
    pub fn spawn(
        machine: &Arc<SgxMachine>,
        suvm: &Arc<Suvm>,
        core_id: usize,
        interval: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let machine = Arc::clone(machine);
        let suvm = Arc::clone(suvm);
        let thread = std::thread::spawn(move || {
            let mut ctx = ThreadCtx::for_enclave(&machine, suvm.enclave(), core_id);
            while !stop2.load(Ordering::Acquire) {
                ctx.ecall(|ctx| suvm.swapper_tick(ctx));
                std::thread::sleep(interval);
            }
        });
        Self {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the thread and waits for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Swapper {
    fn drop(&mut self) {
        self.shutdown();
    }
}
