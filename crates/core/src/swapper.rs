//! The EPC++ swapper thread (§3.2.3 / §3.3).
//!
//! The untrusted runtime periodically invokes the swapper, which enters
//! the enclave (an ECALL, with its usual cost), applies the driver's
//! current ballooning target and tops up the EPC++ free-frame pool so
//! the fault path rarely has to evict inline. Under batched write-back
//! (`SuvmConfig::wb_batch > 0`) each tick also drains the write-back
//! queue, which is what moves the sealing work off the serving core.
//!
//! [`Swapper::spawn`] runs ticks on a real background thread;
//! deterministic experiments can instead call
//! [`Suvm::swapper_tick`](crate::Suvm::swapper_tick) at chosen points.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;

use crate::suvm::Suvm;

/// Handle to a running swapper thread; stops it on drop.
pub struct Swapper {
    state: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl Swapper {
    /// Spawns a swapper for `suvm` on `core_id`, ticking every
    /// `interval`. The inter-tick sleep is a condvar wait, so dropping
    /// the handle stops the thread promptly rather than after up to a
    /// full interval.
    #[must_use]
    pub fn spawn(
        machine: &Arc<SgxMachine>,
        suvm: &Arc<Suvm>,
        core_id: usize,
        interval: Duration,
    ) -> Self {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let state2 = Arc::clone(&state);
        let machine = Arc::clone(machine);
        let suvm = Arc::clone(suvm);
        let thread = std::thread::spawn(move || {
            let mut ctx = ThreadCtx::for_enclave(&machine, suvm.enclave(), core_id);
            let (stop, wake) = &*state2;
            loop {
                if *stop.lock().unwrap() {
                    return;
                }
                ctx.ecall(|ctx| suvm.swapper_tick(ctx));
                let guard = stop.lock().unwrap();
                let (guard, _) = wake
                    .wait_timeout_while(guard, interval, |stopped| !*stopped)
                    .unwrap();
                if *guard {
                    return;
                }
            }
        });
        Self {
            state,
            thread: Some(thread),
        }
    }

    /// Stops the thread and waits for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (stop, wake) = &*self.state;
        *stop.lock().unwrap() = true;
        wake.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Swapper {
    fn drop(&mut self) {
        self.shutdown();
    }
}
