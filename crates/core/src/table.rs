//! SUVM's in-enclave page tables (§4.1).
//!
//! Two tables, both hash tables "with fine-grained locking, using
//! separate spin-locks for each bucket", pre-allocated large to ease
//! contention:
//!
//! - the **inverse page table** ([`InversePt`]): backing-store page →
//!   EPC++ frame;
//! - the **crypto-metadata table** ([`CryptoTable`]): backing-store
//!   page → nonce + HMAC of the sealed copy (whole-page or per
//!   sub-page).
//!
//! Both conceptually live in EPC; like the paper's prototype, SUVM does
//! not evict its own metadata (§4.2).

use eleos_crypto::gcm::{Nonce, Tag};
use parking_lot::Mutex;

/// Sentinel: no page.
pub const NO_PAGE: u64 = u64::MAX;

/// A guarded bucket of `(page, frame)` pairs.
type Bucket = Mutex<Vec<(u64, u32)>>;

/// The inverse page table.
pub struct InversePt {
    buckets: Vec<Bucket>,
    mask: usize,
}

impl InversePt {
    /// Creates a table with at least `min_buckets` buckets.
    #[must_use]
    pub fn new(min_buckets: usize) -> Self {
        let n = min_buckets.next_power_of_two().max(16);
        let mut buckets = Vec::with_capacity(n);
        buckets.resize_with(n, || Mutex::new(Vec::new()));
        Self {
            buckets,
            mask: n - 1,
        }
    }

    fn bucket(&self, page: u64) -> &Bucket {
        // Fibonacci hashing spreads sequential page numbers.
        let h = (page.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) as usize;
        &self.buckets[h & self.mask]
    }

    /// Runs `f` with the bucket of `page` locked. `f` gets the bucket
    /// contents and may mutate them.
    pub fn with_bucket<R>(&self, page: u64, f: impl FnOnce(&mut Vec<(u64, u32)>) -> R) -> R {
        f(&mut self.bucket(page).lock())
    }

    /// Looks up the frame of `page` (no side effects).
    #[must_use]
    pub fn lookup(&self, page: u64) -> Option<u32> {
        self.bucket(page)
            .lock()
            .iter()
            .find(|(p, _)| *p == page)
            .map(|&(_, f)| f)
    }

    /// Inserts a mapping; the page must not be mapped.
    pub fn insert(&self, page: u64, frame: u32) {
        let mut b = self.bucket(page).lock();
        debug_assert!(b.iter().all(|(p, _)| *p != page));
        b.push((page, frame));
    }

    /// Removes a mapping, returning its frame.
    pub fn remove(&self, page: u64) -> Option<u32> {
        let mut b = self.bucket(page).lock();
        let idx = b.iter().position(|(p, _)| *p == page)?;
        Some(b.swap_remove(idx).1)
    }

    /// Number of live mappings (diagnostics; takes every lock).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().len()).sum()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How a page's bytes exist in the backing store.
#[derive(Clone)]
pub enum SealState {
    /// Never evicted: the backing store holds nothing; a fault
    /// zero-fills.
    Fresh,
    /// Sealed as one whole page.
    Page {
        /// Sealing nonce.
        nonce: Nonce,
        /// Authentication tag.
        tag: Tag,
    },
    /// Sealed as independent sub-pages (enables direct access).
    SubPages {
        /// Per-sub-page `(nonce, tag)` in order.
        meta: Box<[(Nonce, Tag)]>,
    },
}

impl SealState {
    /// Whether the backing store holds a valid sealed copy.
    #[must_use]
    pub fn has_copy(&self) -> bool {
        !matches!(self, SealState::Fresh)
    }
}

/// The crypto-metadata table: sharded `page -> (version, SealState)`.
///
/// The version implements a per-page **seqlock** over the pair
/// (metadata, sealed bytes in the untrusted backing store): sealing a
/// page bumps the version to odd, rewrites the ciphertext, then
/// commits the new nonce/tag and bumps to even. A concurrent reader
/// that unseals with a torn (meta, ciphertext) pair sees either an odd
/// version or a version change, and retries — only a *stable* version
/// with a failing tag is evidence of tampering.
pub struct CryptoTable {
    shards: Vec<Mutex<std::collections::HashMap<u64, (u64, SealState)>>>,
    mask: usize,
    live: std::sync::atomic::AtomicUsize,
}

impl CryptoTable {
    /// Creates a table with `shards` lock shards (rounded to 2^n).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let n = shards.next_power_of_two().max(8);
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || Mutex::new(std::collections::HashMap::new()));
        Self {
            shards: v,
            mask: n - 1,
            live: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of pages with recorded seal metadata.
    #[must_use]
    pub fn live_entries(&self) -> usize {
        self.live.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn shard(&self, page: u64) -> &Mutex<std::collections::HashMap<u64, (u64, SealState)>> {
        let h = (page.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33) as usize;
        &self.shards[h & self.mask]
    }

    /// Returns `(version, state)` of `page`, spinning past in-progress
    /// writes (odd versions). Unknown pages read as `(0, Fresh)`.
    #[must_use]
    pub fn read(&self, page: u64) -> (u64, SealState) {
        loop {
            {
                let g = self.shard(page).lock();
                match g.get(&page) {
                    None => return (0, SealState::Fresh),
                    Some((v, state)) if v % 2 == 0 => return (*v, state.clone()),
                    _ => {}
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Returns the seal state of `page` (`Fresh` if unknown).
    #[must_use]
    pub fn get(&self, page: u64) -> SealState {
        self.read(page).1
    }

    /// Whether `page`'s version is still `v`.
    #[must_use]
    pub fn check(&self, page: u64, v: u64) -> bool {
        let g = self.shard(page).lock();
        match g.get(&page) {
            None => v == 0,
            Some((cur, _)) => *cur == v,
        }
    }

    /// Starts a (re-)seal of `page`: bumps the version to odd. Spins
    /// if another writer is in progress.
    pub fn begin_write(&self, page: u64) {
        loop {
            {
                let mut g = self.shard(page).lock();
                let mut inserted = false;
                let e = g.entry(page).or_insert_with(|| {
                    inserted = true;
                    (0, SealState::Fresh)
                });
                if inserted {
                    self.live.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                if e.0.is_multiple_of(2) {
                    e.0 += 1;
                    return;
                }
            }
            std::hint::spin_loop();
        }
    }

    /// Commits a seal started by [`Self::begin_write`].
    pub fn commit_write(&self, page: u64, state: SealState) {
        let mut g = self.shard(page).lock();
        let e = g.get_mut(&page).expect("commit without begin");
        debug_assert_eq!(e.0 % 2, 1, "commit without begin");
        e.0 += 1;
        e.1 = state;
    }

    /// Reads the state without waiting for version stability — only
    /// valid for the thread that currently holds the write (between
    /// [`Self::begin_write`] and [`Self::commit_write`]).
    #[must_use]
    pub fn get_unchecked(&self, page: u64) -> SealState {
        self.shard(page)
            .lock()
            .get(&page)
            .map(|(_, s)| s.clone())
            .unwrap_or(SealState::Fresh)
    }

    /// Forgets `page` (decommit), waiting out any in-flight writer.
    pub fn clear(&self, page: u64) {
        loop {
            {
                let mut g = self.shard(page).lock();
                match g.get(&page) {
                    None => return,
                    Some((v, _)) if v % 2 == 0 => {
                        g.remove(&page);
                        self.live.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
                        return;
                    }
                    _ => {}
                }
            }
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_remove() {
        let pt = InversePt::new(16);
        assert_eq!(pt.lookup(5), None);
        pt.insert(5, 2);
        pt.insert(5 + 16, 3); // likely same bucket family, different page
        assert_eq!(pt.lookup(5), Some(2));
        assert_eq!(pt.lookup(21), Some(3));
        assert_eq!(pt.remove(5), Some(2));
        assert_eq!(pt.lookup(5), None);
        assert_eq!(pt.remove(5), None);
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn with_bucket_mutation() {
        let pt = InversePt::new(16);
        pt.insert(7, 1);
        let found = pt.with_bucket(7, |b| b.iter().any(|(p, _)| *p == 7));
        assert!(found);
    }

    #[test]
    fn many_pages_no_collision_errors() {
        let pt = InversePt::new(64);
        for p in 0..1000u64 {
            pt.insert(p, p as u32);
        }
        assert_eq!(pt.len(), 1000);
        for p in 0..1000u64 {
            assert_eq!(pt.lookup(p), Some(p as u32), "page {p}");
        }
    }

    #[test]
    fn crypto_table_states() {
        let ct = CryptoTable::new(8);
        assert!(!ct.get(9).has_copy());
        ct.begin_write(9);
        ct.commit_write(
            9,
            SealState::Page {
                nonce: [1; 12],
                tag: [2; 16],
            },
        );
        assert!(ct.get(9).has_copy());
        match ct.get(9) {
            SealState::Page { nonce, tag } => {
                assert_eq!(nonce, [1; 12]);
                assert_eq!(tag, [2; 16]);
            }
            _ => panic!("wrong state"),
        }
        ct.clear(9);
        assert!(!ct.get(9).has_copy());
    }

    #[test]
    fn crypto_table_seqlock_versions() {
        let ct = CryptoTable::new(8);
        let (v0, _) = ct.read(5);
        assert_eq!(v0, 0);
        assert!(ct.check(5, 0));
        ct.begin_write(5);
        // In-flight write: the stable version is gone.
        assert!(!ct.check(5, 0));
        ct.commit_write(
            5,
            SealState::Page {
                nonce: [0; 12],
                tag: [0; 16],
            },
        );
        let (v1, s) = ct.read(5);
        assert_eq!(v1, 2);
        assert!(s.has_copy());
        assert!(ct.check(5, 2));
        assert!(!ct.check(5, 0));
    }

    #[test]
    fn crypto_table_concurrent_read_write() {
        use std::sync::Arc;
        let ct = Arc::new(CryptoTable::new(8));
        let writer = {
            let ct = Arc::clone(&ct);
            std::thread::spawn(move || {
                for i in 0..2000u64 {
                    ct.begin_write(1);
                    ct.commit_write(
                        1,
                        SealState::Page {
                            nonce: [(i % 251) as u8; 12],
                            tag: [0; 16],
                        },
                    );
                }
            })
        };
        // Readers must only ever observe even versions.
        for _ in 0..2000 {
            let (v, _) = ct.read(1);
            assert_eq!(v % 2, 0);
        }
        writer.join().unwrap();
    }

    #[test]
    fn concurrent_bucket_access() {
        use std::sync::Arc;
        let pt = Arc::new(InversePt::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pt = Arc::clone(&pt);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let page = t * 1000 + i;
                    pt.insert(page, page as u32);
                    assert_eq!(pt.lookup(page), Some(page as u32));
                    assert_eq!(pt.remove(page), Some(page as u32));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(pt.is_empty());
    }
}
