//! Portable sealed snapshots: quiesce-at-fence state capture for
//! replica failover and warm restarts.
//!
//! A [`Snapshot`] is a set of named, independently sealed sections —
//! e.g. a KVS's item log next to a server's session-key epoch —
//! captured at a fence (no in-flight mutators) and sealed through the
//! shared [`Sealer`] seam in **one** amortized crypto batch, the same
//! contract the SUVM write-back drain and the wire reap pipeline use.
//!
//! Snapshots are deliberately *portable*: every per-enclave sealing
//! identity (the SGX sealing key, SUVM's per-domain key) dies with its
//! enclave, so a replica restoring a dead sibling's state could never
//! open anything sealed under those. Fleet snapshots are instead
//! sealed under a key the replicas share ([`SealerConfig::Shared`] is
//! the same idea one layer down), and the framed bytes of
//! [`Snapshot::to_bytes`] stay ciphertext end-to-end — safe to stage
//! in untrusted memory, ship over an exit-less cross-enclave channel
//! or park on the host filesystem.
//!
//! Uniqueness of (key, nonce) pairs across all sealers sharing a key
//! is the caller's contract, scoped the same way SUVM scopes its
//! nonces: every section nonce is `domain ‖ epoch ‖ index`, so
//! distinct senders (distinct `domain`, e.g. the sealing enclave's id)
//! and monotonically growing `epoch`s per sender can never collide.
//!
//! [`SealerConfig::Shared`]: crate::config::SealerConfig::Shared

use eleos_crypto::gcm::{Nonce, Tag};
use eleos_crypto::sealer::{OpenJob, SealJob};
use eleos_crypto::Sealer;
use eleos_enclave::thread::ThreadCtx;

/// Framing magic of [`Snapshot::to_bytes`] (`"ELSN"`).
const MAGIC: u32 = 0x4e53_4c45;

/// One sealed section: `blob` is AES-GCM ciphertext of the section's
/// plaintext under the snapshot's sealer, authenticated together with
/// the section name and the snapshot epoch.
struct Section {
    name: String,
    nonce: Nonce,
    tag: Tag,
    blob: Vec<u8>,
}

/// A sealed, portable, multi-section state capture.
pub struct Snapshot {
    epoch: u64,
    sections: Vec<Section>,
}

/// Accumulates plaintext sections, then seals them all in one batch.
pub struct SnapshotBuilder {
    domain: u32,
    epoch: u64,
    sections: Vec<(String, Vec<u8>)>,
}

/// Section nonce: `domain ‖ epoch(low 32) ‖ index`, the same
/// scope-by-construction scheme SUVM uses so sealers sharing one key
/// never repeat a (key, nonce) pair.
fn section_nonce(domain: u32, epoch: u64, index: u32) -> Nonce {
    let mut n = [0u8; 12];
    n[..4].copy_from_slice(&domain.to_le_bytes());
    n[4..8].copy_from_slice(&(epoch as u32).to_le_bytes());
    n[8..].copy_from_slice(&index.to_le_bytes());
    n
}

/// Section AAD: the name and the epoch are authenticated so a section
/// can neither be renamed nor replayed into a different epoch.
fn section_aad(name: &str, epoch: u64) -> Vec<u8> {
    let mut aad = Vec::with_capacity(name.len() + 8);
    aad.extend_from_slice(name.as_bytes());
    aad.extend_from_slice(&epoch.to_le_bytes());
    aad
}

impl SnapshotBuilder {
    /// Starts a snapshot. `domain` scopes the nonces (use the sealing
    /// enclave's id); `epoch` must grow monotonically per domain and
    /// is authenticated into every section.
    #[must_use]
    pub fn new(domain: u32, epoch: u64) -> Self {
        Self {
            domain,
            epoch,
            sections: Vec::new(),
        }
    }

    /// Adds a named plaintext section.
    ///
    /// # Panics
    /// Panics on a duplicate name — [`Snapshot::open`] looks sections
    /// up by name, so duplicates would shadow each other.
    #[must_use]
    pub fn section(mut self, name: &str, plain: Vec<u8>) -> Self {
        assert!(
            !self.sections.iter().any(|(n, _)| n == name),
            "duplicate snapshot section {name:?}"
        );
        self.sections.push((name.to_string(), plain));
        self
    }

    /// Seals every section in place as one amortized crypto batch (the
    /// leader pays the full `crypto_fixed` setup, follow-ons a
    /// quarter) and returns the sealed snapshot.
    #[must_use]
    pub fn seal(self, ctx: &mut ThreadCtx, sealer: &dyn Sealer) -> Snapshot {
        let (domain, epoch) = (self.domain, self.epoch);
        let lens: Vec<usize> = self.sections.iter().map(|(_, p)| p.len()).collect();
        let aads: Vec<Vec<u8>> = self
            .sections
            .iter()
            .map(|(name, _)| section_aad(name, epoch))
            .collect();
        let mut bodies: Vec<(String, Vec<u8>)> = self.sections;
        let mut jobs: Vec<SealJob<'_>> = bodies
            .iter_mut()
            .zip(&aads)
            .enumerate()
            .map(|(i, ((_, plain), aad))| SealJob {
                nonce: section_nonce(domain, epoch, i as u32),
                aad,
                data: plain.as_mut_slice(),
            })
            .collect();
        let tags = sealer.seal_batch(&mut jobs);
        drop(jobs);
        ctx.charge_crypto_batch(lens, true);
        let sections = bodies
            .into_iter()
            .zip(tags)
            .enumerate()
            .map(|(i, ((name, blob), tag))| Section {
                name,
                nonce: section_nonce(domain, epoch, i as u32),
                tag,
                blob,
            })
            .collect();
        Snapshot { epoch, sections }
    }
}

impl Snapshot {
    /// The epoch this snapshot was sealed at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of sections.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Whether the snapshot carries no sections.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// The section names, in capture order.
    #[must_use]
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    /// Whether the named section is present (without opening it) —
    /// restore paths use this to accept snapshots from before an
    /// optional section existed.
    #[must_use]
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|s| s.name == name)
    }

    /// Total sealed payload bytes across sections (what a transport
    /// will move).
    #[must_use]
    pub fn sealed_bytes(&self) -> usize {
        self.sections.iter().map(|s| s.blob.len()).sum()
    }

    /// Verifies and decrypts the named section, returning its
    /// plaintext. Charges the caller one crypto batch of one.
    ///
    /// # Panics
    /// Panics when the section does not exist or fails authentication
    /// — a tampered or misrouted snapshot must never restore silently.
    #[must_use]
    pub fn open(&self, ctx: &mut ThreadCtx, sealer: &dyn Sealer, name: &str) -> Vec<u8> {
        let s = self
            .sections
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("snapshot has no section {name:?}"));
        let aad = section_aad(name, self.epoch);
        let mut plain = s.blob.clone();
        let mut jobs = [OpenJob {
            nonce: s.nonce,
            aad: &aad,
            data: plain.as_mut_slice(),
            tag: s.tag,
        }];
        sealer
            .open_batch(&mut jobs)
            .expect("snapshot section failed authentication: bytes tampered in transit");
        ctx.charge_crypto_batch([plain.len()], true);
        plain
    }

    /// Frames the snapshot (sections stay sealed) for a byte
    /// transport: cross-enclave channel, host file, wire.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.sealed_bytes());
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for s in &self.sections {
            out.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&s.nonce);
            out.extend_from_slice(&s.tag);
            out.extend_from_slice(&(s.blob.len() as u32).to_le_bytes());
            out.extend_from_slice(&s.blob);
        }
        out
    }

    /// Parses a frame produced by [`Self::to_bytes`].
    ///
    /// # Panics
    /// Panics on malformed framing (wrong magic, truncated sections) —
    /// the frame travels through untrusted memory, and parsing it is
    /// cheap compared to the authentication that follows, so garbage
    /// fails loudly here and forgery still dies at [`Self::open`].
    #[must_use]
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut r = Reader { bytes, at: 0 };
        assert_eq!(
            u32::from_le_bytes(r.take(4).try_into().expect("magic")),
            MAGIC,
            "not a snapshot frame"
        );
        let epoch = u64::from_le_bytes(r.take(8).try_into().expect("epoch"));
        let count = u32::from_le_bytes(r.take(4).try_into().expect("count"));
        let sections = (0..count)
            .map(|_| {
                let name_len = u16::from_le_bytes(r.take(2).try_into().expect("name len")) as usize;
                let name = String::from_utf8(r.take(name_len).to_vec()).expect("utf-8 name");
                let nonce: Nonce = r.take(12).try_into().expect("nonce");
                let tag: Tag = r.take(16).try_into().expect("tag");
                let blob_len = u32::from_le_bytes(r.take(4).try_into().expect("blob len")) as usize;
                let blob = r.take(blob_len).to_vec();
                Section {
                    name,
                    nonce,
                    tag,
                    blob,
                }
            })
            .collect();
        assert_eq!(r.at, bytes.len(), "trailing bytes after snapshot frame");
        Snapshot { epoch, sections }
    }

    /// Parses a frame that arrived split into bounded chunks (the
    /// maintenance plane streams delta snapshots over the cross-enclave
    /// channel in pieces so the ring stays small). Equivalent to
    /// concatenating the chunks and calling [`Self::from_bytes`].
    ///
    /// # Panics
    /// Panics on malformed framing, like [`Self::from_bytes`].
    #[must_use]
    pub fn from_chunks(chunks: &[Vec<u8>]) -> Self {
        let total: usize = chunks.iter().map(Vec::len).sum();
        let mut bytes = Vec::with_capacity(total);
        for c in chunks {
            bytes.extend_from_slice(c);
        }
        Self::from_bytes(&bytes)
    }
}

/// Bounds-checked cursor over a snapshot frame.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> &'a [u8] {
        assert!(self.at + n <= self.bytes.len(), "truncated snapshot frame");
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use eleos_crypto::gcm::AesGcm128;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    fn rig() -> (Arc<SgxMachine>, ThreadCtx) {
        let m = SgxMachine::new(MachineConfig::tiny());
        let e = m.driver.create_enclave(&m, 64 * 4096);
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        (m, t)
    }

    #[test]
    fn seal_frame_parse_open_round_trip() {
        let (_m, mut t) = rig();
        let sealer = AesGcm128::new(&[0x77u8; 16]);
        let snap = SnapshotBuilder::new(1, 42)
            .section("kvs-items", b"the item log".to_vec())
            .section("epoch", 42u64.to_le_bytes().to_vec())
            .seal(&mut t, &sealer);
        assert_eq!(snap.epoch(), 42);
        assert_eq!(snap.section_names(), vec!["kvs-items", "epoch"]);

        let frame = snap.to_bytes();
        // Sealed: the plaintext never appears in the frame.
        assert!(!frame.windows(12).any(|w| w == b"the item log"));

        let back = Snapshot::from_bytes(&frame);
        assert_eq!(back.open(&mut t, &sealer, "kvs-items"), b"the item log");
        assert_eq!(
            back.open(&mut t, &sealer, "epoch"),
            42u64.to_le_bytes().to_vec()
        );
    }

    #[test]
    fn sealing_is_one_amortized_batch() {
        let (_m, mut t) = rig();
        let sealer = AesGcm128::new(&[1u8; 16]);
        let costs = &t.machine.cfg.costs;
        let full = costs.crypto_fixed;
        let follow = costs.crypto_batch_fixed(1);
        let plains: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 100]).collect();

        let c0 = t.now();
        let mut b = SnapshotBuilder::new(0, 1);
        for (i, p) in plains.iter().enumerate() {
            b = b.section(&format!("s{i}"), p.clone());
        }
        let _snap = b.seal(&mut t, &sealer);
        let batched = t.now() - c0;

        // Four one-section snapshots pay the full setup four times;
        // the batched seal pays it once plus three quarter-rate
        // follow-ons. The variable (per-byte) cost is identical.
        let c1 = t.now();
        for (i, p) in plains.iter().enumerate() {
            let _ = SnapshotBuilder::new(0, 2 + i as u64)
                .section("s", p.clone())
                .seal(&mut t, &sealer);
        }
        let separate = t.now() - c1;
        assert_eq!(separate - batched, 3 * (full - follow));
        assert!(full > follow, "amortization must be real");
    }

    #[test]
    #[should_panic(expected = "failed authentication")]
    fn tampered_section_fails_to_open() {
        let (_m, mut t) = rig();
        let sealer = AesGcm128::new(&[2u8; 16]);
        let snap = SnapshotBuilder::new(0, 7)
            .section("state", vec![9u8; 64])
            .seal(&mut t, &sealer);
        let mut frame = snap.to_bytes();
        let n = frame.len();
        frame[n - 1] ^= 1; // flip a ciphertext bit
        let _ = Snapshot::from_bytes(&frame).open(&mut t, &sealer, "state");
    }

    #[test]
    #[should_panic(expected = "failed authentication")]
    fn replayed_epoch_fails_to_open() {
        // The epoch is authenticated: re-framing a section under a
        // different epoch breaks the AAD.
        let (_m, mut t) = rig();
        let sealer = AesGcm128::new(&[3u8; 16]);
        let snap = SnapshotBuilder::new(0, 7)
            .section("state", vec![5u8; 32])
            .seal(&mut t, &sealer);
        let mut frame = snap.to_bytes();
        frame[4..12].copy_from_slice(&8u64.to_le_bytes()); // epoch 7 -> 8
        let _ = Snapshot::from_bytes(&frame).open(&mut t, &sealer, "state");
    }

    #[test]
    #[should_panic(expected = "truncated snapshot frame")]
    fn truncated_frame_fails_fast() {
        let (_m, mut t) = rig();
        let sealer = AesGcm128::new(&[4u8; 16]);
        let frame = SnapshotBuilder::new(0, 1)
            .section("state", vec![1u8; 64])
            .seal(&mut t, &sealer)
            .to_bytes();
        let _ = Snapshot::from_bytes(&frame[..frame.len() - 10]);
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot section")]
    fn duplicate_sections_fail_fast() {
        let _ = SnapshotBuilder::new(0, 1)
            .section("a", vec![])
            .section("a", vec![]);
    }

    #[test]
    fn distinct_domains_never_collide_nonces() {
        // Two enclaves sealing the same epoch under one shared key get
        // distinct nonces (the fleet's safety contract).
        assert_ne!(section_nonce(1, 5, 0), section_nonce(2, 5, 0));
        assert_ne!(section_nonce(1, 5, 0), section_nonce(1, 6, 0));
        assert_ne!(section_nonce(1, 5, 0), section_nonce(1, 5, 1));
    }
}
