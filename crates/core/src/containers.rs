//! Secure data containers over SUVM.
//!
//! The paper's spointer rules were designed so that "SUVM enables
//! creating data containers of arbitrarily large sizes, whose content
//! is stored securely in the backing store" (§3.2.2) — containers hold
//! *unlinked* spointers and link only transiently during access. These
//! are those containers:
//!
//! - [`SBox<T>`] — a single sealed value;
//! - [`SVec<T>`] — a growable array of plain values;
//! - [`SHashMap`] — an open-addressing byte-key/byte-value map, the
//!   paper's parameter-server/KVS use case as a reusable type.

use std::sync::Arc;

use eleos_enclave::thread::ThreadCtx;

use crate::spointer::{Plain, SPtr};
use crate::suvm::{Suvm, Sva};

/// A single secure value.
pub struct SBox<T: Plain> {
    ptr: SPtr<T>,
    suvm: Arc<Suvm>,
}

impl<T: Plain> SBox<T> {
    /// Allocates and initializes a secure value.
    #[must_use]
    pub fn new(suvm: &Arc<Suvm>, ctx: &mut ThreadCtx, value: T) -> Self {
        let sva = suvm.malloc(T::SIZE);
        let ptr = SPtr::new(suvm, sva);
        ptr.set(ctx, value);
        Self {
            ptr,
            suvm: Arc::clone(suvm),
        }
    }

    /// Reads the value.
    #[must_use]
    pub fn get(&self, ctx: &mut ThreadCtx) -> T {
        self.ptr.get(ctx)
    }

    /// Replaces the value.
    pub fn set(&self, ctx: &mut ThreadCtx, value: T) {
        self.ptr.set(ctx, value);
    }

    /// Frees the allocation.
    pub fn free(self) {
        let sva = self.ptr.sva();
        self.ptr.unlink();
        self.suvm.free(sva);
    }
}

/// A growable secure array of [`Plain`] values.
///
/// Capacity grows geometrically; on growth the contents move through
/// `suvm_memcpy` (sealed end to end — plaintext never leaves the
/// enclave).
pub struct SVec<T: Plain> {
    suvm: Arc<Suvm>,
    base: Sva,
    len: usize,
    capacity: usize,
    _marker: core::marker::PhantomData<T>,
}

impl<T: Plain> SVec<T> {
    /// Creates an empty vector with room for `capacity` elements.
    #[must_use]
    pub fn with_capacity(suvm: &Arc<Suvm>, capacity: usize) -> Self {
        let capacity = capacity.max(8);
        Self {
            base: suvm.malloc(capacity * T::SIZE),
            suvm: Arc::clone(suvm),
            len: 0,
            capacity,
            _marker: core::marker::PhantomData,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current capacity in elements.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn slot(&self, index: usize) -> Sva {
        self.base + (index * T::SIZE) as u64
    }

    /// Appends a value, growing if needed.
    pub fn push(&mut self, ctx: &mut ThreadCtx, value: T) {
        if self.len == self.capacity {
            self.grow(ctx);
        }
        let p = SPtr::new(&self.suvm, self.slot(self.len));
        p.set(ctx, value);
        self.len += 1;
    }

    fn grow(&mut self, ctx: &mut ThreadCtx) {
        let new_cap = self.capacity * 2;
        let new_base = self.suvm.malloc(new_cap * T::SIZE);
        self.suvm
            .memcpy(ctx, new_base, self.base, self.len * T::SIZE);
        self.suvm.free(self.base);
        self.base = new_base;
        self.capacity = new_cap;
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self, ctx: &mut ThreadCtx) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        let p = SPtr::new(&self.suvm, self.slot(self.len));
        Some(p.get(ctx))
    }

    /// Reads element `index`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, ctx: &mut ThreadCtx, index: usize) -> T {
        assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        SPtr::new(&self.suvm, self.slot(index)).get(ctx)
    }

    /// Writes element `index`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn set(&mut self, ctx: &mut ThreadCtx, index: usize, value: T) {
        assert!(
            index < self.len,
            "index {index} out of bounds ({})",
            self.len
        );
        SPtr::new(&self.suvm, self.slot(index)).set(ctx, value);
    }

    /// Sequential scan with a fold, using one linked spointer that
    /// walks the array — the access pattern the spointer fast path is
    /// built for (one translation per page).
    pub fn fold<A>(&self, ctx: &mut ThreadCtx, init: A, mut f: impl FnMut(A, T) -> A) -> A {
        let mut acc = init;
        let mut p: SPtr<T> = SPtr::new(&self.suvm, self.base);
        for _ in 0..self.len {
            acc = f(acc, p.get(ctx));
            p.add(1);
        }
        acc
    }

    /// Frees the storage.
    pub fn free(self) {
        self.suvm.free(self.base);
    }
}

/// Entry header inside the table region: `[key_len u32][val_len u32]`
/// followed by key and value bytes in a separately allocated record.
const SLOT_BYTES: usize = 16; // hash(8) + record sva(8); hash 0 = empty

/// An open-addressing hash map with byte-slice keys and values, fully
/// resident in SUVM.
///
/// # Examples
///
/// ```
/// use eleos_core::{SHashMap, Suvm, SuvmConfig};
/// use eleos_enclave::machine::{MachineConfig, SgxMachine};
/// use eleos_enclave::thread::ThreadCtx;
///
/// let m = SgxMachine::new(MachineConfig::tiny());
/// let e = m.driver.create_enclave(&m, 2 << 20);
/// let mut t = ThreadCtx::for_enclave(&m, &e, 0);
/// let suvm = Suvm::new(&t, SuvmConfig::tiny());
/// t.enter();
///
/// let mut map = SHashMap::new(&suvm, &mut t, 64);
/// map.insert(&mut t, b"alice", b"reviewer");
/// assert_eq!(map.get(&mut t, b"alice").unwrap(), b"reviewer");
/// assert!(map.get(&mut t, b"bob").is_none());
/// t.exit();
/// ```
pub struct SHashMap {
    suvm: Arc<Suvm>,
    table: Sva,
    slots: u64,
    len: u64,
}

impl SHashMap {
    /// Creates a map sized for `capacity` entries.
    #[must_use]
    pub fn new(suvm: &Arc<Suvm>, ctx: &mut ThreadCtx, capacity: u64) -> Self {
        let slots = (capacity.max(4) * 2).next_power_of_two();
        let table = suvm.malloc((slots as usize) * SLOT_BYTES);
        suvm.memset(ctx, table, (slots as usize) * SLOT_BYTES, 0);
        Self {
            suvm: Arc::clone(suvm),
            table,
            slots,
            len: 0,
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn hash(key: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in key {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        // Never 0 (the empty marker) or 1 (the tombstone marker).
        h.max(2)
    }

    fn slot_sva(&self, slot: u64) -> Sva {
        self.table + slot * SLOT_BYTES as u64
    }

    fn read_record(&self, ctx: &mut ThreadCtx, rec: Sva) -> (Vec<u8>, Vec<u8>) {
        let mut hdr = [0u8; 8];
        self.suvm.read(ctx, rec, &mut hdr);
        let klen = u32::from_le_bytes(hdr[..4].try_into().expect("hdr")) as usize;
        let vlen = u32::from_le_bytes(hdr[4..].try_into().expect("hdr")) as usize;
        let mut key = vec![0u8; klen];
        self.suvm.read(ctx, rec + 8, &mut key);
        let mut value = vec![0u8; vlen];
        self.suvm.read(ctx, rec + 8 + klen as u64, &mut value);
        (key, value)
    }

    /// Visits every live entry's record address.
    fn for_each_record(&self, ctx: &mut ThreadCtx, mut f: impl FnMut(Sva)) {
        for slot in 0..self.slots {
            let mut pair = [0u8; 16];
            self.suvm.read(ctx, self.slot_sva(slot), &mut pair);
            let h = u64::from_le_bytes(pair[..8].try_into().expect("pair"));
            if h >= 2 {
                f(u64::from_le_bytes(pair[8..].try_into().expect("pair")));
            }
        }
    }

    /// Visits every `(key, value)` (slot order).
    pub fn for_each(&self, ctx: &mut ThreadCtx, mut f: impl FnMut(&[u8], &[u8])) {
        let mut records = Vec::new();
        self.for_each_record(ctx, |rec| records.push(rec));
        for rec in records {
            let (k, v) = self.read_record(ctx, rec);
            f(&k, &v);
        }
    }

    /// Doubles the slot array, rehashing every entry. The records stay
    /// where they are; only the `(hash, record)` pairs move — cheap
    /// even for large values.
    fn grow(&mut self, ctx: &mut ThreadCtx) {
        let mut records = Vec::with_capacity(self.len as usize);
        self.for_each_record(ctx, |rec| records.push(rec));
        let old_table = self.table;
        self.slots *= 2;
        self.table = self.suvm.malloc((self.slots as usize) * SLOT_BYTES);
        self.suvm
            .memset(ctx, self.table, (self.slots as usize) * SLOT_BYTES, 0);
        for rec in records {
            let (key, _) = self.read_record(ctx, rec);
            let h = Self::hash(&key);
            let mut slot = h & (self.slots - 1);
            loop {
                let sva = self.slot_sva(slot);
                let mut pair = [0u8; 16];
                self.suvm.read(ctx, sva, &mut pair);
                if u64::from_le_bytes(pair[..8].try_into().expect("pair")) == 0 {
                    let mut fresh = [0u8; 16];
                    fresh[..8].copy_from_slice(&h.to_le_bytes());
                    fresh[8..].copy_from_slice(&rec.to_le_bytes());
                    self.suvm.write(ctx, sva, &fresh);
                    break;
                }
                slot = (slot + 1) & (self.slots - 1);
            }
        }
        self.suvm.free(old_table);
    }

    /// Inserts or replaces `key`, returning the previous value if any.
    /// The table doubles (rehashes) past 50% load.
    pub fn insert(&mut self, ctx: &mut ThreadCtx, key: &[u8], value: &[u8]) -> Option<Vec<u8>> {
        if (self.len + 1) * 2 > self.slots {
            self.grow(ctx);
        }
        let h = Self::hash(key);
        let mut slot = h & (self.slots - 1);
        let mut first_tombstone: Option<u64> = None;
        loop {
            let sva = self.slot_sva(slot);
            let mut pair = [0u8; 16];
            self.suvm.read(ctx, sva, &mut pair);
            let stored_hash = u64::from_le_bytes(pair[..8].try_into().expect("pair"));
            let rec = u64::from_le_bytes(pair[8..].try_into().expect("pair"));
            match stored_hash {
                0 => {
                    // Empty: insert (reusing an earlier tombstone if seen).
                    let target = first_tombstone.map_or(sva, |s| self.slot_sva(s));
                    let rec = self.alloc_record(ctx, key, value);
                    let mut pair = [0u8; 16];
                    pair[..8].copy_from_slice(&h.to_le_bytes());
                    pair[8..].copy_from_slice(&rec.to_le_bytes());
                    self.suvm.write(ctx, target, &pair);
                    self.len += 1;
                    return None;
                }
                1 if first_tombstone.is_none() => first_tombstone = Some(slot),
                1 => {}
                sh if sh == h => {
                    let (stored_key, old_value) = self.read_record(ctx, rec);
                    if stored_key == key {
                        // Replace in place.
                        self.suvm.free(rec);
                        let new_rec = self.alloc_record(ctx, key, value);
                        self.suvm.write(ctx, sva + 8, &new_rec.to_le_bytes());
                        return Some(old_value);
                    }
                }
                _ => {}
            }
            slot = (slot + 1) & (self.slots - 1);
        }
    }

    fn alloc_record(&self, ctx: &mut ThreadCtx, key: &[u8], value: &[u8]) -> Sva {
        let rec = self.suvm.malloc(8 + key.len() + value.len());
        let mut hdr = [0u8; 8];
        hdr[..4].copy_from_slice(&(key.len() as u32).to_le_bytes());
        hdr[4..].copy_from_slice(&(value.len() as u32).to_le_bytes());
        self.suvm.write(ctx, rec, &hdr);
        self.suvm.write(ctx, rec + 8, key);
        self.suvm.write(ctx, rec + 8 + key.len() as u64, value);
        rec
    }

    fn find_slot(&self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<(u64, Sva)> {
        let h = Self::hash(key);
        let mut slot = h & (self.slots - 1);
        loop {
            let sva = self.slot_sva(slot);
            let mut pair = [0u8; 16];
            self.suvm.read(ctx, sva, &mut pair);
            let stored_hash = u64::from_le_bytes(pair[..8].try_into().expect("pair"));
            let rec = u64::from_le_bytes(pair[8..].try_into().expect("pair"));
            match stored_hash {
                0 => return None,
                1 => {}
                sh if sh == h => {
                    let (stored_key, _) = self.read_record(ctx, rec);
                    if stored_key == key {
                        return Some((slot, rec));
                    }
                }
                _ => {}
            }
            slot = (slot + 1) & (self.slots - 1);
        }
    }

    /// Looks up `key`.
    #[must_use]
    pub fn get(&self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<Vec<u8>> {
        let (_, rec) = self.find_slot(ctx, key)?;
        Some(self.read_record(ctx, rec).1)
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains(&self, ctx: &mut ThreadCtx, key: &[u8]) -> bool {
        self.find_slot(ctx, key).is_some()
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, ctx: &mut ThreadCtx, key: &[u8]) -> Option<Vec<u8>> {
        let (slot, rec) = self.find_slot(ctx, key)?;
        let value = self.read_record(ctx, rec).1;
        self.suvm.free(rec);
        // Tombstone the slot.
        let mut pair = [0u8; 16];
        pair[..8].copy_from_slice(&1u64.to_le_bytes());
        self.suvm.write(ctx, self.slot_sva(slot), &pair);
        self.len -= 1;
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SuvmConfig;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    fn rig() -> (Arc<SgxMachine>, Arc<Suvm>, ThreadCtx) {
        let m = SgxMachine::new(MachineConfig::scaled(4));
        let e = m.driver.create_enclave(&m, 8 << 20);
        let t0 = ThreadCtx::for_enclave(&m, &e, 0);
        let s = Suvm::new(
            &t0,
            SuvmConfig {
                epcpp_bytes: 16 * 4096, // tiny: containers page constantly
                backing_bytes: 8 << 20,
                ..SuvmConfig::tiny()
            },
        );
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        (m, s, t)
    }

    #[test]
    fn sbox_roundtrip() {
        let (_m, s, mut t) = rig();
        let b = SBox::new(&s, &mut t, 0xdead_beefu64);
        assert_eq!(b.get(&mut t), 0xdead_beef);
        b.set(&mut t, 7);
        assert_eq!(b.get(&mut t), 7);
        b.free();
        t.exit();
    }

    #[test]
    fn svec_push_pop_grow() {
        let (_m, s, mut t) = rig();
        let mut v: SVec<u64> = SVec::with_capacity(&s, 8);
        for i in 0..10_000u64 {
            v.push(&mut t, i * i);
        }
        assert_eq!(v.len(), 10_000);
        assert!(v.capacity() >= 10_000);
        for i in (0..10_000u64).step_by(997) {
            assert_eq!(v.get(&mut t, i as usize), i * i);
        }
        v.set(&mut t, 5, 999);
        assert_eq!(v.get(&mut t, 5), 999);
        assert_eq!(v.pop(&mut t), Some(9999u64 * 9999));
        assert_eq!(v.len(), 9_999);
        v.free();
        t.exit();
    }

    #[test]
    fn svec_fold_walks_linked() {
        let (m, s, mut t) = rig();
        let mut v: SVec<u32> = SVec::with_capacity(&s, 16);
        for _ in 0..8192 {
            v.push(&mut t, 1);
        }
        let s0 = m.stats.snapshot();
        let total = v.fold(&mut t, 0u64, |acc, x| acc + x as u64);
        assert_eq!(total, 8192);
        let d = m.stats.snapshot() - s0;
        // The linked walk performs roughly one link per page, not one
        // per element.
        let pages = (8192 * 4) / 4096;
        assert!(
            d.suvm_minor_faults + d.suvm_major_faults <= 2 * pages + 4,
            "too many translations: {} for {} pages",
            d.suvm_minor_faults + d.suvm_major_faults,
            pages
        );
        v.free();
        t.exit();
    }

    #[test]
    fn svec_empty_pop() {
        let (_m, s, mut t) = rig();
        let mut v: SVec<u64> = SVec::with_capacity(&s, 8);
        assert!(v.is_empty());
        assert_eq!(v.pop(&mut t), None);
        v.free();
        t.exit();
    }

    #[test]
    fn shashmap_insert_get_remove() {
        let (_m, s, mut t) = rig();
        let mut map = SHashMap::new(&s, &mut t, 2000);
        for i in 0..1000u32 {
            let prev = map.insert(
                &mut t,
                format!("key-{i}").as_bytes(),
                &vec![(i % 251) as u8; 50 + (i as usize % 100)],
            );
            assert!(prev.is_none());
        }
        assert_eq!(map.len(), 1000);
        for i in (0..1000u32).step_by(7) {
            let v = map.get(&mut t, format!("key-{i}").as_bytes()).unwrap();
            assert_eq!(v, vec![(i % 251) as u8; 50 + (i as usize % 100)]);
        }
        // Replace.
        let old = map.insert(&mut t, b"key-5", b"new").unwrap();
        assert_eq!(old, vec![5u8; 55]);
        assert_eq!(map.get(&mut t, b"key-5").unwrap(), b"new");
        assert_eq!(map.len(), 1000);
        // Remove + tombstone probing.
        assert_eq!(map.remove(&mut t, b"key-7").unwrap(), vec![7u8; 57]);
        assert!(!map.contains(&mut t, b"key-7"));
        assert_eq!(map.len(), 999);
        assert!(map.get(&mut t, b"key-8").is_some(), "probe past tombstone");
        // Reinsert into the tombstone.
        assert!(map.insert(&mut t, b"key-7", b"back").is_none());
        assert_eq!(map.get(&mut t, b"key-7").unwrap(), b"back");
        t.exit();
    }

    #[test]
    fn shashmap_missing_keys() {
        let (_m, s, mut t) = rig();
        let mut map = SHashMap::new(&s, &mut t, 64);
        assert!(map.get(&mut t, b"nope").is_none());
        assert!(map.remove(&mut t, b"nope").is_none());
        map.insert(&mut t, b"a", b"1");
        assert!(map.get(&mut t, b"b").is_none());
        t.exit();
    }

    #[test]
    fn shashmap_grows_past_initial_capacity() {
        let (_m, s, mut t) = rig();
        let mut map = SHashMap::new(&s, &mut t, 8); // 16 slots initially
        for i in 0..500u32 {
            map.insert(&mut t, format!("grow-{i}").as_bytes(), &i.to_le_bytes());
        }
        assert_eq!(map.len(), 500);
        for i in (0..500u32).step_by(11) {
            assert_eq!(
                map.get(&mut t, format!("grow-{i}").as_bytes()).unwrap(),
                i.to_le_bytes()
            );
        }
        // Iteration sees every entry exactly once.
        let mut seen = std::collections::HashSet::new();
        map.for_each(&mut t, |k, _| {
            assert!(seen.insert(k.to_vec()), "duplicate key in iteration");
        });
        assert_eq!(seen.len(), 500);
        t.exit();
    }

    #[test]
    fn containers_survive_total_eviction() {
        let (_m, s, mut t) = rig();
        let mut map = SHashMap::new(&s, &mut t, 500);
        for i in 0..300u32 {
            map.insert(&mut t, &i.to_le_bytes(), &[i as u8; 200]);
        }
        while s.evict_one(&mut t) {}
        assert_eq!(s.resident_pages(), 0);
        for i in (0..300u32).step_by(13) {
            assert_eq!(map.get(&mut t, &i.to_le_bytes()).unwrap(), [i as u8; 200]);
        }
        t.exit();
    }
}
