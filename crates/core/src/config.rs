//! SUVM configuration.

use std::sync::Arc;

use eleos_crypto::Sealer;

/// Which [`Sealer`] a SUVM instance seals its backing store with.
///
/// The paper stores "a random per-application key" in the EPC (§3.2.3);
/// [`SealerConfig::PerDomain`] models that default. Deployments that
/// want one key-management domain across subsystems — e.g. the SUVM
/// swapper sealing with the same cipher instance the serving path
/// already manages — inject it with [`SealerConfig::Shared`]. Either
/// way, every seal flows through the one [`Sealer`] trait, so the
/// setup-amortization contract (`Costs::crypto_batch_fixed`) has a
/// single owner.
#[derive(Clone, Default)]
pub enum SealerConfig {
    /// Derive a per-domain AES-GCM-128 key from the enclave id
    /// (deterministic stand-in for the paper's random per-application
    /// key). The default.
    #[default]
    PerDomain,
    /// Seal with an existing, externally managed sealer instance.
    /// SUVM keeps nonces disjoint across instances by scoping them
    /// with the enclave id, so sharing one keyed cipher between
    /// domains is safe.
    Shared(Arc<dyn Sealer>),
}

impl core::fmt::Debug for SealerConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SealerConfig::PerDomain => f.write_str("per-domain"),
            SealerConfig::Shared(s) => write!(f, "shared({})", s.name()),
        }
    }
}

impl SealerConfig {
    /// Short label used in experiment headers and JSON output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SealerConfig::PerDomain => "per-domain",
            SealerConfig::Shared(_) => "shared",
        }
    }
}

/// EPC++ eviction policy.
///
/// §3.2.2: "user code has full control over the spointer's page table,
/// page size, **and eviction policy**" — hardware paging offers no such
/// choice. CLOCK is the default; FIFO mirrors what the (opaque) SGX
/// driver effectively does; Random is the adversarial baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictPolicy {
    /// Second-chance CLOCK over the frame pool (default).
    Clock,
    /// Evict the page resident the longest, ignoring reuse.
    Fifo,
    /// Deterministic pseudo-random victim selection (seeded).
    Random(u64),
    /// Sampled LRU approximation: stamp frames on access, evict the
    /// oldest of a small seeded random sample.
    LruApprox(u64),
    /// Pin-aware segmented LRU: re-pinned frames are promoted to a
    /// protected class that the sweep demotes before evicting.
    Slru,
    /// SLRU with a self-tuning protected capacity: the split between
    /// probation and protected adapts to the observed hit mix (grows
    /// the protected class while it earns its hits, shrinks it when it
    /// hoards frames the probation class needs).
    SlruTuned,
}

impl EvictPolicy {
    /// Short label used in experiment headers and JSON output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EvictPolicy::Clock => "clock",
            EvictPolicy::Fifo => "fifo",
            EvictPolicy::Random(_) => "random",
            EvictPolicy::LruApprox(_) => "lru",
            EvictPolicy::Slru => "slru",
            EvictPolicy::SlruTuned => "slru-tuned",
        }
    }
}

/// Backing-store layout for the sealed page images.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// One untrusted region, one buddy allocator, one crypto table —
    /// the paper's memsys5 setup (default).
    Buddy,
    /// The region, allocator and crypto-table shards split into
    /// `stripes` independent columns to cut lock contention. A single
    /// allocation cannot exceed `backing_bytes / stripes`.
    Striped {
        /// Number of stripes (power of two).
        stripes: usize,
    },
}

impl StoreKind {
    /// Short label used in experiment headers and JSON output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            StoreKind::Buddy => "buddy",
            StoreKind::Striped { .. } => "striped",
        }
    }
}

/// Configuration of one [`crate::Suvm`] instance.
///
/// The paper exposes "a low-level tuning interface for expert runtime
/// developers" (§3) — page size, EPC++ size, sub-page granularity and
/// the eviction optimizations are all set here. The page size is a
/// runtime value (the paper fixes it at compile time, §3.4).
#[derive(Debug, Clone)]
pub struct SuvmConfig {
    /// EPC++ page size in bytes (power of two; default 4 KiB).
    pub page_size: usize,
    /// Sub-page granularity for direct backing-store access (power of
    /// two dividing `page_size`; default 1 KiB — the paper's §6.1.2
    /// configuration).
    pub sub_page_size: usize,
    /// EPC++ capacity in bytes (default 60 MiB, the paper's §6.1.2
    /// setting).
    pub epcpp_bytes: usize,
    /// Backing-store capacity in bytes (power of two; default 2 GiB).
    pub backing_bytes: usize,
    /// Skip write-back of clean pages on eviction (§3.2.4; default on).
    pub clean_skip: bool,
    /// Seal evicted pages at sub-page granularity so that direct
    /// accesses can decrypt individual sub-pages (§3.2.4). Costs extra
    /// per-eviction fixed overhead; default off (enable for
    /// direct-access workloads).
    pub seal_sub_pages: bool,
    /// Free-frame low watermark the swapper maintains.
    pub free_watermark: usize,
    /// EPC bytes the enclave needs outside EPC++ (code, heap, SUVM
    /// metadata); the ballooning logic reserves this from the driver
    /// share.
    pub headroom_bytes: usize,
    /// EPC++ eviction policy.
    pub policy: EvictPolicy,
    /// Backing-store layout.
    pub store: StoreKind,
    /// Batched asynchronous write-back. `0` (default) keeps the
    /// classic inline seal-on-evict fault path. A positive value makes
    /// the fault path only *detach* victims onto a write-back queue;
    /// the swapper (or a synchronous fallback when the free pool runs
    /// dry) drains the queue in batches of this size, sealing with the
    /// GCM key schedule amortized across the batch.
    pub wb_batch: usize,
    /// Model the EPC pressure of SUVM's own metadata: the paper's
    /// prototype keeps page tables and crypto metadata in EPC and lets
    /// native paging evict them under pressure (§4.1/§4.2, visible as
    /// Fig 7's slowdown past ~1 GB). When the estimated metadata
    /// footprint exceeds `headroom_bytes`, fault paths are charged the
    /// amortized hardware faults those metadata accesses would take.
    pub model_metadata_pressure: bool,
    /// The cipher the backing store is sealed with: a per-domain key
    /// (default) or a shared, externally managed [`Sealer`] instance.
    pub sealer: SealerConfig,
}

impl Default for SuvmConfig {
    fn default() -> Self {
        Self {
            page_size: 4096,
            sub_page_size: 1024,
            epcpp_bytes: 60 << 20,
            backing_bytes: 2 << 30,
            clean_skip: true,
            seal_sub_pages: false,
            free_watermark: 8,
            headroom_bytes: 4 << 20,
            policy: EvictPolicy::Clock,
            store: StoreKind::Buddy,
            wb_batch: 0,
            model_metadata_pressure: true,
            sealer: SealerConfig::PerDomain,
        }
    }
}

impl SuvmConfig {
    /// A small configuration for unit tests.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            page_size: 4096,
            sub_page_size: 1024,
            epcpp_bytes: 16 * 4096,
            backing_bytes: 1 << 20,
            clean_skip: true,
            seal_sub_pages: false,
            free_watermark: 2,
            headroom_bytes: 64 << 10,
            policy: EvictPolicy::Clock,
            store: StoreKind::Buddy,
            wb_batch: 0,
            model_metadata_pressure: true,
            sealer: SealerConfig::PerDomain,
        }
    }

    /// Number of EPC++ frames.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.epcpp_bytes / self.page_size
    }

    /// Validates the invariants between the fields.
    ///
    /// # Panics
    /// Panics on an inconsistent configuration.
    pub fn validate(&self) {
        assert!(self.page_size.is_power_of_two(), "page_size must be 2^n");
        assert!(
            self.sub_page_size.is_power_of_two()
                && self.page_size.is_multiple_of(self.sub_page_size),
            "sub_page_size must be a power of two dividing page_size"
        );
        assert!(
            self.epcpp_bytes.is_multiple_of(self.page_size) && self.epcpp_bytes > 0,
            "epcpp_bytes must be a positive multiple of page_size"
        );
        assert!(
            (self.backing_bytes as u64).is_power_of_two(),
            "backing_bytes must be a power of two (buddy allocator)"
        );
        assert!(
            self.backing_bytes.is_multiple_of(self.page_size),
            "backing_bytes must be page aligned"
        );
        assert!(self.frames() >= 2, "need at least two EPC++ frames");
        if let StoreKind::Striped { stripes } = self.store {
            assert!(
                stripes.is_power_of_two(),
                "striped store needs a power-of-two stripe count"
            );
            assert!(
                self.backing_bytes / stripes >= self.page_size,
                "each stripe must hold at least one page"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SuvmConfig::default().validate();
        SuvmConfig::tiny().validate();
        assert_eq!(SuvmConfig::tiny().frames(), 16);
    }

    #[test]
    fn sealer_config_labels_and_debug() {
        use eleos_crypto::gcm::AesGcm128;
        let per = SealerConfig::PerDomain;
        assert_eq!(per.label(), "per-domain");
        assert_eq!(format!("{per:?}"), "per-domain");
        let shared = SealerConfig::Shared(Arc::new(AesGcm128::new(&[1u8; 16])));
        assert_eq!(shared.label(), "shared");
        assert_eq!(format!("{shared:?}"), "shared(aes128-gcm)");
        // Cloning a shared config aliases the same instance.
        let SealerConfig::Shared(a) = shared.clone() else {
            panic!("clone changed the variant");
        };
        let SealerConfig::Shared(b) = shared else {
            panic!("original variant consumed");
        };
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "sub_page_size")]
    fn bad_subpage_rejected() {
        SuvmConfig {
            sub_page_size: 3000,
            ..SuvmConfig::tiny()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "two EPC++ frames")]
    fn too_few_frames_rejected() {
        SuvmConfig {
            epcpp_bytes: 4096,
            ..SuvmConfig::tiny()
        }
        .validate();
    }
}
