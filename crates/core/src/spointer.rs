//! Secure active pointers — *spointers* (Eleos §3.2.2).
//!
//! A spointer encapsulates SUVM's software address translation: the
//! first access to a page *links* the spointer (caches the EPC++ frame
//! and pins the page); subsequent accesses through the linked spointer
//! skip the page-table lookup entirely — "the page table lookup is
//! performed once per page". Moving a spointer across a page boundary,
//! cloning it, or dropping it *unlinks* it (unpinning the page), which
//! is what keeps the pinned-page population small (§3.2.2's two rules).
//!
//! Rust cannot overload `*p` against simulated memory, so access goes
//! through `get`/`set` — which is also precisely what the paper needs
//! for dirty tracking ("a user should access spointers via get/set
//! macros", §3.2.4).

use std::cell::Cell;
use std::sync::Arc;

use eleos_enclave::thread::ThreadCtx;

use crate::suvm::{Suvm, Sva};

/// Fixed-size plain-old-data types that can live in SUVM memory.
///
/// # Examples
///
/// ```
/// use eleos_core::spointer::Plain;
/// let mut b = [0u8; 8];
/// 42u64.write_to(&mut b);
/// assert_eq!(u64::read_from(&b), 42);
/// ```
pub trait Plain: Copy {
    /// Size of the value in bytes.
    const SIZE: usize;
    /// Serializes into `buf` (little endian).
    fn write_to(self, buf: &mut [u8]);
    /// Deserializes from `buf`.
    fn read_from(buf: &[u8]) -> Self;
}

macro_rules! impl_plain {
    ($($t:ty),+) => {$(
        impl Plain for $t {
            const SIZE: usize = core::mem::size_of::<$t>();
            fn write_to(self, buf: &mut [u8]) {
                buf[..Self::SIZE].copy_from_slice(&self.to_le_bytes());
            }
            fn read_from(buf: &[u8]) -> Self {
                <$t>::from_le_bytes(buf[..Self::SIZE].try_into().unwrap())
            }
        }
    )+};
}

impl_plain!(u8, u16, u32, u64, u128, i8, i16, i32, i64, usize);

impl Plain for f32 {
    const SIZE: usize = 4;
    fn write_to(self, buf: &mut [u8]) {
        buf[..4].copy_from_slice(&self.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        f32::from_le_bytes(buf[..4].try_into().unwrap())
    }
}

impl Plain for f64 {
    const SIZE: usize = 8;
    fn write_to(self, buf: &mut [u8]) {
        buf[..8].copy_from_slice(&self.to_le_bytes());
    }
    fn read_from(buf: &[u8]) -> Self {
        f64::from_le_bytes(buf[..8].try_into().unwrap())
    }
}

#[derive(Clone, Copy)]
struct Link {
    page: u64,
    frame: u32,
}

/// A typed secure active pointer into SUVM memory.
pub struct SPtr<T: Plain> {
    suvm: Arc<Suvm>,
    sva: Sva,
    link: Cell<Option<Link>>,
    _marker: core::marker::PhantomData<T>,
}

impl<T: Plain> SPtr<T> {
    /// Creates an (unlinked) spointer at `sva` — typically the result
    /// of [`Suvm::malloc`].
    #[must_use]
    pub fn new(suvm: &Arc<Suvm>, sva: Sva) -> Self {
        Self {
            suvm: Arc::clone(suvm),
            sva,
            link: Cell::new(None),
            _marker: core::marker::PhantomData,
        }
    }

    /// The SUVM virtual address this spointer designates.
    #[must_use]
    pub fn sva(&self) -> Sva {
        self.sva
    }

    /// Whether the spointer currently caches a translation.
    #[must_use]
    pub fn is_linked(&self) -> bool {
        self.link.get().is_some()
    }

    fn page(&self) -> u64 {
        self.suvm.page_of(self.sva)
    }

    fn value_fits_in_page(&self) -> bool {
        let ps = self.suvm.config().page_size as u64;
        (self.sva % ps) + T::SIZE as u64 <= ps
    }

    /// Ensures the spointer is linked to its page; returns the frame.
    fn link_now(&self, ctx: &mut ThreadCtx) -> u32 {
        let page = self.page();
        if let Some(l) = self.link.get() {
            if l.page == page {
                ctx.compute(ctx.machine.cfg.costs.spointer_linked);
                return l.frame;
            }
            self.unlink();
        }
        ctx.compute(ctx.machine.cfg.costs.spointer_link);
        let (frame, was_resident) = self.suvm.fault_in_and_pin(ctx, page);
        if was_resident {
            // Resident but unlinked: a *minor* fault (§3.2.2).
            eleos_sim::stats::Stats::bump(&ctx.machine.stats.suvm_minor_faults);
        }
        self.link.set(Some(Link { page, frame }));
        frame
    }

    /// Explicitly drops the cached translation, unpinning the page.
    pub fn unlink(&self) {
        if let Some(l) = self.link.take() {
            self.suvm.unpin(l.frame);
        }
    }

    /// Reads the pointee.
    #[must_use]
    pub fn get(&self, ctx: &mut ThreadCtx) -> T {
        let mut buf = [0u8; 16];
        assert!(T::SIZE <= buf.len());
        if self.value_fits_in_page() {
            let frame = self.link_now(ctx);
            let in_page = (self.sva % self.suvm.config().page_size as u64) as usize;
            ctx.read_enclave(self.suvm.epcpp_vaddr(frame, in_page), &mut buf[..T::SIZE]);
        } else {
            // Straddles a page boundary: fall back to the unlinked path.
            self.suvm.read(ctx, self.sva, &mut buf[..T::SIZE]);
        }
        T::read_from(&buf[..T::SIZE])
    }

    /// Writes the pointee, marking the page dirty.
    pub fn set(&self, ctx: &mut ThreadCtx, v: T) {
        let mut buf = [0u8; 16];
        assert!(T::SIZE <= buf.len());
        v.write_to(&mut buf[..T::SIZE]);
        if self.value_fits_in_page() {
            let frame = self.link_now(ctx);
            let in_page = (self.sva % self.suvm.config().page_size as u64) as usize;
            ctx.write_enclave(self.suvm.epcpp_vaddr(frame, in_page), &buf[..T::SIZE]);
            self.suvm.mark_dirty(frame);
        } else {
            self.suvm.write(ctx, self.sva, &buf[..T::SIZE]);
        }
    }

    /// Advances the spointer by `count` elements, unlinking it if the
    /// move crosses the linked page's boundary.
    pub fn add(&mut self, count: u64) {
        self.sva += count * T::SIZE as u64;
        self.maybe_unlink_after_move();
    }

    /// Moves the spointer back by `count` elements.
    pub fn sub(&mut self, count: u64) {
        self.sva -= count * T::SIZE as u64;
        self.maybe_unlink_after_move();
    }

    fn maybe_unlink_after_move(&self) {
        if let Some(l) = self.link.get() {
            if l.page != self.page() {
                self.unlink();
            }
        }
    }

    /// Returns an *unlinked* spointer `count` elements further (the
    /// paper's rule: assignment/derivation never copies a link).
    #[must_use]
    pub fn offset(&self, count: u64) -> SPtr<T> {
        SPtr::new(&self.suvm, self.sva + count * T::SIZE as u64)
    }

    /// Reinterprets the address as a different element type (unlinked).
    #[must_use]
    pub fn cast<U: Plain>(&self) -> SPtr<U> {
        SPtr::new(&self.suvm, self.sva)
    }

    /// Reads `buf.len()` bytes at the spointer through the *linked*
    /// fast path (one translation per page, §3.2.2). The span must not
    /// cross the page boundary.
    pub fn get_bytes(&self, ctx: &mut ThreadCtx, buf: &mut [u8]) {
        let ps = self.suvm.config().page_size as u64;
        assert!(
            (self.sva % ps) + buf.len() as u64 <= ps,
            "linked access must stay within the page"
        );
        let frame = self.link_now(ctx);
        let in_page = (self.sva % ps) as usize;
        ctx.read_enclave(self.suvm.epcpp_vaddr(frame, in_page), buf);
    }

    /// Writes through the linked fast path (same page-span rule as
    /// [`Self::get_bytes`]), marking the page dirty.
    pub fn set_bytes(&self, ctx: &mut ThreadCtx, data: &[u8]) {
        let ps = self.suvm.config().page_size as u64;
        assert!(
            (self.sva % ps) + data.len() as u64 <= ps,
            "linked access must stay within the page"
        );
        let frame = self.link_now(ctx);
        let in_page = (self.sva % ps) as usize;
        ctx.write_enclave(self.suvm.epcpp_vaddr(frame, in_page), data);
        self.suvm.mark_dirty(frame);
    }

    /// Bulk read starting at this spointer (unlinked path).
    pub fn read_bytes(&self, ctx: &mut ThreadCtx, buf: &mut [u8]) {
        self.suvm.read(ctx, self.sva, buf);
    }

    /// Bulk write starting at this spointer (unlinked path).
    pub fn write_bytes(&self, ctx: &mut ThreadCtx, data: &[u8]) {
        self.suvm.write(ctx, self.sva, data);
    }
}

impl<T: Plain> Clone for SPtr<T> {
    /// Cloning yields an unlinked spointer (paper rule 1: "when
    /// assigning a linked spointer to another spointer, the new
    /// spointer is initialized unlinked").
    fn clone(&self) -> Self {
        SPtr::new(&self.suvm, self.sva)
    }
}

impl<T: Plain> Drop for SPtr<T> {
    /// Dropping unlinks (paper rule 2), unpinning the page.
    fn drop(&mut self) {
        self.unlink();
    }
}

impl<T: Plain> core::fmt::Debug for SPtr<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "SPtr({:#x}{})",
            self.sva,
            if self.is_linked() { ", linked" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SuvmConfig;
    use crate::suvm::Suvm;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    fn rig() -> (Arc<Suvm>, ThreadCtx) {
        let m = SgxMachine::new(MachineConfig::scaled(4));
        let e = m.driver.create_enclave(&m, 4 << 20);
        let t0 = ThreadCtx::for_enclave(&m, &e, 0);
        let s = Suvm::new(&t0, SuvmConfig::tiny());
        let mut t = ThreadCtx::for_enclave(&m, &e, 0);
        t.enter();
        (s, t)
    }

    #[test]
    fn plain_floats_and_wide_ints_roundtrip() {
        let (s, mut t) = rig();
        let sva = s.malloc(64);
        let pf: SPtr<f64> = SPtr::new(&s, sva);
        pf.set(&mut t, -1234.5678);
        assert_eq!(pf.get(&mut t), -1234.5678);
        let pf32: SPtr<f32> = SPtr::new(&s, sva + 8);
        pf32.set(&mut t, 0.25);
        assert_eq!(pf32.get(&mut t), 0.25);
        let pw: SPtr<u128> = SPtr::new(&s, sva + 16);
        pw.set(&mut t, u128::MAX - 7);
        assert_eq!(pw.get(&mut t), u128::MAX - 7);
        t.exit();
    }

    #[test]
    fn cast_reinterprets_bytes() {
        let (s, mut t) = rig();
        let sva = s.malloc(16);
        let p64: SPtr<u64> = SPtr::new(&s, sva);
        p64.set(&mut t, 0x0102_0304_0506_0708);
        let p8: SPtr<u8> = p64.cast();
        assert!(!p8.is_linked(), "cast yields an unlinked spointer");
        assert_eq!(p8.get(&mut t), 0x08, "little endian low byte");
        t.exit();
    }

    #[test]
    fn value_straddling_pages_uses_slow_path() {
        let (s, mut t) = rig();
        let sva = s.malloc(2 * 4096);
        // A u64 placed 4 bytes before a page boundary.
        let p: SPtr<u64> = SPtr::new(&s, sva + 4092);
        p.set(&mut t, 0xfeed_face_cafe_beef);
        assert_eq!(p.get(&mut t), 0xfeed_face_cafe_beef);
        assert!(!p.is_linked(), "straddling values never link");
        t.exit();
    }

    #[test]
    fn explicit_unlink_unpins() {
        let (s, mut t) = rig();
        let sva = s.malloc(4096);
        let p: SPtr<u64> = SPtr::new(&s, sva);
        p.set(&mut t, 5);
        assert!(p.is_linked());
        p.unlink();
        assert!(!p.is_linked());
        // With every spointer unlinked, the page must be evictable.
        while s.evict_one(&mut t) {}
        assert_eq!(s.resident_pages(), 0);
        assert_eq!(p.get(&mut t), 5, "refaults transparently");
        t.exit();
    }

    #[test]
    fn prefetch_populates_up_to_the_cache() {
        let (s, mut t) = rig(); // 16 frames, watermark 2
        let sva = s.malloc(64 * 4096);
        s.prefetch(&mut t, sva, 64 * 4096);
        let resident = s.resident_pages();
        assert!(resident > 0);
        assert!(
            resident <= 16,
            "prefetch must not wrap the cache: {resident}"
        );
        t.exit();
    }

    #[test]
    fn debug_format_mentions_link_state() {
        let (s, mut t) = rig();
        let p: SPtr<u64> = SPtr::new(&s, s.malloc(8));
        assert!(!format!("{p:?}").contains("linked"));
        p.set(&mut t, 1);
        assert!(format!("{p:?}").contains("linked"));
        t.exit();
    }
}
