//! Criterion benchmark of the exit-less RPC ring's real throughput:
//! wall time per operation for synchronous `call()` vs batched
//! `submit_batch()` at increasing in-flight depth, driven through the
//! actual lock-free polling ring (enclave caller thread posting, a
//! dedicated worker thread polling).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use eleos_enclave::machine::{MachineConfig, SgxMachine};
use eleos_enclave::thread::ThreadCtx;
use eleos_rpc::{RpcService, UntrustedFn};

const NOP: u64 = 100;

fn rig(workers: usize) -> (Arc<SgxMachine>, RpcService, ThreadCtx) {
    let m = SgxMachine::new(MachineConfig::scaled(8));
    let cores: Vec<usize> = (0..workers).map(|w| 3 + w).collect();
    let svc = RpcService::builder(&m)
        .register(NOP, UntrustedFn::new(|_c, a| a[0]))
        .workers(workers, &cores)
        .build();
    let e = m.driver.create_enclave(&m, 1 << 20);
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    (m, svc, t)
}

fn bench_rpc_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpc_throughput");

    {
        let (_m, svc, mut t) = rig(1);
        g.throughput(Throughput::Elements(1));
        g.bench_function("sync_call", |b| {
            b.iter(|| black_box(svc.call(&mut t, NOP, [7, 0, 0, 0])));
        });
    }

    for depth in [4usize, 16, 64] {
        let (_m, svc, mut t) = rig(1);
        let reqs = vec![(NOP, [7u64, 0, 0, 0]); depth];
        g.throughput(Throughput::Elements(depth as u64));
        g.bench_function(&format!("batch_{depth}"), |b| {
            b.iter(|| black_box(svc.submit_batch(&mut t, &reqs).wait_all(&mut t)));
        });
    }

    // Two polling workers draining the same ring.
    {
        let depth = 64usize;
        let (_m, svc, mut t) = rig(2);
        let reqs = vec![(NOP, [7u64, 0, 0, 0]); depth];
        g.throughput(Throughput::Elements(depth as u64));
        g.bench_function("batch_64_2workers", |b| {
            b.iter(|| black_box(svc.submit_batch(&mut t, &reqs).wait_all(&mut t)));
        });
    }

    g.finish();
}

criterion_group!(benches, bench_rpc_throughput);
criterion_main!(benches);
