//! Criterion wrappers over the figure kernels at a tiny scale — these
//! track the wall-clock cost of regenerating each experiment (the
//! simulated-cycle results themselves come from `cargo run --bin
//! repro`, one target per table/figure).

use criterion::{criterion_group, criterion_main, Criterion};

use eleos_apps::loadgen::ParamLoad;
use eleos_apps::param_server::TableKind;
use eleos_bench::harness::{run_param_server, Mode, Rig, Scale};

const TINY: Scale = Scale(64);

fn bench_fig1_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_param_server");
    g.sample_size(10);
    for mode in [Mode::Native, Mode::SgxOcall, Mode::EleosSuvm] {
        g.bench_function(mode.label(), |b| {
            b.iter(|| {
                let rig = Rig::new(TINY, mode, 1 << 20, false);
                let mut load = ParamLoad::new(7, 1000, 1, None);
                run_param_server(&rig, TableKind::OpenAddressing, 1000, 200, 20, move || {
                    load.next_plain()
                })
            });
        });
    }
    g.finish();
}

fn bench_fig7_kernel(c: &mut Criterion) {
    use eleos_core::{Suvm, SuvmConfig};
    use eleos_enclave::thread::ThreadCtx;
    let mut g = c.benchmark_group("fig7_suvm_vs_sgx");
    g.sample_size(10);
    g.bench_function("suvm_random_reads", |b| {
        b.iter(|| {
            let m = eleos_bench::harness::paper_machine(TINY);
            let e = m.driver.create_enclave(&m, 4 << 20);
            let t0 = ThreadCtx::for_enclave(&m, &e, 0);
            let s = Suvm::new(
                &t0,
                SuvmConfig {
                    epcpp_bytes: 256 << 10,
                    backing_bytes: 4 << 20,
                    ..SuvmConfig::default()
                },
            );
            let mut t = ThreadCtx::for_enclave(&m, &e, 0);
            t.enter();
            let a = s.malloc(1 << 20);
            let mut buf = [0u8; 4096];
            for i in 0..512u64 {
                s.read(&mut t, a + (i * 97 % 256) * 4096, &mut buf);
            }
            t.exit();
        });
    });
    g.bench_function("sgx_random_reads", |b| {
        b.iter(|| {
            let m = eleos_bench::harness::paper_machine(TINY);
            let e = m.driver.create_enclave(&m, 4 << 20);
            let mut t = ThreadCtx::for_enclave(&m, &e, 0);
            t.enter();
            let a = e.alloc(1 << 20);
            let mut buf = [0u8; 4096];
            for i in 0..512u64 {
                t.read_enclave(a + (i * 97 % 256) * 4096, &mut buf);
            }
            t.exit();
        });
    });
    g.finish();
}

criterion_group!(benches, bench_fig1_kernel, bench_fig7_kernel);
criterion_main!(benches);
