//! Criterion microbenchmarks of the implementation's hot paths (real
//! wall time of this library, as opposed to the simulated cycles the
//! `repro` binary reports).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use eleos_core::{SPtr, Suvm, SuvmConfig};
use eleos_crypto::gcm::AesGcm128;
use eleos_crypto::Sealer;
use eleos_enclave::machine::{MachineConfig, SgxMachine};
use eleos_enclave::thread::ThreadCtx;
use eleos_rpc::{RpcService, UntrustedFn};
use eleos_sim::alloc::BuddyAllocator;
use eleos_sim::costs::AccessKind;
use eleos_sim::llc::{CacheCtx, Llc, LlcConfig};

fn bench_crypto(c: &mut Criterion) {
    let gcm = AesGcm128::new(&[7u8; 16]);
    let mut g = c.benchmark_group("crypto");
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("gcm_seal_4k_page", |b| {
        let mut page = vec![0xa5u8; 4096];
        b.iter(|| {
            let tag = gcm.seal(&[1u8; 12], b"page", black_box(&mut page));
            black_box(tag)
        });
    });
    g.bench_function("gcm_seal_open_1k_subpage", |b| {
        let mut sub = vec![0x5au8; 1024];
        b.iter(|| {
            let tag = gcm.seal(&[2u8; 12], b"sub", &mut sub);
            gcm.open(&[2u8; 12], b"sub", &mut sub, &tag).unwrap();
        });
    });
    g.finish();
}

fn bench_llc(c: &mut Criterion) {
    let mut llc = Llc::new(&LlcConfig::default());
    let mut addr = 0u64;
    c.bench_function("llc_access_line", |b| {
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xfff_ffff;
            black_box(llc.access_line(CacheCtx::Enclave, addr, AccessKind::Read))
        });
    });
}

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy_alloc_free", |b| {
        let mut a = BuddyAllocator::new(1 << 20, 16);
        b.iter(|| {
            let x = a.alloc(100).unwrap();
            a.free(black_box(x)).unwrap();
        });
    });
}

fn suvm_rig() -> (Arc<SgxMachine>, Arc<Suvm>, ThreadCtx) {
    let m = SgxMachine::new(MachineConfig::scaled(8));
    let e = m.driver.create_enclave(&m, 8 << 20);
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let s = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 1 << 20,
            backing_bytes: 8 << 20,
            ..SuvmConfig::default()
        },
    );
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    (m, s, t)
}

fn bench_spointer(c: &mut Criterion) {
    let (_m, s, mut t) = suvm_rig();
    let sva = s.malloc(4096);
    let p: SPtr<u64> = SPtr::new(&s, sva);
    p.set(&mut t, 1);
    c.bench_function("spointer_linked_get", |b| {
        b.iter(|| black_box(p.get(&mut t)));
    });
}

fn bench_suvm_fault(c: &mut Criterion) {
    let (_m, s, mut t) = suvm_rig();
    // 4 MiB working set through a 1 MiB cache: every page read is a
    // major fault + clean eviction.
    let sva = s.malloc(4 << 20);
    s.memset(&mut t, sva, 4 << 20, 1);
    let mut page = 0u64;
    let mut buf = [0u8; 64];
    c.bench_function("suvm_major_fault_roundtrip", |b| {
        b.iter(|| {
            page = (page + 97) % 1024;
            s.read(&mut t, sva + page * 4096, &mut buf);
        });
    });
}

fn bench_rpc(c: &mut Criterion) {
    let m = SgxMachine::new(MachineConfig::scaled(8));
    let svc = RpcService::builder(&m)
        .register(1, UntrustedFn::new(|_c, a| a[0]))
        .workers(1, &[3])
        .build();
    let e = m.driver.create_enclave(&m, 1 << 20);
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    c.bench_function("rpc_roundtrip", |b| {
        b.iter(|| black_box(svc.call(&mut t, 1, [7, 0, 0, 0])));
    });
}

fn bench_containers(c: &mut Criterion) {
    use eleos_core::SHashMap;
    let (_m, s, mut t) = suvm_rig();
    let mut map = SHashMap::new(&s, &mut t, 4096);
    for i in 0..1000u32 {
        map.insert(&mut t, &i.to_le_bytes(), &[7u8; 64]);
    }
    let mut i = 0u32;
    c.bench_function("shashmap_get_hit", |b| {
        b.iter(|| {
            i = (i + 331) % 1000;
            black_box(map.get(&mut t, &i.to_le_bytes()))
        });
    });
}

fn bench_shared_region(c: &mut Criterion) {
    use eleos_core::shared::SharedRegion;
    let m = SgxMachine::new(MachineConfig::scaled(8));
    let e = m.driver.create_enclave(&m, 4 << 20);
    let region = SharedRegion::establish(&m, 4 << 20, [1; 16]);
    let tok = region.join(&e);
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    let buf = tok.alloc(64 << 10);
    tok.write(&mut t, buf, &[5u8; 4096]);
    let mut out = [0u8; 256];
    c.bench_function("shared_region_read_256b", |b| {
        b.iter(|| {
            tok.read(&mut t, buf + 100, &mut out);
            black_box(out[0])
        });
    });
}

fn bench_host_fs(c: &mut Criterion) {
    let m = SgxMachine::new(MachineConfig::scaled(8));
    let mut t = ThreadCtx::untrusted(&m, 0);
    let fd = m.fs.open(&mut t, "/bench");
    let buf = m.alloc_untrusted(4096);
    t.write_untrusted(buf, &[9u8; 4096]);
    m.fs.write(&mut t, fd, buf, 4096).unwrap();
    c.bench_function("host_fs_pread_4k", |b| {
        b.iter(|| {
            m.fs.seek(&mut t, fd, 0).unwrap();
            black_box(m.fs.read(&mut t, fd, buf, 4096).unwrap())
        });
    });
}

criterion_group!(
    benches,
    bench_crypto,
    bench_llc,
    bench_buddy,
    bench_spointer,
    bench_suvm_fault,
    bench_rpc,
    bench_containers,
    bench_shared_region,
    bench_host_fs
);
criterion_main!(benches);
