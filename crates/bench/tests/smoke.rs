//! Smoke tests: every experiment's machinery stays runnable (tiny
//! scale, minimal op counts). The heavyweight ones are exercised via
//! the `repro` binary; these cover the harness plumbing in CI.

use eleos_bench::experiments as exp;
use eleos_bench::harness::Scale;

const TINY: Scale = Scale(16);

#[test]
fn costs_microbench_runs() {
    exp::costs::run(TINY);
}

#[test]
fn table1_runs() {
    exp::table1::run(TINY);
}

#[test]
fn fig2b_runs() {
    exp::fig2::run_2b(TINY);
}

#[test]
fn fig6a_runs() {
    exp::fig6::run_6a(TINY);
}

#[test]
fn fig8a_runs() {
    exp::fig8::run_8a(TINY);
}

#[test]
fn table3_runs() {
    exp::table3::run(TINY);
}

#[test]
fn fig9_runs() {
    exp::fig9::run(TINY);
}

#[test]
fn ablations_run() {
    exp::ablations::run_subpage_sweep(TINY);
    exp::ablations::run_policy_sweep(TINY);
    exp::ablations::run_zipf_sweep(TINY);
    exp::ablations::run_pagesize_sweep(TINY);
}
