//! Direct-cost microbenchmarks (paper §2.2, §2.3 and §6.1.2): the
//! cycle costs of SGX transitions and of hardware vs SUVM page faults,
//! re-measured inside the simulator and compared with the paper.

use eleos_core::{Suvm, SuvmConfig};
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::costs::PAGE_SIZE;

use crate::harness::{header, paper_machine, Scale};

/// Runs and prints all cost microbenchmarks.
pub fn run(scale: Scale) {
    header(
        "costs",
        "direct costs of SGX transitions and page faults",
        "EEXIT+EENTER ~7,100; OCALL ~8,000; syscall ~250; hw fault ~40,000; \
         SUVM fault ~8,500 (read) / ~14,000 (write) cycles",
    );
    let m = paper_machine(scale);
    let e = m.driver.create_enclave(&m, 64 << 20);
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);

    // Enter/exit pair.
    let c0 = t.now();
    let iters = 100;
    for _ in 0..iters {
        t.enter();
        t.exit();
    }
    let roundtrip = (t.now() - c0) / iters;

    // OCALL.
    t.enter();
    let c0 = t.now();
    for _ in 0..iters {
        t.ocall(|_| ());
    }
    let ocall = (t.now() - c0) / iters;
    t.exit();

    // Plain syscall (recv on an empty socket).
    let fd = m.host.socket(&t, 4096);
    let buf = m.alloc_untrusted(64);
    let c0 = t.now();
    for _ in 0..iters {
        let _ = m.host.recv(&mut t, fd, buf, 64);
    }
    let syscall = (t.now() - c0) / iters;

    // Hardware fault, steady state (random sweep beyond EPC).
    let pages = (m.cfg.epc_bytes / PAGE_SIZE) * 2;
    let e2 = m.driver.create_enclave(&m, pages * PAGE_SIZE * 2);
    let mut t = ThreadCtx::for_enclave(&m, &e2, 0);
    t.enter();
    let base = e2.alloc(pages * PAGE_SIZE);
    for p in 0..pages as u64 {
        t.write_enclave(base + p * PAGE_SIZE as u64, &[1u8; 8]);
    }
    let s0 = m.stats.snapshot();
    let c0 = t.now();
    for p in 0..pages as u64 {
        let mut b = [0u8; 8];
        t.read_enclave(base + p * PAGE_SIZE as u64, &mut b);
    }
    let d = m.stats.snapshot() - s0;
    let hw_fault = (t.now() - c0) / d.hw_faults.max(1);
    t.exit();

    // SUVM faults (read-only and write steady states).
    let e3 = m.driver.create_enclave(&m, 64 << 20);
    let t0 = ThreadCtx::for_enclave(&m, &e3, 0);
    let suvm = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: 64 * PAGE_SIZE,
            backing_bytes: 4 << 20,
            ..SuvmConfig::default()
        },
    );
    let mut t = ThreadCtx::for_enclave(&m, &e3, 0);
    t.enter();
    let n_pages = 256u64;
    let a = suvm.malloc((n_pages as usize) * PAGE_SIZE);
    for p in 0..n_pages {
        suvm.write(&mut t, a + p * PAGE_SIZE as u64, &[1u8; PAGE_SIZE]);
    }
    // Read steady state.
    for p in 0..n_pages {
        let mut b = [0u8; 8];
        suvm.read(&mut t, a + p * PAGE_SIZE as u64, &mut b);
    }
    let s0 = m.stats.snapshot();
    let c0 = t.now();
    for p in 0..n_pages {
        let mut b = [0u8; 8];
        suvm.read(&mut t, a + p * PAGE_SIZE as u64, &mut b);
    }
    let d = m.stats.snapshot() - s0;
    let suvm_read = (t.now() - c0) / d.suvm_major_faults.max(1);

    for p in 0..n_pages {
        suvm.write(&mut t, a + p * PAGE_SIZE as u64, &[2u8; 8]);
    }
    let s0 = m.stats.snapshot();
    let c0 = t.now();
    for p in 0..n_pages {
        suvm.write(&mut t, a + p * PAGE_SIZE as u64, &[3u8; 8]);
    }
    let d = m.stats.snapshot() - s0;
    let suvm_write = (t.now() - c0) / d.suvm_major_faults.max(1);
    t.exit();

    println!("   {:<28} {:>10} {:>10}", "operation", "measured", "paper");
    for (name, got, paper) in [
        ("EEXIT+EENTER round trip", roundtrip, 7_100),
        ("OCALL (SDK path)", ocall, 8_000),
        ("plain syscall", syscall, 250),
        ("hw EPC fault (total)", hw_fault, 40_000),
        ("SUVM fault, read", suvm_read, 8_500),
        ("SUVM fault, write", suvm_write, 14_000),
    ] {
        println!("   {name:<28} {got:>10} {paper:>10}");
    }
    println!(
        "   hw/SUVM fault ratio: read {:.1}x, write {:.1}x (paper: ~5x / ~3x)",
        hw_fault as f64 / suvm_read as f64,
        hw_fault as f64 / suvm_write as f64
    );
}
