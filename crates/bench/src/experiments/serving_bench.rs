//! Sharded-serving benchmark: shards x sub-batch policy x load shape
//! x placement (static pinning vs the balance layer), on a
//! cache-resident KVS GET workload so the serving pipeline (reap,
//! crypto, send), not memory, dominates. Emits `BENCH_serving.json`.
//!
//! Two figures of merit per cell:
//!
//! - **busy cycles/op** on the serving core — total measured cycles
//!   minus the idle fast-forwards the load shape inserts between
//!   arrivals, so trickle cells are not billed for waiting on the
//!   load generator.
//! - **p50/p95/p99 cycles of sojourn** — per-op enqueue-to-reap
//!   latency from the timestamps the wire descriptors carry, read out
//!   of the [`sojourn`](eleos_sim::stats::Stats) histogram.
//!
//! The sweep crosses shards ∈ {1, 2, 4} (single-socket merge path vs
//! per-shard pipelines), sub-batch policy ∈ {fixed-1, fixed-8,
//! fixed-32, adaptive} and load shape ∈ {steady, bursty, trickle,
//! skewed, churn}:
//!
//! - **steady** keeps a standing backlog across round-robin
//!   connections (throughput regime: deep batches amortize, adaptive
//!   should ride the ceiling).
//! - **bursty** alternates 64-request bursts with quiet gaps
//!   (adaptive must grow into the burst and decay after it).
//! - **trickle** spaces arrivals a fixed gap apart; a fixed-depth
//!   server waits out a full batch before reaping (the clock
//!   fast-forwards to the last arrival of each group), while adaptive
//!   serves each arrival as it lands — the latency half of the
//!   batching trade-off.
//! - **skewed** draws connections from a Zipf(α=0.99) — most traffic
//!   lands on a handful of connections, so static pinning floods one
//!   shard while its siblings poll empty queues.
//! - **churn** is the same Zipf over a rotating connection population:
//!   the hot set retires every epoch and fresh connections take over,
//!   so yesterday's balance is today's imbalance.
//!
//! The skewed and churn shapes additionally run **balanced** cells at
//! 2 and 4 shards: the balance layer with the default
//! [`BalanceConfig`] (hot-connection re-pinning through a
//! [`ShardMap`] plus sub-batch work stealing). Every cell carries the
//! per-shard gauges (backlog, AIMD depth, steals, migrations,
//! per-shard sojourn p99) so the imbalance — and the balance layer
//! eating it — is visible in the JSON.
//!
//! # Fleet cells
//!
//! A second sweep serves the same steady GET workload through a
//! [`FleetKvs`] — N enclave replicas over one shared socket set, each
//! reaping only its owned shards. The steady fleet cells (replicas ∈
//! {1, 2}) gauge the replication tax: replicas=2 must stay within a
//! few percent busy cycles/op of the single-enclave baseline, since
//! the work is the same and only the ownership partition changed.
//!
//! Two **chaos** cells (replicas = 3) kill one replica at 50% of the
//! run and respawn it at 75%, with the kill fired *mid-backlog* so
//! the outstanding requests see the failover window:
//!
//! - `kill-respawn` runs the fence synchronously: the victim's
//!   snapshot and the heir's restore stall the serving cores, and the
//!   stranded backlog's sojourn eats the whole fence.
//! - `kill-respawn-bg` runs the maintenance plane
//!   ([`FleetKvs::maintenance_tick`] on its own core): the bench
//!   *mutes* the victim (stops pumping it) and the background failure
//!   detector kills it off-path after `hb_miss_threshold` heartbeat-
//!   less ticks; the respawn goes through
//!   [`FleetKvs::request_rejoin`]. The snapshot/restore byte-work
//!   lands on the maintenance core, so the stranded backlog resumes
//!   as soon as the shards move — the failover-window p99 collapses
//!   while busy cycles/op stays put.
//!
//! Both carry `lost_replies` (must be zero — host sockets outlive the
//! enclave and the heir restores the victim's snapshot before reaping
//! its shards), `failover_cycles` / `recovery_cycles` (serving-core
//! fence cost, or maintenance-core cost for the background cell),
//! `maint_chunks` / `hb_misses`, and per-replica served-op counts.
//!
//! # Session cells
//!
//! A third sweep gauges the session lifecycle's serving-path cost on
//! the steady/adaptive/1-shard baseline. The **rekey** cells rotate
//! the epoch key every N served requests (`rekey-inf` never rotates —
//! it is the static-key baseline the others are compared against);
//! every cell carries `rekeys` and `auth_failures`, and both the
//! rotation and the old epoch's drain must lose zero replies. The
//! **revoke** cell runs two independent sessions on separate sockets,
//! revokes one at 50% pushed (its queued traffic is dropped and
//! counted as `auth_failures`), and checks the surviving session
//! loses zero replies.

use std::sync::Arc;

use eleos_apps::fleet_io::{FleetConfig, FleetKvs, MaintenanceConfig};
use eleos_apps::io::{BalanceConfig, ServerIo, ServerIoConfig};
use eleos_apps::kvs::Kvs;
use eleos_apps::loadgen::{shard_for, ChaosAction, ChaosPlan, ConnStream, KvsLoad, ShardMap};
use eleos_crypto::gcm::AesGcm128;
use eleos_crypto::Sealer;
use eleos_enclave::thread::ThreadCtx;

use crate::harness::{header, kops, secs, Mode, Rig, Scale};

/// Items in the KVS table: small enough to stay cache-resident.
const N_ITEMS: u64 = 512;
/// RPC worker threads, constant across cells so the shards axis is
/// the only thing moving.
const WORKERS: usize = 4;
/// Client connections the load generator multiplexes (each pinned to
/// one shard by [`shard_for`], or routed by the balanced cells'
/// [`ShardMap`]).
const N_CONNS: u64 = 64;
/// Ceiling of the adaptive controller and the deepest fixed policy.
const BATCH_MAX: usize = 32;
/// Steady-load feed chunk (a multiple of every fixed depth).
const CHUNK: usize = 256;
/// Bursty-load burst size.
const BURST: usize = 64;
/// Quiet cycles between bursts.
const BURST_QUIET: u64 = 100_000;
/// Cycles between trickle arrivals.
const TRICKLE_GAP: u64 = 20_000;
/// Zipf exponent for the skewed and churn connection streams.
const ZIPF_ALPHA: f64 = 0.99;
/// Arrivals per churn epoch (the hot half of the connection
/// population retires this often). Four feed chunks: long enough
/// that adapting to the current hot set pays off, short enough that
/// a run crosses several rotations.
const CHURN_EPOCH: usize = 4 * CHUNK;

/// Shards the fleet cells run over (fixed so the replicas axis is the
/// only thing moving, and equal to the widest single-enclave cell for
/// the baseline comparison).
const FLEET_SHARDS: usize = 4;
/// Serving cores for the fleet cells: one per replica, avoiding the
/// load-generator core (2) and the RPC worker cores (7..4).
const FLEET_CORES: [usize; 3] = [0, 1, 3];
/// Core the background maintenance plane runs on. It shares the
/// load generator's core — never a serving core — which is safe
/// because arrivals are stamped explicitly from [`FleetKvs::
/// sync_clocks`] time, not from core 2's clock.
const MAINT_CORE: usize = 2;
/// Requests served between chaos-action checks inside a chunk's
/// backlog — the kill fires with `CHUNK - PACE` requests outstanding,
/// identically for the synchronous and background cells.
const PACE: usize = 32;

/// One measured cell of the sweep.
struct Cell {
    shards: usize,
    policy: String,
    load: &'static str,
    balance: &'static str,
    /// Enclave replicas serving the cell (1 = the single-enclave
    /// pipeline; >1 = the fleet tier).
    replicas: usize,
    /// `"none"` or the chaos schedule label.
    chaos: &'static str,
    /// Requests pushed minus replies received — must be zero even
    /// across a kill/respawn.
    lost_replies: u64,
    /// Serving-core cycles spent in kill-fence failovers.
    failover_cycles: u64,
    /// Serving-core cycles from respawn to the rejoined replica
    /// serving again.
    recovery_cycles: u64,
    /// Requests served per replica (empty for single-enclave cells).
    replica_ops: Vec<u64>,
    /// Delta-snapshot chunks the maintenance plane streamed.
    maint_chunks: u64,
    /// Heartbeat misses the background failure detector counted.
    hb_misses: u64,
    /// Session-key epoch rotations during the measured phase.
    rekeys: u64,
    /// Messages dropped unserved (revoked session or unknown epoch).
    auth_failures: u64,
    ops: usize,
    busy_cycles_per_op: f64,
    throughput_ops_s: f64,
    sojourn_p50: u64,
    sojourn_p95: u64,
    sojourn_p99: u64,
    sojourn_count: u64,
    rpc_batches: u64,
    /// Per-shard gauges, `shards` entries each.
    shard_backlog: Vec<u64>,
    shard_depth: Vec<u64>,
    steals_taken: Vec<u64>,
    steals_given: Vec<u64>,
    migrations: Vec<u64>,
    shard_sojourn_p99: Vec<u64>,
}

/// The sub-batch sizing policies under test.
fn policies() -> Vec<(String, ServerIoConfig)> {
    let base = || ServerIoConfig::with_buf_len(64 << 10).async_send(false);
    let mut out: Vec<(String, ServerIoConfig)> = [1usize, 8, BATCH_MAX]
        .iter()
        .map(|&b| (format!("fixed-{b}"), base().batch(b)))
        .collect();
    out.push(("adaptive".to_owned(), base().adaptive(1, BATCH_MAX)));
    out
}

/// The connection stream a load shape draws arrivals from.
fn conn_stream(load: &str) -> ConnStream {
    match load {
        "skewed" => ConnStream::skewed(41, N_CONNS, ZIPF_ALPHA),
        "churn" => ConnStream::churn(43, N_CONNS, CHURN_EPOCH),
        _ => ConnStream::round_robin(N_CONNS),
    }
}

/// Runs one (shards, policy, load, placement) cell.
fn cell(
    scale: Scale,
    shards: usize,
    policy: &str,
    cfg: ServerIoConfig,
    load: &'static str,
    balanced: bool,
    quick: bool,
) -> Cell {
    let rig = Rig::with_workers(scale, Mode::EleosRpc, 4 << 20, false, WORKERS);
    let mut ctx = rig.thread(0);
    let mut kvs = Kvs::new(rig.data_space(), rig.data_space(), 64 << 20, 1 << 10);
    kvs.init(&mut ctx);
    let mut gen = KvsLoad::new(31, N_ITEMS, 16, 32);
    for i in 0..N_ITEMS {
        kvs.set(&mut ctx, &gen.key(i), &gen.value(i));
    }
    let fds = rig.socket_set(shards);
    let map = balanced.then(|| ShardMap::new(shards));
    let io = match &map {
        Some(m) => rig.server_io_balanced(
            &ctx,
            &fds,
            cfg.clone()
                .shards(shards)
                .balanced(BalanceConfig::default()),
            m,
        ),
        None => rig.server_io_sharded(&ctx, &fds, cfg.clone().shards(shards)),
    };

    // The load generator lives on another core; arrivals are stamped
    // on the serving core's timebase so sojourn is one clock.
    let ut = ThreadCtx::untrusted(&rig.machine, 2);
    let machine = Arc::clone(&rig.machine);
    let wire = Arc::clone(&rig.session);
    let mut stream = conn_stream(load);
    let mut push = |stamp: u64| {
        let (_, plain) = gen.get_plain();
        let conn = stream.next();
        let s = match &map {
            Some(m) => m.route(conn),
            None => shard_for(conn, fds.len()),
        };
        machine
            .host
            .push_request_at(&ut, fds[s], &wire.encrypt(&plain), stamp);
    };
    let ops = match load {
        "steady" => scale.ops(if quick { 512 } else { 2048 }) / CHUNK * CHUNK,
        // The skewed and churn shapes need several feed chunks per
        // run: re-pinning moves only *future* arrivals, so its win
        // shows up one chunk after the decision, and a one-chunk run
        // would measure pure overhead.
        "skewed" | "churn" => {
            (scale.ops(if quick { 2048 } else { 8192 }) / CHUNK * CHUNK).max(2 * CHURN_EPOCH)
        }
        "bursty" => scale.ops(if quick { 256 } else { 1024 }) / BURST * BURST,
        "trickle" => scale.ops(if quick { 128 } else { 512 }) / BATCH_MAX * BATCH_MAX,
        other => panic!("unknown load shape {other}"),
    }
    .max(CHUNK);
    // A fixed-depth server waits out a full batch before reaping; the
    // adaptive (and fixed-1) server reaps every arrival as it lands.
    let group = cfg_group(&io);

    // One shape iteration serving `n` ops; returns idle fast-forward
    // cycles inserted (waiting on arrivals, not work).
    let mut run_shape = |ctx: &mut ThreadCtx, n: usize| -> u64 {
        // Drains `q` queued requests through the server.
        let drain = |ctx: &mut ThreadCtx, kvs: &mut Kvs, q: usize| {
            let mut done = 0usize;
            while done < q {
                let got = kvs.handle_batch(ctx, &io);
                assert!(got > 0, "queued requests must be served");
                done += got;
            }
        };
        match load {
            // Throughput regime: a standing backlog per feed chunk.
            // The skewed and churn shapes differ only in which
            // connections (and therefore shards) the chunk lands on.
            "steady" | "skewed" | "churn" => {
                let mut served = 0usize;
                while served < n {
                    let c = (n - served).min(CHUNK);
                    let now = ctx.now();
                    for _ in 0..c {
                        push(now);
                    }
                    drain(ctx, &mut kvs, c);
                    served += c;
                }
                0
            }
            "bursty" => {
                let mut idle = 0u64;
                let mut served = 0usize;
                while served < n {
                    let c = (n - served).min(BURST);
                    let now = ctx.now();
                    for _ in 0..c {
                        push(now);
                    }
                    drain(ctx, &mut kvs, c);
                    // Quiet gap: the server keeps polling (empty
                    // reaps decay the adaptive depth) while the
                    // clock idles forward.
                    for _ in 0..2 {
                        let ff = BURST_QUIET / 2;
                        ctx.compute(ff);
                        idle += ff;
                        assert_eq!(kvs.handle_batch(ctx, &io), 0, "quiet gap is quiet");
                    }
                    served += c;
                }
                idle
            }
            "trickle" => {
                let mut idle = 0u64;
                let mut served = 0usize;
                while served < n {
                    let g = group.min(n - served);
                    let base = ctx.now();
                    for j in 0..g {
                        push(base + (j as u64 + 1) * TRICKLE_GAP);
                    }
                    // Wait out the arrivals: a full group for the
                    // fixed depths, one gap for adaptive.
                    let ff = (base + g as u64 * TRICKLE_GAP).saturating_sub(ctx.now());
                    ctx.compute(ff);
                    idle += ff;
                    drain(ctx, &mut kvs, g);
                    served += g;
                }
                idle
            }
            other => panic!("unknown load shape {other}"),
        }
    };

    // Warm-up (fills caches, settles the adaptive depth), then the
    // measured phase.
    run_shape(&mut ctx, CHUNK);
    rig.machine.reset_counters();
    let c0 = ctx.now();
    let idle = run_shape(&mut ctx, ops);
    let busy = (ctx.now() - c0).saturating_sub(idle);
    io.flush(&mut ctx);
    let d = rig.machine.stats.snapshot();
    ctx.exit();
    let sh = &d.shard.replica[0];
    Cell {
        shards,
        policy: policy.to_owned(),
        load,
        balance: if balanced { "balanced" } else { "static" },
        replicas: 1,
        chaos: "none",
        lost_replies: 0,
        failover_cycles: 0,
        recovery_cycles: 0,
        replica_ops: Vec::new(),
        maint_chunks: d.maint_chunks,
        hb_misses: d.hb_misses,
        rekeys: d.rekeys,
        auth_failures: d.auth_failures,
        ops,
        busy_cycles_per_op: busy as f64 / ops as f64,
        throughput_ops_s: ops as f64 / secs(busy.max(1)),
        sojourn_p50: d.sojourn.p50(),
        sojourn_p95: d.sojourn.p95(),
        sojourn_p99: d.sojourn.p99(),
        sojourn_count: d.sojourn.count(),
        rpc_batches: d.rpc_batches,
        shard_backlog: sh.backlog[..shards].to_vec(),
        shard_depth: sh.depth[..shards].to_vec(),
        steals_taken: sh.steals_taken[..shards].to_vec(),
        steals_given: sh.steals_given[..shards].to_vec(),
        migrations: sh.migrations[..shards].to_vec(),
        shard_sojourn_p99: sh.sojourn[..shards].iter().map(|h| h.p99()).collect(),
    }
}

/// Runs one fleet cell: `replicas` enclaves over [`FLEET_SHARDS`]
/// shared sockets on the steady load. `chaos` is `"none"`,
/// `"kill-respawn"` (synchronous fence at the serving cores) or
/// `"kill-respawn-bg"` (the maintenance plane's failure detector and
/// rejoin queue, off the serving path); both chaos schedules fire the
/// kill mid-backlog so the outstanding requests see the failover
/// window.
fn fleet_cell(
    scale: Scale,
    replicas: usize,
    policy: &str,
    cfg: ServerIoConfig,
    chaos: &'static str,
    quick: bool,
) -> Cell {
    let background = chaos == "kill-respawn-bg";
    let rig = Rig::with_workers(scale, Mode::EleosRpc, 4 << 20, false, WORKERS);
    let fds = rig.socket_set(FLEET_SHARDS);
    let sealer: Arc<dyn Sealer> = Arc::new(AesGcm128::new(&[0x2au8; 16]));
    let mut fleet_cfg = FleetConfig::small(replicas).on_cores(&FLEET_CORES[..replicas]);
    if background {
        fleet_cfg = fleet_cfg.with_maintenance(MaintenanceConfig {
            core: MAINT_CORE,
            hb_miss_threshold: 3,
            chunk_bytes: 32 << 10,
        });
    }
    let fk = FleetKvs::new(
        &rig.machine,
        &fds,
        cfg.shards(FLEET_SHARDS),
        rig.io_path(),
        Arc::clone(&rig.session),
        sealer,
        fleet_cfg,
        |ctx, kvs| {
            let g = KvsLoad::new(31, N_ITEMS, 16, 32);
            for i in 0..N_ITEMS {
                kvs.set(ctx, &g.key(i), &g.value(i));
            }
        },
    );
    let mut gen = KvsLoad::new(31, N_ITEMS, 16, 32);
    let mut stream = ConnStream::round_robin(N_CONNS);
    let ut = ThreadCtx::untrusted(&rig.machine, 2);
    let machine = Arc::clone(&rig.machine);
    let wire = Arc::clone(&rig.session);
    let map = Arc::clone(fk.map());
    let mut push = |stamp: u64| {
        let (_, plain) = gen.get_plain();
        let conn = stream.next();
        let (s, _owner) = map.route_replica(conn);
        machine
            .host
            .push_request_at(&ut, fds[s], &wire.encrypt(&plain), stamp);
    };
    let ops = (scale.ops(if quick { 512 } else { 2048 }) / CHUNK * CHUNK).max(4 * CHUNK);
    // The marks land `PACE` requests into a chunk's drain, so the
    // rest of the chunk is still outstanding when the action fires —
    // identically for both chaos variants.
    let mut plan = (chaos != "none")
        .then(|| ChaosPlan::kill_respawn(replicas - 1, ops / 2 + PACE, ops * 3 / 4 + PACE));
    // Reaps every retained reply off the sockets (the host's tx log
    // is a bounded ring, so the client must keep up) and checks each
    // still authenticates — after a failover the heir serves under
    // the same wire session.
    let reap_replies = |count: &mut u64| {
        for &fd in &fds {
            while let Some(resp) = machine.host.pop_response(fd) {
                let _ = wire.decrypt(&resp);
                *count += 1;
            }
        }
    };
    // Warm-up; its replies are reaped and discarded so the lost-reply
    // count covers exactly the measured phase. Each chunk starts at a
    // clock barrier: all replica cores idle forward to the stamping
    // core's time, so per-op sojourn stays on one timebase and the
    // run's span is the bottleneck core's path (replicas serve their
    // shard slices concurrently).
    let mut warmup_replies = 0u64;
    {
        let now = fk.sync_clocks();
        for _ in 0..CHUNK {
            push(now);
        }
        let mut done = 0usize;
        while done < CHUNK {
            let got = fk.pump();
            assert!(got > 0, "queued requests must be served");
            done += got;
            reap_replies(&mut warmup_replies);
        }
    }
    fk.flush();
    reap_replies(&mut warmup_replies);
    rig.machine.reset_counters();
    let t0 = fk.sync_clocks();
    let (mut failover_cycles, mut recovery_cycles) = (0u64, 0u64);
    let mut replies = 0u64;
    // Replicas the chaos schedule has muted: the bench stops pumping
    // them, their heartbeat stalls, and the background failure
    // detector fails them over — the kill reaches the fleet through
    // the plane, not the load loop.
    let mut muted: Vec<usize> = Vec::new();
    let mut pushed = 0usize;
    while pushed < ops {
        let c = (ops - pushed).min(CHUNK);
        let now = fk.sync_clocks();
        for _ in 0..c {
            push(now);
        }
        let base = pushed;
        pushed += c;
        let mut done = 0usize;
        let mut stuck = 0u32;
        while done < c {
            if let Some(p) = &mut plan {
                for action in p.take_due(base + done) {
                    match action {
                        ChaosAction::Kill(v) => {
                            if background {
                                muted.push(v);
                            } else {
                                failover_cycles += fk.kill(v).cycles;
                            }
                        }
                        ChaosAction::Respawn(v) => {
                            if background {
                                muted.retain(|&r| r != v);
                                fk.request_rejoin(v);
                            } else {
                                recovery_cycles += fk.respawn(v).cycles;
                            }
                        }
                    }
                }
            }
            let got: usize = (0..replicas)
                .filter(|r| !muted.contains(r))
                .map(|r| fk.pump_replica(r))
                .sum();
            done += got;
            reap_replies(&mut replies);
            if got == 0 {
                // The rest of the backlog sits on the muted victim's
                // shards: only a maintenance tick (detector kill +
                // shard handoff) can unstick it.
                assert!(background, "queued requests must be served");
                stuck += 1;
                assert!(stuck < 1024, "backlog stuck without maintenance progress");
                fk.maintenance_tick();
            } else {
                stuck = 0;
            }
        }
        if background {
            // Steady-state plane cadence: one tick per chunk keeps
            // the delta rounds streaming and queued rejoins timely.
            fk.maintenance_tick();
        }
    }
    fk.flush();
    reap_replies(&mut replies);
    if background {
        failover_cycles = fk.auto_failover_cycles();
        recovery_cycles = fk.auto_recovery_cycles();
    }
    // Barrier again so busy covers the slowest replica's path: with
    // per-replica cores the fleet's wall-clock is the bottleneck core.
    let busy = fk.sync_clocks() - t0;
    let d = rig.machine.stats.snapshot();
    let sh = &d.shard.replica[0];
    Cell {
        shards: FLEET_SHARDS,
        policy: policy.to_owned(),
        load: "steady",
        balance: "static",
        replicas,
        chaos,
        lost_replies: ops as u64 - replies,
        failover_cycles,
        recovery_cycles,
        replica_ops: (0..replicas)
            .map(|r| {
                (0..FLEET_SHARDS)
                    .map(|s| d.shard.replica[r].sojourn[s].count())
                    .sum()
            })
            .collect(),
        maint_chunks: d.maint_chunks,
        hb_misses: d.hb_misses,
        rekeys: d.rekeys,
        auth_failures: d.auth_failures,
        ops,
        busy_cycles_per_op: busy as f64 / ops as f64,
        throughput_ops_s: ops as f64 / secs(busy.max(1)),
        sojourn_p50: d.sojourn.p50(),
        sojourn_p95: d.sojourn.p95(),
        sojourn_p99: d.sojourn.p99(),
        sojourn_count: d.sojourn.count(),
        rpc_batches: d.rpc_batches,
        shard_backlog: sh.backlog[..FLEET_SHARDS].to_vec(),
        shard_depth: sh.depth[..FLEET_SHARDS].to_vec(),
        steals_taken: sh.steals_taken[..FLEET_SHARDS].to_vec(),
        steals_given: sh.steals_given[..FLEET_SHARDS].to_vec(),
        migrations: sh.migrations[..FLEET_SHARDS].to_vec(),
        shard_sojourn_p99: sh.sojourn[..FLEET_SHARDS].iter().map(|h| h.p99()).collect(),
    }
}

/// Runs one rekey cell: the steady/adaptive/1-shard baseline with the
/// session key rotating every `interval` served requests (never, for
/// `None` — the static-key reference). The client reaps and decrypts
/// each chunk's replies while their epoch is still inside the
/// session's two-slot key buffer, and the cell's `lost_replies` must
/// come out zero: rotation never stalls or drops the serving path.
fn rekey_cell(scale: Scale, chaos: &'static str, interval: Option<u64>, quick: bool) -> Cell {
    let rig = Rig::with_workers(scale, Mode::EleosRpc, 4 << 20, false, WORKERS);
    let mut ctx = rig.thread(0);
    let mut kvs = Kvs::new(rig.data_space(), rig.data_space(), 64 << 20, 1 << 10);
    kvs.init(&mut ctx);
    let mut gen = KvsLoad::new(31, N_ITEMS, 16, 32);
    for i in 0..N_ITEMS {
        kvs.set(&mut ctx, &gen.key(i), &gen.value(i));
    }
    let fds = rig.socket_set(1);
    let mut cfg = ServerIoConfig::with_buf_len(64 << 10)
        .async_send(false)
        .adaptive(1, BATCH_MAX);
    if let Some(n) = interval {
        cfg = cfg.rekey_every(n);
    }
    let io = rig.server_io_sharded(&ctx, &fds, cfg);
    let ut = ThreadCtx::untrusted(&rig.machine, 2);
    let machine = Arc::clone(&rig.machine);
    let wire = Arc::clone(&rig.session);
    let mut stream = conn_stream("steady");
    let reap_replies = |count: &mut u64| {
        while let Some(resp) = machine.host.pop_response(fds[0]) {
            let _ = wire.decrypt(&resp);
            *count += 1;
        }
    };
    let ops = scale
        .ops(if quick { 512 } else { 2048 })
        .max(CHUNK)
        .next_multiple_of(CHUNK);
    let mut run_chunk = |ctx: &mut ThreadCtx, n: usize, replies: &mut u64| {
        let now = ctx.now();
        for _ in 0..n {
            let (_, plain) = gen.get_plain();
            let _ = stream.next();
            machine
                .host
                .push_request_at(&ut, fds[0], &wire.encrypt(&plain), now);
        }
        let mut done = 0usize;
        while done < n {
            let got = kvs.handle_batch(ctx, &io);
            assert!(got > 0, "queued requests must be served");
            done += got;
            // The host's tx log is a bounded ring: the client keeps up,
            // decrypting while the reply's epoch is still buffered.
            reap_replies(replies);
        }
        io.flush(ctx);
        reap_replies(replies);
    };
    let mut warmup = 0u64;
    run_chunk(&mut ctx, CHUNK, &mut warmup);
    rig.machine.reset_counters();
    let c0 = ctx.now();
    let mut replies = 0u64;
    let mut pushed = 0usize;
    while pushed < ops {
        let c = (ops - pushed).min(CHUNK);
        run_chunk(&mut ctx, c, &mut replies);
        pushed += c;
    }
    let busy = ctx.now() - c0;
    let d = rig.machine.stats.snapshot();
    ctx.exit();
    let sh = &d.shard.replica[0];
    Cell {
        shards: 1,
        policy: "adaptive".to_owned(),
        load: "steady",
        balance: "static",
        replicas: 1,
        chaos,
        lost_replies: ops as u64 - replies,
        failover_cycles: 0,
        recovery_cycles: 0,
        replica_ops: Vec::new(),
        maint_chunks: d.maint_chunks,
        hb_misses: d.hb_misses,
        rekeys: d.rekeys,
        auth_failures: d.auth_failures,
        ops,
        busy_cycles_per_op: busy as f64 / ops as f64,
        throughput_ops_s: ops as f64 / secs(busy.max(1)),
        sojourn_p50: d.sojourn.p50(),
        sojourn_p95: d.sojourn.p95(),
        sojourn_p99: d.sojourn.p99(),
        sojourn_count: d.sojourn.count(),
        rpc_batches: d.rpc_batches,
        shard_backlog: sh.backlog[..1].to_vec(),
        shard_depth: sh.depth[..1].to_vec(),
        steals_taken: sh.steals_taken[..1].to_vec(),
        steals_given: sh.steals_given[..1].to_vec(),
        shard_sojourn_p99: sh.sojourn[..1].iter().map(|h| h.p99()).collect(),
        migrations: sh.migrations[..1].to_vec(),
    }
}

/// Runs the revocation chaos cell: two independent sessions (A, the
/// rig's attested session, and B, a second session on its own socket)
/// serve interleaved steady traffic; at 50% pushed, B's freshly queued
/// chunk is revoked — [`ServerIo::revoke`] kills its shard slot and
/// drops the queued traffic as `auth_failures` — and A serves the rest
/// of the run alone. `lost_replies` counts only the surviving
/// session's deficit and must come out zero.
fn revoke_cell(scale: Scale, quick: bool) -> Cell {
    let rig = Rig::with_workers(scale, Mode::EleosRpc, 4 << 20, false, WORKERS);
    let mut ctx = rig.thread(0);
    let mut kvs = Kvs::new(rig.data_space(), rig.data_space(), 64 << 20, 1 << 10);
    kvs.init(&mut ctx);
    let mut gen = KvsLoad::new(31, N_ITEMS, 16, 32);
    for i in 0..N_ITEMS {
        kvs.set(&mut ctx, &gen.key(i), &gen.value(i));
    }
    let fds = rig.socket_set(2);
    let base = || {
        ServerIoConfig::with_buf_len(64 << 10)
            .async_send(false)
            .adaptive(1, BATCH_MAX)
    };
    let io_a = rig.server_io_sharded(&ctx, &fds[..1], base());
    let session_b = Arc::new(eleos_apps::wire::Session::established([0x5bu8; 16]));
    let io_b = base().build(&ctx, &fds[1..], rig.io_path(), Arc::clone(&session_b));
    let ut = ThreadCtx::untrusted(&rig.machine, 2);
    let machine = Arc::clone(&rig.machine);
    let wire_a = Arc::clone(&rig.session);
    let ops = scale
        .ops(if quick { 512 } else { 2048 })
        .max(2 * CHUNK)
        .next_multiple_of(2 * CHUNK);
    let half = CHUNK / 2;
    let mut a_pushed = 0u64;
    let mut a_replies = 0u64;
    let mut b_served = 0u64;
    let reap_a = |count: &mut u64| {
        while let Some(resp) = machine.host.pop_response(fds[0]) {
            let _ = wire_a.decrypt(&resp);
            *count += 1;
        }
    };
    // One warm-up chunk on each session.
    for (io, session, fd) in [(&io_a, &wire_a, fds[0]), (&io_b, &session_b, fds[1])] {
        let now = ctx.now();
        for _ in 0..half {
            let (_, plain) = gen.get_plain();
            machine
                .host
                .push_request_at(&ut, fd, &session.encrypt(&plain), now);
        }
        let mut done = 0usize;
        while done < half {
            done += kvs.handle_batch(&mut ctx, io);
            while machine.host.pop_response(fd).is_some() {}
        }
        io.flush(&mut ctx);
    }
    while machine.host.pop_response(fds[0]).is_some() {}
    while machine.host.pop_response(fds[1]).is_some() {}
    rig.machine.reset_counters();
    let c0 = ctx.now();
    let mut pushed = 0usize;
    let mut revoked = false;
    while pushed < ops {
        let now = ctx.now();
        if !revoked {
            // Interleaved halves: A and B each get half a chunk.
            for fifty in 0..2usize {
                let (session, fd): (&Arc<eleos_apps::wire::Session>, _) = if fifty == 0 {
                    (&wire_a, fds[0])
                } else {
                    (&session_b, fds[1])
                };
                for _ in 0..half {
                    let (_, plain) = gen.get_plain();
                    machine
                        .host
                        .push_request_at(&ut, fd, &session.encrypt(&plain), now);
                }
            }
            a_pushed += half as u64;
            let mut done = 0usize;
            while done < half {
                done += kvs.handle_batch(&mut ctx, &io_a);
                reap_a(&mut a_replies);
            }
            let mut done = 0usize;
            while done < half {
                done += kvs.handle_batch(&mut ctx, &io_b);
                // B's client keeps up with its replies too (the host's
                // tx log is a bounded ring).
                while let Some(resp) = machine.host.pop_response(fds[1]) {
                    let _ = session_b.decrypt(&resp);
                }
            }
            b_served += half as u64;
            io_a.flush(&mut ctx);
            io_b.flush(&mut ctx);
            while let Some(resp) = machine.host.pop_response(fds[1]) {
                let _ = session_b.decrypt(&resp);
            }
            pushed += 2 * half;
        } else {
            for _ in 0..CHUNK.min(ops - pushed) {
                let (_, plain) = gen.get_plain();
                machine
                    .host
                    .push_request_at(&ut, fds[0], &wire_a.encrypt(&plain), now);
            }
            let c = CHUNK.min(ops - pushed);
            a_pushed += c as u64;
            let mut done = 0usize;
            while done < c {
                done += kvs.handle_batch(&mut ctx, &io_a);
                reap_a(&mut a_replies);
            }
            io_a.flush(&mut ctx);
            pushed += c;
        }
        reap_a(&mut a_replies);
        if !revoked && pushed >= ops / 2 {
            // Mid-run revocation: B's client pushes one more chunk that
            // the revoked slot must drop, not serve.
            let now = ctx.now();
            for _ in 0..half {
                let (_, plain) = gen.get_plain();
                machine
                    .host
                    .push_request_at(&ut, fds[1], &session_b.encrypt(&plain), now);
            }
            let dropped = io_b.revoke(&mut ctx);
            assert_eq!(dropped, half, "revocation drops the queued chunk");
            revoked = true;
        }
    }
    io_a.flush(&mut ctx);
    reap_a(&mut a_replies);
    let busy = ctx.now() - c0;
    let d = rig.machine.stats.snapshot();
    ctx.exit();
    assert!(revoked, "the schedule must fire the revocation");
    let sh = &d.shard.replica[0];
    Cell {
        shards: 1,
        policy: "adaptive".to_owned(),
        load: "steady",
        balance: "static",
        replicas: 1,
        chaos: "revoke",
        lost_replies: a_pushed - a_replies,
        failover_cycles: 0,
        recovery_cycles: 0,
        replica_ops: vec![a_pushed, b_served],
        maint_chunks: d.maint_chunks,
        hb_misses: d.hb_misses,
        rekeys: d.rekeys,
        auth_failures: d.auth_failures,
        ops: pushed,
        busy_cycles_per_op: busy as f64 / pushed as f64,
        throughput_ops_s: pushed as f64 / secs(busy.max(1)),
        sojourn_p50: d.sojourn.p50(),
        sojourn_p95: d.sojourn.p95(),
        sojourn_p99: d.sojourn.p99(),
        sojourn_count: d.sojourn.count(),
        rpc_batches: d.rpc_batches,
        shard_backlog: sh.backlog[..1].to_vec(),
        shard_depth: sh.depth[..1].to_vec(),
        steals_taken: sh.steals_taken[..1].to_vec(),
        steals_given: sh.steals_given[..1].to_vec(),
        migrations: sh.migrations[..1].to_vec(),
        shard_sojourn_p99: sh.sojourn[..1].iter().map(|h| h.p99()).collect(),
    }
}

/// The group size a fixed-depth server batches arrivals into (its
/// fixed depth), or 1 for the adaptive policy.
fn cfg_group(io: &ServerIo) -> usize {
    if io.cfg.is_adaptive() {
        1
    } else {
        io.cfg.batch
    }
}

/// Renders a `[a, b, c]` JSON array of numbers.
fn json_array(v: &[u64]) -> String {
    let items: Vec<String> = v.iter().map(u64::to_string).collect();
    format!("[{}]", items.join(", "))
}

/// Runs the sweep, prints a table per load shape, and writes
/// `BENCH_serving.json`. `quick` trims the op counts for CI smoke
/// runs.
pub fn run(scale: Scale, quick: bool) {
    header(
        "serving_bench",
        "shards x sub-batch policy x load shape x placement, cache-resident KVS GETs",
        "sharding drops the merge/reorder tax; adaptive depth rides the throughput \
         ceiling on steady load and the latency floor on trickle load; re-pinning \
         and stealing keep every shard productive under skewed and churning load",
    );
    let mut cells: Vec<Cell> = Vec::new();
    for load in ["steady", "bursty", "trickle", "skewed", "churn"] {
        println!(
            "   {:<8} {:<8} {:>6} {:>9} {:>12} {:>10} {:>10} {:>10} {:>10}",
            "load", "policy", "shards", "balance", "busy c/op", "ops/s", "p50", "p95", "p99"
        );
        // The balance layer only matters (and only engages its steal
        // and re-pin machinery) on multi-shard skew, so the balanced
        // leg runs on the two shapes built to produce it.
        let balanced_shards: &[usize] = if matches!(load, "skewed" | "churn") {
            &[2, 4]
        } else {
            &[]
        };
        for (policy, cfg) in policies() {
            for (shards, balanced) in [1usize, 2, 4]
                .iter()
                .map(|&s| (s, false))
                .chain(balanced_shards.iter().map(|&s| (s, true)))
            {
                let c = cell(scale, shards, &policy, cfg.clone(), load, balanced, quick);
                println!(
                    "   {:<8} {:<8} {:>6} {:>9} {:>12.0} {:>10} {:>10} {:>10} {:>10}",
                    c.load,
                    c.policy,
                    c.shards,
                    c.balance,
                    c.busy_cycles_per_op,
                    kops(c.throughput_ops_s),
                    c.sojourn_p50,
                    c.sojourn_p95,
                    c.sojourn_p99,
                );
                cells.push(c);
            }
        }
    }

    // Fleet sweep: the replicas axis on the steady load, plus the
    // chaos cell.
    println!(
        "   {:<8} {:<8} {:>8} {:>14} {:>12} {:>10} {:>6} {:>10} {:>10}",
        "fleet",
        "policy",
        "replicas",
        "chaos",
        "busy c/op",
        "ops/s",
        "lost",
        "failover",
        "recovery"
    );
    for (policy, cfg) in policies() {
        if !matches!(policy.as_str(), "fixed-8" | "adaptive") {
            continue;
        }
        for (replicas, chaos) in [
            (1usize, "none"),
            (2, "none"),
            (3, "kill-respawn"),
            (3, "kill-respawn-bg"),
        ] {
            if chaos != "none" && policy != "adaptive" {
                continue;
            }
            let c = fleet_cell(scale, replicas, &policy, cfg.clone(), chaos, quick);
            println!(
                "   {:<8} {:<8} {:>8} {:>14} {:>12.0} {:>10} {:>6} {:>10} {:>10}",
                "steady",
                c.policy,
                c.replicas,
                c.chaos,
                c.busy_cycles_per_op,
                kops(c.throughput_ops_s),
                c.lost_replies,
                c.failover_cycles,
                c.recovery_cycles,
            );
            assert_eq!(c.lost_replies, 0, "a failover must not lose replies");
            if chaos == "kill-respawn-bg" {
                assert!(
                    c.maint_chunks > 0,
                    "the maintenance plane must stream delta chunks"
                );
                assert!(
                    c.hb_misses > 0,
                    "the failure detector must observe the muted victim"
                );
            }
            cells.push(c);
        }
    }

    // Session sweep: epoch rotation intervals on the steady/adaptive/
    // 1-shard baseline, plus the mid-run revocation cell.
    println!(
        "   {:<8} {:<12} {:>12} {:>10} {:>8} {:>6} {:>6}",
        "session", "chaos", "busy c/op", "ops/s", "rekeys", "auth", "lost"
    );
    for (label, interval) in [
        ("rekey-inf", None),
        ("rekey-4096", Some(4096u64)),
        ("rekey-1024", Some(1024)),
        ("rekey-256", Some(256)),
    ] {
        let c = rekey_cell(scale, label, interval, quick);
        println!(
            "   {:<8} {:<12} {:>12.0} {:>10} {:>8} {:>6} {:>6}",
            "steady",
            c.chaos,
            c.busy_cycles_per_op,
            kops(c.throughput_ops_s),
            c.rekeys,
            c.auth_failures,
            c.lost_replies,
        );
        assert_eq!(c.lost_replies, 0, "epoch rotation must not lose replies");
        assert_eq!(c.auth_failures, 0, "the old epoch must drain, not drop");
        cells.push(c);
    }
    let c = revoke_cell(scale, quick);
    println!(
        "   {:<8} {:<12} {:>12.0} {:>10} {:>8} {:>6} {:>6}",
        "steady",
        c.chaos,
        c.busy_cycles_per_op,
        kops(c.throughput_ops_s),
        c.rekeys,
        c.auth_failures,
        c.lost_replies,
    );
    assert_eq!(
        c.lost_replies, 0,
        "the surviving session must lose zero replies"
    );
    assert!(
        c.auth_failures > 0,
        "the revoked session's queued traffic must be dropped and counted"
    );
    cells.push(c);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serving_sharded\",\n");
    json.push_str(&format!("  \"scale\": {},\n", scale.0));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"load\": \"{}\", \"policy\": \"{}\", \"shards\": {}, \
             \"balance\": \"{}\", \"replicas\": {}, \"chaos\": \"{}\", \"ops\": {}, \
             \"busy_cycles_per_op\": {:.1}, \"throughput_ops_s\": {:.1}, \
             \"lost_replies\": {}, \"failover_cycles\": {}, \"recovery_cycles\": {}, \
             \"replica_ops\": {}, \"maint_chunks\": {}, \"hb_misses\": {}, \
             \"rekeys\": {}, \"auth_failures\": {}, \
             \"sojourn_p50\": {}, \"sojourn_p95\": {}, \"sojourn_p99\": {}, \
             \"sojourn_count\": {}, \"rpc_batches\": {}, \
             \"shard_backlog\": {}, \"shard_depth\": {}, \
             \"steals_taken\": {}, \"steals_given\": {}, \
             \"migrations\": {}, \"shard_sojourn_p99\": {} }}{}\n",
            c.load,
            c.policy,
            c.shards,
            c.balance,
            c.replicas,
            c.chaos,
            c.ops,
            c.busy_cycles_per_op,
            c.throughput_ops_s,
            c.lost_replies,
            c.failover_cycles,
            c.recovery_cycles,
            json_array(&c.replica_ops),
            c.maint_chunks,
            c.hb_misses,
            c.rekeys,
            c.auth_failures,
            c.sojourn_p50,
            c.sojourn_p95,
            c.sojourn_p99,
            c.sojourn_count,
            c.rpc_batches,
            json_array(&c.shard_backlog),
            json_array(&c.shard_depth),
            json_array(&c.steals_taken),
            json_array(&c.steals_given),
            json_array(&c.migrations),
            json_array(&c.shard_sojourn_p99),
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_serving.json";
    std::fs::write(path, &json).expect("write BENCH_serving.json");
    println!("   wrote {path}");
}
