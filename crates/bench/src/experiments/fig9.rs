//! Figure 9: coordinated EPC++ allocation across enclaves. Two
//! enclaves share the PRM; a correctly ballooned EPC++ avoids hardware
//! thrashing, an oversized one causes it.

use std::sync::Arc;

use eleos_core::{Suvm, SuvmConfig};
use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::costs::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::harness::{header, kops, paper_machine, paper_suvm_config, throughput, x, Scale};

enum Cfg {
    Sgx,
    Suvm { epcpp_bytes: usize, balloon: bool },
}

/// Two enclaves, each with one thread doing 4 KiB random reads over
/// its own `buf_bytes` array; returns combined throughput.
fn two_enclaves(scale: Scale, cfg: &Cfg, buf_bytes: usize, ops: usize) -> (f64, u64) {
    let m: Arc<SgxMachine> = paper_machine(scale);
    let mut handles = Vec::new();
    for idx in 0..2usize {
        let m = Arc::clone(&m);
        let (epcpp, balloon, sgx) = match cfg {
            Cfg::Sgx => (0, false, true),
            Cfg::Suvm {
                epcpp_bytes,
                balloon,
            } => (*epcpp_bytes, *balloon, false),
        };
        handles.push(std::thread::spawn(move || {
            let pages = (buf_bytes / PAGE_SIZE) as u64;
            let mut rng = StdRng::seed_from_u64(idx as u64 + 5);
            if sgx {
                let e = m.driver.create_enclave(&m, buf_bytes + (16 << 20));
                let mut ctx = ThreadCtx::for_enclave(&m, &e, idx);
                ctx.enter();
                let base = e.alloc(buf_bytes);
                let mut buf = vec![0u8; PAGE_SIZE];
                for _ in 0..ops {
                    let p = rng.random_range(0..pages);
                    ctx.read_enclave(base + p * PAGE_SIZE as u64, &mut buf);
                }
                ctx.exit();
                (ctx.now(), 0u64)
            } else {
                let cfg = SuvmConfig {
                    epcpp_bytes: epcpp,
                    ..paper_suvm_config(scale, buf_bytes)
                };
                let e = m.driver.create_enclave(&m, cfg.epcpp_bytes * 2 + (8 << 20));
                let t0 = ThreadCtx::for_enclave(&m, &e, idx);
                let s = Suvm::new(&t0, cfg);
                let mut ctx = ThreadCtx::for_enclave(&m, &e, idx);
                ctx.enter();
                let base = s.malloc(buf_bytes);
                let mut buf = vec![0u8; PAGE_SIZE];
                for i in 0..ops {
                    if balloon && i % 512 == 0 {
                        // The swapper applies the driver's share.
                        s.swapper_tick(&mut ctx);
                    }
                    let p = rng.random_range(0..pages);
                    s.read(&mut ctx, base + p * PAGE_SIZE as u64, &mut buf);
                }
                ctx.exit();
                (ctx.now(), s.local_stats().major_faults)
            }
        }));
    }
    let results: Vec<(u64, u64)> = handles
        .into_iter()
        .map(|h| h.join().expect("enclave thread"))
        .collect();
    let max = results.iter().map(|r| r.0).max().unwrap_or(1);
    let _suvm_faults: u64 = results.iter().map(|r| r.1).sum();
    let hw_faults = m.stats.snapshot().hw_faults;
    (
        throughput(2 * ops as u64, max, PAGE_SIZE as u64, None),
        hw_faults,
    )
}

/// Runs Figure 9.
pub fn run(scale: Scale) {
    let policy = SuvmConfig::default().policy.label();
    header(
        "fig9",
        &format!("two enclaves: EPC++ sizing vs PRM share (93MB total), {policy} eviction"),
        "misconfigured EPC++ (50MB each) up to 3.4x slower than correct (30MB each); \
         ballooning (our swapper) recovers the correct size automatically",
    );
    // Correct: two 30MB EPC++ fit the PRM. Incorrect: two oversize
    // EPC++ pools overcommit it (the paper's 50MB each, plus enclave
    // code/heap/metadata, exceeds 93MB; we oversize the pool itself so
    // the same overcommit holds at every scale).
    let correct = scale.bytes(30 << 20);
    let incorrect = scale.bytes(70 << 20);
    let ops = scale.ops(40_000);
    println!(
        "   {:<10} {:>12} {:>14} {:>16} {:>14}",
        "array", "sgx", "suvm-correct", "suvm-misconfig", "suvm-balloon"
    );
    for mb in [40usize, 60, 80] {
        let buf = scale.bytes(mb << 20);
        let (t_sgx, _) = two_enclaves(scale, &Cfg::Sgx, buf, ops);
        let (t_ok, f_ok) = two_enclaves(
            scale,
            &Cfg::Suvm {
                epcpp_bytes: correct,
                balloon: false,
            },
            buf,
            ops,
        );
        let (t_bad, f_bad) = two_enclaves(
            scale,
            &Cfg::Suvm {
                epcpp_bytes: incorrect,
                balloon: false,
            },
            buf,
            ops,
        );
        let (t_fix, _) = two_enclaves(
            scale,
            &Cfg::Suvm {
                epcpp_bytes: incorrect,
                balloon: true,
            },
            buf,
            ops,
        );
        println!(
            "   {:<10} {:>12} {:>14} {:>9} ({:>4}) {:>14}",
            format!("{mb}MB x2"),
            kops(t_sgx),
            kops(t_ok),
            kops(t_bad),
            x(t_ok / t_bad),
            kops(t_fix)
        );
        let _ = (f_ok, f_bad);
    }
}
