//! Storage-engine shootout: static slabs vs the slab rebalancer vs
//! the TTL-bucketed segment store, across three serving mixes. Emits
//! `BENCH_storage.json` for machine consumption.
//!
//! Cells (engine x workload):
//!
//! - `shifting` — the item-size distribution shifts mid-run (small
//!   fill, then large writes): static slab classes calcify on the old
//!   size and serve the new one out of a sliver of the pool, so every
//!   miss pays a backend refill; the rebalancer reassigns whole slabs
//!   to the starved class at fences.
//! - `skewed` — a stable skewed read mix inside the memory limit; no
//!   engine should be able to buy much here (sanity/tie cell).
//! - `ttl` — short-TTL cache traffic under memory pressure with
//!   simulated think time between ops: the segment store reclaims
//!   whole expired segments at fences and keeps the op path free of
//!   LRU pointer maintenance.
//!
//! The `slab-rebal-bg` and `segment-bg` engines run the same configs
//! in **background mode**: serving-path fences only publish counters,
//! and the relocation/merge byte-work runs in
//! [`Kvs::maintenance_tick`] on a second core after each fence. Each
//! cell carries `maint_stall_cycles` (serving-core cycles stalled in
//! fence byte-work — must be ~0 for the background engines) and
//! `bg_merges` (proactive segment merges the tick performed).

use std::sync::Arc;

use eleos_apps::kvs::Kvs;
use eleos_apps::space::DataSpace;
use eleos_apps::storage::{EngineConfig, RebalanceConfig, SegmentConfig};
use eleos_enclave::machine::{MachineConfig, SgxMachine};
use eleos_enclave::thread::ThreadCtx;

use crate::harness::{header, Scale};

/// Cycles a miss costs the service: fetch from the backing store and
/// re-set the item (memcached's cache-aside refill).
const REFILL_CYCLES: u64 = 15_000;
/// Ops per sub-batch fence (the serving loop's batch size).
const FENCE_EVERY: usize = 64;
/// Core the background engines' maintenance ticks run on (the serving
/// thread is on core 0).
const MAINT_CORE: usize = 1;

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

struct Cell {
    cell: &'static str,
    engine: &'static str,
    ops: usize,
    busy_cpo: f64,
    evictions: u64,
    expired: u64,
    slab_moves: u64,
    seg_merges: u64,
    /// Serving-core cycles stalled in fence-synchronous byte-work
    /// (~0 for the background engines — that is their whole point).
    maint_stall: u64,
    /// Proactive segment merges the background tick performed.
    bg_merges: u64,
    refills: u64,
    items_end: u64,
}

/// `(label, config, background)` — the background entries run the
/// same engine configs with the byte-work moved off the fence.
fn engines() -> Vec<(&'static str, EngineConfig, bool)> {
    let rebal = EngineConfig::Slab {
        rebalance: Some(RebalanceConfig::default()),
    };
    let seg = EngineConfig::Segment(SegmentConfig::default());
    vec![
        ("slab-static", EngineConfig::Slab { rebalance: None }, false),
        ("slab-rebal", rebal.clone(), false),
        ("slab-rebal-bg", rebal, true),
        ("segment", seg.clone(), false),
        ("segment-bg", seg, true),
    ]
}

/// Builds the serving thread plus, for background engines, an entered
/// maintenance thread on [`MAINT_CORE`].
fn rig(
    mem_limit: u64,
    cfg: &EngineConfig,
    background: bool,
) -> (Arc<SgxMachine>, ThreadCtx, Kvs, Option<ThreadCtx>) {
    let m = SgxMachine::new(MachineConfig::scaled(8));
    let space = DataSpace::Untrusted(Arc::clone(&m));
    let mut kvs = Kvs::with_engine(space.clone(), space, mem_limit, 4096, cfg);
    let e = m.driver.create_enclave(&m, 1 << 20);
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    kvs.init(&mut t);
    let mt = background.then(|| {
        kvs.set_background(true);
        let mut mt = ThreadCtx::for_enclave(&m, &e, MAINT_CORE);
        mt.enter();
        mt
    });
    (m, t, kvs, mt)
}

/// One background pass after a serving-path fence: the maintenance
/// core first idles forward to the serving core's time (its clock
/// only moves when ticks run, and segment expiry reads the clock),
/// then runs the engine byte-work off-core.
fn bg_tick(m: &SgxMachine, t: &ThreadCtx, kvs: &mut Kvs, mt: &mut Option<ThreadCtx>) {
    let Some(mt) = mt.as_mut() else { return };
    let clock = &m.core(MAINT_CORE).clock;
    let now = t.now();
    if now > clock.now() {
        clock.advance(now - clock.now());
    }
    kvs.maintenance_tick(mt);
}

/// Measured-window totals a workload hands to [`finish`].
struct Run {
    ops: usize,
    busy: u64,
    refills: u64,
}

fn finish(
    cell: &'static str,
    engine: &'static str,
    run: Run,
    m: &SgxMachine,
    kvs: &Kvs,
    mut t: ThreadCtx,
    mt: Option<ThreadCtx>,
) -> Cell {
    let d = m.stats.snapshot();
    if let Some(mut mt) = mt {
        mt.exit();
    }
    t.exit();
    let Run { ops, busy, refills } = run;
    Cell {
        cell,
        engine,
        ops,
        busy_cpo: busy as f64 / ops as f64,
        evictions: kvs.evictions(),
        expired: kvs.expired(),
        slab_moves: d.slab_moves,
        seg_merges: d.seg_merges,
        maint_stall: d.maint_stall_cycles,
        bg_merges: d.bg_merges,
        refills,
        items_end: kvs.len(),
    }
}

/// The item-size distribution shifts mid-run: a small-item fill
/// calcifies the pool, then the write mix switches to ~1.2 KiB values
/// with reads over a recency window larger than what the calcified
/// layout leaves the new class.
fn run_shifting(name: &'static str, cfg: &EngineConfig, background: bool, ops: usize) -> Cell {
    const A_ITEMS: u64 = 35_000;
    const WARMUP_WRITES: u64 = 2_500;
    const WINDOW: u64 = 2_000;
    let (m, mut t, mut kvs, mut mt) = rig(8 << 20, cfg, background);
    for i in 0..A_ITEMS {
        kvs.set(&mut t, format!("a-{i}").as_bytes(), &[0x11u8; 160]);
    }
    // The shift: the write mix switches to large values. The one-time
    // eviction storm (the calcified small class is drained item by
    // item) lands here, outside the measured window, so the steady
    // state compares layouts, not the shared storm cost.
    let mut rng = Rng(0x5eed_0001);
    let mut wrote = 0u64;
    while wrote < WARMUP_WRITES {
        kvs.set(&mut t, format!("b-{wrote}").as_bytes(), &[0x22u8; 1200]);
        wrote += 1;
        if wrote.is_multiple_of(4) {
            let victim = rng.next() % A_ITEMS;
            kvs.delete(&mut t, format!("a-{victim}").as_bytes());
        }
        if wrote.is_multiple_of(FENCE_EVERY as u64) {
            kvs.fence(&mut t);
            bg_tick(&m, &t, &mut kvs, &mut mt);
        }
    }
    // No counter reset: slab moves earned during the warm-up shift are
    // part of the story (busy c/op is windowed by `t0` alone).
    let t0 = t.now();
    let mut refills = 0u64;
    for i in 0..ops {
        match i % 4 {
            0 => {
                kvs.set(&mut t, format!("b-{wrote}").as_bytes(), &[0x22u8; 1200]);
                wrote += 1;
            }
            1 => {
                let victim = rng.next() % A_ITEMS;
                kvs.delete(&mut t, format!("a-{victim}").as_bytes());
            }
            _ => {
                let back = rng.next() % WINDOW.min(wrote);
                let key = format!("b-{}", wrote - 1 - back);
                if kvs.get(&mut t, key.as_bytes()).is_none() {
                    t.compute(REFILL_CYCLES);
                    kvs.set(&mut t, key.as_bytes(), &[0x22u8; 1200]);
                    refills += 1;
                }
            }
        }
        if (i + 1) % FENCE_EVERY == 0 {
            kvs.fence(&mut t);
            bg_tick(&m, &t, &mut kvs, &mut mt);
        }
    }
    let busy = t.now() - t0;
    finish(
        "shifting",
        name,
        Run { ops, busy, refills },
        &m,
        &kvs,
        t,
        mt,
    )
}

/// A stable skewed read mix over a working set inside the memory
/// limit — the tie cell; no engine has leverage.
fn run_skewed(name: &'static str, cfg: &EngineConfig, background: bool, ops: usize) -> Cell {
    const N: u64 = 6_000;
    let value_of = |i: u64| vec![(i % 251) as u8; 100 + (i as usize % 7) * 90];
    let (m, mut t, mut kvs, mut mt) = rig(8 << 20, cfg, background);
    for i in 0..N {
        kvs.set(&mut t, format!("s-{i}").as_bytes(), &value_of(i));
    }
    m.reset_counters();
    let t0 = t.now();
    let mut rng = Rng(0x5eed_0002);
    let mut refills = 0u64;
    for i in 0..ops {
        let r = rng.next() % N;
        let idx = (r * r) / N; // quadratic skew toward low keys
        if i % 5 == 4 {
            kvs.set(&mut t, format!("s-{idx}").as_bytes(), &value_of(idx));
        } else if kvs.get(&mut t, format!("s-{idx}").as_bytes()).is_none() {
            t.compute(REFILL_CYCLES);
            kvs.set(&mut t, format!("s-{idx}").as_bytes(), &value_of(idx));
            refills += 1;
        }
        if (i + 1) % FENCE_EVERY == 0 {
            kvs.fence(&mut t);
            bg_tick(&m, &t, &mut kvs, &mut mt);
        }
    }
    let busy = t.now() - t0;
    finish("skewed", name, Run { ops, busy, refills }, &m, &kvs, t, mt)
}

/// Short-TTL cache traffic under a tight pool, with think time
/// advancing the simulated clock so deadlines actually pass mid-run.
fn run_ttl(name: &'static str, cfg: &EngineConfig, background: bool, ops: usize) -> Cell {
    const WINDOW: u64 = 500;
    /// Simulated client think time per op: moves the clock so the
    /// 2-9 s TTLs lapse during the run, even at `--quick` op counts.
    const THINK_CYCLES: u64 = 30_000_000;
    let (m, mut t, mut kvs, mut mt) = rig(1 << 20, cfg, background);
    m.reset_counters();
    let mut rng = Rng(0x5eed_0003);
    let mut refills = 0u64;
    let mut wrote = 0u64;
    let mut busy = 0u64;
    for i in 0..ops {
        let op_start = t.now();
        if i % 2 == 0 {
            let ttl = 2 + (wrote % 8) as u32;
            kvs.set_with_ttl(&mut t, format!("t-{wrote}").as_bytes(), &[0x33u8; 300], ttl);
            wrote += 1;
        } else if wrote > 0 {
            let back = rng.next() % WINDOW.min(wrote);
            let key = format!("t-{}", wrote - 1 - back);
            if kvs.get(&mut t, key.as_bytes()).is_none() {
                t.compute(REFILL_CYCLES);
                let ttl = 2 + (wrote % 8) as u32;
                kvs.set_with_ttl(&mut t, key.as_bytes(), &[0x33u8; 300], ttl);
                refills += 1;
            }
        }
        if (i + 1) % FENCE_EVERY == 0 {
            kvs.fence(&mut t);
            bg_tick(&m, &t, &mut kvs, &mut mt);
        }
        busy += t.now() - op_start;
        // Think time is idle, not busy: charged to the clock only.
        t.compute(THINK_CYCLES);
    }
    finish("ttl", name, Run { ops, busy, refills }, &m, &kvs, t, mt)
}

/// Runs engines x workloads, prints a table, writes
/// `BENCH_storage.json`. `quick` trims op counts for CI smoke runs.
pub fn run(scale: Scale, quick: bool) {
    header(
        "storage_bench",
        "storage engine x workload: static slab vs slab rebalancer vs segment store",
        "rebalancer wins the shifting-size cell; segment store wins the TTL-heavy cell",
    );
    let ops = scale.ops(if quick { 8_000 } else { 24_000 });
    println!(
        "   {:<9} {:<14} {:>8} {:>10} {:>9} {:>9} {:>6} {:>7} {:>10} {:>7} {:>8} {:>9}",
        "cell",
        "engine",
        "ops",
        "busy c/op",
        "evict",
        "expired",
        "moves",
        "merges",
        "stall",
        "bgmerge",
        "refills",
        "items"
    );
    let mut cells: Vec<Cell> = Vec::new();
    type Runner = fn(&'static str, &EngineConfig, bool, usize) -> Cell;
    let workloads: [(&str, Runner); 3] = [
        ("shifting", run_shifting),
        ("skewed", run_skewed),
        ("ttl", run_ttl),
    ];
    for (_, runner) in workloads {
        for (name, cfg, background) in engines() {
            let c = runner(name, &cfg, background, ops);
            println!(
                "   {:<9} {:<14} {:>8} {:>10.0} {:>9} {:>9} {:>6} {:>7} {:>10} {:>7} {:>8} {:>9}",
                c.cell,
                c.engine,
                c.ops,
                c.busy_cpo,
                c.evictions,
                c.expired,
                c.slab_moves,
                c.seg_merges,
                c.maint_stall,
                c.bg_merges,
                c.refills,
                c.items_end
            );
            if background {
                assert_eq!(
                    c.maint_stall, 0,
                    "background engines must not stall serving fences"
                );
            }
            cells.push(c);
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"storage\",\n");
    json.push_str(&format!("  \"scale\": {},\n", scale.0));
    json.push_str(&format!("  \"ops\": {ops},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"cell\": \"{}\", \"engine\": \"{}\", \"ops\": {}, \
             \"busy_cpo\": {:.1}, \"evictions\": {}, \"expired\": {}, \
             \"slab_moves\": {}, \"seg_merges\": {}, \
             \"maint_stall_cycles\": {}, \"bg_merges\": {}, \
             \"refills\": {}, \"items_end\": {} }}{}\n",
            c.cell,
            c.engine,
            c.ops,
            c.busy_cpo,
            c.evictions,
            c.expired,
            c.slab_moves,
            c.seg_merges,
            c.maint_stall,
            c.bg_merges,
            c.refills,
            c.items_end,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_storage.json";
    std::fs::write(path, &json).expect("write BENCH_storage.json");
    println!("   wrote {path}");
}
