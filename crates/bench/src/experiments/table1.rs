//! Table 1: relative cost of LLC misses when accessing EPC vs
//! untrusted memory, for sequential/random reads and writes.

use eleos_enclave::thread::ThreadCtx;
use eleos_sim::costs::LINE;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::harness::{header, x, Scale};

enum Pattern {
    Seq,
    Rand,
}

enum Op {
    Read,
    Write,
    ReadWrite,
}

/// Measures cycles per line-touching access over `len` bytes. An
/// unmeasured warm lap first brings the LLC into this configuration's
/// steady state (so the measured lap is not charged for writing back
/// the previous configuration's dirty lines).
fn sweep(
    ctx: &mut ThreadCtx,
    enclave_buf: Option<u64>,
    untrusted_buf: u64,
    len: usize,
    pat: &Pattern,
    op: &Op,
    n: usize,
) -> f64 {
    #[allow(clippy::too_many_arguments)]
    fn lap(
        ctx: &mut ThreadCtx,
        enclave_buf: Option<u64>,
        untrusted_buf: u64,
        lines: u64,
        pat: &Pattern,
        op: &Op,
        seed: u64,
        n: usize,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scratch = [0u8; 8];
        for i in 0..n as u64 {
            let line = match pat {
                Pattern::Seq => (i + seed) % lines,
                Pattern::Rand => rng.random_range(0..lines),
            };
            let off = line * LINE as u64;
            let write = match op {
                Op::Read => false,
                Op::Write => true,
                Op::ReadWrite => i % 2 == 1,
            };
            match (enclave_buf, write) {
                (Some(b), false) => ctx.read_enclave(b + off, &mut scratch),
                (Some(b), true) => ctx.write_enclave(b + off, &scratch),
                (None, false) => ctx.read_untrusted(untrusted_buf + off, &mut scratch),
                (None, true) => ctx.write_untrusted(untrusted_buf + off, &scratch),
            }
        }
    }
    let lines = (len / LINE) as u64;
    lap(
        ctx,
        enclave_buf,
        untrusted_buf,
        lines,
        pat,
        op,
        41,
        n / 2 + 1000,
    );
    let c0 = ctx.now();
    lap(ctx, enclave_buf, untrusted_buf, lines, pat, op, 42, n);
    (ctx.now() - c0) as f64 / n as f64
}

/// Runs Table 1.
pub fn run(scale: Scale) {
    header(
        "table1",
        "LLC-miss cost, EPC relative to untrusted memory",
        "READ 5.6x/5.6x, WRITE 6.8x/8.9x, R+W 7.4x/9.5x (seq/rand)",
    );
    // Table 1 isolates the *LLC-miss* cost, so the microbench machine
    // gets a page-walk-free TLB and a buffer 16x the LLC (residual
    // hits < 7%). Hardware faults stay impossible (buffer < EPC).
    let mut cfg = eleos_enclave::machine::MachineConfig {
        tlb_entries: 64 << 10,
        ..Default::default()
    };
    cfg.epc_bytes = scale.bytes(93 << 20);
    cfg.llc.size = scale.bytes(8 << 20);
    let m = eleos_enclave::machine::SgxMachine::new(cfg);
    let len = (m.cfg.llc.size * 16).min(m.cfg.epc_bytes * 6 / 10);
    let e = m.driver.create_enclave(&m, len * 2 + (8 << 20));
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    let ebuf = e.alloc(len);
    let ubuf = m.alloc_untrusted(len);
    // Prefetch so every EPC page is resident.
    for off in (0..len).step_by(4096) {
        t.write_enclave(ebuf + off as u64, &[0u8; 8]);
        t.write_untrusted(ubuf + off as u64, &[0u8; 8]);
    }
    let n = scale.ops(400_000);

    println!(
        "   {:<16} {:>12} {:>12}",
        "operation", "sequential", "random"
    );
    for (name, op) in [
        ("READ", Op::Read),
        ("WRITE", Op::Write),
        ("READ and WRITE", Op::ReadWrite),
    ] {
        let mut ratios = Vec::new();
        for pat in [Pattern::Seq, Pattern::Rand] {
            let epc = sweep(&mut t, Some(ebuf), ubuf, len, &pat, &op, n);
            let unt = sweep(&mut t, None, ubuf, len, &pat, &op, n);
            ratios.push(epc / unt);
        }
        println!("   {:<16} {:>12} {:>12}", name, x(ratios[0]), x(ratios[1]));
    }
    t.exit();
}
