//! Ablations of the design choices DESIGN.md calls out, beyond the
//! paper's headline figures.

use eleos_core::{Suvm, SuvmConfig};
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::costs::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::harness::{header, kops, paper_machine, paper_suvm_config, throughput, x, Scale};

fn random_read_run(scale: Scale, cfg: SuvmConfig, buf_bytes: usize, ops: usize) -> (f64, u64, u64) {
    let m = paper_machine(scale);
    let e = m.driver.create_enclave(&m, cfg.epcpp_bytes * 2 + (8 << 20));
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let s = Suvm::new(&t0, cfg);
    let mut ctx = ThreadCtx::for_enclave(&m, &e, 0);
    ctx.enter();
    let base = s.malloc(buf_bytes);
    let pages = (buf_bytes / PAGE_SIZE) as u64;
    // Populate so evictions have real content.
    let page = vec![9u8; PAGE_SIZE];
    for p in 0..pages {
        s.write(&mut ctx, base + p * PAGE_SIZE as u64, &page);
    }
    let mut rng = StdRng::seed_from_u64(3);
    let mut buf = vec![0u8; PAGE_SIZE];
    for _ in 0..ops / 4 {
        let p = rng.random_range(0..pages);
        s.read(&mut ctx, base + p * PAGE_SIZE as u64, &mut buf);
    }
    m.reset_counters();
    let s0 = m.stats.snapshot();
    let c0 = ctx.now();
    for _ in 0..ops {
        let p = rng.random_range(0..pages);
        s.read(&mut ctx, base + p * PAGE_SIZE as u64, &mut buf);
    }
    let d = m.stats.snapshot() - s0;
    let thr = throughput(ops as u64, ctx.now() - c0, PAGE_SIZE as u64, None);
    ctx.exit();
    (thr, d.suvm_major_faults, d.hw_faults)
}

/// Clean-page write-back elision on/off (§3.2.4: "up to 1.7x").
pub fn run_clean_skip(scale: Scale) {
    header(
        "ablate_clean",
        "clean-page write-back elision (read-dominated, 200MB buffer)",
        "skipping the write-back of clean pages boosts reads up to ~1.7x",
    );
    let buf = scale.bytes(200 << 20);
    let ops = scale.ops(40_000);
    let (on, _, _) = random_read_run(scale, paper_suvm_config(scale, buf), buf, ops);
    let (off, _, _) = random_read_run(
        scale,
        SuvmConfig {
            clean_skip: false,
            ..paper_suvm_config(scale, buf)
        },
        buf,
        ops,
    );
    println!(
        "   elision on {:>10}/s   off {:>10}/s   gain {}",
        kops(on),
        kops(off),
        x(on / off)
    );
}

/// Sub-page size sweep for 16-byte direct reads.
pub fn run_subpage_sweep(scale: Scale) {
    header(
        "ablate_subpage",
        "direct-access sub-page size for 16B random reads",
        "smaller sub-pages cost less crypto per access but more metadata/tags",
    );
    let buf = scale.bytes(100 << 20);
    let ops = scale.ops(20_000);
    println!("   {:<10} {:>14}", "sub-page", "cycles/access");
    for sub in [256usize, 512, 1024, 2048] {
        let m = paper_machine(scale);
        let cfg = SuvmConfig {
            sub_page_size: sub,
            seal_sub_pages: true,
            ..paper_suvm_config(scale, buf)
        };
        let e = m.driver.create_enclave(&m, cfg.epcpp_bytes * 2 + (8 << 20));
        let t0 = ThreadCtx::for_enclave(&m, &e, 0);
        let s = Suvm::new(&t0, cfg);
        let mut ctx = ThreadCtx::for_enclave(&m, &e, 0);
        ctx.enter();
        let base = s.malloc(buf);
        let pages = (buf / PAGE_SIZE) as u64;
        let page = vec![5u8; PAGE_SIZE];
        for p in 0..pages {
            s.write(&mut ctx, base + p * PAGE_SIZE as u64, &page);
        }
        // Push everything out so direct reads hit the backing store.
        while s.evict_one(&mut ctx) {}
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf16 = [0u8; 16];
        m.reset_counters();
        let c0 = ctx.now();
        for _ in 0..ops {
            let off = rng.random_range(0..(buf as u64 - 16) / 16) * 16;
            s.read_direct(&mut ctx, base + off, &mut buf16);
        }
        println!(
            "   {:<10} {:>14.0}",
            sub,
            (ctx.now() - c0) as f64 / ops as f64
        );
        ctx.exit();
    }
}

/// Key-distribution ablation: production KVS traffic is skewed, and a
/// skewed stream lets EPC++ capture the hot head — the SUVM advantage
/// over "every access faults" grows with the skew.
pub fn run_zipf_sweep(scale: Scale) {
    use eleos_apps::loadgen::Zipf;
    header(
        "ablate_zipf",
        "key-distribution skew vs SUVM fault rate (200MB working set)",
        "uniform traffic faults on most accesses; Zipf(0.99) mostly hits EPC++",
    );
    let buf = scale.bytes(200 << 20);
    let ops = scale.ops(40_000);
    println!(
        "   {:<14} {:>12} {:>12} {:>10}",
        "distribution", "reads/s", "suvm faults", "fault rate"
    );
    for (name, alpha) in [
        ("uniform", 0.0),
        ("zipf(0.6)", 0.6),
        ("zipf(0.99)", 0.99),
        ("zipf(1.2)", 1.2),
    ] {
        let m = paper_machine(scale);
        let cfg = paper_suvm_config(scale, buf);
        let e = m.driver.create_enclave(&m, cfg.epcpp_bytes * 2 + (8 << 20));
        let t0 = ThreadCtx::for_enclave(&m, &e, 0);
        let s = Suvm::new(&t0, cfg);
        let mut ctx = ThreadCtx::for_enclave(&m, &e, 0);
        ctx.enter();
        let base = s.malloc(buf);
        let pages = (buf / PAGE_SIZE) as u64;
        let zipf = Zipf::new(pages as usize, alpha);
        let page = vec![9u8; PAGE_SIZE];
        for p in 0..pages {
            s.write(&mut ctx, base + p * PAGE_SIZE as u64, &page);
        }
        let mut rng = StdRng::seed_from_u64(41);
        let mut buf4k = vec![0u8; PAGE_SIZE];
        for _ in 0..ops / 4 {
            let p = zipf.sample(&mut rng) as u64;
            s.read(&mut ctx, base + p * PAGE_SIZE as u64, &mut buf4k);
        }
        m.reset_counters();
        let s0 = m.stats.snapshot();
        let c0 = ctx.now();
        for _ in 0..ops {
            let p = zipf.sample(&mut rng) as u64;
            s.read(&mut ctx, base + p * PAGE_SIZE as u64, &mut buf4k);
        }
        let d = m.stats.snapshot() - s0;
        println!(
            "   {:<14} {:>12} {:>12} {:>9.0}%",
            name,
            kops(throughput(
                ops as u64,
                ctx.now() - c0,
                PAGE_SIZE as u64,
                None
            )),
            d.suvm_major_faults,
            100.0 * d.suvm_major_faults as f64 / ops as f64
        );
        ctx.exit();
    }
}

/// Eviction-policy ablation: the paper's §3.2.2 promise that user code
/// controls the eviction policy, exercised on a hot/cold mix where
/// reuse matters.
pub fn run_policy_sweep(scale: Scale) {
    use eleos_core::EvictPolicy;
    header(
        "ablate_policy",
        "EPC++ eviction policy on a 60/40 hot/cold random-read mix",
        "recency-aware policies (CLOCK/LRU/SLRU) retain the hot set; FIFO and Random churn it",
    );
    let buf = scale.bytes(200 << 20);
    let ops = scale.ops(40_000);
    println!(
        "   {:<12} {:>12} {:>12}",
        "policy", "reads/s", "suvm faults"
    );
    for (name, policy) in [
        ("clock", EvictPolicy::Clock),
        ("fifo", EvictPolicy::Fifo),
        ("random", EvictPolicy::Random(5)),
        ("lru", EvictPolicy::LruApprox(5)),
        ("slru", EvictPolicy::Slru),
        ("slru-tuned", EvictPolicy::SlruTuned),
    ] {
        let m = paper_machine(scale);
        let cfg = SuvmConfig {
            policy,
            ..paper_suvm_config(scale, buf)
        };
        let e = m.driver.create_enclave(&m, cfg.epcpp_bytes * 2 + (8 << 20));
        let t0 = ThreadCtx::for_enclave(&m, &e, 0);
        let s = Suvm::new(&t0, cfg);
        let mut ctx = ThreadCtx::for_enclave(&m, &e, 0);
        ctx.enter();
        let base = s.malloc(buf);
        let pages = (buf / PAGE_SIZE) as u64;
        let hot_pages = (s.frame_limit() as u64 * 7 / 10).max(1);
        let page = vec![9u8; PAGE_SIZE];
        for p in 0..pages {
            s.write(&mut ctx, base + p * PAGE_SIZE as u64, &page);
        }
        let mut rng = StdRng::seed_from_u64(31);
        let mut buf4k = vec![0u8; PAGE_SIZE];
        let mut access = |s: &Suvm, ctx: &mut ThreadCtx, rng: &mut StdRng| {
            let p = if rng.random_range(0..10) < 6 {
                rng.random_range(0..hot_pages)
            } else {
                rng.random_range(0..pages)
            };
            s.read(ctx, base + p * PAGE_SIZE as u64, &mut buf4k);
        };
        for _ in 0..ops / 4 {
            access(&s, &mut ctx, &mut rng);
        }
        m.reset_counters();
        let s0 = m.stats.snapshot();
        let c0 = ctx.now();
        for _ in 0..ops {
            access(&s, &mut ctx, &mut rng);
        }
        let d = m.stats.snapshot() - s0;
        println!(
            "   {:<12} {:>12} {:>12}",
            name,
            kops(throughput(
                ops as u64,
                ctx.now() - c0,
                PAGE_SIZE as u64,
                None
            )),
            d.suvm_major_faults
        );
        ctx.exit();
    }
}

/// SUVM page-size sweep (§3.4: "increasing the page size may be
/// useful to reduce the memory consumption of SUVM page tables...";
/// smaller pages waste less crypto on small random accesses).
pub fn run_pagesize_sweep(scale: Scale) {
    header(
        "ablate_pagesize",
        "SUVM page size for 64B random accesses, out-of-core working set",
        "small pages fault cheaply but cache less per fault; 4KB is the paper's default",
    );
    let buf = scale.bytes(100 << 20);
    let ops = scale.ops(20_000);
    println!(
        "   {:<10} {:>14} {:>12}",
        "page size", "cycles/access", "faults"
    );
    for page_size in [1024usize, 2048, 4096, 8192, 16384] {
        let m = paper_machine(scale);
        let cfg = SuvmConfig {
            page_size,
            sub_page_size: (page_size / 4).max(256),
            ..paper_suvm_config(scale, buf)
        };
        let e = m.driver.create_enclave(&m, cfg.epcpp_bytes * 2 + (8 << 20));
        let t0 = ThreadCtx::for_enclave(&m, &e, 0);
        let s = Suvm::new(&t0, cfg);
        let mut ctx = ThreadCtx::for_enclave(&m, &e, 0);
        ctx.enter();
        let base = s.malloc(buf);
        // Populate at page granularity.
        let chunk = vec![1u8; page_size];
        for off in (0..buf).step_by(page_size) {
            s.write(&mut ctx, base + off as u64, &chunk);
        }
        let mut rng = StdRng::seed_from_u64(17);
        let mut small = [0u8; 64];
        let slots = (buf / 64) as u64;
        for _ in 0..ops / 4 {
            let off = rng.random_range(0..slots) * 64;
            s.read(&mut ctx, base + off, &mut small);
        }
        m.reset_counters();
        let st0 = m.stats.snapshot();
        let c0 = ctx.now();
        for _ in 0..ops {
            let off = rng.random_range(0..slots) * 64;
            s.read(&mut ctx, base + off, &mut small);
        }
        let d = m.stats.snapshot() - st0;
        println!(
            "   {:<10} {:>14.0} {:>12}",
            page_size,
            (ctx.now() - c0) as f64 / ops as f64,
            d.suvm_major_faults
        );
        ctx.exit();
    }
}

/// EPC++ capacity sweep for a fixed out-of-core working set.
pub fn run_epcpp_sweep(scale: Scale) {
    header(
        "ablate_epcpp",
        "EPC++ size vs throughput, 100MB random-read working set",
        "larger page caches fault less until the working set fits",
    );
    let buf = scale.bytes(100 << 20);
    let ops = scale.ops(40_000);
    println!(
        "   {:<10} {:>12} {:>12} {:>10}",
        "epc++", "reads/s", "suvm faults", "hw faults"
    );
    for mb in [15usize, 30, 45, 60, 75] {
        let cfg = SuvmConfig {
            epcpp_bytes: scale.bytes(mb << 20),
            ..paper_suvm_config(scale, buf)
        };
        let (thr, sf, hf) = random_read_run(scale, cfg, buf, ops);
        println!(
            "   {:<10} {:>12} {:>12} {:>10}",
            format!("{mb}MB"),
            kops(thr),
            sf,
            hf
        );
    }
}
