//! Figure 8: spointer overhead for page-fault-free accesses — the
//! cost of software address translation when the data is resident.

use eleos_core::{SPtr, Suvm, SuvmConfig};
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::costs::PAGE_SIZE;

use crate::harness::{header, paper_machine, Scale};

/// Element sizes swept (bytes).
const SIZES: [usize; 5] = [8, 64, 256, 1024, 4096];

fn measure(scale: Scale, array_bytes: usize) {
    let m = paper_machine(scale);
    let e = m.driver.create_enclave(&m, array_bytes * 4 + (16 << 20));
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    // EPC++ sized to hold the whole array: no major faults after the
    // prefetch pass.
    let suvm = Suvm::new(
        &t0,
        SuvmConfig {
            epcpp_bytes: (array_bytes * 2).next_power_of_two(),
            backing_bytes: (array_bytes * 2).next_power_of_two(),
            ..SuvmConfig::default()
        },
    );
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    let sva = suvm.malloc(array_bytes);
    // Prefetch the array into EPC++. The plain-access baseline reads
    // the EPC++ region itself — the very same resident enclave pages,
    // minus the spointer machinery — so the two passes are physically
    // identical.
    let page = vec![1u8; PAGE_SIZE];
    for off in (0..array_bytes).step_by(PAGE_SIZE) {
        suvm.write(&mut t, sva + off as u64, &page);
    }
    let (plain, _) = suvm.epcpp_span();

    println!(
        "   {:<8} {:>7} {:>12} {:>12} {:>10}",
        "size", "op", "sptr c/el", "plain c/el", "overhead"
    );
    for size in SIZES {
        for write in [false, true] {
            let n = (array_bytes / size).min(scale.ops(200_000));
            let mut buf = vec![0u8; size];
            // Spointer pass: sequential elements, linked fast path,
            // one link per page. Lap 0 warms the LLC into this
            // pattern's steady state; lap 1 is measured.
            let mut sptr = 0.0;
            for lap in 0..2 {
                let mut p: SPtr<u8> = SPtr::new(&suvm, sva);
                let c0 = t.now();
                for _ in 0..n {
                    if write {
                        p.set_bytes(&mut t, &buf);
                    } else {
                        p.get_bytes(&mut t, &mut buf);
                    }
                    p.add(size as u64);
                    if p.sva() + size as u64 > sva + array_bytes as u64 {
                        p = SPtr::new(&suvm, sva);
                    }
                }
                if lap == 1 {
                    sptr = (t.now() - c0) as f64 / n as f64;
                }
            }
            // Plain enclave-memory pass, same two-lap scheme.
            let mut base = 0.0;
            for lap in 0..2 {
                let mut off = 0u64;
                let c0 = t.now();
                for _ in 0..n {
                    if write {
                        t.write_enclave(plain + off, &buf);
                    } else {
                        t.read_enclave(plain + off, &mut buf);
                    }
                    off += size as u64;
                    if off + size as u64 > array_bytes as u64 {
                        off = 0;
                    }
                }
                if lap == 1 {
                    base = (t.now() - c0) as f64 / n as f64;
                }
            }
            println!(
                "   {:<8} {:>7} {:>12.1} {:>12.1} {:>9.1}%",
                size,
                if write { "write" } else { "read" },
                sptr,
                base,
                100.0 * (sptr - base) / base
            );
        }
    }
    t.exit();
}

/// Runs Figure 8a: the array fits in the LLC (the worst case for
/// spointers — cheap accesses make the translation relatively big).
pub fn run_8a(scale: Scale) {
    header(
        "fig8a",
        "spointer overhead, fault-free, data in LLC (2MB)",
        "up to ~22% (reads) / ~25% (writes) over plain accesses",
    );
    measure(scale, scale.bytes(2 << 20));
}

/// Runs Figure 8b: the array fits in PRM but not the LLC.
pub fn run_8b(scale: Scale) {
    header(
        "fig8b",
        "spointer overhead, fault-free, data in PRM (60MB)",
        "below ~20% once LLC misses dominate",
    );
    measure(scale, scale.bytes(60 << 20));
}
