//! Figure 11 / Table 4: memcached-style KVS throughput with Graphene
//! (OCALL) vs Eleos, 500 MB of data (~4.5x PRM), and the
//! metadata-placement ablation from §6.2.2.

use std::sync::{Arc, Mutex};

use eleos_apps::kvs::Kvs;
use eleos_apps::loadgen::KvsLoad;
use eleos_apps::space::DataSpace;
use eleos_enclave::thread::ThreadCtx;

use crate::harness::{header, kops, throughput, x, Mode, Rig, Scale};

const KEY_LEN: usize = 20;
const LINK_GBPS: f64 = 10.0;

struct KvsRig {
    rig: Rig,
    kvs: Arc<Mutex<Kvs>>,
    load: KvsLoad,
}

/// Builds a rig and fills the store with `dataset_bytes` of items.
/// `meta_secure` moves the metadata into the secure space too (the
/// §6.2.2 ablation; the paper's default keeps it clear).
fn build(
    scale: Scale,
    mode: Mode,
    value_len: usize,
    dataset_bytes: usize,
    meta_secure: bool,
) -> KvsRig {
    let rig = Rig::new(scale, mode, dataset_bytes * 2, mode != Mode::Native);
    let n_items = (dataset_bytes / (KEY_LEN + value_len)) as u64;
    let load = KvsLoad::new(99, n_items, KEY_LEN, value_len);
    let data_space = rig.data_space();
    let meta_space = if meta_secure {
        data_space.clone()
    } else {
        DataSpace::Untrusted(Arc::clone(&rig.machine))
    };
    let mem_limit = (dataset_bytes as u64 * 3 / 2).max(8 << 20);
    let mut kvs = Kvs::new(meta_space, data_space, mem_limit, (n_items * 2).max(1024));
    let mut ctx = rig.thread(0);
    kvs.init(&mut ctx);
    // Fill phase (memaslap's SET pass), performed directly.
    for i in 0..n_items {
        kvs.set(&mut ctx, &load.key(i), &load.value(i));
    }
    assert_eq!(kvs.len(), n_items, "fill must not evict");
    if ctx.in_enclave() {
        ctx.exit();
    }
    KvsRig {
        rig,
        kvs: Arc::new(Mutex::new(kvs)),
        load,
    }
}

/// Runs a GET phase with `threads` server threads; returns Kops/s.
fn get_phase(kr: &KvsRig, threads: usize, gets_per_thread: usize, value_len: usize) -> f64 {
    kr.rig.machine.reset_counters();
    let bytes_per_op = (KEY_LEN + value_len + 64) as u64;
    let mut handles = Vec::new();
    for th in 0..threads {
        let machine = Arc::clone(&kr.rig.machine);
        let kvs = Arc::clone(&kr.kvs);
        let enclave = kr.rig.enclave.clone();
        let path = kr.rig.io_path();
        let wire = Arc::clone(&kr.rig.session);
        let enclaved = kr.rig.mode.enclaved();
        let n_items = kr.load.n_items;
        let key_len = kr.load.key_len;
        handles.push(std::thread::spawn(move || {
            let mut load = KvsLoad::new(1000 + th as u64, n_items, key_len, value_len);
            let mut ctx = match &enclave {
                Some(e) => ThreadCtx::for_enclave(&machine, e, th),
                None => ThreadCtx::untrusted(&machine, th),
            };
            let ut = ThreadCtx::untrusted(&machine, th);
            let fd = machine.host.socket(&ut, 2 << 20);
            let io = eleos_apps::io::ServerIoConfig::with_buf_len(64 << 10).build(
                &ut,
                &[fd],
                path,
                wire.clone(),
            );
            if enclaved {
                ctx.enter();
            }
            let mut served = 0usize;
            while served < gets_per_thread {
                let batch = (gets_per_thread - served).min(64);
                for _ in 0..batch {
                    let (_, plain) = load.get_plain();
                    machine.host.push_request(&ut, fd, &wire.encrypt(&plain));
                }
                for _ in 0..batch {
                    let mut k = kvs.lock().expect("kvs mutex");
                    assert!(k.handle_request(&mut ctx, &io), "request queued");
                }
                served += batch;
            }
            if enclaved {
                ctx.exit();
            }
            ctx.now()
        }));
    }
    let cycles: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().expect("kvs thread"))
        .collect();
    let max = cycles.into_iter().max().unwrap_or(1);
    throughput(
        (threads * gets_per_thread) as u64,
        max,
        bytes_per_op,
        Some(LINK_GBPS),
    ) / 1.0
}

/// Runs Figure 11: throughput normalized to vanilla Graphene-SGX.
pub fn run_fig11(scale: Scale) {
    header(
        "fig11",
        "KVS GET throughput, 500MB dataset, normalized to Graphene-SGX",
        "Eleos RPC+SUVM up to 2.2x Graphene; direct access best for 1KB values; \
         within ~17% of a page-fault-free run",
    );
    let dataset = scale.bytes(500 << 20);
    let gets = scale.ops(60_000);
    for value_len in [1024usize, 4096] {
        let mut rows: Vec<(String, f64)> = Vec::new();
        for mode in [
            Mode::SgxOcall,
            Mode::EleosRpc,
            Mode::EleosSuvm,
            Mode::EleosSuvmDirect,
        ] {
            let kr = build(scale, mode, value_len, dataset, false);
            rows.push((mode.label().to_string(), get_phase(&kr, 1, gets, value_len)));
        }
        // Page-fault-free upper bound: a 20MB dataset under Graphene.
        let small = build(
            scale,
            Mode::SgxOcall,
            value_len,
            scale.bytes(20 << 20),
            false,
        );
        rows.push((
            "sgx-small-20MB".to_string(),
            get_phase(&small, 1, gets, value_len),
        ));
        let base = rows[0].1;
        println!("   value size {value_len}B:");
        for (label, thr) in &rows {
            println!(
                "     {:<16} {:>10}/s {:>8}",
                label,
                kops(*thr),
                x(thr / base)
            );
        }
    }
}

/// Runs Table 4: absolute throughput, 1 and 4 threads, vs native.
pub fn run_table4(scale: Scale) {
    header(
        "table4",
        "KVS throughput (Kops/s): Graphene-SGX vs Eleos vs native",
        "1KB/1thr: 21.4 / 43.4 / 229; 4KB/4thr: 41.8 / 86 / 274 (slowdowns 11.1x->3.2x)",
    );
    let dataset = scale.bytes(500 << 20);
    let gets = scale.ops(60_000);
    println!(
        "   {:<8} {:<8} {:>12} {:>14} {:>12}",
        "value", "threads", "sgx", "eleos", "native"
    );
    for value_len in [1024usize, 4096] {
        let rigs: Vec<KvsRig> = [Mode::SgxOcall, Mode::EleosSuvm, Mode::Native]
            .into_iter()
            .map(|m| build(scale, m, value_len, dataset, false))
            .collect();
        for threads in [1usize, 4] {
            let thr: Vec<f64> = rigs
                .iter()
                .map(|kr| get_phase(kr, threads, gets / threads, value_len))
                .collect();
            println!(
                "   {:<8} {:<8} {:>7} ({:>5}) {:>7} ({:>5}) {:>10}",
                format!("{value_len}B"),
                threads,
                kops(thr[0]),
                x(thr[2] / thr[0]),
                kops(thr[1]),
                x(thr[2] / thr[1]),
                kops(thr[2])
            );
        }
    }
}

/// Runs the §6.2.2 metadata-placement ablation.
pub fn run_meta_ablation(scale: Scale) {
    header(
        "meta_ablation",
        "KVS metadata in untrusted clear memory vs inside SUVM",
        "clear metadata is ~3-7% faster (not the main source of gains)",
    );
    let dataset = scale.bytes(200 << 20);
    let gets = scale.ops(40_000);
    let clear = build(scale, Mode::EleosSuvm, 1024, dataset, false);
    let t_clear = get_phase(&clear, 1, gets, 1024);
    let secure = build(scale, Mode::EleosSuvm, 1024, dataset, true);
    let t_secure = get_phase(&secure, 1, gets, 1024);
    println!(
        "   clear-metadata {:>10}/s   secure-metadata {:>10}/s   gain {:.1}%",
        kops(t_clear),
        kops(t_secure),
        100.0 * (t_clear - t_secure) / t_secure
    );
}
