//! Serving-path crypto microbenchmark: server x batch depth x crypto
//! mode, on cache-resident tables so the wire crypto dominates the
//! serving core. Emits `BENCH_crypto.json` for machine consumption.
//!
//! The serving thread's cycles/op is the figure of merit: per-message
//! crypto pays the full GCM/CTR key-schedule setup (`crypto_fixed`)
//! for every request and response; the batched pipeline pays it once
//! per reap and a quarter for each follow-on message — the same
//! amortization contract `suvm/writeback.rs` uses for sealed
//! evictions (both now charge through the one
//! `ThreadCtx::charge_crypto_batch` site). Both modes ride the same
//! batched ring submission, so the delta isolates the crypto.
//!
//! A second sweep adds the **workers** dimension: with two RPC
//! workers, scatter-gather sub-batch I/O (one `recv_mmsg`/`send_mmsg`
//! job per worker) is compared against the per-message
//! `RECV_TAGGED`/`SEND` baseline on the same two workers.

use std::sync::Arc;

use eleos_apps::io::ServerIoConfig;
use eleos_apps::kvs::Kvs;
use eleos_apps::loadgen::KvsLoad;
use eleos_apps::param_server::TableKind;
use eleos_apps::text_protocol::{format_get, handle_text_batch};
use eleos_enclave::thread::ThreadCtx;

use crate::harness::{header, run_param_server_batched, x, Mode, Rig, Scale};

/// Items in the KVS/text tables: small enough to stay cache-resident
/// so crypto, not memory, dominates the serving core.
const N_ITEMS: u64 = 512;
/// Socket feed chunk: a multiple of every swept batch depth, so each
/// reap is exactly `batch` messages.
const CHUNK: usize = 256;

/// One measured cell of the sweep.
struct Cell {
    server: &'static str,
    crypto: &'static str,
    /// I/O submission mode: `sg` (scatter-gather sub-batches, one per
    /// worker) or `per-msg` (one `RECV_TAGGED`/`SEND` job per message).
    io: &'static str,
    /// RPC worker threads serving the ring.
    workers: usize,
    batch: usize,
    cycles_per_op: f64,
    crypto_batches: u64,
    crypto_msgs: u64,
    crypto_setup: u64,
    rpc_batches: u64,
}

/// Feeds `n_requests` encrypted requests through `handle` in socket
/// chunks and returns the serving-core cycles across the measured
/// phase. `push` enqueues one request; `handle` drains one batch.
fn serve(
    rig: &Rig,
    ctx: &mut ThreadCtx,
    n_requests: usize,
    warmup: usize,
    push: &mut dyn FnMut(&ThreadCtx),
    handle: &mut dyn FnMut(&mut ThreadCtx) -> usize,
) -> u64 {
    // The load generator lives on another core: its push cycles must
    // not land on the serving core's clock.
    let ut = ThreadCtx::untrusted(&rig.machine, 2);
    let mut feed = |ctx: &mut ThreadCtx, n: usize| {
        let mut drained = 0usize;
        while drained < n {
            if drained == 0 {
                for _ in 0..n {
                    push(&ut);
                }
            }
            let got = handle(ctx);
            assert!(got > 0, "queued requests must be served");
            drained += got;
        }
    };
    let mut left = warmup;
    while left > 0 {
        let n = left.min(CHUNK);
        feed(ctx, n);
        left -= n;
    }
    rig.machine.reset_counters();
    let c0 = ctx.now();
    let mut served = 0usize;
    while served < n_requests {
        let n = (n_requests - served).min(CHUNK);
        feed(ctx, n);
        served += n;
    }
    ctx.now() - c0
}

/// Runs one KVS (binary protocol) or text (memcached ASCII) cell.
/// `sg` selects scatter-gather sub-batch I/O versus per-message jobs.
fn kvs_cell(
    scale: Scale,
    text: bool,
    batch: usize,
    batched: bool,
    ops: usize,
    workers: usize,
    sg: bool,
) -> Cell {
    let rig = Rig::with_workers(scale, Mode::EleosRpc, 4 << 20, false, workers);
    let mut ctx = rig.thread(0);
    let mut kvs = Kvs::new(rig.data_space(), rig.data_space(), 64 << 20, 1 << 10);
    kvs.init(&mut ctx);
    let mut load = KvsLoad::new(29, N_ITEMS, 16, 32);
    for i in 0..N_ITEMS {
        kvs.set(&mut ctx, &load.key(i), &load.value(i));
    }
    let io_cfg = ServerIoConfig::with_buf_len(64 << 10)
        .batch(batch)
        .batched_crypto(batched)
        .async_send(true)
        .scatter_gather(sg);
    let io_label = io_cfg.io_label();
    let io = rig.server_io_cfg(&ctx, io_cfg);
    let wire = Arc::clone(&rig.session);
    let fd = rig.fd;
    let machine = Arc::clone(&rig.machine);
    let mut push = move |ut: &ThreadCtx| {
        let (i, plain) = load.get_plain();
        let plain = if text {
            format_get(&load.key(i))
        } else {
            plain
        };
        machine.host.push_request(ut, fd, &wire.encrypt(&plain));
    };
    let mut handle = |ctx: &mut ThreadCtx| {
        if text {
            handle_text_batch(&mut kvs, ctx, &io)
        } else {
            kvs.handle_batch(ctx, &io)
        }
    };
    let cycles = serve(&rig, &mut ctx, ops, CHUNK, &mut push, &mut handle);
    io.flush(&mut ctx);
    let d = rig.machine.stats.snapshot();
    ctx.exit();
    Cell {
        server: if text { "text" } else { "kvs" },
        crypto: if batched { "batched" } else { "per-msg" },
        io: io_label,
        workers,
        batch,
        cycles_per_op: cycles as f64 / ops as f64,
        crypto_batches: d.crypto_batches,
        crypto_msgs: d.crypto_msgs,
        crypto_setup: d.crypto_setup_cycles,
        rpc_batches: d.rpc_batches,
    }
}

/// Runs one parameter-server cell (1-update requests, 2 MiB table).
fn param_cell(scale: Scale, batch: usize, batched: bool, ops: usize) -> Cell {
    let data = scale.bytes(2 << 20);
    let rig = Rig::new(scale, Mode::EleosRpc, data, false);
    let n_keys = (data / 32) as u64;
    let mut load = eleos_apps::loadgen::ParamLoad::new(13, n_keys, 1, None);
    let run = run_param_server_batched(
        &rig,
        TableKind::OpenAddressing,
        n_keys,
        ops,
        ops / 10,
        batch,
        batched,
        move || load.next_plain(),
    );
    Cell {
        server: "param",
        crypto: if batched { "batched" } else { "per-msg" },
        io: "sg",
        workers: 1,
        batch,
        cycles_per_op: run.e2e_cycles as f64 / run.ops as f64,
        crypto_batches: run.stats.crypto_batches,
        crypto_msgs: run.stats.crypto_msgs,
        crypto_setup: run.stats.crypto_setup_cycles,
        rpc_batches: run.stats.rpc_batches,
    }
}

/// Runs the sweep, prints a table, and writes `BENCH_crypto.json`.
/// `quick` trims the batch axis for CI smoke runs.
pub fn run(scale: Scale, quick: bool) {
    header(
        "crypto_bench",
        "server x batch depth x crypto mode, cache-resident tables",
        "batched pipeline amortizes GCM/CTR setup: >=1.2x serving cycles/op at batch >= 8",
    );
    let batches: &[usize] = if quick {
        &[1, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    // A multiple of CHUNK so every reap is exactly `batch` deep.
    let ops = (scale.ops(if quick { 8_000 } else { 20_000 }) / CHUNK).max(1) * CHUNK;
    let servers: &[&str] = &["kvs", "text", "param"];
    println!(
        "   {:<7} {:>5} {:>14} {:>14} {:>12} {:>10} {:>10}",
        "server", "batch", "per-msg c/op", "batched c/op", "crypto gain", "c.batches", "c.msgs"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for &server in servers {
        for &batch in batches {
            let run_one = |batched: bool| match server {
                "kvs" => kvs_cell(scale, false, batch, batched, ops, 1, true),
                "text" => kvs_cell(scale, true, batch, batched, ops, 1, true),
                "param" => param_cell(scale, batch, batched, ops),
                other => panic!("unknown server {other}"),
            };
            let per_msg = run_one(false);
            let batched = run_one(true);
            println!(
                "   {:<7} {:>5} {:>14.0} {:>14.0} {:>12} {:>10} {:>10}",
                server,
                batch,
                per_msg.cycles_per_op,
                batched.cycles_per_op,
                x(per_msg.cycles_per_op / batched.cycles_per_op),
                batched.crypto_batches,
                batched.crypto_msgs
            );
            cells.push(per_msg);
            cells.push(batched);
        }
    }

    // Multi-worker sweep: with two RPC workers, the scatter-gather
    // reap splits into one recv_mmsg/send_mmsg sub-batch per worker
    // (one syscall trap + one kernel-metadata charge each) versus the
    // per-message RECV_TAGGED/SEND baseline the same two workers run.
    println!(
        "   {:<7} {:>5} {:>14} {:>14} {:>12}  (workers=2, batched crypto)",
        "server", "batch", "per-msg c/op", "sg c/op", "io gain"
    );
    for &server in &["kvs", "text"] {
        for &batch in batches {
            let text = server == "text";
            let per_msg = kvs_cell(scale, text, batch, true, ops, 2, false);
            let sg = kvs_cell(scale, text, batch, true, ops, 2, true);
            println!(
                "   {:<7} {:>5} {:>14.0} {:>14.0} {:>12}",
                server,
                batch,
                per_msg.cycles_per_op,
                sg.cycles_per_op,
                x(per_msg.cycles_per_op / sg.cycles_per_op),
            );
            cells.push(per_msg);
            cells.push(sg);
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serving_crypto\",\n");
    json.push_str(&format!("  \"scale\": {},\n", scale.0));
    json.push_str(&format!("  \"ops\": {ops},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"server\": \"{}\", \"crypto\": \"{}\", \"io\": \"{}\", \
             \"workers\": {}, \"batch\": {}, \
             \"cycles_per_op\": {:.1}, \"crypto_batches\": {}, \"crypto_msgs\": {}, \
             \"crypto_setup_cycles\": {}, \"rpc_batches\": {} }}{}\n",
            c.server,
            c.crypto,
            c.io,
            c.workers,
            c.batch,
            c.cycles_per_op,
            c.crypto_batches,
            c.crypto_msgs,
            c.crypto_setup,
            c.rpc_batches,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_crypto.json";
    std::fs::write(path, &json).expect("write BENCH_crypto.json");
    println!("   wrote {path}");
}
