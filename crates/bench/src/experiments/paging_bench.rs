//! Paging microbenchmark for the pluggable SUVM architecture: eviction
//! policy x backing store x write-back batch size, on a dirty-heavy
//! random access mix over a working set ~4x EPC++. Emits
//! `BENCH_paging.json` for machine consumption.
//!
//! The serving thread's cycles/op is the figure of merit: with
//! `wb_batch = 0` every fault seals its victim inline (full GCM setup
//! per page); with `wb_batch >= 1` faults only detach victims onto the
//! write-back queue and the drain — here driven deterministically from
//! a second thread context on another core, standing in for the
//! swapper — seals them in batches that amortize the GCM setup.

use eleos_core::{EvictPolicy, StoreKind, Suvm, SuvmConfig};
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::costs::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::harness::{header, paper_machine, x, Scale};

/// Serving-thread ops between swapper ticks (batched configs only).
const TICK_EVERY: usize = 64;

/// One measured cell of the sweep.
struct Cell {
    policy: &'static str,
    store: &'static str,
    batch: usize,
    cycles_per_op: f64,
    major_faults: u64,
    evictions: u64,
    clean_skips: u64,
    wb_batches: u64,
    wb_pages: u64,
    wb_rescues: u64,
    wb_queue_peak: u64,
}

/// Runs one policy/store/batch configuration and measures the serving
/// core. The working set is allocated in stripe-safe chunks so the
/// same layout works on both the monolithic and the striped store.
fn run_cell(scale: Scale, policy: EvictPolicy, store: StoreKind, batch: usize, ops: usize) -> Cell {
    let epcpp = scale.bytes(24 << 20).next_power_of_two();
    let chunk = epcpp / 2;
    let buf = chunk * 8; // ~4x EPC++
    let cfg = SuvmConfig {
        epcpp_bytes: epcpp,
        backing_bytes: buf * 2,
        policy,
        store,
        wb_batch: batch,
        ..SuvmConfig::default()
    };
    let m = paper_machine(scale);
    let e = m.driver.create_enclave(&m, cfg.epcpp_bytes * 2 + (8 << 20));
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    let s = Suvm::new(&t0, cfg);
    let mut ctx = ThreadCtx::for_enclave(&m, &e, 0);
    ctx.enter();
    // The swapper's context lives on another core: drain cycles land on
    // its counter, not the serving thread's.
    let mut sw = ThreadCtx::for_enclave(&m, &e, 1);
    sw.enter();
    let bases: Vec<u64> = (0..8).map(|_| s.malloc(chunk)).collect();
    let chunk_pages = (chunk / PAGE_SIZE) as u64;
    let pages = chunk_pages * bases.len() as u64;
    let addr_of = |p: u64| bases[(p / chunk_pages) as usize] + (p % chunk_pages) * PAGE_SIZE as u64;

    let page = vec![0xabu8; PAGE_SIZE];
    for p in 0..pages {
        s.write(&mut ctx, addr_of(p), &page);
    }
    let mut rng = StdRng::seed_from_u64(23);
    let mut buf4k = vec![0u8; PAGE_SIZE];
    // 60/40 write/read mix: dirty victims keep the write-back path hot.
    let mut access = |s: &Suvm, ctx: &mut ThreadCtx, rng: &mut StdRng| {
        let p = rng.random_range(0..pages);
        if rng.random_range(0..10) < 6 {
            s.write(ctx, addr_of(p), &page);
        } else {
            s.read(ctx, addr_of(p), &mut buf4k);
        }
    };
    for _ in 0..ops / 4 {
        access(&s, &mut ctx, &mut rng);
    }
    if batch > 0 {
        s.swapper_tick(&mut sw);
    }
    m.reset_counters();
    let s0 = m.stats.snapshot();
    let c0 = ctx.now();
    for i in 0..ops {
        access(&s, &mut ctx, &mut rng);
        if batch > 0 && i % TICK_EVERY == TICK_EVERY - 1 {
            s.swapper_tick(&mut sw);
        }
    }
    let cycles = ctx.now() - c0;
    let d = m.stats.snapshot() - s0;
    ctx.exit();
    sw.exit();
    Cell {
        policy: policy.label(),
        store: store.label(),
        batch,
        cycles_per_op: cycles as f64 / ops as f64,
        major_faults: d.suvm_major_faults,
        evictions: d.suvm_evictions,
        clean_skips: d.suvm_clean_skips,
        wb_batches: d.suvm_wb_batches,
        wb_pages: d.suvm_wb_pages,
        wb_rescues: d.suvm_wb_rescues,
        wb_queue_peak: d.suvm_wb_queue_peak,
    }
}

/// Runs the sweep, prints a table, and writes `BENCH_paging.json`.
/// `quick` trims the batch axis for CI smoke runs.
pub fn run(scale: Scale, quick: bool) {
    header(
        "paging_bench",
        "eviction policy x backing store x write-back batch, dirty-heavy 4x EPC++",
        "batched async write-back amortizes GCM setup: batch>=8 beats inline eviction",
    );
    let policies = [
        EvictPolicy::Clock,
        EvictPolicy::Fifo,
        EvictPolicy::Random(5),
        EvictPolicy::LruApprox(9),
        EvictPolicy::Slru,
        EvictPolicy::SlruTuned,
    ];
    let stores = [StoreKind::Buddy, StoreKind::Striped { stripes: 8 }];
    let batches: &[usize] = if quick { &[0, 8] } else { &[0, 4, 8, 16] };
    let ops = scale.ops(if quick { 8_000 } else { 20_000 });
    println!(
        "   {:<7} {:<8} {:>5} {:>12} {:>9} {:>8} {:>8} {:>9} {:>8} {:>9}",
        "policy",
        "store",
        "batch",
        "cycles/op",
        "vs inl.",
        "faults",
        "evict",
        "wb_pages",
        "rescue",
        "wb_peak"
    );
    let mut cells: Vec<Cell> = Vec::new();
    for policy in policies {
        for store in stores {
            let mut inline_cpo = 0.0f64;
            for &batch in batches {
                let c = run_cell(scale, policy, store, batch, ops);
                if batch == 0 {
                    inline_cpo = c.cycles_per_op;
                }
                println!(
                    "   {:<7} {:<8} {:>5} {:>12.0} {:>9} {:>8} {:>8} {:>9} {:>8} {:>9}",
                    c.policy,
                    c.store,
                    c.batch,
                    c.cycles_per_op,
                    x(inline_cpo / c.cycles_per_op),
                    c.major_faults,
                    c.evictions,
                    c.wb_pages,
                    c.wb_rescues,
                    c.wb_queue_peak
                );
                cells.push(c);
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"suvm_paging\",\n");
    json.push_str(&format!("  \"scale\": {},\n", scale.0));
    json.push_str(&format!("  \"ops\": {ops},\n"));
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"policy\": \"{}\", \"store\": \"{}\", \"batch\": {}, \
             \"cycles_per_op\": {:.1}, \"major_faults\": {}, \"evictions\": {}, \
             \"clean_skips\": {}, \"wb_batches\": {}, \"wb_pages\": {}, \
             \"wb_rescues\": {}, \"wb_queue_peak\": {} }}{}\n",
            c.policy,
            c.store,
            c.batch,
            c.cycles_per_op,
            c.major_faults,
            c.evictions,
            c.clean_skips,
            c.wb_batches,
            c.wb_pages,
            c.wb_rescues,
            c.wb_queue_peak,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_paging.json";
    std::fs::write(path, &json).expect("write BENCH_paging.json");
    println!("   wrote {path}");
}
