//! Figure 10: end-to-end face-verification throughput (450 MB
//! database, ~4x PRM), across server configurations and thread counts.

use std::sync::{Arc, Mutex};

use eleos_apps::face::{hist_bytes, lbp_histogram, synth_capture, synth_image, FaceDb, FaceServer};
use eleos_enclave::thread::ThreadCtx;

use crate::harness::{header, kops, throughput, Mode, Rig, Scale};

/// Image side used by the experiment (the paper's 512, reduced with
/// scale to keep native LBP compute proportionate).
fn side(scale: Scale) -> usize {
    match scale.0 {
        1 => 512,
        2 => 512,
        4 => 256,
        _ => 128,
    }
}

/// The 10 Gb/s NIC that bounds the native server. Unscaled: both the
/// request bytes and the per-request CPU work scale with the image
/// area, so the cap sits at the same *relative* operating point at
/// every scale.
fn link_gbps(_scale: Scale) -> f64 {
    10.0
}

struct FaceRig {
    rig: Rig,
    server: Arc<Mutex<FaceServer>>,
    side: usize,
}

fn build(scale: Scale, mode: Mode, hists: &[Vec<u32>]) -> FaceRig {
    let s = side(scale);
    let dataset = hists.len() * hist_bytes(s);
    let rig = Rig::new(scale, mode, dataset + (dataset / 2), mode != Mode::Native);
    let mut ctx = rig.thread(0);
    let mut db = FaceDb::new(rig.data_space(), s, hists.len() as u64);
    db.init(&mut ctx);
    for (i, h) in hists.iter().enumerate() {
        db.enroll(&mut ctx, i as u64 + 1, h);
    }
    if ctx.in_enclave() {
        ctx.exit();
    }
    // Accept-all threshold: decision quality is covered by unit tests;
    // here we measure throughput.
    let server = Arc::new(Mutex::new(FaceServer::new(db, f64::MAX)));
    FaceRig {
        rig,
        server,
        side: s,
    }
}

fn phase(
    fr: &FaceRig,
    scale: Scale,
    threads: usize,
    reqs_per_thread: usize,
    wires: &[Vec<u8>],
) -> f64 {
    fr.rig.machine.reset_counters();
    let bytes_per_op = (12 + fr.side * fr.side + 64) as u64;
    let mut handles = Vec::new();
    for th in 0..threads {
        let machine = Arc::clone(&fr.rig.machine);
        let server = Arc::clone(&fr.server);
        let enclave = fr.rig.enclave.clone();
        let path = fr.rig.io_path();
        let wire = Arc::clone(&fr.rig.session);
        let wires = wires.to_vec();
        let enclaved = fr.rig.mode.enclaved();
        let buf_len = fr.side * fr.side + 4096;
        handles.push(std::thread::spawn(move || {
            let mut ctx = match &enclave {
                Some(e) => ThreadCtx::for_enclave(&machine, e, th),
                None => ThreadCtx::untrusted(&machine, th),
            };
            let ut = ThreadCtx::untrusted(&machine, th);
            let fd = machine.host.socket(&ut, 8 << 20);
            let io =
                eleos_apps::io::ServerIoConfig::with_buf_len(buf_len).build(&ut, &[fd], path, wire);
            if enclaved {
                ctx.enter();
            }
            let mut served = 0usize;
            let mut next = th * reqs_per_thread + th * 127; // disjoint slices per thread
            while served < reqs_per_thread {
                let batch = (reqs_per_thread - served).min(8);
                for _ in 0..batch {
                    machine
                        .host
                        .push_request(&ut, fd, &wires[next % wires.len()]);
                    next += 1;
                }
                for _ in 0..batch {
                    let mut srv = server.lock().expect("server mutex");
                    assert!(srv.handle_request(&mut ctx, &io), "request queued");
                }
                served += batch;
            }
            if enclaved {
                ctx.exit();
            }
            ctx.now()
        }));
    }
    let cycles: Vec<u64> = handles
        .into_iter()
        .map(|h| h.join().expect("server thread"))
        .collect();
    let max = cycles.into_iter().max().unwrap_or(1);
    throughput(
        (threads * reqs_per_thread) as u64,
        max,
        bytes_per_op,
        Some(link_gbps(scale)),
    )
}

/// Runs Figure 10.
pub fn run(scale: Scale) {
    header(
        "fig10",
        "face-verification throughput (database ~4x PRM)",
        "native is network-bound; RPC alone ineffective; RPC+SUVM reaches ~95% of \
         native, ~2.3x over vanilla SGX",
    );
    let s = side(scale);
    // Database ~450MB at full scale.
    let n_ids = (scale.bytes(450 << 20) / hist_bytes(s)).max(8) as u64;
    println!(
        "   [setup] {n_ids} identities x {} KB histograms ({} MB), image side {s}",
        hist_bytes(s) / 1024,
        (n_ids as usize * hist_bytes(s)) >> 20
    );
    let hists: Vec<Vec<u32>> = (1..=n_ids)
        .map(|id| lbp_histogram(&synth_image(id, s), s))
        .collect();
    let reqs = scale.ops(4_000);

    println!(
        "   {:<14} {:>10} {:>10} {:>10}",
        "config", "1 thread", "2 threads", "4 threads"
    );
    for mode in [
        Mode::Native,
        Mode::SgxOcall,
        Mode::EleosRpc,
        Mode::EleosSuvm,
    ] {
        let fr = build(scale, mode, &hists);
        // A pool of pre-encrypted genuine requests large enough that
        // the stream sweeps well past the EPC (no artificial hot set).
        let pool = (n_ids as usize).clamp(64, 2048);
        let wires: Vec<Vec<u8>> = (0..pool)
            .map(|i| {
                let id = 1 + (i as u64 * 37) % n_ids;
                let img = synth_capture(id, s, i as u64);
                fr.rig
                    .session
                    .encrypt(&eleos_apps::face::build_verify_request(id, s, &img))
            })
            .collect();
        let mut row = format!("   {:<14}", mode.label());
        for threads in [1usize, 2, 4] {
            let t = phase(&fr, scale, threads, reqs / threads, &wires);
            row.push_str(&format!(" {:>10}", kops(t)));
        }
        println!("{row}");
    }
}
