//! Figure 6: what the exit-less RPC recovers — direct exit costs
//! (6a), LLC pollution via CAT partitioning (6b), and TLB flushes
//! (6c).

use eleos_apps::loadgen::ParamLoad;
use eleos_apps::param_server::TableKind;

use crate::harness::{header, run_param_server, run_param_server_batched, x, Mode, Rig, Scale};

/// End-to-end cycles per request for one mode.
fn e2e_per_req(
    scale: Scale,
    mode: Mode,
    data_bytes: usize,
    keys_per_req: usize,
    n_requests: usize,
) -> f64 {
    let rig = Rig::new(scale, mode, data_bytes, false);
    let n_keys = (data_bytes / 32) as u64;
    let mut load = ParamLoad::new(13, n_keys, keys_per_req, None);
    let run = run_param_server(
        &rig,
        TableKind::OpenAddressing,
        n_keys,
        n_requests,
        n_requests / 10,
        move || load.next_plain(),
    );
    run.e2e_cycles as f64 / run.ops as f64
}

/// End-to-end cycles per request when the server pipelines requests
/// in batches of `batch` over real batched ring submission, with the
/// wire crypto run batched or per-message.
fn e2e_per_req_batched(
    scale: Scale,
    mode: Mode,
    data_bytes: usize,
    batch: usize,
    batched_crypto: bool,
    n_requests: usize,
) -> f64 {
    let rig = Rig::new(scale, mode, data_bytes, false);
    let n_keys = (data_bytes / 32) as u64;
    let mut load = ParamLoad::new(13, n_keys, 1, None);
    let run = run_param_server_batched(
        &rig,
        TableKind::OpenAddressing,
        n_keys,
        n_requests,
        n_requests / 10,
        batch,
        batched_crypto,
        move || load.next_plain(),
    );
    run.e2e_cycles as f64 / run.ops as f64
}

/// Runs Figure 6a: eliminating EENTER/EEXIT costs.
pub fn run_6a(scale: Scale) {
    let crypto = eleos_apps::io::ServerIoConfig::default().crypto_label();
    header(
        "fig6a",
        &format!(
            "slowdown vs untrusted, OCALL vs exit-less RPC (2MB server), \
             {crypto} wire crypto"
        ),
        "RPC ~6x better for single-update requests, parity at 64 updates",
    );
    let data = scale.bytes(2 << 20);
    let n = scale.ops(100_000);
    println!(
        "   {:<10} {:>10} {:>10} {:>12}",
        "keys/req", "sgx", "eleos-rpc", "rpc gain"
    );
    for keys in [1usize, 8, 16, 32, 64] {
        let n_req = (n / keys).max(64);
        let native = e2e_per_req(scale, Mode::Native, data, keys, n_req);
        let ocall = e2e_per_req(scale, Mode::SgxOcall, data, keys, n_req);
        let rpc = e2e_per_req(scale, Mode::EleosRpc, data, keys, n_req);
        println!(
            "   {:<10} {:>10} {:>10} {:>12}",
            keys,
            x(ocall / native),
            x(rpc / native),
            x(ocall / rpc)
        );
    }

    // Batched-submission sweep: the same 1-update requests, but the
    // server pipelines recv/process/send in batches so each I/O stage
    // is a single amortized ring submission. The sync row (batch 1)
    // pays a full rpc_roundtrip per syscall; deeper batches pay it
    // once and rpc_post thereafter. The two crypto columns compare
    // per-message GCM setup against the batched pipeline that pays the
    // setup once per batch (quarter-rate for follow-ons).
    println!("   batched submission sweep (1 key/req, cycles/req):");
    println!(
        "   {:<10} {:>14} {:>14} {:>12} {:>12}",
        "batch", "per-msg c/req", "batched c/req", "crypto gain", "vs batch=1"
    );
    let n_req = n.max(256);
    let sync = e2e_per_req_batched(scale, Mode::EleosRpc, data, 1, false, n_req);
    for batch in [1usize, 4, 8, 16, 32, 64] {
        let per_msg = if batch == 1 {
            sync
        } else {
            e2e_per_req_batched(scale, Mode::EleosRpc, data, batch, false, n_req)
        };
        let batched = e2e_per_req_batched(scale, Mode::EleosRpc, data, batch, true, n_req);
        println!(
            "   {:<10} {:>14.0} {:>14.0} {:>12} {:>12}",
            batch,
            per_msg,
            batched,
            x(per_msg / batched),
            x(sync / batched)
        );
    }
}

/// In-enclave cycles per key with RPC syscalls, CAT on or off.
fn rpc_inner_per_key(
    scale: Scale,
    cat: bool,
    data_bytes: usize,
    hot_bytes: usize,
    keys_per_req: usize,
    n_requests: usize,
) -> f64 {
    let rig = Rig::new(scale, Mode::EleosRpc, data_bytes, cat);
    let n_keys = (data_bytes / 32) as u64;
    let hot_keys = (hot_bytes / 32) as u64;
    let warmup = crate::experiments::fig2::warmup_for(hot_keys, keys_per_req, n_requests);
    let mut load = ParamLoad::new(17, n_keys, keys_per_req, Some(hot_keys));
    let run = run_param_server(
        &rig,
        TableKind::OpenAddressing,
        n_keys,
        n_requests,
        warmup,
        move || load.next_plain(),
    );
    run.inner_cycles as f64 / (run.ops as f64 * keys_per_req as f64)
}

/// Runs Figure 6b: CAT partitioning against I/O pollution.
pub fn run_6b(scale: Scale) {
    header(
        "fig6b",
        "LLC partitioning (75% enclave / 25% RPC worker), 64MB server, hot 8MB",
        "CAT saves over 25% of in-enclave time for larger I/O buffers",
    );
    let data = scale.bytes(64 << 20);
    let hot = scale.bytes(2 << 20); // fits the enclave LLC partition
    let n = scale.ops(100_000);
    println!(
        "   {:<10} {:>14} {:>14} {:>10}",
        "keys/req", "no-CAT c/key", "CAT c/key", "saved"
    );
    for keys in [1usize, 8, 16, 32, 64] {
        let n_req = (n / keys).max(64);
        let off = rpc_inner_per_key(scale, false, data, hot, keys, n_req);
        let on = rpc_inner_per_key(scale, true, data, hot, keys, n_req);
        println!(
            "   {:<10} {:>14.0} {:>14.0} {:>9.1}%",
            keys,
            off,
            on,
            100.0 * (off - on) / off
        );
    }
}

/// Runs Figure 6c: exit-less syscalls eliminate the TLB flushes that
/// penalize pointer chasing.
pub fn run_6c(scale: Scale) {
    header(
        "fig6c",
        "chaining server (2MB): in-enclave time, OCALL vs RPC",
        "RPC up to 5.5x faster in-enclave (no TLB flush per request)",
    );
    let data = scale.bytes(2 << 20);
    let n_keys = (data / 32) as u64;
    let n = scale.ops(100_000);
    println!(
        "   {:<10} {:>14} {:>14} {:>10}",
        "keys/req", "ocall c/req", "rpc c/req", "speedup"
    );
    for keys in [1usize, 2, 4, 8, 16, 32] {
        let n_req = (n / keys).max(64);
        let mut per_mode = Vec::new();
        for mode in [Mode::SgxOcall, Mode::EleosRpc] {
            let rig = Rig::new(scale, mode, data, false);
            let mut load = ParamLoad::new(19, n_keys, keys, None);
            let run = run_param_server(
                &rig,
                TableKind::Chaining,
                n_keys,
                n_req,
                n_req / 10,
                move || load.next_plain(),
            );
            per_mode.push(run.inner_cycles as f64 / run.ops as f64);
        }
        println!(
            "   {:<10} {:>14.0} {:>14.0} {:>10}",
            keys,
            per_mode[0],
            per_mode[1],
            x(per_mode[0] / per_mode[1])
        );
    }
}
