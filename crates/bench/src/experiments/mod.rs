//! One module per table/figure of the paper's evaluation.
//!
//! Every `run(scale)` prints the paper's expectation followed by the
//! measured rows, and returns nothing — the `repro` binary is the
//! driver. `EXPERIMENTS.md` records a captured run against the paper.

pub mod ablations;
pub mod costs;
pub mod crypto_bench;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod paging_bench;
pub mod rpc_bench;
pub mod serving_bench;
pub mod storage_bench;
pub mod table1;
pub mod table3;
