//! Table 3: direct sub-page backing-store access vs EPC++ page-cache
//! access, for short random reads without locality.

use eleos_core::{Suvm, SuvmConfig};
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::costs::PAGE_SIZE;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::harness::{header, paper_machine, paper_suvm_config, Scale};

/// Access sizes swept (bytes). Sub-pages are 1 KiB, pages 4 KiB, as in
/// the paper's §6.1.2.
const SIZES: [usize; 4] = [16, 256, 2048, 4096];

fn one_mode(scale: Scale, buf_bytes: usize, size: usize, n: usize, direct: bool) -> f64 {
    let m = paper_machine(scale);
    let e = m
        .driver
        .create_enclave(&m, scale.bytes(70 << 20) * 2 + (16 << 20));
    let t0 = ThreadCtx::for_enclave(&m, &e, 0);
    // Only the direct-access instance seals sub-pages; the EPC++
    // baseline uses whole-page seals (one tag per page), as in the
    // paper's comparison.
    let suvm = Suvm::new(
        &t0,
        SuvmConfig {
            seal_sub_pages: direct,
            ..paper_suvm_config(scale, buf_bytes)
        },
    );
    let mut t = ThreadCtx::for_enclave(&m, &e, 0);
    t.enter();
    let sva = suvm.malloc(buf_bytes);
    // Populate: every page gets written, so evictions seal it (as
    // sub-pages) into the backing store.
    let page = vec![3u8; PAGE_SIZE];
    for off in (0..buf_bytes).step_by(PAGE_SIZE) {
        suvm.write(&mut t, sva + off as u64, &page);
    }
    // Drain the populate-phase dirty pages so the measured phase sees
    // the read-only steady state (clean evictions only).
    while suvm.evict_one(&mut t) {}
    let mut rng = StdRng::seed_from_u64(23);
    let slots = (buf_bytes / size) as u64;
    let mut buf = vec![0u8; size];
    // Warm pass.
    for _ in 0..n / 4 {
        let off = rng.random_range(0..slots) * size as u64;
        if direct {
            suvm.read_direct(&mut t, sva + off, &mut buf);
        } else {
            suvm.read(&mut t, sva + off, &mut buf);
        }
    }
    m.reset_counters();
    let mut rng = StdRng::seed_from_u64(29);
    let c0 = t.now();
    for _ in 0..n {
        let off = rng.random_range(0..slots) * size as u64;
        if direct {
            suvm.read_direct(&mut t, sva + off, &mut buf);
        } else {
            suvm.read(&mut t, sva + off, &mut buf);
        }
    }
    let per = (t.now() - c0) as f64 / n as f64;
    t.exit();
    per
}

/// Runs Table 3.
pub fn run(scale: Scale) {
    header(
        "table3",
        "direct access (1KB sub-pages) vs EPC++ (4KB pages), random reads",
        "+58% @16B, +41% @256B, -3% @2KB, -17% @4KB",
    );
    let buf = scale.bytes(200 << 20);
    let n = scale.ops(40_000);
    println!(
        "   {:<12} {:>14} {:>14} {:>10}",
        "bytes/access", "epc++ c/acc", "direct c/acc", "speedup"
    );
    for size in SIZES {
        let epcpp = one_mode(scale, buf, size, n, false);
        let direct = one_mode(scale, buf, size, n, true);
        println!(
            "   {:<12} {:>14.0} {:>14.0} {:>9.0}%",
            size,
            epcpp,
            direct,
            100.0 * (epcpp - direct) / epcpp
        );
    }
}
