//! Figure 2: the indirect costs of system-call-induced exits — LLC
//! pollution (2a) and TLB flushes (2b) — measured as *in-enclave*
//! execution time, excluding direct exit costs.

use eleos_apps::loadgen::ParamLoad;
use eleos_apps::param_server::TableKind;

use crate::harness::{header, run_param_server, x, Mode, Rig, Scale};

/// Request-size sweep for both sub-figures.
pub const KEY_COUNTS: [usize; 5] = [1, 8, 16, 32, 64];

/// Measures in-enclave (or in-server for native) cycles per key for
/// one configuration.
pub fn inner_per_key(
    scale: Scale,
    mode: Mode,
    kind: TableKind,
    data_bytes: usize,
    hot_bytes: Option<usize>,
    keys_per_req: usize,
    n_requests: usize,
) -> f64 {
    let rig = Rig::new(scale, mode, data_bytes, false);
    let n_keys = (data_bytes / 32) as u64;
    let hot = hot_bytes.map(|h| (h / 32) as u64);
    // Warm until the hot set is resident (several touches per hot key).
    let warmup = warmup_for(hot.unwrap_or(n_keys), keys_per_req, n_requests);
    let mut load = ParamLoad::new(11, n_keys, keys_per_req, hot);
    let run = run_param_server(&rig, kind, n_keys, n_requests, warmup, move || {
        load.next_plain()
    });
    run.inner_cycles as f64 / (run.ops as f64 * keys_per_req as f64)
}

/// Warm-up request count that touches each hot key ~4 times.
pub fn warmup_for(hot_keys: u64, keys_per_req: usize, n_requests: usize) -> usize {
    ((4 * hot_keys as usize) / keys_per_req)
        .max(n_requests / 10)
        .max(32)
}

/// Runs Figure 2a: LLC pollution by syscall I/O buffers.
pub fn run_2a(scale: Scale) {
    header(
        "fig2a",
        "cache-pollution cost of hot requests on a 64MB server",
        "in-enclave time grows to ~2.2x the untrusted run as request size grows",
    );
    let data = scale.bytes(64 << 20);
    let hot = Some(scale.bytes(2 << 20)); // fits the enclave LLC partition (see EXPERIMENTS.md)
    let n = scale.ops(100_000);
    println!(
        "   {:<10} {:>14} {:>14} {:>10}",
        "keys/req", "enclave c/key", "native c/key", "ratio"
    );
    for keys in KEY_COUNTS {
        let n_req = (n / keys).max(64);
        let e = inner_per_key(
            scale,
            Mode::SgxOcall,
            TableKind::OpenAddressing,
            data,
            hot,
            keys,
            n_req,
        );
        let u = inner_per_key(
            scale,
            Mode::Native,
            TableKind::OpenAddressing,
            data,
            hot,
            keys,
            n_req,
        );
        println!("   {:<10} {:>14.0} {:>14.0} {:>10}", keys, e, u, x(e / u));
    }
}

/// Runs Figure 2b: TLB-flush cost for pointer-chasing tables.
pub fn run_2b(scale: Scale) {
    header(
        "fig2b",
        "TLB-flush cost on a 2MB server: chaining vs open addressing",
        "chaining degrades with keys/request; open addressing stays flat",
    );
    let data = scale.bytes(2 << 20);
    let n = scale.ops(100_000);
    println!(
        "   {:<10} {:>14} {:>14} {:>10}",
        "keys/req", "chain c/req", "open c/req", "chain/open"
    );
    for keys in [1usize, 2, 4, 8, 16, 32] {
        let n_req = (n / keys).max(64);
        let chain = keys as f64
            * inner_per_key(
                scale,
                Mode::SgxOcall,
                TableKind::Chaining,
                data,
                None,
                keys,
                n_req,
            );
        let open = keys as f64
            * inner_per_key(
                scale,
                Mode::SgxOcall,
                TableKind::OpenAddressing,
                data,
                None,
                keys,
                n_req,
            );
        println!(
            "   {:<10} {:>14.0} {:>14.0} {:>10}",
            keys,
            chain,
            open,
            x(chain / open)
        );
    }
}
