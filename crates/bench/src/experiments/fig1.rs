//! Figure 1: parameter-server slowdown in the enclave over untrusted
//! execution, with and without Eleos, for three data sizes (fits-LLC /
//! fits-EPC / exceeds-EPC).

use eleos_apps::loadgen::ParamLoad;
use eleos_apps::param_server::TableKind;

use crate::harness::{header, run_param_server, x, Mode, Rig, Scale};

/// Runs Figure 1.
pub fn run(scale: Scale) {
    header(
        "fig1",
        "parameter-server slowdown in the enclave vs untrusted",
        "SGX 9x (2MB) to 34x (512MB); Eleos recovers most of the loss",
    );
    let sizes = [
        ("2MB", scale.bytes(2 << 20)),
        ("64MB", scale.bytes(64 << 20)),
        ("512MB", scale.bytes(512 << 20)),
    ];
    let n_requests = scale.ops(100_000);
    println!(
        "   {:<8} {:>12} {:>12} {:>12} {:>12}",
        "size", "sgx", "eleos-rpc", "eleos-full", "(native=1x)"
    );
    for (label, bytes) in sizes {
        let n_keys = (bytes / 32) as u64;
        let mut per_mode = Vec::new();
        for mode in [
            Mode::Native,
            Mode::SgxOcall,
            Mode::EleosRpc,
            Mode::EleosSuvm,
        ] {
            let cat = mode == Mode::EleosSuvm;
            let rig = Rig::new(scale, mode, bytes, cat);
            let mut load = ParamLoad::new(7, n_keys, 1, None);
            let run = run_param_server(
                &rig,
                TableKind::OpenAddressing,
                n_keys,
                n_requests,
                n_requests / 10,
                move || load.next_plain(),
            );
            per_mode.push(run.e2e_cycles as f64 / run.ops as f64);
        }
        println!(
            "   {:<8} {:>12} {:>12} {:>12}",
            label,
            x(per_mode[1] / per_mode[0]),
            x(per_mode[2] / per_mode[0]),
            x(per_mode[3] / per_mode[0]),
        );
    }
}
