//! Figure 7 and Table 2: SUVM vs native SGX paging under page-fault
//! intensive random access, single- and multi-threaded.

use std::sync::Arc;

use eleos_core::{Suvm, SuvmConfig};
use eleos_enclave::enclave::Enclave;
use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;
use eleos_sim::costs::PAGE_SIZE;
use eleos_sim::stats::StatsSnapshot;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::harness::{header, kops, paper_machine, paper_suvm_config, throughput, x, Scale};

/// Which paging system serves the buffer.
enum Backend {
    Sgx(Arc<Enclave>, u64),
    Suvm(Arc<Enclave>, Arc<Suvm>, u64),
}

struct RunOut {
    ops: u64,
    max_cycles: u64,
    stats: StatsSnapshot,
}

/// Runs `threads` workers doing 4 KiB random accesses over the buffer.
fn random_access(
    m: &Arc<SgxMachine>,
    backend: &Backend,
    buf_bytes: usize,
    ops_per_thread: usize,
    threads: usize,
    write: bool,
    warm: bool,
) -> RunOut {
    let pages = (buf_bytes / PAGE_SIZE) as u64;
    let run_phase = |measure: bool, ops: usize| -> RunOut {
        let mut handles = Vec::new();
        for th in 0..threads {
            let m = Arc::clone(m);
            let (enclave, suvm, base) = match backend {
                Backend::Sgx(e, b) => (Arc::clone(e), None, *b),
                Backend::Suvm(e, s, b) => (Arc::clone(e), Some(Arc::clone(s)), *b),
            };
            handles.push(std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + th as u64 + if measure { 7 } else { 0 });
                let mut ctx = ThreadCtx::for_enclave(&m, &enclave, th);
                ctx.enter();
                let mut buf = vec![0u8; PAGE_SIZE];
                for _ in 0..ops {
                    let page = rng.random_range(0..pages);
                    let addr = base + page * PAGE_SIZE as u64;
                    match (&suvm, write) {
                        (Some(s), false) => s.read(&mut ctx, addr, &mut buf),
                        (Some(s), true) => s.write(&mut ctx, addr, &buf),
                        (None, false) => ctx.read_enclave(addr, &mut buf),
                        (None, true) => ctx.write_enclave(addr, &buf),
                    }
                }
                ctx.exit();
                ctx.now()
            }));
        }
        let cycles: Vec<u64> = handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect();
        RunOut {
            ops: (ops * threads) as u64,
            max_cycles: cycles.into_iter().max().unwrap_or(1),
            stats: m.stats.snapshot(),
        }
    };

    if warm {
        run_phase(false, ops_per_thread / 4 + 16);
    }
    m.reset_counters();
    let s0 = m.stats.snapshot();
    let mut out = run_phase(true, ops_per_thread);
    out.stats = out.stats - s0;
    out
}

fn build_sgx(m: &Arc<SgxMachine>, buf_bytes: usize) -> Backend {
    let e = m.driver.create_enclave(m, buf_bytes + (16 << 20));
    let base = e.alloc(buf_bytes);
    Backend::Sgx(e, base)
}

/// Writes every page once so all later faults go through the sealed
/// path (the paper accesses an initialized array).
fn populate(m: &Arc<SgxMachine>, backend: &Backend, buf_bytes: usize) {
    let page = vec![0x6eu8; PAGE_SIZE];
    match backend {
        Backend::Sgx(e, base) => {
            let mut ctx = ThreadCtx::for_enclave(m, e, 0);
            ctx.enter();
            for off in (0..buf_bytes).step_by(PAGE_SIZE) {
                ctx.write_enclave(base + off as u64, &page);
            }
            ctx.exit();
        }
        Backend::Suvm(e, s, base) => {
            let mut ctx = ThreadCtx::for_enclave(m, e, 0);
            ctx.enter();
            for off in (0..buf_bytes).step_by(PAGE_SIZE) {
                s.write(&mut ctx, base + off as u64, &page);
            }
            ctx.exit();
        }
    }
}

fn build_suvm(
    m: &Arc<SgxMachine>,
    scale: Scale,
    buf_bytes: usize,
    cfg: Option<SuvmConfig>,
) -> Backend {
    // The enclave itself stays small: EPC++ plus headroom, so the
    // hardware never pages (that is SUVM's job).
    let cfg = cfg.unwrap_or_else(|| paper_suvm_config(scale, buf_bytes));
    let e = m.driver.create_enclave(m, cfg.epcpp_bytes * 2 + (8 << 20));
    let t = ThreadCtx::for_enclave(m, &e, 0);
    let s = Suvm::new(&t, cfg);
    let base = s.malloc(buf_bytes);
    Backend::Suvm(e, s, base)
}

/// Runs Figure 7a (1 thread) or 7b (4 threads).
pub fn run_fig7(scale: Scale, threads: usize) {
    let id = if threads == 1 { "fig7a" } else { "fig7b" };
    let policy = SuvmConfig::default().policy.label();
    header(
        id,
        &format!(
            "SUVM speedup over SGX paging, 4K random accesses, {threads} thread(s), \
             {policy} eviction"
        ),
        "reads up to ~5.5x, writes ~3x; speedup higher with 4 threads (no shootdowns)",
    );
    let sizes_mb = [60usize, 100, 200, 400, 800, 1600];
    let ops = scale.ops(100_000) / threads;
    println!(
        "   {:<10} {:>6} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "buffer", "op", "sgx acc/s", "suvm acc/s", "speedup", "sgx faults", "suvm faults"
    );
    for mb in sizes_mb {
        let buf = scale.bytes(mb << 20);
        // One machine+backend per paging system, populated once and
        // reused for the read and write passes.
        let mut results = Vec::new();
        for suvm in [false, true] {
            let m = paper_machine(scale);
            let backend = if suvm {
                build_suvm(&m, scale, buf, None)
            } else {
                build_sgx(&m, buf)
            };
            populate(&m, &backend, buf);
            let mut per_op = Vec::new();
            for write in [false, true] {
                let out = random_access(&m, &backend, buf, ops, threads, write, true);
                let thr = throughput(out.ops, out.max_cycles, PAGE_SIZE as u64, None);
                let faults = if suvm {
                    out.stats.suvm_major_faults
                } else {
                    out.stats.hw_faults
                };
                per_op.push((thr, faults));
            }
            results.push(per_op);
        }
        for (i, write) in [false, true].into_iter().enumerate() {
            println!(
                "   {:<10} {:>6} {:>12} {:>12} {:>9} {:>12} {:>12}",
                format!("{mb}MB"),
                if write { "write" } else { "read" },
                kops(results[0][i].0),
                kops(results[1][i].0),
                x(results[1][i].0 / results[0][i].0),
                results[0][i].1,
                results[1][i].1
            );
        }
    }
}

/// Runs Table 2: IPIs and faults, SGX vs SUVM, 1 vs 4 threads.
pub fn run_table2(scale: Scale) {
    header(
        "table2",
        "IPIs and page faults: 4K random reads from a 200MB buffer",
        "SGX: ~50k IPIs (1 thr) growing to ~78k (4 thr); SUVM: ~100 IPIs; \
         SGX ~116k faults vs SUVM ~151k faults",
    );
    let buf = scale.bytes(200 << 20);
    println!(
        "   {:<8} {:>10} {:>12} {:>10} {:>12} {:>9}",
        "threads", "sgx IPIs", "sgx faults", "suvm IPIs", "suvm faults", "speedup"
    );
    for threads in [1usize, 4] {
        let ops = scale.ops(100_000) / threads;
        let mut rows = Vec::new();
        for suvm in [false, true] {
            let m = paper_machine(scale);
            let backend = if suvm {
                build_suvm(&m, scale, buf, None)
            } else {
                build_sgx(&m, buf)
            };
            let out = random_access(&m, &backend, buf, ops, threads, false, true);
            let thr = throughput(out.ops, out.max_cycles, PAGE_SIZE as u64, None);
            let faults = if suvm {
                out.stats.suvm_major_faults
            } else {
                out.stats.hw_faults
            };
            rows.push((out.stats.ipis, faults, thr));
        }
        println!(
            "   {:<8} {:>10} {:>12} {:>10} {:>12} {:>9}",
            threads,
            rows[0].0,
            rows[0].1,
            rows[1].0,
            rows[1].1,
            x(rows[1].2 / rows[0].2)
        );
    }
}

/// §6.1.2 "SUVM software page faults vs SGX hardware page faults" —
/// re-measured fault latencies (also part of `repro costs`).
pub fn run_pf_latency(scale: Scale) {
    crate::experiments::costs::run(scale);
}
