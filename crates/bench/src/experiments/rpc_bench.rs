//! RPC ring microbenchmark: caller cycles/op for synchronous `call()`
//! vs batched `submit_batch()` at increasing in-flight depth, on the
//! real polling ring. Emits `BENCH_rpc.json` for machine consumption.

use std::sync::Arc;

use eleos_enclave::machine::SgxMachine;
use eleos_enclave::thread::ThreadCtx;
use eleos_rpc::{RpcService, UntrustedFn};

use crate::harness::{header, paper_machine, x, Scale, RPC_CORE};

/// Function id for the benchmark no-op host call.
const NOP: u64 = 100;
/// Host-side work per call, cycles (a small memcpy-ish service body).
const NOP_CYCLES: u64 = 200;

fn service(machine: &Arc<SgxMachine>) -> RpcService {
    RpcService::builder(machine)
        .register(
            NOP,
            UntrustedFn::new(|ctx, _args| {
                ctx.compute(NOP_CYCLES);
                0
            }),
        )
        .workers(1, &[RPC_CORE])
        .build()
}

/// Caller cycles/op for `n` synchronous calls.
fn sync_cycles_per_op(machine: &Arc<SgxMachine>, svc: &RpcService, n: usize) -> f64 {
    let e = machine.driver.create_enclave(machine, 1 << 20);
    let mut t = ThreadCtx::for_enclave(machine, &e, 0);
    t.enter();
    let c0 = t.now();
    for _ in 0..n {
        svc.call(&mut t, NOP, [0; 4]);
    }
    let d = t.now() - c0;
    t.exit();
    d as f64 / n as f64
}

/// Caller cycles/op for `n` calls issued as batches of `depth`.
fn batched_cycles_per_op(
    machine: &Arc<SgxMachine>,
    svc: &RpcService,
    n: usize,
    depth: usize,
) -> f64 {
    let e = machine.driver.create_enclave(machine, 1 << 20);
    let mut t = ThreadCtx::for_enclave(machine, &e, 0);
    t.enter();
    let reqs = vec![(NOP, [0u64; 4]); depth];
    let c0 = t.now();
    let mut done = 0usize;
    while done < n {
        let take = (n - done).min(depth);
        svc.submit_batch(&mut t, &reqs[..take]).wait_all(&mut t);
        done += take;
    }
    let d = t.now() - c0;
    t.exit();
    d as f64 / n as f64
}

/// Runs the sweep, prints a table, and writes `BENCH_rpc.json`.
pub fn run(scale: Scale) {
    header(
        "rpc_bench",
        "caller cycles/op, sync call() vs submit_batch() in-flight depth",
        "batching amortizes the ring handoff; deeper is strictly cheaper",
    );
    let machine = paper_machine(scale);
    let svc = service(&machine);
    let n = scale.ops(20_000);
    let sync = sync_cycles_per_op(&machine, &svc, n);
    println!("   {:<10} {:>14} {:>10}", "depth", "cycles/op", "vs sync");
    println!("   {:<10} {:>14.0} {:>10}", "sync", sync, x(1.0));
    let depths = [4usize, 8, 16, 32, 64];
    let mut rows = Vec::new();
    for depth in depths {
        let b = batched_cycles_per_op(&machine, &svc, n, depth);
        println!("   {:<10} {:>14.0} {:>10}", depth, b, x(sync / b));
        rows.push((depth, b));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"rpc_throughput\",\n");
    json.push_str(&format!("  \"scale\": {},\n", scale.0));
    json.push_str(&format!("  \"ops\": {n},\n"));
    json.push_str(&format!("  \"worker_cycles_per_op\": {NOP_CYCLES},\n"));
    json.push_str(&format!("  \"sync_cycles_per_op\": {sync:.1},\n"));
    json.push_str("  \"batched\": [\n");
    for (i, (depth, b)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"depth\": {depth}, \"cycles_per_op\": {b:.1}, \"speedup_vs_sync\": {:.3} }}{}\n",
            sync / b,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_rpc.json";
    std::fs::write(path, &json).expect("write BENCH_rpc.json");
    println!("   wrote {path}");
}
