//! Reproduction harness for every table and figure in the Eleos
//! (EuroSys'17) evaluation.
//!
//! The `repro` binary drives the [`experiments`] modules; [`harness`]
//! holds the shared rig construction, scaling and reporting helpers.
//! See `EXPERIMENTS.md` at the repository root for a captured run
//! annotated against the paper's numbers.

pub mod experiments;
pub mod harness;
