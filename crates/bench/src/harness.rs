//! Shared machinery for the reproduction experiments.
//!
//! Experiments run at a configurable **scale**: scale 1 is the paper's
//! hardware (93 MiB usable PRM, 8 MiB LLC, 100k-request runs, 450–500
//! MB datasets); scale `f` divides every capacity and dataset by `f`
//! so the *regimes* (fits-in-LLC / fits-in-EPC / exceeds-EPC) are
//! preserved while the simulation finishes quickly. The default repro
//! scale is 4; `repro --full` runs scale 1.

use std::sync::Arc;

use eleos_apps::io::{IoPath, ServerIo, ServerIoConfig};
use eleos_apps::loadgen::{attest_session, ShardMap};
use eleos_apps::param_server::{ParamServer, TableKind};
use eleos_apps::space::DataSpace;
use eleos_apps::wire::Session;
use eleos_core::{Suvm, SuvmConfig};
use eleos_enclave::host::Fd;
use eleos_enclave::machine::{MachineConfig, SgxMachine};
use eleos_enclave::thread::ThreadCtx;
use eleos_rpc::{with_syscalls, RpcService};
use eleos_sim::costs::CPU_HZ;
use eleos_sim::llc::LlcConfig;
use eleos_sim::stats::StatsSnapshot;

/// Experiment scale divisor (power of two).
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub usize);

impl Scale {
    /// The paper's scale.
    pub const FULL: Scale = Scale(1);

    /// Parses `--full` / `--scale N` style arguments.
    #[must_use]
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--full") {
            return Scale::FULL;
        }
        if let Some(i) = args.iter().position(|a| a == "--scale") {
            let f: usize = args
                .get(i + 1)
                .and_then(|s| s.parse().ok())
                .expect("--scale requires a power-of-two integer");
            assert!(f.is_power_of_two(), "--scale must be a power of two");
            return Scale(f);
        }
        Scale(4)
    }

    /// Scales a byte size.
    #[must_use]
    pub fn bytes(&self, full: usize) -> usize {
        (full / self.0).max(4096)
    }

    /// Scales an operation count.
    #[must_use]
    pub fn ops(&self, full: usize) -> usize {
        (full / self.0).max(64)
    }
}

/// Builds the paper's §6 machine at the given scale.
#[must_use]
pub fn paper_machine(scale: Scale) -> Arc<SgxMachine> {
    SgxMachine::new(MachineConfig {
        epc_bytes: scale.bytes(93 << 20),
        untrusted_bytes: 4 << 30,
        llc: LlcConfig {
            size: scale.bytes(8 << 20),
            ways: 16,
        },
        ..MachineConfig::default()
    })
}

/// The paper's SUVM configuration (EPC++ 60 MiB) at scale.
#[must_use]
pub fn paper_suvm_config(scale: Scale, backing_bytes: usize) -> SuvmConfig {
    SuvmConfig {
        epcpp_bytes: scale.bytes(60 << 20),
        backing_bytes: backing_bytes.next_power_of_two(),
        headroom_bytes: scale.bytes(16 << 20),
        ..SuvmConfig::default()
    }
}

/// Converts cycles to seconds.
#[must_use]
pub fn secs(cycles: u64) -> f64 {
    cycles as f64 / CPU_HZ
}

/// Throughput in operations per second, optionally capped by a network
/// link (Fig 10's native server is NIC-bound).
#[must_use]
pub fn throughput(ops: u64, cycles: u64, bytes_per_op: u64, link_gbps: Option<f64>) -> f64 {
    let t = ops as f64 / secs(cycles.max(1));
    match link_gbps {
        Some(gbps) => t.min(gbps * 1e9 / 8.0 / bytes_per_op as f64),
        None => t,
    }
}

/// How a server reaches its data and the OS — the paper's
/// configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No SGX: untrusted data, direct syscalls.
    Native,
    /// Vanilla SGX (or Graphene): enclave data, OCALL syscalls.
    SgxOcall,
    /// Eleos RPC only: enclave data, exit-less syscalls.
    EleosRpc,
    /// Eleos RPC + SUVM (+ CAT).
    EleosSuvm,
    /// Eleos RPC + SUVM with direct sub-page access.
    EleosSuvmDirect,
}

impl Mode {
    /// Output label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Native => "native",
            Mode::SgxOcall => "sgx",
            Mode::EleosRpc => "eleos-rpc",
            Mode::EleosSuvm => "eleos-suvm",
            Mode::EleosSuvmDirect => "eleos-direct",
        }
    }

    /// Whether the mode runs inside an enclave.
    #[must_use]
    pub fn enclaved(&self) -> bool {
        !matches!(self, Mode::Native)
    }
}

/// A fully wired server harness: machine, optional enclave/SUVM/RPC,
/// socket and measurement thread context.
pub struct Rig {
    /// The machine.
    pub machine: Arc<SgxMachine>,
    /// The enclave, in enclaved modes.
    pub enclave: Option<Arc<eleos_enclave::enclave::Enclave>>,
    /// The SUVM instance, in SUVM modes.
    pub suvm: Option<Arc<Suvm>>,
    /// The RPC service, in Eleos modes.
    pub rpc: Option<Arc<RpcService>>,
    /// The wire session, attested at rig construction (the handshake
    /// runs once, before any measured request).
    pub session: Arc<Session>,
    /// The server socket.
    pub fd: Fd,
    /// Mode this rig was built for.
    pub mode: Mode,
}

/// Worker core for RPC threads (the paper dedicates a core to the
/// worker, §3.1).
pub const RPC_CORE: usize = 7;
/// Cores handed to RPC workers, in assignment order (the paper's
/// topology dedicates the high cores to the untrusted side).
pub const RPC_WORKER_CORES: [usize; 4] = [RPC_CORE, 6, 5, 4];
/// Socket staging capacity.
pub const SOCKET_STAGING: usize = 4 << 20;

impl Rig {
    /// Builds a rig for `mode` with a single RPC worker. `data_bytes`
    /// sizes the enclave linear space and SUVM backing store; `cat`
    /// applies the 75/25 LLC partition.
    #[must_use]
    pub fn new(scale: Scale, mode: Mode, data_bytes: usize, cat: bool) -> Rig {
        Rig::with_workers(scale, mode, data_bytes, cat, 1)
    }

    /// Builds a rig for `mode` with `workers` RPC worker threads (each
    /// on its own core, so scatter-gather sub-batches genuinely run in
    /// parallel).
    #[must_use]
    pub fn with_workers(
        scale: Scale,
        mode: Mode,
        data_bytes: usize,
        cat: bool,
        workers: usize,
    ) -> Rig {
        assert!(
            (1..=RPC_WORKER_CORES.len()).contains(&workers),
            "workers must be 1..={}",
            RPC_WORKER_CORES.len()
        );
        let machine = paper_machine(scale);
        if cat {
            machine.enable_cat();
        }
        let enclave = mode.enclaved().then(|| {
            machine
                .driver
                .create_enclave(&machine, data_bytes * 2 + (64 << 20))
        });
        let suvm = match mode {
            Mode::EleosSuvm | Mode::EleosSuvmDirect => {
                let e = enclave.as_ref().expect("suvm needs an enclave");
                let ctx = ThreadCtx::for_enclave(&machine, e, 0);
                let mut cfg = paper_suvm_config(scale, data_bytes * 2);
                if mode == Mode::EleosSuvmDirect {
                    cfg.seal_sub_pages = true;
                }
                Some(Suvm::new(&ctx, cfg))
            }
            _ => None,
        };
        let rpc = match mode {
            Mode::EleosRpc | Mode::EleosSuvm | Mode::EleosSuvmDirect => Some(Arc::new(
                with_syscalls(RpcService::builder(&machine), &machine)
                    .workers(workers, &RPC_WORKER_CORES[..workers])
                    .build(),
            )),
            _ => None,
        };
        // Every rig session starts with the attestation handshake: the
        // load generator verifies the serving identity's evidence
        // before pushing a single request. Benches reset counters
        // before their measured phase, so the one-time handshake cost
        // never pollutes a steady-state number.
        let session = Arc::new(Session::handshake([0x42; 16], [0xA7; 16]));
        let mut ut = ThreadCtx::untrusted(&machine, 0);
        attest_session(&mut ut, &session);
        let fd = machine.host.socket(&ut, SOCKET_STAGING);
        Rig {
            machine,
            enclave,
            suvm,
            rpc,
            session,
            fd,
            mode,
        }
    }

    /// The data space applications should put their sensitive data in.
    #[must_use]
    pub fn data_space(&self) -> DataSpace {
        match self.mode {
            Mode::Native => DataSpace::Untrusted(Arc::clone(&self.machine)),
            Mode::SgxOcall | Mode::EleosRpc => {
                DataSpace::Enclave(Arc::clone(self.enclave.as_ref().expect("enclaved")))
            }
            Mode::EleosSuvm => DataSpace::suvm(self.suvm.as_ref().expect("suvm")),
            Mode::EleosSuvmDirect => DataSpace::suvm_direct(self.suvm.as_ref().expect("suvm")),
        }
    }

    /// The syscall path for this mode.
    #[must_use]
    pub fn io_path(&self) -> IoPath {
        match self.mode {
            Mode::Native => IoPath::Native,
            Mode::SgxOcall => IoPath::Ocall,
            _ => IoPath::Rpc(Arc::clone(self.rpc.as_ref().expect("rpc"))),
        }
    }

    /// A measurement thread on `core`, entered if the mode is
    /// enclaved.
    #[must_use]
    pub fn thread(&self, core: usize) -> ThreadCtx {
        let mut t = match &self.enclave {
            Some(e) => ThreadCtx::for_enclave(&self.machine, e, core),
            None => ThreadCtx::untrusted(&self.machine, core),
        };
        if self.mode.enclaved() {
            t.enter();
        }
        t
    }

    /// A `ServerIo` bound to this rig's socket with default batching.
    #[must_use]
    pub fn server_io(&self, ctx: &ThreadCtx, buf_len: usize) -> ServerIo {
        self.server_io_cfg(ctx, ServerIoConfig::with_buf_len(buf_len))
    }

    /// A `ServerIo` bound to this rig's socket with an explicit config
    /// (batch depth, crypto mode).
    #[must_use]
    pub fn server_io_cfg(&self, ctx: &ThreadCtx, cfg: ServerIoConfig) -> ServerIo {
        cfg.build(ctx, &[self.fd], self.io_path(), Arc::clone(&self.session))
    }

    /// A second socket (for multi-threaded servers).
    #[must_use]
    pub fn extra_socket(&self) -> Fd {
        let ut = ThreadCtx::untrusted(&self.machine, 0);
        self.machine.host.socket(&ut, SOCKET_STAGING)
    }

    /// A shard set of `n` fresh sockets (one per serving pipeline).
    /// Shard 0 reuses the rig's main socket so single-shard sets are
    /// the classic rig.
    #[must_use]
    pub fn socket_set(&self, n: usize) -> Vec<Fd> {
        assert!(n > 0, "a socket set needs at least one shard");
        let mut fds = vec![self.fd];
        fds.extend((1..n).map(|_| self.extra_socket()));
        fds
    }

    /// A sharded `ServerIo` over a socket set (one pipeline per
    /// socket, see [`ServerIoConfig::build`]) with an explicit config.
    #[must_use]
    pub fn server_io_sharded(&self, ctx: &ThreadCtx, fds: &[Fd], cfg: ServerIoConfig) -> ServerIo {
        cfg.build(ctx, fds, self.io_path(), Arc::clone(&self.session))
    }

    /// A balance-layered sharded `ServerIo` (the map wired via
    /// [`ServerIoConfig::routed`]); the load generator must route
    /// arrivals through the same `map`.
    #[must_use]
    pub fn server_io_balanced(
        &self,
        ctx: &ThreadCtx,
        fds: &[Fd],
        cfg: ServerIoConfig,
        map: &Arc<ShardMap>,
    ) -> ServerIo {
        cfg.routed(Arc::clone(map))
            .build(ctx, fds, self.io_path(), Arc::clone(&self.session))
    }
}

/// Result of a parameter-server measurement run.
pub struct PsRun {
    /// Requests served.
    pub ops: u64,
    /// End-to-end cycles on the serving core.
    pub e2e_cycles: u64,
    /// Cycles inside the update loops only.
    pub inner_cycles: u64,
    /// Stats delta over the measured phase.
    pub stats: StatsSnapshot,
}

/// Builds, populates, warms and measures a parameter server under
/// `mode`. `gen` produces request plaintexts.
pub fn run_param_server(
    rig: &Rig,
    kind: TableKind,
    n_keys: u64,
    n_requests: usize,
    warmup: usize,
    mut gen: impl FnMut() -> Vec<u8>,
) -> PsRun {
    let mut ctx = rig.thread(0);
    let mut server = ParamServer::new(rig.data_space(), kind, n_keys);
    server.init(&mut ctx);
    if kind == TableKind::OpenAddressing {
        server.populate_bulk(&mut ctx, n_keys);
    } else {
        server.populate(&mut ctx, n_keys);
    }
    let io = rig.server_io(&ctx, 64 << 10);

    // Warm-up (paper: first ten invocations discarded).
    let ut = ThreadCtx::untrusted(&rig.machine, 0);
    for _ in 0..warmup {
        rig.machine
            .host
            .push_request(&ut, rig.fd, &rig.session.encrypt(&gen()));
        server
            .handle_request(&mut ctx, &io)
            .expect("warmup request");
    }

    rig.machine.reset_counters();
    let s0 = rig.machine.stats.snapshot();
    let c0 = ctx.now();
    let mut inner = 0u64;
    let mut served = 0usize;
    while served < n_requests {
        // Keep the socket fed in batches without overrunning staging.
        let batch = (n_requests - served).min(256);
        for _ in 0..batch {
            rig.machine
                .host
                .push_request(&ut, rig.fd, &rig.session.encrypt(&gen()));
        }
        for _ in 0..batch {
            inner += server
                .handle_request(&mut ctx, &io)
                .expect("request queued");
        }
        served += batch;
    }
    let run = PsRun {
        ops: served as u64,
        e2e_cycles: ctx.now() - c0,
        inner_cycles: inner,
        stats: rig.machine.stats.snapshot() - s0,
    };
    if ctx.in_enclave() {
        ctx.exit();
    }
    run
}

/// Like [`run_param_server`], but serves requests in pipelined batches
/// of `batch` via [`ParamServer::handle_batch`]: on the RPC path each
/// recv/send stage is one amortized ring submission instead of a
/// round-trip per request.
#[allow(clippy::too_many_arguments)]
pub fn run_param_server_batched(
    rig: &Rig,
    kind: TableKind,
    n_keys: u64,
    n_requests: usize,
    warmup: usize,
    batch: usize,
    batched_crypto: bool,
    mut gen: impl FnMut() -> Vec<u8>,
) -> PsRun {
    assert!(batch > 0);
    let mut ctx = rig.thread(0);
    let mut server = ParamServer::new(rig.data_space(), kind, n_keys);
    server.init(&mut ctx);
    if kind == TableKind::OpenAddressing {
        server.populate_bulk(&mut ctx, n_keys);
    } else {
        server.populate(&mut ctx, n_keys);
    }
    let io = rig.server_io_cfg(
        &ctx,
        ServerIoConfig::with_buf_len(64 << 10)
            .batch(batch)
            .batched_crypto(batched_crypto)
            .async_send(true),
    );

    let ut = ThreadCtx::untrusted(&rig.machine, 0);
    for _ in 0..warmup {
        rig.machine
            .host
            .push_request(&ut, rig.fd, &rig.session.encrypt(&gen()));
        server
            .handle_request(&mut ctx, &io)
            .expect("warmup request");
    }

    rig.machine.reset_counters();
    let s0 = rig.machine.stats.snapshot();
    let c0 = ctx.now();
    let mut inner = 0u64;
    let mut served = 0usize;
    while served < n_requests {
        // Keep the socket fed in chunks without overrunning staging.
        let chunk = (n_requests - served).min(256);
        for _ in 0..chunk {
            rig.machine
                .host
                .push_request(&ut, rig.fd, &rig.session.encrypt(&gen()));
        }
        let mut drained = 0usize;
        while drained < chunk {
            let (n, ic) = server.handle_batch(&mut ctx, &io);
            assert!(n > 0, "queued requests must be served");
            inner += ic;
            drained += n;
        }
        served += chunk;
    }
    io.flush(&mut ctx);
    let run = PsRun {
        ops: served as u64,
        e2e_cycles: ctx.now() - c0,
        inner_cycles: inner,
        stats: rig.machine.stats.snapshot() - s0,
    };
    if ctx.in_enclave() {
        ctx.exit();
    }
    run
}

/// Prints an experiment header.
pub fn header(id: &str, title: &str, paper: &str) {
    println!();
    println!("== {id}: {title}");
    println!("   paper: {paper}");
}

/// Formats a ratio as `N.NNx`.
#[must_use]
pub fn x(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats ops/s with a k/M suffix.
#[must_use]
pub fn kops(t: f64) -> String {
    if t >= 1e6 {
        format!("{:.2}M", t / 1e6)
    } else {
        format!("{:.1}k", t / 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        let none: Vec<String> = vec![];
        assert_eq!(Scale::from_args(&none).0, 4);
        let full = vec!["--full".to_string()];
        assert_eq!(Scale::from_args(&full).0, 1);
        let s8 = vec!["--scale".to_string(), "8".to_string()];
        assert_eq!(Scale::from_args(&s8).0, 8);
    }

    #[test]
    fn scale_floors() {
        let s = Scale(16);
        assert_eq!(s.bytes(8 << 20), 512 << 10);
        assert_eq!(s.bytes(4096), 4096);
        assert_eq!(s.ops(100), 64);
    }

    #[test]
    fn throughput_capping() {
        // 1000 ops in 3.4e9 cycles = 1 second -> 1000 ops/s.
        let t = throughput(1000, CPU_HZ as u64, 1_000_000, None);
        assert!((t - 1000.0).abs() < 1.0);
        // 10 Gb/s over 1 MB/op caps at 1250 ops/s; uncapped is higher.
        let t = throughput(10_000, CPU_HZ as u64, 1_000_000, Some(10.0));
        assert!((t - 1250.0).abs() < 1.0);
    }

    #[test]
    fn rig_modes_assemble() {
        let scale = Scale(16);
        for mode in [Mode::Native, Mode::SgxOcall, Mode::EleosSuvm] {
            let rig = Rig::new(scale, mode, 1 << 20, false);
            assert_eq!(rig.mode.enclaved(), mode != Mode::Native);
            let mut t = rig.thread(0);
            let space = rig.data_space();
            let a = space.alloc(64);
            space.write(&mut t, a, b"rig");
            let mut b = [0u8; 3];
            space.read(&mut t, a, &mut b);
            assert_eq!(&b, b"rig");
            if t.in_enclave() {
                t.exit();
            }
        }
    }

    #[test]
    fn rig_with_workers_spins_up_the_pool() {
        let rig = Rig::with_workers(Scale(16), Mode::EleosRpc, 1 << 20, false, 2);
        assert_eq!(rig.rpc.as_ref().expect("rpc mode").worker_count(), 2);
    }

    #[test]
    fn param_server_small_run() {
        let rig = Rig::new(Scale(16), Mode::SgxOcall, 1 << 20, false);
        let mut load = eleos_apps::loadgen::ParamLoad::new(1, 1000, 4, None);
        let run = run_param_server(&rig, TableKind::OpenAddressing, 1000, 100, 10, move || {
            load.next_plain()
        });
        assert_eq!(run.ops, 100);
        assert!(run.e2e_cycles > run.inner_cycles);
        assert!(run.stats.enclave_exits >= 200, "2 ocalls per request");
    }
}
