//! Reproduces the Eleos (EuroSys'17) evaluation, experiment by
//! experiment.
//!
//! ```text
//! repro <id>... [--scale N | --full]
//!
//!   ids: all, costs, table1, fig1, fig2a, fig2b, fig6a, fig6b, fig6c,
//!        rpc_bench, paging_bench, crypto_bench, serving_bench,
//!        fig7a, fig7b, table2,
//!        fig8a, fig8b, table3, fig9, fig10, fig11, table4,
//!        meta_ablation, ablate_clean, ablate_subpage, ablate_epcpp,
//!        ablate_pagesize, ablate_policy, pf_latency
//!
//!   --scale N   divide capacities/datasets by N (default 4)
//!   --full      the paper's scale (93MB PRM, 500MB datasets; slow)
//!   --quick     trim the paging_bench/crypto_bench axes (CI smoke)
//! ```

use eleos_bench::experiments as exp;
use eleos_bench::harness::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--") && !a.chars().all(|c| c.is_ascii_digit()))
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if ids.is_empty() || ids.contains(&"all") {
        vec![
            "costs",
            "table1",
            "fig1",
            "fig2a",
            "fig2b",
            "fig6a",
            "fig6b",
            "fig6c",
            "rpc_bench",
            "paging_bench",
            "crypto_bench",
            "serving_bench",
            "fig7a",
            "fig7b",
            "table2",
            "fig8a",
            "fig8b",
            "table3",
            "fig9",
            "fig10",
            "fig11",
            "table4",
            "meta_ablation",
            "ablate_clean",
            "ablate_subpage",
            "ablate_epcpp",
            "ablate_pagesize",
            "ablate_policy",
            "ablate_zipf",
            "storage_bench",
        ]
    } else {
        ids
    };
    println!(
        "Eleos reproduction | scale 1/{} (PRM {} MB, LLC {} MB){}",
        scale.0,
        (93 / scale.0).max(1),
        (8 / scale.0).max(1),
        if scale.0 == 1 { " [paper scale]" } else { "" }
    );
    for id in ids {
        let t0 = std::time::Instant::now();
        match id {
            "costs" | "pf_latency" => exp::costs::run(scale),
            "table1" => exp::table1::run(scale),
            "fig1" => exp::fig1::run(scale),
            "fig2a" => exp::fig2::run_2a(scale),
            "fig2b" => exp::fig2::run_2b(scale),
            "fig6a" => exp::fig6::run_6a(scale),
            "fig6b" => exp::fig6::run_6b(scale),
            "fig6c" => exp::fig6::run_6c(scale),
            "rpc_bench" => exp::rpc_bench::run(scale),
            "paging_bench" => {
                exp::paging_bench::run(scale, args.iter().any(|a| a == "--quick"));
            }
            "crypto_bench" => {
                exp::crypto_bench::run(scale, args.iter().any(|a| a == "--quick"));
            }
            "serving_bench" => {
                exp::serving_bench::run(scale, args.iter().any(|a| a == "--quick"));
            }
            "fig7a" => exp::fig7::run_fig7(scale, 1),
            "fig7b" => exp::fig7::run_fig7(scale, 4),
            "table2" => exp::fig7::run_table2(scale),
            "fig8a" => exp::fig8::run_8a(scale),
            "fig8b" => exp::fig8::run_8b(scale),
            "table3" => exp::table3::run(scale),
            "fig9" => exp::fig9::run(scale),
            "fig10" => exp::fig10::run(scale),
            "fig11" => exp::fig11::run_fig11(scale),
            "table4" => exp::fig11::run_table4(scale),
            "meta_ablation" => exp::fig11::run_meta_ablation(scale),
            "ablate_clean" => exp::ablations::run_clean_skip(scale),
            "ablate_subpage" => exp::ablations::run_subpage_sweep(scale),
            "ablate_epcpp" => exp::ablations::run_epcpp_sweep(scale),
            "ablate_pagesize" => exp::ablations::run_pagesize_sweep(scale),
            "ablate_policy" => exp::ablations::run_policy_sweep(scale),
            "ablate_zipf" => exp::ablations::run_zipf_sweep(scale),
            "storage_bench" => {
                exp::storage_bench::run(scale, args.iter().any(|a| a == "--quick"));
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
        println!("   [{id} took {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
