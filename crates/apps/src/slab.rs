//! A memcached-style slab allocator over a [`DataSpace`].
//!
//! memcached carves memory into 1 MiB slabs assigned to size classes
//! that grow by a constant factor; each class keeps a free list of
//! fixed-size chunks. The KVS port (§5.1) keeps this allocator and
//! simply points its memory pool at SUVM — "the memory pool in SUVM is
//! managed by the memcached original allocator, while SUVM
//! transparently takes care of demand paging".

use crate::space::DataSpace;

/// Slab size (memcached's default).
pub const SLAB_BYTES: usize = 1 << 20;
/// Smallest chunk.
pub const MIN_CHUNK: usize = 96;
/// Size-class growth factor (memcached's default 1.25).
pub const GROWTH: f64 = 1.25;

struct SizeClass {
    chunk: usize,
    free: Vec<u64>,
}

/// The allocator.
pub struct SlabPool {
    space: DataSpace,
    classes: Vec<SizeClass>,
    /// Bytes of slabs acquired from the space.
    pub slab_bytes: u64,
    /// Cap on slab acquisition (the `-m` memory limit).
    limit: u64,
    used_chunks: u64,
}

impl SlabPool {
    /// Creates a pool over `space`, capped at `limit` bytes.
    #[must_use]
    pub fn new(space: DataSpace, limit: u64) -> Self {
        let mut classes = Vec::new();
        let mut chunk = MIN_CHUNK;
        while chunk < SLAB_BYTES {
            classes.push(SizeClass {
                chunk,
                free: Vec::new(),
            });
            chunk = (((chunk as f64) * GROWTH) as usize + 7) & !7;
        }
        classes.push(SizeClass {
            chunk: SLAB_BYTES,
            free: Vec::new(),
        });
        Self {
            space,
            classes,
            slab_bytes: 0,
            limit,
            used_chunks: 0,
        }
    }

    /// The size class index serving `len` bytes.
    #[must_use]
    pub fn class_of(&self, len: usize) -> Option<usize> {
        self.classes.iter().position(|c| c.chunk >= len)
    }

    /// Chunk size of class `idx`.
    #[must_use]
    pub fn chunk_size(&self, idx: usize) -> usize {
        self.classes[idx].chunk
    }

    /// Allocates a chunk for `len` bytes, returning
    /// `(class, address)`. `None` means the memory limit is reached
    /// and the caller must evict (memcached's LRU kicks in).
    pub fn alloc(&mut self, len: usize) -> Option<(usize, u64)> {
        let idx = self.class_of(len)?;
        if let Some(addr) = self.classes[idx].free.pop() {
            self.used_chunks += 1;
            return Some((idx, addr));
        }
        // Carve a new slab.
        if self.slab_bytes + SLAB_BYTES as u64 > self.limit {
            return None;
        }
        let slab = self.space.alloc(SLAB_BYTES);
        self.slab_bytes += SLAB_BYTES as u64;
        let chunk = self.classes[idx].chunk;
        let n = SLAB_BYTES / chunk;
        for i in (0..n).rev() {
            self.classes[idx].free.push(slab + (i * chunk) as u64);
        }
        let addr = self.classes[idx].free.pop().expect("fresh slab");
        self.used_chunks += 1;
        Some((idx, addr))
    }

    /// Returns a chunk to its class.
    pub fn free(&mut self, class: usize, addr: u64) {
        self.classes[class].free.push(addr);
        self.used_chunks -= 1;
    }

    /// Live chunks.
    #[must_use]
    pub fn used_chunks(&self) -> u64 {
        self.used_chunks
    }

    /// The backing space.
    #[must_use]
    pub fn space(&self) -> &DataSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    fn pool(limit: u64) -> SlabPool {
        let m = SgxMachine::new(MachineConfig::tiny());
        SlabPool::new(DataSpace::Untrusted(m), limit)
    }

    #[test]
    fn classes_grow_geometrically() {
        let p = pool(8 << 20);
        let mut prev = 0usize;
        for c in &p.classes {
            assert!(c.chunk > prev);
            prev = c.chunk;
        }
        assert_eq!(p.classes.last().unwrap().chunk, SLAB_BYTES);
    }

    #[test]
    fn alloc_returns_right_class() {
        let mut p = pool(8 << 20);
        let (c1, a1) = p.alloc(100).unwrap();
        assert!(p.chunk_size(c1) >= 100);
        let (c2, a2) = p.alloc(5000).unwrap();
        assert!(p.chunk_size(c2) >= 5000);
        assert!(c2 > c1);
        assert_ne!(a1, a2);
        assert_eq!(p.used_chunks(), 2);
    }

    #[test]
    fn chunks_within_a_slab_are_disjoint() {
        let mut p = pool(8 << 20);
        let mut addrs = Vec::new();
        for _ in 0..100 {
            let (c, a) = p.alloc(200).unwrap();
            let sz = p.chunk_size(c) as u64;
            for &(b, bs) in &addrs {
                assert!(a + sz <= b || b + bs <= a, "chunk overlap");
            }
            addrs.push((a, sz));
        }
    }

    #[test]
    fn limit_forces_eviction_signal() {
        let mut p = pool(SLAB_BYTES as u64); // one slab only
        let (c, a) = p.alloc(SLAB_BYTES).unwrap();
        assert!(p.alloc(SLAB_BYTES).is_none(), "limit must bite");
        p.free(c, a);
        assert!(p.alloc(SLAB_BYTES).is_some(), "freed chunk reusable");
    }

    #[test]
    fn free_list_reuse_is_lifo() {
        let mut p = pool(8 << 20);
        let (c, a) = p.alloc(100).unwrap();
        p.free(c, a);
        let (_, b) = p.alloc(100).unwrap();
        assert_eq!(a, b);
    }
}
