//! A memcached-style slab allocator over a [`DataSpace`].
//!
//! memcached carves memory into 1 MiB slabs assigned to size classes
//! that grow by a constant factor; each class keeps a free list of
//! fixed-size chunks. The KVS port (§5.1) keeps this allocator and
//! simply points its memory pool at SUVM — "the memory pool in SUVM is
//! managed by the memcached original allocator, while SUVM
//! transparently takes care of demand paging".

use crate::space::DataSpace;

/// Slab size (memcached's default).
pub const SLAB_BYTES: usize = 1 << 20;
/// Smallest chunk.
pub const MIN_CHUNK: usize = 96;
/// Size-class growth factor (memcached's default 1.25).
pub const GROWTH: f64 = 1.25;

struct SizeClass {
    chunk: usize,
    free: Vec<u64>,
}

/// A carved slab: which class currently owns the 1 MiB region.
struct Slab {
    base: u64,
    class: usize,
}

/// The allocator.
pub struct SlabPool {
    space: DataSpace,
    classes: Vec<SizeClass>,
    slabs: Vec<Slab>,
    /// Bytes of slabs acquired from the space.
    pub slab_bytes: u64,
    /// Cap on slab acquisition (the `-m` memory limit).
    limit: u64,
    used_chunks: u64,
}

impl SlabPool {
    /// Creates a pool over `space`, capped at `limit` bytes.
    #[must_use]
    pub fn new(space: DataSpace, limit: u64) -> Self {
        let mut classes = Vec::new();
        let mut chunk = MIN_CHUNK;
        while chunk < SLAB_BYTES {
            classes.push(SizeClass {
                chunk,
                free: Vec::new(),
            });
            chunk = (((chunk as f64) * GROWTH) as usize + 7) & !7;
        }
        classes.push(SizeClass {
            chunk: SLAB_BYTES,
            free: Vec::new(),
        });
        Self {
            space,
            classes,
            slabs: Vec::new(),
            slab_bytes: 0,
            limit,
            used_chunks: 0,
        }
    }

    /// The size class index serving `len` bytes.
    #[must_use]
    pub fn class_of(&self, len: usize) -> Option<usize> {
        self.classes.iter().position(|c| c.chunk >= len)
    }

    /// Chunk size of class `idx`.
    #[must_use]
    pub fn chunk_size(&self, idx: usize) -> usize {
        self.classes[idx].chunk
    }

    /// Allocates a chunk for `len` bytes, returning
    /// `(class, address)`. `None` means the memory limit is reached
    /// and the caller must evict (memcached's LRU kicks in).
    pub fn alloc(&mut self, len: usize) -> Option<(usize, u64)> {
        let idx = self.class_of(len)?;
        if let Some(addr) = self.classes[idx].free.pop() {
            self.used_chunks += 1;
            return Some((idx, addr));
        }
        // Carve a new slab.
        if self.slab_bytes + SLAB_BYTES as u64 > self.limit {
            return None;
        }
        let slab = self.space.alloc(SLAB_BYTES);
        self.slab_bytes += SLAB_BYTES as u64;
        self.slabs.push(Slab {
            base: slab,
            class: idx,
        });
        let chunk = self.classes[idx].chunk;
        let n = SLAB_BYTES / chunk;
        for i in (0..n).rev() {
            self.classes[idx].free.push(slab + (i * chunk) as u64);
        }
        let addr = self.classes[idx].free.pop().expect("fresh slab");
        self.used_chunks += 1;
        Some((idx, addr))
    }

    /// Returns a chunk to its class.
    pub fn free(&mut self, class: usize, addr: u64) {
        self.classes[class].free.push(addr);
        self.used_chunks -= 1;
    }

    /// Live chunks.
    #[must_use]
    pub fn used_chunks(&self) -> u64 {
        self.used_chunks
    }

    /// Number of size classes.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Chunks a full slab yields for class `idx`.
    #[must_use]
    pub fn chunks_per_slab(&self, idx: usize) -> usize {
        SLAB_BYTES / self.classes[idx].chunk
    }

    /// Free chunks currently parked on class `idx`'s free list.
    #[must_use]
    pub fn free_chunks(&self, idx: usize) -> usize {
        self.classes[idx].free.len()
    }

    /// Base addresses of slabs currently assigned to class `idx`.
    #[must_use]
    pub fn slabs_in(&self, idx: usize) -> Vec<u64> {
        self.slabs
            .iter()
            .filter(|s| s.class == idx)
            .map(|s| s.base)
            .collect()
    }

    /// Free chunks of class `idx` living inside the slab at `base`.
    #[must_use]
    pub fn free_chunks_in_slab(&self, idx: usize, base: u64) -> usize {
        let end = base + SLAB_BYTES as u64;
        self.classes[idx]
            .free
            .iter()
            .filter(|&&a| a >= base && a < end)
            .count()
    }

    /// Strips every free chunk inside the slab at `base` off class
    /// `idx`'s free list, returning how many were removed. First step
    /// of a slab move: after this the old class can never hand out a
    /// chunk from the departing slab.
    pub fn remove_slab_free_chunks(&mut self, idx: usize, base: u64) -> usize {
        let end = base + SLAB_BYTES as u64;
        let before = self.classes[idx].free.len();
        self.classes[idx].free.retain(|&a| a < base || a >= end);
        before - self.classes[idx].free.len()
    }

    /// Pops a free chunk of class `idx` without carving a new slab.
    /// Used during a slab move to relocate survivors.
    pub fn alloc_in_class(&mut self, idx: usize) -> Option<u64> {
        let addr = self.classes[idx].free.pop()?;
        self.used_chunks += 1;
        Some(addr)
    }

    /// Drops a live chunk without returning it to any free list — the
    /// region it occupied is being reassigned wholesale.
    pub fn retire_chunk(&mut self) {
        self.used_chunks -= 1;
    }

    /// Reassigns the slab at `base` to class `idx` and carves its
    /// chunks onto the new class's free list. The caller must have
    /// already relocated live items and stripped the old class's free
    /// chunks via [`SlabPool::remove_slab_free_chunks`].
    pub fn adopt_slab(&mut self, idx: usize, base: u64) {
        let slab = self
            .slabs
            .iter_mut()
            .find(|s| s.base == base)
            .expect("adopt_slab: unknown slab base");
        slab.class = idx;
        let chunk = self.classes[idx].chunk;
        let n = SLAB_BYTES / chunk;
        for i in (0..n).rev() {
            self.classes[idx].free.push(base + (i * chunk) as u64);
        }
    }

    /// The backing space.
    #[must_use]
    pub fn space(&self) -> &DataSpace {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eleos_enclave::machine::{MachineConfig, SgxMachine};

    fn pool(limit: u64) -> SlabPool {
        let m = SgxMachine::new(MachineConfig::tiny());
        SlabPool::new(DataSpace::Untrusted(m), limit)
    }

    #[test]
    fn classes_grow_geometrically() {
        let p = pool(8 << 20);
        let mut prev = 0usize;
        for c in &p.classes {
            assert!(c.chunk > prev);
            prev = c.chunk;
        }
        assert_eq!(p.classes.last().unwrap().chunk, SLAB_BYTES);
    }

    #[test]
    fn alloc_returns_right_class() {
        let mut p = pool(8 << 20);
        let (c1, a1) = p.alloc(100).unwrap();
        assert!(p.chunk_size(c1) >= 100);
        let (c2, a2) = p.alloc(5000).unwrap();
        assert!(p.chunk_size(c2) >= 5000);
        assert!(c2 > c1);
        assert_ne!(a1, a2);
        assert_eq!(p.used_chunks(), 2);
    }

    #[test]
    fn chunks_within_a_slab_are_disjoint() {
        let mut p = pool(8 << 20);
        let mut addrs = Vec::new();
        for _ in 0..100 {
            let (c, a) = p.alloc(200).unwrap();
            let sz = p.chunk_size(c) as u64;
            for &(b, bs) in &addrs {
                assert!(a + sz <= b || b + bs <= a, "chunk overlap");
            }
            addrs.push((a, sz));
        }
    }

    #[test]
    fn limit_forces_eviction_signal() {
        let mut p = pool(SLAB_BYTES as u64); // one slab only
        let (c, a) = p.alloc(SLAB_BYTES).unwrap();
        assert!(p.alloc(SLAB_BYTES).is_none(), "limit must bite");
        p.free(c, a);
        assert!(p.alloc(SLAB_BYTES).is_some(), "freed chunk reusable");
    }

    #[test]
    fn free_list_reuse_is_lifo() {
        let mut p = pool(8 << 20);
        let (c, a) = p.alloc(100).unwrap();
        p.free(c, a);
        let (_, b) = p.alloc(100).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn slab_registry_tracks_carves() {
        let mut p = pool(8 << 20);
        let (c1, _) = p.alloc(100).unwrap();
        let (c2, _) = p.alloc(5000).unwrap();
        assert_eq!(p.slabs_in(c1).len(), 1);
        assert_eq!(p.slabs_in(c2).len(), 1);
        assert_eq!(p.free_chunks(c1), p.chunks_per_slab(c1) - 1);
    }

    #[test]
    fn slab_move_leaves_no_stranded_free_chunks() {
        let mut p = pool(8 << 20);
        // Carve a donor slab with two live chunks.
        let (donor, _a0) = p.alloc(100).unwrap();
        let (_, _a1) = p.alloc(100).unwrap();
        let base = p.slabs_in(donor)[0];
        // Pick a needy class to receive the slab.
        let (needy, _) = p.alloc(5000).unwrap();
        assert_ne!(donor, needy);
        let stripped = p.remove_slab_free_chunks(donor, base);
        assert_eq!(stripped, p.chunks_per_slab(donor) - 2);
        // The two live chunks are dropped (in the engine they'd be
        // relocated to sibling slabs), then the slab changes class.
        p.retire_chunk();
        p.retire_chunk();
        p.adopt_slab(needy, base);
        // Regression: the old class must hold zero chunks inside the
        // moved slab, and the new class must own the whole region.
        assert_eq!(p.free_chunks_in_slab(donor, base), 0);
        assert_eq!(p.free_chunks_in_slab(needy, base), p.chunks_per_slab(needy));
        assert_eq!(p.slabs_in(needy).len(), 2);
        assert!(p.slabs_in(donor).is_empty());
    }

    #[test]
    fn alloc_in_class_never_carves() {
        let mut p = pool(8 << 20);
        let (c, a) = p.alloc(100).unwrap();
        p.free(c, a);
        let slabs_before = p.slab_bytes;
        assert!(p.alloc_in_class(c).is_some());
        assert_eq!(p.slab_bytes, slabs_before);
        // Drain the free list: alloc_in_class must refuse to carve.
        while p.alloc_in_class(c).is_some() {}
        assert_eq!(p.free_chunks(c), 0);
        assert_eq!(p.slab_bytes, slabs_before);
    }
}
